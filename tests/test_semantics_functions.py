"""Unit tests for semantic functions (repro.semantics.functions)."""

from __future__ import annotations

import pytest

from repro.errors import SignatureError, UnknownFunctionError
from repro.relational import NULL
from repro.semantics import (
    FunctionRegistry,
    SemanticFunction,
    builtin_registry,
    make_concat,
    make_linear,
    make_lookup,
)


class TestSemanticFunction:
    def test_apply(self):
        double = SemanticFunction("double", 1, lambda v: v * 2)
        assert double.apply(21) == 42

    def test_callable(self):
        double = SemanticFunction("double", 1, lambda v: v * 2)
        assert double(5) == 10

    def test_arity_enforced(self):
        double = SemanticFunction("double", 1, lambda v: v * 2)
        with pytest.raises(SignatureError):
            double.apply(1, 2)

    def test_null_propagation_default(self):
        double = SemanticFunction("double", 1, lambda v: v * 2)
        assert double.apply(NULL) is NULL

    def test_null_propagation_disabled(self):
        coalesce = SemanticFunction(
            "c", 1, lambda v: "missing", null_propagating=False
        )
        assert coalesce.apply(NULL) == "missing"

    def test_output_validated(self):
        bad = SemanticFunction("bad", 1, lambda v: [v])
        with pytest.raises(TypeError):
            bad.apply(1)

    def test_empty_name_rejected(self):
        with pytest.raises(SignatureError):
            SemanticFunction("", 1, lambda v: v)

    def test_zero_arity_rejected(self):
        with pytest.raises(SignatureError):
            SemanticFunction("f", 0, lambda: 1)


class TestRegistry:
    def test_register_and_get(self):
        registry = FunctionRegistry()
        fn = registry.define("inc", 1, lambda v: v + 1)
        assert registry.get("inc") is fn
        assert "inc" in registry

    def test_duplicate_rejected(self):
        registry = FunctionRegistry()
        registry.define("f", 1, lambda v: v)
        with pytest.raises(SignatureError):
            registry.define("f", 1, lambda v: v)

    def test_replace_allowed(self):
        registry = FunctionRegistry()
        registry.define("f", 1, lambda v: 1)
        registry.define("f", 1, lambda v: 2, replace=True)
        assert registry.get("f").apply(0) == 2

    def test_unknown_function(self):
        with pytest.raises(UnknownFunctionError):
            FunctionRegistry().get("nope")

    def test_names_sorted(self):
        registry = FunctionRegistry()
        registry.define("z", 1, lambda v: v)
        registry.define("a", 1, lambda v: v)
        assert registry.names == ("a", "z")

    def test_merged_prefers_other(self):
        left = FunctionRegistry()
        left.define("f", 1, lambda v: "left")
        right = FunctionRegistry()
        right.define("f", 1, lambda v: "right")
        merged = left.merged(right)
        assert merged.get("f").apply(0) == "right"
        assert left.get("f").apply(0) == "left"  # originals untouched

    def test_len_and_iter(self):
        registry = builtin_registry()
        assert len(registry) == len(list(registry))


class TestBuiltins:
    def test_add_example5_f3(self):
        """Cost + AgentFee -> TotalCost (100 + 15 = 115)."""
        assert builtin_registry().get("add").apply(100, 15) == 115

    def test_add_floats_collapse_to_int(self):
        assert builtin_registry().get("add").apply(1.5, 2.5) == 4

    def test_subtract_multiply_divide(self):
        registry = builtin_registry()
        assert registry.get("subtract").apply(10, 4) == 6
        assert registry.get("multiply").apply(6, 7) == 42
        assert registry.get("divide").apply(9, 2) == 4.5

    def test_divide_by_zero_is_null(self):
        assert builtin_registry().get("divide").apply(1, 0) is NULL

    def test_full_name_example5_f2(self):
        assert builtin_registry().get("full_name").apply("John", "Smith") == (
            "John Smith"
        )

    def test_case_functions(self):
        registry = builtin_registry()
        assert registry.get("upper").apply("abc") == "ABC"
        assert registry.get("lower").apply("ABC") == "abc"

    def test_date_conversion(self):
        fn = builtin_registry().get("date_mdy_to_iso")
        assert fn.apply("3/15/2005") == "2005-03-15"

    def test_date_conversion_bad_input(self):
        with pytest.raises(SignatureError):
            builtin_registry().get("date_mdy_to_iso").apply("2005-03-15x")

    def test_unit_conversions(self):
        registry = builtin_registry()
        assert registry.get("lb_to_kg").apply(2) == pytest.approx(0.90718474)
        assert registry.get("usd_to_eur").apply(100) == 92

    def test_numeric_coercion_from_string(self):
        assert builtin_registry().get("add").apply("1", "2") == 3

    def test_non_numeric_rejected(self):
        with pytest.raises(SignatureError):
            builtin_registry().get("add").apply("x", 1)


class TestFactories:
    def test_make_lookup_example5_f1(self):
        lookup = make_lookup("cid", {"AirEast": 123, "JetWest": 456})
        assert lookup.apply("AirEast") == 123
        assert lookup.apply("JetWest") == 456

    def test_lookup_miss_is_null(self):
        lookup = make_lookup("cid", {"AirEast": 123})
        assert lookup.apply("Unknown") is NULL

    def test_make_concat(self):
        concat3 = make_concat("c3", separator="-", arity=3)
        assert concat3.apply("a", "b", "c") == "a-b-c"

    def test_make_linear(self):
        f_to_c = make_linear("f_to_c", 5 / 9, -160 / 9)
        assert f_to_c.apply(212) == pytest.approx(100)
