"""Unit tests for SQL rendering (repro.relational.sql)."""

from __future__ import annotations

from repro.relational import NULL, Database, Relation
from repro.relational.sql import (
    create_table_sql,
    database_to_sql,
    insert_sql,
    quote_identifier,
    quote_literal,
    relation_to_sql,
    sql_type_of,
    tnf_construction_sql,
)


class TestQuoting:
    def test_identifier(self):
        assert quote_identifier("Flights") == '"Flights"'

    def test_identifier_embedded_quote(self):
        assert quote_identifier('a"b') == '"a""b"'

    def test_literal_string(self):
        assert quote_literal("ATL29") == "'ATL29'"

    def test_literal_string_escape(self):
        assert quote_literal("O'Hare") == "'O''Hare'"

    def test_literal_numbers(self):
        assert quote_literal(100) == "100"
        assert quote_literal(1.5) == "1.5"

    def test_literal_null(self):
        assert quote_literal(NULL) == "NULL"

    def test_literal_bool(self):
        assert quote_literal(True) == "TRUE"


class TestTypes:
    def test_integer(self):
        assert sql_type_of([1, 2]) == "INTEGER"

    def test_double(self):
        assert sql_type_of([1, 2.5]) == "DOUBLE PRECISION"

    def test_text(self):
        assert sql_type_of(["a", 1]) == "TEXT"

    def test_boolean(self):
        assert sql_type_of([True, False]) == "BOOLEAN"

    def test_all_null_defaults_to_text(self):
        assert sql_type_of([NULL]) == "TEXT"


class TestScripts:
    def test_create_table(self, db_a):
        sql = create_table_sql(db_a.relation("Flights"))
        assert sql.startswith('CREATE TABLE "Flights"')
        assert '"Carrier" TEXT' in sql
        assert '"ATL29" INTEGER' in sql

    def test_inserts_one_per_tuple(self, db_b):
        statements = insert_sql(db_b.relation("Prices"))
        assert len(statements) == 4
        assert all(s.startswith('INSERT INTO "Prices"') for s in statements)

    def test_relation_script_contains_both(self, db_a):
        script = relation_to_sql(db_a.relation("Flights"))
        assert "CREATE TABLE" in script and "INSERT INTO" in script

    def test_database_script_covers_all_relations(self, db_c):
        script = database_to_sql(db_c)
        assert '"AirEast"' in script and '"JetWest"' in script

    def test_null_rendered(self):
        rel = Relation("R", ("A", "B"), [(1, NULL)])
        script = relation_to_sql(rel)
        assert "NULL" in script


class TestTnfConstruction:
    def test_one_branch_per_attribute(self, db_b):
        sql = tnf_construction_sql(db_b.relation("Prices"))
        assert sql.count("UNION ALL") == 3  # 4 attributes
        assert sql.startswith('CREATE TABLE "TNF" AS')
        assert "'Route' AS ATT" in sql

    def test_custom_tnf_name(self, db_a):
        sql = tnf_construction_sql(db_a.relation("Flights"), tnf_table="Interop")
        assert '"Interop"' in sql
