"""Unit tests for SQL compilation of pipelines (repro.fira.sqlcompile)."""

from __future__ import annotations

from repro.fira import (
    ApplyFunction,
    CartesianProduct,
    Demote,
    Dereference,
    DropAttribute,
    Merge,
    Partition,
    Promote,
    RenameAttribute,
    RenameRelation,
    Select,
    compile_expression,
    compile_operator,
)
from repro.semantics import builtin_registry
from repro.workloads import b_to_a_expression, flights_b


class TestOperatorCompilation:
    def test_rename_attribute(self, db_b):
        sql = compile_operator(
            RenameAttribute("Prices", "AgentFee", "Fee"), db_b
        )
        assert sql == [
            'ALTER TABLE "Prices" RENAME COLUMN "AgentFee" TO "Fee";'
        ]

    def test_rename_relation(self, db_b):
        sql = compile_operator(RenameRelation("Prices", "Flights"), db_b)
        assert 'RENAME TO "Flights"' in sql[0]

    def test_drop(self, db_b):
        sql = compile_operator(DropAttribute("Prices", "Cost"), db_b)
        assert 'DROP COLUMN "Cost"' in sql[0]

    def test_select(self, db_b):
        sql = compile_operator(Select("Prices", "Carrier", "AirEast"), db_b)
        assert "DELETE FROM" in sql[0] and "'AirEast'" in sql[0]

    def test_promote_materializes_data_names(self, db_b):
        sql = "\n".join(
            compile_operator(Promote("Prices", "Route", "Cost"), db_b)
        )
        assert '"ATL29"' in sql and '"ORD17"' in sql
        assert "CASE WHEN" in sql
        assert "instance-directed" in sql

    def test_demote_emits_values_table(self, db_b):
        sql = "\n".join(compile_operator(Demote("Prices"), db_b))
        assert "CROSS JOIN" in sql and "(VALUES" in sql
        assert "'Carrier'" in sql

    def test_dereference_emits_case_per_attribute(self, db_b):
        sql = "\n".join(
            compile_operator(Dereference("Prices", "Route", "V"), db_b)
        )
        assert sql.count("WHEN") == 4  # one per attribute

    def test_partition_creates_table_per_value(self, db_b):
        sql = compile_operator(Partition("Prices", "Carrier"), db_b)
        text = "\n".join(sql)
        assert 'CREATE TABLE "AirEast"' in text
        assert 'CREATE TABLE "JetWest"' in text
        assert 'DROP TABLE "Prices"' in text

    def test_merge_group_by_max(self, db_b):
        sql = "\n".join(compile_operator(Merge("Prices", "Carrier"), db_b))
        assert 'GROUP BY "Carrier"' in sql and "MAX(" in sql

    def test_product(self, db_c):
        sql = compile_operator(CartesianProduct("AirEast", "JetWest"), db_c)
        assert "CROSS JOIN" in sql[0]
        assert '"AirEast.Route"' in sql[0]

    def test_apply_emits_udf_call(self, db_b):
        sql = "\n".join(
            compile_operator(
                ApplyFunction("Prices", "add", ("Cost", "AgentFee"), "T"), db_b
            )
        )
        assert 'add("Cost", "AgentFee") AS "T"' in sql
        assert "UDF" in sql


class TestExpressionCompilation:
    def test_full_example2_script(self, db_b):
        script = compile_expression(b_to_a_expression(), db_b)
        assert script.count("-- step") == 6
        assert 'RENAME TO "Flights"' in script

    def test_steps_follow_instance_evolution(self, db_b):
        """The drop of 'Route' compiles after promote created the route
        columns, proving the compiler tracks the evolving instance."""
        script = compile_expression(b_to_a_expression(), db_b)
        assert script.index('"ATL29"') < script.index('DROP COLUMN "Route"')

    def test_lambda_pipeline(self, db_b):
        from repro.workloads import b_to_c_expression

        script = compile_expression(
            b_to_c_expression(), db_b, builtin_registry()
        )
        assert 'CREATE TABLE "AirEast"' in script
