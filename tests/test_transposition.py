"""Unit tests for the MappingProblem transposition table and state interning."""

from __future__ import annotations

import dataclasses

import pytest

from repro.fira import RenameAttribute
from repro.relational import Database
from repro.search import MappingProblem, SearchConfig, SearchStats
from repro.workloads import matching_pair


def make_problem(**config_kwargs) -> MappingProblem:
    pair = matching_pair(2)
    return MappingProblem(
        pair.source, pair.target, config=SearchConfig(**config_kwargs)
    )


class TestSuccessorCache:
    def test_second_call_is_a_hit(self):
        problem = make_problem()
        stats = SearchStats()
        state = problem.initial_state()
        first = problem.successors(state, None, stats)
        second = problem.successors(state, None, stats)
        assert stats.successor_cache_misses == 1
        assert stats.successor_cache_hits == 1
        assert first == second
        assert first is not second  # callers get their own list

    def test_generated_counts_match_on_hits(self):
        """states_generated counts successors *delivered*, hit or miss."""
        problem = make_problem()
        stats = SearchStats()
        state = problem.initial_state()
        out = problem.successors(state, None, stats)
        problem.successors(state, None, stats)
        assert stats.states_generated == 2 * len(out)

    def test_symmetry_key_canonicalises_last_op(self):
        """Operators sharing the symmetry-relevant parts share one entry."""
        problem = make_problem()
        stats = SearchStats()
        state = problem.initial_state()
        ops = [op for op, _ in problem.successors(state, None, stats)]
        renames = [op for op in ops if isinstance(op, RenameAttribute)]
        assert renames, "matching workload must propose attribute renames"
        base = renames[0]
        twin = dataclasses.replace(base, new=base.new + "_other")
        k_base = problem._symmetry_key(base)
        assert k_base == ("rename_att", base.relation, base.old)
        assert problem._symmetry_key(twin) == k_base
        # same key => the second query under the twin operator is a hit
        problem.successors(state, base, stats)
        hits_before = stats.successor_cache_hits
        problem.successors(state, twin, stats)
        assert stats.successor_cache_hits == hits_before + 1

    def test_no_symmetry_breaking_collapses_keys(self):
        problem = make_problem(break_symmetry=False)
        state = problem.initial_state()
        ops = [op for op, _ in problem.successors(state, None)]
        renames = [op for op in ops if isinstance(op, RenameAttribute)]
        assert problem._symmetry_key(renames[0]) is None
        assert problem._symmetry_key(None) is None

    def test_capacity_bound_evicts_lru(self):
        problem = make_problem(cache_capacity=1)
        stats = SearchStats()
        state = problem.initial_state()
        succ = problem.successors(state, None, stats)
        child = succ[0][1]
        problem.successors(child, succ[0][0], stats)  # evicts the root entry
        assert stats.successor_cache_evictions == 1
        problem.successors(state, None, stats)  # recomputed, not a hit
        assert stats.successor_cache_hits == 0
        assert stats.successor_cache_misses == 3
        assert len(problem._successor_cache) <= 1

    def test_disabled_cache_reports_nothing(self):
        problem = make_problem(cache_successors=False)
        stats = SearchStats()
        state = problem.initial_state()
        first = problem.successors(state, None, stats)
        second = problem.successors(state, None, stats)
        assert first == second
        assert stats.successor_cache_hits == 0
        assert stats.successor_cache_misses == 0
        assert not problem._successor_cache
        assert stats.states_generated == 2 * len(first)

    def test_clear_caches(self):
        problem = make_problem()
        state = problem.initial_state()
        problem.successors(state, None)
        problem.is_goal(state)
        assert problem._successor_cache and problem._goal_cache
        problem.clear_caches()
        assert not problem._successor_cache
        assert not problem._goal_cache
        assert not problem._interned


class TestGoalCache:
    def test_false_verdicts_are_cached_hits(self):
        problem = make_problem()
        stats = SearchStats()
        state = problem.initial_state()
        assert problem.is_goal(state, stats) is False
        assert problem.is_goal(state, stats) is False
        assert stats.goal_cache_misses == 1
        assert stats.goal_cache_hits == 1

    def test_true_verdicts_are_cached_hits(self):
        problem = make_problem()
        stats = SearchStats()
        assert problem.is_goal(problem.target, stats) is True
        assert problem.is_goal(problem.target, stats) is True
        assert stats.goal_cache_misses == 1
        assert stats.goal_cache_hits == 1

    def test_timing_recorded(self):
        problem = make_problem()
        stats = SearchStats()
        problem.is_goal(problem.initial_state(), stats)
        problem.successors(problem.initial_state(), None, stats)
        assert stats.time_in_goal_tests > 0
        assert stats.time_in_successors > 0


class TestInterning:
    def test_equal_states_share_one_object(self):
        problem = make_problem()
        data = {"R": [{"X": 1, "Y": 2}]}
        first = problem._intern(Database.from_dict(data))
        again = problem._intern(Database.from_dict(data))
        assert again is first

    def test_successor_children_are_interned(self):
        """Re-derived equal children come back as the *same object*."""
        problem = make_problem()
        state = problem.initial_state()
        first = problem.successors(state, None)
        renames = [op for op, _ in first if isinstance(op, RenameAttribute)]
        # a different symmetry key forces a fresh computation of the same
        # children; interning must map them back to the first-run objects
        second = problem.successors(state, renames[0])
        by_op = {str(op): child for op, child in first}
        recomputed = [
            (op, child) for op, child in second if str(op) in by_op
        ]
        assert recomputed
        for op, child in recomputed:
            assert child is by_op[str(op)]

    def test_intern_respects_capacity(self):
        problem = make_problem(cache_capacity=1)
        a = problem._intern(Database.from_dict({"R": [{"X": 1}]}))
        problem._intern(Database.from_dict({"S": [{"Y": 2}]}))
        fresh_a = Database.from_dict({"R": [{"X": 1}]})
        assert problem._intern(fresh_a) is fresh_a  # a was evicted
        assert len(problem._interned) <= 1
        assert a == fresh_a


class TestConfig:
    def test_cache_fields_default_on(self):
        config = SearchConfig()
        assert config.cache_successors is True
        assert config.cache_capacity is None

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SearchConfig(cache_capacity=0)
        assert SearchConfig(cache_capacity=1).cache_capacity == 1
