"""Perf-regression tracker: history appends, regression gate, exit codes."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_TOOLS = Path(__file__).resolve().parent.parent / "tools" / "bench_history.py"


@pytest.fixture(scope="module")
def bench_history():
    spec = importlib.util.spec_from_file_location("bench_history_under_test", _TOOLS)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _write_kernel_json(path: Path, vs_seed: float, vs_memoized: float) -> Path:
    payload = {
        "headline": {"vs_seed": vs_seed, "vs_memoized": vs_memoized, "size": 6},
        "arms": {},
    }
    file = path / "BENCH_kernel_columnar.json"
    file.write_text(json.dumps(payload))
    return file


def _write_scaling_json(path: Path, speedup: float) -> Path:
    payload = {"arms": {"workers_2": {"speedup": speedup, "workers": 2}}}
    file = path / "BENCH_parallel_scaling.json"
    file.write_text(json.dumps(payload))
    return file


class TestExtraction:
    def test_bench_name_strips_prefix(self, bench_history):
        assert bench_history.bench_name("BENCH_kernel_columnar.json") == (
            "kernel_columnar"
        )
        assert bench_history.bench_name("/a/b/BENCH_parallel_scaling.json") == (
            "parallel_scaling"
        )

    def test_extract_path_walks_and_rejects_non_numbers(self, bench_history):
        payload = {"a": {"b": 2.5, "flag": True, "name": "x"}}
        assert bench_history.extract_path(payload, "a.b") == 2.5
        assert bench_history.extract_path(payload, "a.missing") is None
        assert bench_history.extract_path(payload, "a.flag") is None
        assert bench_history.extract_path(payload, "a.name") is None

    def test_unknown_bench_raises_key_error(self, bench_history):
        with pytest.raises(KeyError, match="no tracked metrics"):
            bench_history.extract_metrics("mystery", {})


class TestRecordAndCheck:
    def test_record_then_check_passes(self, bench_history, tmp_path, capsys):
        kernel = _write_kernel_json(tmp_path, vs_seed=5.5, vs_memoized=2.3)
        scaling = _write_scaling_json(tmp_path, speedup=1.0)
        history = tmp_path / "history.jsonl"
        assert bench_history.main(
            ["record", str(kernel), str(scaling), "--history", str(history)]
        ) == 0
        entries = [
            json.loads(line) for line in history.read_text().splitlines()
        ]
        assert [e["bench"] for e in entries] == [
            "kernel_columnar", "parallel_scaling",
        ]
        assert entries[0]["metrics"]["headline.vs_seed"] == 5.5
        assert entries[1]["metrics"]["arms.workers_2.speedup"] == 1.0
        assert bench_history.main(
            ["check", str(kernel), str(scaling), "--history", str(history)]
        ) == 0
        assert "ok kernel_columnar" in capsys.readouterr().out

    def test_check_with_no_history_passes_vacuously(
        self, bench_history, tmp_path
    ):
        kernel = _write_kernel_json(tmp_path, vs_seed=5.5, vs_memoized=2.3)
        history = tmp_path / "empty.jsonl"
        assert bench_history.main(
            ["check", str(kernel), "--history", str(history)]
        ) == 0

    def test_injected_regression_exits_nonzero(
        self, bench_history, tmp_path, capsys
    ):
        kernel = _write_kernel_json(tmp_path, vs_seed=5.5, vs_memoized=2.3)
        history = tmp_path / "history.jsonl"
        bench_history.main(["record", str(kernel), "--history", str(history)])
        slower = _write_kernel_json(tmp_path, vs_seed=3.0, vs_memoized=2.3)
        assert bench_history.main(
            ["check", str(slower), "--history", str(history)]
        ) == 1
        err = capsys.readouterr().err
        assert "REGRESSION" in err
        assert "headline.vs_seed" in err

    def test_threshold_tolerates_small_dips(self, bench_history, tmp_path):
        kernel = _write_kernel_json(tmp_path, vs_seed=5.0, vs_memoized=2.0)
        history = tmp_path / "history.jsonl"
        bench_history.main(["record", str(kernel), "--history", str(history)])
        dip = _write_kernel_json(tmp_path, vs_seed=4.5, vs_memoized=1.9)
        assert bench_history.main(
            ["check", str(dip), "--history", str(history)]
        ) == 0
        cliff = _write_kernel_json(tmp_path, vs_seed=4.5, vs_memoized=1.9)
        assert bench_history.main(
            ["check", str(cliff), "--history", str(history),
             "--threshold", "0.01"]
        ) == 1

    def test_missing_file_exits_two(self, bench_history, tmp_path, capsys):
        assert bench_history.main(
            ["check", str(tmp_path / "BENCH_kernel_columnar.json"),
             "--history", str(tmp_path / "h.jsonl")]
        ) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_unknown_bench_exits_two(self, bench_history, tmp_path, capsys):
        rogue = tmp_path / "BENCH_mystery.json"
        rogue.write_text("{}")
        assert bench_history.main(
            ["record", str(rogue), "--history", str(tmp_path / "h.jsonl")]
        ) == 2
        assert "no tracked metrics" in capsys.readouterr().err

    def test_corrupt_history_exits_two(self, bench_history, tmp_path, capsys):
        kernel = _write_kernel_json(tmp_path, vs_seed=5.5, vs_memoized=2.3)
        history = tmp_path / "history.jsonl"
        history.write_text("{broken\n")
        assert bench_history.main(
            ["check", str(kernel), "--history", str(history)]
        ) == 2
        assert "bad history line" in capsys.readouterr().err


def test_write_bench_json_env_hook_appends(tmp_path, monkeypatch):
    """REPRO_BENCH_HISTORY makes every bench publish into the history."""
    import sys

    benchmarks = Path(__file__).resolve().parent.parent / "benchmarks"
    monkeypatch.syspath_prepend(str(benchmarks))
    sys.modules.pop("_bench_utils", None)
    from _bench_utils import write_bench_json

    history = tmp_path / "auto.jsonl"
    monkeypatch.setenv("REPRO_BENCH_HISTORY", str(history))
    payload = {"headline": {"vs_seed": 5.0, "vs_memoized": 2.0}}
    write_bench_json(tmp_path / "BENCH_kernel_columnar.json", payload)
    entry = json.loads(history.read_text().splitlines()[0])
    assert entry["bench"] == "kernel_columnar"
    assert entry["metrics"] == {
        "headline.vs_seed": 5.0, "headline.vs_memoized": 2.0,
    }
    # untracked payloads write their JSON but skip the history
    write_bench_json(tmp_path / "BENCH_mystery.json", {"x": 1})
    assert len(history.read_text().splitlines()) == 1
