"""Unit tests for the λ operator (repro.fira.semantic.ApplyFunction)."""

from __future__ import annotations

import pytest

from repro.errors import OperatorApplicationError, UnknownFunctionError
from repro.fira import ApplyFunction, parse_operator
from repro.relational import NULL, Database, Relation
from repro.semantics import Correspondence, builtin_registry


@pytest.fixture
def registry():
    return builtin_registry()


class TestApplyFunction:
    def test_paper_example6(self, db_b, registry):
        """λTotalCost f3,(Cost, AgentFee)(FlightsB)."""
        op = ApplyFunction("Prices", "add", ("Cost", "AgentFee"), "TotalCost")
        out = op.apply(db_b, registry)
        rows = {
            (d["Carrier"], d["Route"], d["TotalCost"])
            for d in out.relation("Prices").iter_dicts()
        }
        assert ("AirEast", "ATL29", 115) in rows
        assert ("JetWest", "ORD17", 236) in rows

    def test_example5_full_name(self, people, registry):
        op = ApplyFunction("People", "full_name", ("First", "Last"), "Passenger")
        out = op.apply(people, registry)
        names = out.relation("People").column_values("Passenger")
        assert names == {"John Smith", "Jane Doe"}

    def test_unary_function(self, people, registry):
        op = ApplyFunction("People", "upper", ("First",), "FirstUpper")
        out = op.apply(people, registry)
        assert out.relation("People").column_values("FirstUpper") == {
            "JOHN",
            "JANE",
        }

    def test_null_inputs_propagate(self, registry):
        db = Database.single(Relation("R", ("A", "B"), [(1, NULL)]))
        op = ApplyFunction("R", "add", ("A", "B"), "C")
        out = op.apply(db, registry)
        assert next(iter(out.relation("R").iter_dicts()))["C"] is NULL

    def test_requires_registry(self, db_b):
        op = ApplyFunction("Prices", "add", ("Cost", "AgentFee"), "TotalCost")
        with pytest.raises(UnknownFunctionError):
            op.apply(db_b, None)

    def test_unknown_function(self, db_b, registry):
        op = ApplyFunction("Prices", "nope", ("Cost",), "X")
        with pytest.raises(UnknownFunctionError):
            op.apply(db_b, registry)

    def test_arity_mismatch(self, db_b, registry):
        op = ApplyFunction("Prices", "add", ("Cost",), "X")
        with pytest.raises(OperatorApplicationError):
            op.apply(db_b, registry)

    def test_missing_input_attribute(self, db_b, registry):
        op = ApplyFunction("Prices", "add", ("Cost", "Nope"), "X")
        with pytest.raises(OperatorApplicationError):
            op.apply(db_b, registry)

    def test_output_collision(self, db_b, registry):
        op = ApplyFunction("Prices", "add", ("Cost", "AgentFee"), "Cost")
        with pytest.raises(OperatorApplicationError):
            op.apply(db_b, registry)

    def test_empty_inputs_rejected(self):
        with pytest.raises(OperatorApplicationError):
            ApplyFunction("R", "f", (), "X")

    def test_from_correspondence(self):
        corr = Correspondence("add", ("Cost", "AgentFee"), "TotalCost")
        op = ApplyFunction.from_correspondence("Prices", corr)
        assert op == ApplyFunction(
            "Prices", "add", ("Cost", "AgentFee"), "TotalCost"
        )

    def test_is_applicable(self, db_b):
        good = ApplyFunction("Prices", "add", ("Cost", "AgentFee"), "TotalCost")
        assert good.is_applicable(db_b)
        assert not ApplyFunction("Prices", "add", ("Nope", "Cost"), "X").is_applicable(db_b)
        assert not ApplyFunction("Prices", "add", ("Cost", "AgentFee"), "Cost").is_applicable(db_b)

    def test_str_roundtrip(self):
        op = ApplyFunction("Prices", "add", ("Cost", "AgentFee"), "TotalCost")
        assert parse_operator(str(op)) == op

    def test_unicode(self):
        op = ApplyFunction("R", "f", ("A",), "B")
        assert "λ" in op.to_unicode()

    def test_inputs_normalized_to_tuple(self):
        op = ApplyFunction("R", "f", ["A", "B"], "C")  # type: ignore[arg-type]
        assert op.inputs == ("A", "B")
        assert hash(op)  # hashable despite list input
