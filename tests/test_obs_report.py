"""Tests for trace replay and run-profile rendering (repro.obs.report)."""

from __future__ import annotations

import pytest

from repro import discover_mapping
from repro.obs import (
    EXPAND,
    GENERATE,
    ITERATION_START,
    MemorySink,
    Tracer,
    replay_counters,
    run_profile,
)
from repro.workloads import matching_pair


def traced_run(algorithm="ida", heuristic="h0", size=3):
    pair = matching_pair(size)
    sink = MemorySink()
    result = discover_mapping(
        pair.source,
        pair.target,
        algorithm=algorithm,
        heuristic=heuristic,
        tracer=Tracer(sink),
        simplify=False,
    )
    return result, sink.events


class TestReplayContract:
    """Folding a trace back must reproduce the live counters exactly."""

    @pytest.mark.parametrize(
        "algorithm,heuristic",
        [("ida", "h0"), ("rbfs", "h1"), ("astar", "h1"), ("beam", "h1")],
    )
    def test_replay_matches_live_stats(self, algorithm, heuristic):
        size = 3 if heuristic == "h0" else 4
        result, events = traced_run(algorithm, heuristic, size)
        stats = result.stats
        replayed = replay_counters(events)
        assert replayed["states_examined"] == stats.states_examined
        assert replayed["states_generated"] == stats.states_generated
        assert replayed["iterations"] == stats.iterations
        assert replayed["max_depth"] == stats.max_depth
        assert replayed["cache_hits"] == stats.cache_hits
        assert replayed["cache_misses"] == stats.cache_misses
        for cache in ("successor", "goal", "heuristic"):
            assert replayed[f"{cache}_cache_hits"] == getattr(
                stats, f"{cache}_cache_hits"
            )
            assert replayed[f"{cache}_cache_misses"] == getattr(
                stats, f"{cache}_cache_misses"
            )

    def test_replay_of_empty_trace_is_all_zero(self):
        replayed = replay_counters([])
        assert replayed["states_examined"] == 0
        assert replayed["cache_hits"] == 0


class TestReplayFolding:
    def test_counts_by_event_type(self):
        events = [
            {"event": ITERATION_START, "seq": 1, "t": 0.0, "n": 1, "bound": 0},
            {"event": EXPAND, "seq": 2, "t": 0.1, "depth": 2, "n": 1},
            {"event": GENERATE, "seq": 3, "t": 0.2, "count": 5},
            {"event": EXPAND, "seq": 4, "t": 0.3, "depth": 1, "n": 2},
        ]
        replayed = replay_counters(events)
        assert replayed["states_examined"] == 2
        assert replayed["states_generated"] == 5
        assert replayed["iterations"] == 1
        assert replayed["max_depth"] == 2


class TestRunProfile:
    def test_profile_sections_for_real_run(self):
        result, events = traced_run("ida", "h0", 3)
        profile = run_profile(events)
        assert "run profile: ida/h0" in profile
        assert "status=found" in profile
        assert f"states examined {result.stats.states_examined}" in profile
        assert "per-phase time" in profile
        assert "iterations (IDA* thresholds" in profile
        assert "successors generated per operator family" in profile
        assert "cache efficiency" in profile
        assert "solution:" in profile

    def test_profile_shows_budget_exhaustion(self):
        pair = matching_pair(4)
        from repro.search import SearchConfig

        sink = MemorySink()
        result = discover_mapping(
            pair.source,
            pair.target,
            algorithm="ida",
            heuristic="h0",
            config=SearchConfig(max_states=50),
            tracer=Tracer(sink),
            simplify=False,
        )
        assert result.status == "budget_exceeded"
        profile = run_profile(sink.events)
        assert "status=budget_exceeded" in profile
        assert "budget exceeded: 51 examined (budget 50)" in profile

    def test_profile_of_empty_trace_degrades_gracefully(self):
        profile = run_profile([])
        assert "run profile" in profile

    def test_long_iteration_tail_is_summarised(self):
        events = []
        seq = 0
        for n in range(1, 32):
            seq += 1
            events.append(
                {
                    "event": ITERATION_START,
                    "seq": seq,
                    "t": seq / 10,
                    "n": n,
                    "bound": n,
                }
            )
            seq += 1
            events.append(
                {"event": EXPAND, "seq": seq, "t": seq / 10, "depth": 1, "n": seq}
            )
        profile = run_profile(events)
        assert "more iteration(s)" in profile
