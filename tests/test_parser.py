"""Unit tests for the textual expression syntax (repro.fira.parser)."""

from __future__ import annotations

import pytest

from repro.errors import ExpressionParseError
from repro.fira import (
    ApplyFunction,
    CartesianProduct,
    Demote,
    Dereference,
    DropAttribute,
    MappingExpression,
    Merge,
    Partition,
    Promote,
    RenameAttribute,
    RenameRelation,
    Select,
    parse_expression,
    parse_operator,
)
from repro.workloads import b_to_a_expression, b_to_c_expression

ALL_OPERATORS = [
    RenameAttribute("Rel", "Old", "New"),
    RenameRelation("Old", "New"),
    DropAttribute("Rel", "Attr"),
    Promote("Rel", "Name", "Value"),
    Demote("Rel"),
    Dereference("Rel", "Ptr", "New"),
    Partition("Rel", "Attr"),
    CartesianProduct("L", "R"),
    CartesianProduct("L", "R", "Out"),
    Merge("Rel", "Attr"),
    ApplyFunction("Rel", "add", ("A", "B"), "C"),
    ApplyFunction("Rel", "upper", ("A",), "B"),
    Select("Rel", "Attr", "text"),
    Select("Rel", "Attr", 42),
]


class TestOperatorRoundtrip:
    @pytest.mark.parametrize("op", ALL_OPERATORS, ids=lambda op: str(op))
    def test_roundtrip(self, op):
        assert parse_operator(str(op)) == op

    def test_whitespace_tolerated(self):
        assert parse_operator("  rename_rel( A ->  B )  ") == RenameRelation(
            "A", "B"
        )

    def test_unknown_syntax_rejected(self):
        with pytest.raises(ExpressionParseError):
            parse_operator("frobnicate[R](A)")

    def test_garbage_rejected(self):
        with pytest.raises(ExpressionParseError):
            parse_operator("rename_att[")


class TestExpressionParsing:
    def test_multiline(self):
        text = "rename_rel(A -> B)\nrename_att[B](X -> Y)"
        expr = parse_expression(text)
        assert len(expr) == 2
        assert isinstance(expr[1], RenameAttribute)

    def test_semicolon_separated(self):
        expr = parse_expression("rename_rel(A -> B); rename_rel(B -> C)")
        assert len(expr) == 2

    def test_promote_semicolon_not_a_separator(self):
        expr = parse_expression("promote[R](Name; Value)")
        assert len(expr) == 1
        assert expr[0] == Promote("R", "Name", "Value")

    def test_comments_and_blank_lines(self):
        text = """
        # the schema match
        rename_rel(A -> B)   # trailing comment

        rename_att[B](X -> Y)
        """
        assert len(parse_expression(text)) == 2

    def test_empty_text_is_identity(self):
        assert parse_expression("") == MappingExpression()

    def test_roundtrip_example2(self):
        expr = b_to_a_expression()
        assert parse_expression(str(expr)) == expr

    def test_roundtrip_b_to_c(self):
        expr = b_to_c_expression()
        assert parse_expression(str(expr)) == expr

    def test_parsed_expression_executes(self, db_a, db_b):
        expr = parse_expression(str(b_to_a_expression()))
        assert expr.apply(db_b) == db_a
