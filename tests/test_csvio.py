"""Unit tests for CSV I/O (repro.relational.csvio)."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError
from repro.relational import (
    NULL,
    Database,
    Relation,
)
from repro.relational.csvio import (
    database_from_mapping,
    load_database_dir,
    load_relation,
    parse_value,
    relation_from_csv,
    relation_to_csv,
    save_database,
    save_relation,
)


class TestParseValue:
    def test_empty_is_null(self):
        assert parse_value("") is NULL

    def test_literal_null(self):
        assert parse_value("NULL") is NULL

    def test_int(self):
        assert parse_value("42") == 42

    def test_negative_int(self):
        assert parse_value("-3") == -3

    def test_float(self):
        assert parse_value("1.5") == 1.5

    def test_bool(self):
        assert parse_value("true") is True
        assert parse_value("False") is False

    def test_string_fallback(self):
        assert parse_value("ATL29") == "ATL29"

    def test_numeric_looking_string_with_spaces(self):
        assert parse_value("1 2") == "1 2"


class TestRelationCsv:
    def test_parse_header_and_rows(self):
        r = relation_from_csv("R", "A,B\n1,x\n2,y\n")
        assert r.attribute_set == {"A", "B"}
        assert (1, "x") in r.rows

    def test_empty_text_rejected(self):
        with pytest.raises(SchemaError):
            relation_from_csv("R", "")

    def test_ragged_row_rejected(self):
        with pytest.raises(SchemaError):
            relation_from_csv("R", "A,B\n1\n")

    def test_roundtrip(self, db_b):
        rel = db_b.relation("Prices")
        again = relation_from_csv("Prices", relation_to_csv(rel))
        assert again == rel

    def test_roundtrip_null(self):
        rel = Relation("R", ("A", "B"), [(1, NULL)])
        again = relation_from_csv("R", relation_to_csv(rel))
        assert again == rel

    def test_quoted_commas(self):
        r = relation_from_csv("R", 'A,B\n"x,y",2\n')
        assert ("x,y", 2) in r.rows


class TestFiles:
    def test_save_and_load_relation(self, tmp_path, db_a):
        rel = db_a.relation("Flights")
        path = tmp_path / "Flights.csv"
        save_relation(rel, path)
        assert load_relation(path) == rel

    def test_load_relation_name_from_stem(self, tmp_path):
        path = tmp_path / "MyTable.csv"
        path.write_text("A\n1\n")
        assert load_relation(path).name == "MyTable"

    def test_save_and_load_database(self, tmp_path, db_c):
        save_database(db_c, tmp_path)
        assert load_database_dir(tmp_path) == db_c

    def test_save_database_returns_paths(self, tmp_path, db_c):
        paths = save_database(db_c, tmp_path)
        assert sorted(p.name for p in paths) == ["AirEast.csv", "JetWest.csv"]


class TestDatabaseFromMapping:
    def test_builds_relations(self):
        db = database_from_mapping({"R": "A\n1\n", "S": "B\nx\n"})
        assert db.relation_names == ("R", "S")
        assert db.relation("R").rows == {(1,)}

    def test_equivalent_to_constructor(self, db_a):
        rel = db_a.relation("Flights")
        db = database_from_mapping({"Flights": relation_to_csv(rel)})
        assert db == Database.single(rel)
