"""Unit tests for SearchConfig and SearchStats."""

from __future__ import annotations

import pytest

from repro.errors import SearchBudgetExceeded
from repro.search import OPERATOR_FAMILIES, SearchConfig, SearchStats


class TestSearchConfig:
    def test_defaults_enable_everything(self):
        config = SearchConfig()
        assert config.max_states == 1_000_000
        for family in OPERATOR_FAMILIES:
            assert config.allows(family)
        assert config.break_symmetry and config.prune_targets

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            SearchConfig(max_states=0)

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            SearchConfig(enabled_operators=frozenset({"teleport"}))

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            SearchConfig(max_depth=-1)

    def test_without_operators(self):
        config = SearchConfig().without_operators("product", "demote")
        assert not config.allows("product")
        assert not config.allows("demote")
        assert config.allows("rename_att")

    def test_without_preserves_other_settings(self):
        base = SearchConfig(max_states=123, break_symmetry=False)
        derived = base.without_operators("merge")
        assert derived.max_states == 123
        assert derived.break_symmetry is False

    def test_frozen(self):
        with pytest.raises(AttributeError):
            SearchConfig().max_states = 5  # type: ignore[misc]


class TestSearchStats:
    def test_examine_counts(self):
        stats = SearchStats(budget=10)
        stats.examine(0)
        stats.examine(3)
        assert stats.states_examined == 2
        assert stats.max_depth == 3

    def test_budget_enforced(self):
        stats = SearchStats(budget=2)
        stats.examine()
        stats.examine()
        with pytest.raises(SearchBudgetExceeded) as err:
            stats.examine()
        assert err.value.budget == 2
        assert stats.states_examined == 3

    def test_generated_and_iterations(self):
        stats = SearchStats()
        stats.generated(5)
        stats.generated()
        stats.iteration()
        assert stats.states_generated == 6
        assert stats.iterations == 1

    def test_clock(self):
        stats = SearchStats()
        stats.stop_clock()
        assert stats.elapsed_seconds >= 0

    def test_as_dict(self):
        stats = SearchStats()
        stats.examine(1)
        data = stats.as_dict()
        assert data["states_examined"] == 1
        assert set(data) == {
            "states_examined",
            "states_generated",
            "iterations",
            "max_depth",
            "elapsed_seconds",
            "successor_cache_hits",
            "successor_cache_misses",
            "successor_cache_evictions",
            "goal_cache_hits",
            "goal_cache_misses",
            "goal_cache_evictions",
            "heuristic_cache_hits",
            "heuristic_cache_misses",
            "heuristic_cache_evictions",
            "time_in_successors",
            "time_in_heuristic",
            "time_in_goal_tests",
        }

    def test_cache_aggregates(self):
        stats = SearchStats()
        stats.successor_cache_hits = 3
        stats.goal_cache_hits = 2
        stats.heuristic_cache_hits = 1
        stats.successor_cache_misses = 4
        stats.heuristic_cache_evictions = 5
        assert stats.cache_hits == 6
        assert stats.cache_misses == 4
        assert stats.cache_evictions == 5
        assert stats.cache_hit_rate == 0.6

    def test_examined_trace_only_when_enabled(self):
        untraced = SearchStats()
        untraced.examine(0, "state")
        assert untraced.examined_states == []
        traced = SearchStats(trace=True)
        traced.examine(0, "s1")
        traced.examine(1, "s2")
        assert traced.examined_states == ["s1", "s2"]
