"""Tests for beam search (extension)."""

from __future__ import annotations

import pytest

from repro import discover_mapping
from repro.errors import MappingNotFound
from repro.heuristics import make_heuristic
from repro.search import MappingProblem, SearchStats, make_beam
from repro.workloads import flights_a, flights_b, matching_pair


class TestBeamSearch:
    def test_registered_in_engine(self, db_a):
        result = discover_mapping(db_a, db_a, algorithm="beam")
        assert result.found

    def test_solves_small_matching(self):
        pair = matching_pair(2)
        result = discover_mapping(pair.source, pair.target, algorithm="beam")
        assert result.found
        assert result.expression.apply(pair.source).contains(pair.target)

    def test_solves_flights_restructuring(self):
        result = discover_mapping(
            flights_b(), flights_a(), algorithm="beam", heuristic="euclid_norm"
        )
        assert result.found
        assert result.expression.apply(flights_b()).contains(flights_a())

    def test_incomplete_on_heuristic_plateaus(self):
        """h1 cannot rank the n! rename orderings, so a narrow beam drops
        every path to the goal — beam search is *incomplete* and reports
        not_found rather than searching forever."""
        pair = matching_pair(6)
        result = discover_mapping(
            pair.source, pair.target, algorithm="beam", heuristic="h1"
        )
        assert result.status == "not_found"

    def test_wider_beam_recovers(self):
        """A sufficiently wide beam degenerates to breadth-first layering
        and finds the plateau goal again."""
        pair = matching_pair(4)
        problem = MappingProblem(pair.source, pair.target)
        wide = make_beam(width=100_000)
        ops = wide(problem, make_heuristic("h1", pair.target), SearchStats())
        from repro.fira import MappingExpression

        assert MappingExpression(ops).apply(pair.source).contains(pair.target)

    def test_dropped_goal_path_raises_mapping_not_found(self):
        """Same configuration as test_incomplete_on_heuristic_plateaus but
        at the algorithm level: the default-width beam drops the goal path
        among the tied candidates and raises instead of looping.  (Beam
        width is non-monotone here — a *narrower* beam can survive on
        tie-break luck — which is exactly the incompleteness story.)"""
        pair = matching_pair(6)
        problem = MappingProblem(pair.source, pair.target)
        with pytest.raises(MappingNotFound):
            make_beam(width=16)(
                problem, make_heuristic("h1", pair.target), SearchStats()
            )

    def test_bounded_memory_layer(self):
        """The beam never carries more than `width` states per layer, so
        states examined per depth is bounded by the width."""
        pair = matching_pair(5)
        problem = MappingProblem(pair.source, pair.target)
        stats = SearchStats()
        try:
            make_beam(width=4)(problem, make_heuristic("h0", pair.target), stats)
        except MappingNotFound:
            pass
        # layers: 1 + 4 per depth; depth caps at exhaustion
        assert stats.states_examined <= 1 + 4 * (stats.iterations)
