"""Tests for the parallel execution layer (repro.parallel).

The layer's contract is *equivalence*: a parallel sweep must persist
bit-identical ExperimentPoints to a serial sweep (modulo wall-clock and the
per-worker trace-path marker), and a portfolio race must return a mapping
equal to what the winning algorithm finds on its own.
"""

from __future__ import annotations

import pickle

import pytest

from repro.experiments.runner import (
    run_bamm_domain,
    run_matching_series,
    run_semantic_series,
)
from repro.obs import load_trace, replay_counters
from repro.obs.metrics import MetricsRegistry
from repro.parallel import (
    DEFAULT_PORTFOLIO,
    discover_mapping_portfolio,
    normalize_point,
    normalize_series,
    race_table,
    run_experiment_points,
)
from repro.parallel import fanout as fanout_module
from repro.parallel.fanout import PointSpec
from repro.parallel.pool import (
    cpu_count,
    default_workers,
    resolve_start_method,
    strided_chunks,
    worker_trace_path,
)
from repro.parallel.providers import (
    has_provider,
    provider_names,
    register_provider,
    resolve_registry,
)
from repro.relational import Database, Relation
from repro.search import SearchConfig, discover_mapping
from repro.search.problem import MappingProblem
from repro.semantics import FunctionRegistry
from repro.workloads.bamm import bamm_corpus
from repro.workloads.semantic_domains import inventory_domain
from repro.workloads.synthetic import matching_pair


def _counters_only(registry: MetricsRegistry) -> dict:
    """Registry snapshot without gauges (timers are wall-clock, volatile)."""
    return {
        name: value
        for name, value in registry.as_dict().items()
        if not isinstance(value, float)
    }


class TestPoolHelpers:
    def test_strided_chunks_round_robin(self):
        assert strided_chunks([1, 2, 3, 4, 5], 2) == [[1, 3, 5], [2, 4]]

    def test_strided_chunks_drops_empty(self):
        assert strided_chunks([1], 4) == [[1]]

    def test_worker_trace_path_marker(self):
        assert worker_trace_path("out/run_x3.jsonl", 1) == "out/run_x3.w1.jsonl"

    def test_worker_trace_path_empty_passthrough(self):
        assert worker_trace_path("", 0) == ""

    def test_resolve_start_method_rejects_unknown(self):
        with pytest.raises(ValueError):
            resolve_start_method("threads")

    def test_cpu_count_and_default_workers_positive(self):
        assert cpu_count() >= 1
        assert 1 <= default_workers() <= cpu_count()


class TestPickleSafety:
    def test_relation_round_trip_drops_views(self):
        rel = Relation.from_dicts("R", [{"A": 1, "B": "x"}])
        rel.value_set()  # warm a memoised view
        clone = pickle.loads(pickle.dumps(rel))
        assert clone == rel
        assert clone._views == {}
        assert clone.value_set() == rel.value_set()

    def test_database_round_trip_drops_views(self):
        db = Database.from_dict({"R": [{"A": 1}], "S": [{"B": 2}]})
        db.value_texts()  # warm a memoised view
        clone = pickle.loads(pickle.dumps(db))
        assert clone == db
        assert clone._views == {}
        assert hash(clone) == hash(db)

    def test_mapping_problem_getstate_drops_memo_tables(self):
        pair = matching_pair(2)
        problem = MappingProblem(
            pair.source, pair.target, registry=FunctionRegistry()
        )
        # warm the memo tables, then check they do not cross the pickle line
        start = problem.initial_state()
        problem.successors(start)
        problem.is_goal(start)
        clone = pickle.loads(pickle.dumps(problem))
        assert clone._successor_cache == {}
        assert clone._goal_cache == {}
        assert clone._interned == {}
        assert clone.source == problem.source
        assert clone.target == problem.target


class TestFanoutEquivalence:
    def test_matching_two_workers_bit_identical(self, tmp_path):
        serial_metrics, parallel_metrics = MetricsRegistry(), MetricsRegistry()
        serial = run_matching_series(
            "ida",
            "h1",
            [1, 2, 3, 4],
            budget=20_000,
            trace_dir=tmp_path / "serial",
            metrics=serial_metrics,
        )
        parallel = run_matching_series(
            "ida",
            "h1",
            [1, 2, 3, 4],
            budget=20_000,
            trace_dir=tmp_path / "parallel",
            metrics=parallel_metrics,
            workers=2,
        )
        assert normalize_series(parallel) == normalize_series(serial)
        # counters and histograms merge to the serial totals exactly
        assert _counters_only(parallel_metrics) == _counters_only(serial_metrics)

    def test_matching_one_worker_bit_identical(self):
        serial = run_matching_series("greedy", "h1", [2, 3], budget=20_000)
        parallel = run_matching_series(
            "greedy", "h1", [2, 3], budget=20_000, workers=1
        )
        assert normalize_series(parallel) == normalize_series(serial)

    def test_stop_after_cutoff_truncates_like_serial(self):
        # a tiny budget forces a cutoff mid-grid
        serial = run_matching_series("ida", "h0", [1, 2, 3, 4, 5], budget=10)
        parallel = run_matching_series(
            "ida", "h0", [1, 2, 3, 4, 5], budget=10, workers=2
        )
        assert len(serial.points) < 5  # the cutoff actually triggered
        assert normalize_series(parallel) == normalize_series(serial)

    def test_bamm_two_workers_bit_identical(self):
        domain = bamm_corpus(2006)["Books"]
        serial = run_bamm_domain("greedy", "h1", domain, budget=5_000, limit=4)
        parallel = run_bamm_domain(
            "greedy", "h1", domain, budget=5_000, limit=4, workers=2
        )
        assert normalize_series(parallel) == normalize_series(serial)

    def test_semantic_two_workers_bit_identical(self):
        domain = inventory_domain()
        serial = run_semantic_series(
            "ida", "h1", domain, counts=[1, 2, 3], budget=20_000
        )
        parallel = run_semantic_series(
            "ida", "h1", domain, counts=[1, 2, 3], budget=20_000, workers=2
        )
        assert normalize_series(parallel) == normalize_series(serial)

    def test_worker_traces_round_trip(self, tmp_path):
        series = run_matching_series(
            "ida", "h1", [1, 2, 3], budget=20_000, trace_dir=tmp_path, workers=2
        )
        suffixes = {p.trace_path.rsplit(".w", 1)[1] for p in series.points}
        assert suffixes <= {"0.jsonl", "1.jsonl"}
        assert len(suffixes) == 2  # both workers actually wrote traces
        for point in series.points:
            events = load_trace(point.trace_path)
            counters = replay_counters(events)
            assert counters["states_examined"] == point.states

    def test_degrades_to_serial_when_pool_unavailable(self, monkeypatch):
        monkeypatch.setattr(
            fanout_module, "try_executor", lambda *a, **k: None
        )
        serial = run_matching_series("ida", "h1", [1, 2], budget=20_000)
        degraded = run_matching_series(
            "ida", "h1", [1, 2], budget=20_000, workers=2
        )
        assert normalize_series(degraded) == normalize_series(serial)

    def test_empty_specs(self):
        assert run_experiment_points([], workers=2) == []

    def test_unknown_spec_kind_rejected(self):
        spec = PointSpec(index=0, kind="nope", x=1, algorithm="ida", heuristic="h1")
        with pytest.raises(ValueError, match="unknown point spec kind"):
            fanout_module._execute_spec(spec, None)

    def test_normalize_point_zeros_volatile_fields_only(self):
        series = run_matching_series("ida", "h1", [2], budget=20_000)
        point = series.points[0]
        normal = normalize_point(point)
        assert normal.elapsed_seconds == 0.0
        assert normal.trace_path == ""
        assert (normal.x, normal.states, normal.status) == (
            point.x,
            point.states,
            point.status,
        )


class TestProviders:
    def test_builtin_and_semantic_domains_registered(self):
        assert has_provider("builtin")
        assert has_provider("Inventory")
        assert has_provider("RealEstateII")

    def test_resolve_unknown_raises_with_known_names(self):
        with pytest.raises(KeyError, match="builtin"):
            resolve_registry("nope")

    def test_register_rejects_duplicates(self):
        with pytest.raises(ValueError, match="already registered"):
            register_provider("builtin", FunctionRegistry)

    def test_register_replace(self):
        name = "test-provider-tmp"
        register_provider(name, FunctionRegistry)
        try:
            register_provider(name, FunctionRegistry, replace=True)
            assert name in provider_names()
        finally:
            from repro.parallel import providers

            providers._PROVIDERS.pop(name, None)


class TestPortfolio:
    def test_race_matches_winning_solo_run(self):
        pair = matching_pair(3)
        race = discover_mapping_portfolio(
            pair.source, pair.target, config=SearchConfig(max_states=50_000)
        )
        assert race.found
        assert race.winner in DEFAULT_PORTFOLIO
        solo = discover_mapping(
            pair.source,
            pair.target,
            algorithm=race.winner,
            config=SearchConfig(max_states=50_000),
        )
        assert solo.found
        assert race.result.expression == solo.expression

    def test_race_on_semantic_domain(self):
        domain = inventory_domain()
        task = domain.task(1)
        race = discover_mapping_portfolio(
            task.source,
            task.target,
            algorithms=("ida", "greedy"),
            correspondences=task.correspondences,
            registry_provider=domain.name,
            config=SearchConfig(max_states=50_000),
        )
        assert race.found
        applied = race.result.expression.apply(task.source, task.registry)
        assert applied.contains(task.target)
        # acceptance: identical expression to the winning solo run
        solo = discover_mapping(
            task.source,
            task.target,
            algorithm=race.winner,
            correspondences=task.correspondences,
            registry=task.registry,
            config=SearchConfig(max_states=50_000),
        )
        assert race.result.expression == solo.expression

    def test_serial_mode_equivalent(self):
        pair = matching_pair(2)
        race = discover_mapping_portfolio(
            pair.source,
            pair.target,
            parallel=False,
            config=SearchConfig(max_states=50_000),
        )
        assert race.mode == "serial"
        assert race.found
        solo = discover_mapping(
            pair.source,
            pair.target,
            algorithm=race.winner,
            config=SearchConfig(max_states=50_000),
        )
        assert race.result.expression == solo.expression

    def test_losers_reported_cancelled_or_finished(self):
        pair = matching_pair(2)
        race = discover_mapping_portfolio(
            pair.source, pair.target, config=SearchConfig(max_states=50_000)
        )
        statuses = {arm.arm: arm.status for arm in race.arms}
        assert set(statuses) == set(DEFAULT_PORTFOLIO)
        assert statuses[race.winner] == "found"

    def test_metrics_published_per_arm(self):
        pair = matching_pair(2)
        metrics = MetricsRegistry()
        race = discover_mapping_portfolio(
            pair.source,
            pair.target,
            config=SearchConfig(max_states=50_000),
            metrics=metrics,
        )
        assert metrics.counter("portfolio.races").value == 1
        assert metrics.counter(f"portfolio.wins.{race.winner}").value == 1
        assert (
            metrics.counter(
                f"portfolio.{race.winner}.states_examined"
            ).value
            == race.arm(race.winner).states_examined
        )

    def test_per_arm_traces(self, tmp_path):
        pair = matching_pair(2)
        race = discover_mapping_portfolio(
            pair.source,
            pair.target,
            algorithms=("ida", "greedy"),
            parallel=False,  # deterministic: both arms run to completion check
            config=SearchConfig(max_states=50_000),
            trace_dir=tmp_path,
        )
        winner = race.arm(race.winner)
        assert winner.trace_path
        events = load_trace(winner.trace_path)
        assert replay_counters(events)["states_examined"] == winner.states_examined

    def test_rejects_unknown_algorithm(self):
        pair = matching_pair(2)
        with pytest.raises(ValueError, match="unknown"):
            discover_mapping_portfolio(
                pair.source, pair.target, algorithms=("quantum",)
            )

    def test_race_table_marks_winner(self):
        pair = matching_pair(2)
        race = discover_mapping_portfolio(
            pair.source, pair.target, config=SearchConfig(max_states=50_000)
        )
        table = race_table(race)
        assert "<- winner" in table
        assert race.winner in table


class TestMetricsMerge:
    def test_merge_counters_gauges_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        a.gauge("g").add(1.5)
        b.gauge("g").add(0.5)
        a.histogram("h", (1, 2)).observe(1)
        b.histogram("h", (1, 2)).observe(5)
        a.merge_from(b)
        assert a.counter("c").value == 5
        assert a.gauge("g").value == 2.0
        hist = a.histogram("h", (1, 2))
        assert hist.total == 2
        assert hist.counts == [1, 0, 1]

    def test_merge_rejects_bucket_mismatch(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", (1, 2)).observe(1)
        b.histogram("h", (1, 3)).observe(1)
        with pytest.raises(ValueError, match="buckets"):
            a.merge_from(b)

    def test_publish_stats_prefix(self):
        registry = MetricsRegistry()
        registry.publish_stats({"states": 7, "elapsed": 0.5}, prefix="arm.ida.")
        assert registry.counter("arm.ida.states").value == 7
        assert registry.gauge("arm.ida.elapsed").value == 0.5


class TestCli:
    def test_experiments_command_parallel(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "series.json"
        code = main(
            [
                "experiments",
                "--sizes",
                "1",
                "2",
                "--algorithm",
                "ida",
                "--workers",
                "2",
                "--budget",
                "20000",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        assert out.exists()
        captured = capsys.readouterr().out
        assert "ida/h1" in captured

    def test_discover_synthetic_portfolio(self, capsys):
        from repro.cli import main

        code = main(
            ["discover", "--synthetic", "2", "--portfolio", "--budget", "50000"]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "portfolio race" in captured
        assert "<- winner" in captured

    def test_discover_requires_some_workload(self, capsys):
        from repro.cli import main

        assert main(["discover", "--synthetic", "0"]) == 2
        assert main(["discover"]) == 2

    def test_info_reports_parallel_capabilities(self, capsys):
        from repro.cli import main

        assert main(["info"]) == 0
        captured = capsys.readouterr().out
        assert "parallel:" in captured
        assert "cpu" in captured
        assert "start methods" in captured
