"""The backend registry, executor dispatch, and the deadline/cancel contract."""

from __future__ import annotations

import pytest

from repro import CancelToken, Database, Relation
from repro.backends import (
    AUTO_ORDER,
    DuckDbBackend,
    Executor,
    MiniSqlBackend,
    SqliteBackend,
    available_backends,
    backend_names,
    execute_mapping,
    get_backend,
)
from repro.errors import (
    BackendExecutionError,
    BackendUnsupportedError,
    SearchCancelled,
    SearchDeadlineExceeded,
    UnknownBackendError,
)
from repro.fira import MappingExpression, RenameAttribute
from repro.obs import MemorySink, MetricsRegistry, Tracer
from repro.workloads import flights_b
from repro.workloads.flights import b_to_a_expression, flights_registry

DUCKDB_MISSING = not DuckDbBackend().is_available()


@pytest.fixture
def simple_case():
    db = Database.single(Relation("R", ("A", "B"), [("x", 1), ("y", 2)]))
    expr = MappingExpression([RenameAttribute("R", "A", "C")])
    return db, expr


class TestRegistry:
    def test_backend_names(self):
        assert backend_names() == ("duckdb", "minisql", "sqlite")

    def test_get_backend(self):
        assert get_backend("minisql").name == "minisql"
        assert get_backend("sqlite").name == "sqlite"

    def test_unknown_backend_lists_known(self):
        with pytest.raises(UnknownBackendError) as err:
            get_backend("bogus")
        message = str(err.value)
        assert "bogus" in message
        for name in backend_names():
            assert name in message

    def test_minisql_and_sqlite_always_available(self):
        names = {b.name for b in available_backends()}
        assert {"minisql", "sqlite"} <= names

    def test_duckdb_availability_reports_reason(self):
        backend = DuckDbBackend()
        if DUCKDB_MISSING:
            assert "not installed" in backend.availability()
        else:  # pragma: no cover - needs duckdb
            assert backend.availability() is None


def _canonical_bools(db, relation="R"):
    """Whether bools survived interning as bools in this process.

    The value model is equality-faithful: ``True == 1``, so the intern pool
    canonicalizes both to whichever was seen first process-wide (see
    ``repro.relational.intern``).  When ints won, there are no boolean
    canonicals anywhere and SQLite has nothing to be unfaithful about.
    """
    return any(
        isinstance(cell, bool)
        for row in db.relation(relation).rows
        for cell in row
    )


class TestSupports:
    def test_minisql_supports_everything(self, simple_case):
        db, expr = simple_case
        assert MiniSqlBackend().supports(expr, db)

    def test_sqlite_declines_boolean_sources(self):
        db = Database.single(Relation("R", ("A",), [(True,), (False,)]))
        expr = MappingExpression([RenameAttribute("R", "A", "B")])
        backend = SqliteBackend()
        if _canonical_bools(db):
            assert not backend.supports(expr, db)
            assert "BOOLEAN" in backend.why_unsupported(expr, db)
            with pytest.raises(BackendUnsupportedError):
                backend.require_supported(expr, db)
        else:
            # True canonicalized to 1 process-wide; sqlite is then faithful
            assert backend.supports(expr, db)

    def test_sqlite_supports_plain_sources(self, simple_case):
        db, expr = simple_case
        assert SqliteBackend().supports(expr, db)

    @pytest.mark.skipif(not DUCKDB_MISSING, reason="duckdb present")
    def test_duckdb_unsupported_when_missing(self, simple_case):
        db, expr = simple_case
        assert not DuckDbBackend().supports(expr, db)


class TestExecutorDispatch:
    def test_auto_order_prefers_real_engines(self):
        assert AUTO_ORDER == ("duckdb", "sqlite", "minisql")

    def test_auto_picks_sqlite_for_plain_sources(self, simple_case):
        db, expr = simple_case
        resolved = Executor().resolve(expr, db)
        if DUCKDB_MISSING:
            assert resolved.name == "sqlite"
        else:  # pragma: no cover - needs duckdb
            assert resolved.name == "duckdb"

    def test_auto_stays_faithful_on_booleans(self):
        db = Database.single(Relation("R", ("A",), [(True,)]))
        expr = MappingExpression([RenameAttribute("R", "A", "B")])
        result = execute_mapping(expr, db, backend="auto")
        if DUCKDB_MISSING and _canonical_bools(db):
            # sqlite declined the boolean source; auto fell back
            assert result.backend == "minisql"
        assert result.database == expr.apply(db)

    def test_unknown_backend_raises_eagerly(self):
        with pytest.raises(UnknownBackendError):
            Executor(backend="bogus")

    def test_explicit_backend_unsupported_raises(self):
        db = Database.single(Relation("R", ("A",), [(True,)]))
        expr = MappingExpression([RenameAttribute("R", "A", "B")])
        if _canonical_bools(db):
            with pytest.raises(BackendUnsupportedError):
                execute_mapping(expr, db, backend="sqlite")
        else:
            result = execute_mapping(expr, db, backend="sqlite")
            assert result.database == expr.apply(db)

    def test_result_carries_script_and_timings(self, simple_case):
        db, expr = simple_case
        result = execute_mapping(expr, db, backend="sqlite")
        assert result.backend == "sqlite"
        assert result.script.dialect == "sqlite"
        assert result.script.statement_count >= 1
        assert result.compile_seconds >= 0
        assert result.execute_seconds >= 0
        assert result.database == expr.apply(db)


class TestTelemetry:
    def test_metrics_counters(self, simple_case):
        db, expr = simple_case
        metrics = MetricsRegistry()
        execute_mapping(expr, db, backend="sqlite", metrics=metrics)
        counters = metrics.counters()
        assert counters["backend.executions"] == 1
        assert counters["backend.sqlite.executions"] == 1
        assert counters["backend.statements"] >= 1

    def test_trace_events(self, simple_case):
        db, expr = simple_case
        sink = MemorySink()
        with Tracer(sink) as tracer:
            execute_mapping(expr, db, backend="minisql", tracer=tracer)
        kinds = [e["event"] for e in sink.events]
        assert "backend_compile" in kinds
        assert "backend_execute" in kinds
        execute_event = next(
            e for e in sink.events if e["event"] == "backend_execute"
        )
        assert execute_event["backend"] == "minisql"
        assert execute_event["statements"] >= 1
        assert execute_event["dur"] >= 0


class TestDeadlineAndCancel:
    """Backends honor the PR-5 resilience contract between statements."""

    @pytest.mark.parametrize("backend", ["minisql", "sqlite"])
    def test_preset_cancel_stops_before_first_statement(self, backend):
        token = CancelToken()
        token.cancel()
        src = flights_b()
        with pytest.raises(SearchCancelled) as err:
            execute_mapping(
                b_to_a_expression(),
                src,
                backend=backend,
                registry=flights_registry(),
                cancel=token,
            )
        assert err.value.states_examined == 0

    @pytest.mark.parametrize("backend", ["minisql", "sqlite"])
    def test_zero_deadline_trips_immediately(self, backend):
        src = flights_b()
        with pytest.raises(SearchDeadlineExceeded) as err:
            execute_mapping(
                b_to_a_expression(),
                src,
                backend=backend,
                registry=flights_registry(),
                deadline=0.0,
            )
        assert err.value.deadline == 0.0

    def test_generous_deadline_completes(self):
        src = flights_b()
        result = execute_mapping(
            b_to_a_expression(),
            src,
            backend="sqlite",
            registry=flights_registry(),
            deadline=60.0,
        )
        assert result.database == b_to_a_expression().apply(
            src, flights_registry()
        )


class TestExecutionErrors:
    def test_bad_statement_raises_backend_execution_error(self, simple_case):
        db, _ = simple_case
        from repro.fira.sqlcompile import SqlScript

        script = SqlScript(
            dialect="sqlite",
            statements=('SELECT * FROM "NoSuchTable";',),
            text="",
        )
        with pytest.raises(BackendExecutionError) as err:
            SqliteBackend().execute(script, db)
        assert "NoSuchTable" in str(err.value)

    def test_repr_mentions_availability(self):
        assert "available" in repr(MiniSqlBackend())
