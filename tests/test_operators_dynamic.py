"""Unit tests for the dynamic data-metadata operators (↑, ↓, →, ℘)."""

from __future__ import annotations

import pytest

from repro.errors import OperatorApplicationError
from repro.fira import (
    DEMOTE_ATT_ATTR,
    DEMOTE_REL_ATTR,
    Demote,
    Dereference,
    Partition,
    Promote,
    parse_operator,
)
from repro.relational import NULL, Database, Relation


class TestPromote:
    def test_paper_example2_step_r1(self, db_b):
        """↑Cost/Route(FlightsB): Route values become columns holding Cost."""
        out = Promote("Prices", "Route", "Cost").apply(db_b)
        rel = out.relation("Prices")
        assert rel.has_attribute("ATL29") and rel.has_attribute("ORD17")
        # each tuple defines exactly its own route column
        for row in rel.iter_dicts():
            if row["Route"] == "ATL29":
                assert row["ATL29"] == row["Cost"]
                assert row["ORD17"] is NULL
            else:
                assert row["ORD17"] == row["Cost"]
                assert row["ATL29"] is NULL

    def test_table1_effect_new_column_named_tA_value_tB(self):
        db = Database.single(Relation("R", ("K", "V"), [("p", 7)]))
        out = Promote("R", "K", "V").apply(db)
        rel = out.relation("R")
        assert rel.column("p") == (7,)

    def test_numeric_values_become_column_names(self):
        db = Database.single(Relation("R", ("K", "V"), [(42, "x")]))
        out = Promote("R", "K", "V").apply(db)
        assert out.relation("R").has_attribute("42")

    def test_null_name_values_skipped(self):
        db = Database.single(Relation("R", ("K", "V"), [(NULL, 1), ("p", 2)]))
        out = Promote("R", "K", "V").apply(db)
        rel = out.relation("R")
        assert rel.has_attribute("p")
        assert rel.arity == 3  # K, V, p only

    def test_all_null_names_rejected(self):
        db = Database.single(Relation("R", ("K", "V"), [(NULL, 1)]))
        with pytest.raises(OperatorApplicationError):
            Promote("R", "K", "V").apply(db)

    def test_collision_with_existing_attribute(self):
        db = Database.single(Relation("R", ("K", "V"), [("V", 1)]))
        with pytest.raises(OperatorApplicationError):
            Promote("R", "K", "V").apply(db)

    def test_missing_attribute(self, db_b):
        with pytest.raises(OperatorApplicationError):
            Promote("Prices", "Nope", "Cost").apply(db_b)

    def test_promote_same_column_twice_names_and_values(self):
        db = Database.single(Relation("R", ("K",), [("p",)]))
        out = Promote("R", "K", "K").apply(db)
        assert out.relation("R").column("p") == ("p",)

    def test_is_applicable(self, db_b):
        assert Promote("Prices", "Route", "Cost").is_applicable(db_b)
        assert not Promote("Prices", "Nope", "Cost").is_applicable(db_b)

    def test_str_roundtrip(self):
        op = Promote("Prices", "Route", "Cost")
        assert parse_operator(str(op)) == op

    def test_unicode(self):
        assert "↑" in Promote("R", "A", "B").to_unicode()


class TestDemote:
    def test_adds_metadata_columns(self, tiny):
        out = Demote("T").apply(tiny)
        rel = out.relation("T")
        assert rel.has_attribute(DEMOTE_REL_ATTR)
        assert rel.has_attribute(DEMOTE_ATT_ATTR)

    def test_cartesian_with_metadata(self, tiny):
        out = Demote("T").apply(tiny)
        rel = out.relation("T")
        # 2 tuples x 2 attributes
        assert rel.cardinality == 4
        assert rel.column_values(DEMOTE_ATT_ATTR) == {"X", "Y"}
        assert rel.column_values(DEMOTE_REL_ATTR) == {"T"}

    def test_double_demote_rejected(self, tiny):
        once = Demote("T").apply(tiny)
        with pytest.raises(OperatorApplicationError):
            Demote("T").apply(once)

    def test_is_applicable(self, tiny):
        assert Demote("T").is_applicable(tiny)
        assert not Demote("Nope").is_applicable(tiny)

    def test_str_roundtrip(self):
        op = Demote("T")
        assert parse_operator(str(op)) == op

    def test_unicode(self):
        assert "↓" in Demote("T").to_unicode()


class TestDereference:
    def test_table1_effect_t_of_t_A(self):
        """→B/A: append column B with value t[t[A]]."""
        db = Database.single(
            Relation("R", ("Ptr", "P", "Q"), [("P", 1, 2), ("Q", 3, 4)])
        )
        out = Dereference("R", "Ptr", "Val").apply(db)
        values = {
            (row["Ptr"], row["Val"]) for row in out.relation("R").iter_dicts()
        }
        assert values == {("P", 1), ("Q", 4)}

    def test_unpivot_composition(self, tiny):
        """↓ then → recovers each cell's value (UNPIVOT)."""
        demoted = Demote("T").apply(tiny)
        out = Dereference("T", DEMOTE_ATT_ATTR, "$VAL").apply(demoted)
        cells = {
            (row[DEMOTE_ATT_ATTR], row["$VAL"])
            for row in out.relation("T").iter_dicts()
        }
        assert ("X", "x1") in cells and ("Y", 2) in cells

    def test_dangling_pointer_is_null(self):
        db = Database.single(Relation("R", ("Ptr", "P"), [("Nope", 1)]))
        out = Dereference("R", "Ptr", "Val").apply(db)
        assert next(iter(out.relation("R").iter_dicts()))["Val"] is NULL

    def test_null_pointer_is_null(self):
        db = Database.single(Relation("R", ("Ptr", "P"), [(NULL, 1)]))
        out = Dereference("R", "Ptr", "Val").apply(db)
        assert next(iter(out.relation("R").iter_dicts()))["Val"] is NULL

    def test_new_attr_collision(self, tiny):
        with pytest.raises(OperatorApplicationError):
            Dereference("T", "X", "Y").apply(tiny)

    def test_str_roundtrip(self):
        op = Dereference("R", "Ptr", "Val")
        assert parse_operator(str(op)) == op

    def test_unicode(self):
        assert "→" in Dereference("R", "A", "B").to_unicode()


class TestPartition:
    def test_paper_flightsb_by_carrier(self, db_b):
        out = Partition("Prices", "Carrier").apply(db_b)
        assert out.relation_names == ("AirEast", "JetWest")
        assert out.relation("AirEast").cardinality == 2
        assert not out.has_relation("Prices")

    def test_tuples_assigned_by_value(self, db_b):
        out = Partition("Prices", "Carrier").apply(db_b)
        assert out.relation("AirEast").column_values("Carrier") == {"AirEast"}

    def test_attribute_retained(self, db_b):
        out = Partition("Prices", "Carrier").apply(db_b)
        assert out.relation("AirEast").has_attribute("Carrier")

    def test_collision_with_existing_relation(self):
        db = Database(
            [
                Relation("R", ("A",), [("S",)]),
                Relation("S", ("B",), [(1,)]),
            ]
        )
        with pytest.raises(OperatorApplicationError):
            Partition("R", "A").apply(db)

    def test_empty_relation_rejected(self):
        db = Database.single(Relation("R", ("A",), []))
        with pytest.raises(OperatorApplicationError):
            Partition("R", "A").apply(db)

    def test_null_partition_value_rejected(self):
        db = Database.single(Relation("R", ("A", "B"), [(NULL, 1)]))
        with pytest.raises(OperatorApplicationError):
            Partition("R", "A").apply(db)

    def test_is_applicable_checks_collisions(self):
        db = Database(
            [
                Relation("R", ("A",), [("S",)]),
                Relation("S", ("B",), [(1,)]),
            ]
        )
        assert not Partition("R", "A").is_applicable(db)

    def test_str_roundtrip(self):
        op = Partition("Prices", "Carrier")
        assert parse_operator(str(op)) == op

    def test_unicode(self):
        assert "℘" in Partition("R", "A").to_unicode()
