"""Tests for report rendering and calibration (repro.experiments)."""

from __future__ import annotations

from repro.experiments import (
    CalibrationTask,
    ExperimentPoint,
    ExperimentSeries,
    ascii_table,
    averages_table,
    calibrate,
    calibration_tasks,
    format_states,
    log_bucket,
    series_table,
    total_states,
    trace_index_table,
)


class TestFormatting:
    def test_format_states(self):
        assert format_states(42) == "42"
        assert format_states(1000, found=False) == ">1000"

    def test_log_bucket(self):
        assert log_bucket(1) == "10^0"
        assert log_bucket(999) == "10^2"
        assert log_bucket(1000) == "10^3"
        assert log_bucket(0) == "10^0"


class TestAsciiTable:
    def test_alignment(self):
        text = ascii_table(["name", "n"], [["abc", 1], ["x", 20]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_title(self):
        text = ascii_table(["a"], [[1]], title="T1")
        assert text.splitlines()[0] == "T1"


class TestSeriesTable:
    def test_union_of_x_values(self):
        left = ExperimentSeries(
            "L",
            (ExperimentPoint(1, 10, "found"), ExperimentPoint(2, 20, "found")),
        )
        right = ExperimentSeries("R", (ExperimentPoint(2, 5, "found"),))
        text = series_table([left, right], x_label="n")
        lines = text.splitlines()
        assert "L" in lines[0] and "R" in lines[0]
        assert any("-" in line for line in lines[2:])  # missing x=1 for R

    def test_cutoff_marked(self):
        series = ExperimentSeries(
            "S", (ExperimentPoint(3, 500, "budget_exceeded"),)
        )
        assert ">500" in series_table([series], x_label="n")


class TestAveragesTable:
    def test_rows_and_columns(self):
        table = averages_table(
            {"h0": {"Books": 100.0, "Music": 50.0}, "h1": {"Books": 10.0}}
        )
        lines = table.splitlines()
        assert "Books" in lines[0] and "Music" in lines[0]
        assert "100.0" in table
        assert "-" in table  # h1/Music missing


class TestTraceIndexTable:
    def test_lists_traced_points_only(self):
        series = ExperimentSeries(
            "ida/h1",
            (
                ExperimentPoint(
                    2, 3, "found",
                    elapsed_seconds=0.5,
                    trace_path="traces/ida-h1_x2.jsonl",
                ),
                ExperimentPoint(4, 5, "found"),
            ),
        )
        table = trace_index_table([series])
        assert "traces/ida-h1_x2.jsonl" in table
        assert "0.500" in table
        assert "_x4" not in table

    def test_empty_hint(self):
        series = ExperimentSeries("ida/h1", (ExperimentPoint(2, 3, "found"),))
        assert "trace_dir" in trace_index_table([series])


class TestCalibration:
    def test_tasks_mixture(self):
        tasks = calibration_tasks(matching_sizes=(2, 3), bamm_samples=2)
        names = [task.name for task in tasks]
        assert names[0].startswith("match-") and names[-1].startswith("bamm-")
        assert len(tasks) == 4

    def test_total_states_positive(self):
        tasks = calibration_tasks(matching_sizes=(2,), bamm_samples=1)
        cost = total_states("rbfs", "cosine", k=5, tasks=tasks, budget=5000)
        assert cost > 0

    def test_calibrate_picks_minimum(self):
        tasks = calibration_tasks(matching_sizes=(2, 3), bamm_samples=1)
        best, costs = calibrate(
            "rbfs", "cosine", grid=(2, 8, 16), tasks=tasks, budget=5000
        )
        assert best in (2, 8, 16)
        assert costs[best] == min(costs.values())

    def test_calibrate_tie_breaks_small(self):
        tasks = [
            CalibrationTask(
                "trivial",
                calibration_tasks(matching_sizes=(2,), bamm_samples=0)[0].source,
                calibration_tasks(matching_sizes=(2,), bamm_samples=0)[0].source,
            )
        ]
        best, costs = calibrate("rbfs", "cosine", grid=(3, 7), tasks=tasks)
        assert best == 3
        assert costs[3] == costs[7]
