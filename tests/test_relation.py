"""Unit tests for repro.relational.relation.Relation."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError, UnknownAttributeError
from repro.relational import NULL, Relation


def rel(rows=((1, "a"), (2, "b"))):
    return Relation("R", ("N", "S"), rows)


class TestConstruction:
    def test_basic(self):
        r = rel()
        assert r.name == "R"
        assert r.arity == 2
        assert r.cardinality == 2

    def test_attributes_canonical_sorted(self):
        r = Relation("R", ("B", "A"), [(1, 2)])
        assert r.attributes == ("A", "B")
        # the row is re-ordered with the attributes
        assert r.value(next(iter(r.rows)), "A") == 2
        assert r.value(next(iter(r.rows)), "B") == 1

    def test_duplicate_rows_collapse(self):
        r = Relation("R", ("A",), [(1,), (1,), (2,)])
        assert r.cardinality == 2

    def test_empty_rows_allowed(self):
        r = Relation("R", ("A",))
        assert r.cardinality == 0

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Relation("", ("A",), [])

    def test_non_string_name_rejected(self):
        with pytest.raises(SchemaError):
            Relation(12, ("A",), [])  # type: ignore[arg-type]

    def test_no_attributes_rejected(self):
        with pytest.raises(SchemaError):
            Relation("R", (), [])

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError) as err:
            Relation("R", ("A", "A"), [])
        assert "duplicate" in str(err.value)

    def test_empty_attribute_rejected(self):
        with pytest.raises(SchemaError):
            Relation("R", ("A", ""), [])

    def test_arity_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            Relation("R", ("A", "B"), [(1,)])

    def test_none_becomes_null(self):
        r = Relation("R", ("A",), [(None,)])
        assert next(iter(r.rows)) == (NULL,)

    def test_invalid_value_rejected(self):
        with pytest.raises(TypeError):
            Relation("R", ("A",), [([1],)])

    def test_from_dicts_infers_attributes(self):
        r = Relation.from_dicts("R", [{"A": 1, "B": 2}, {"B": 3}])
        assert r.attribute_set == {"A", "B"}
        rows = set(r.rows)
        assert (NULL, 3) in rows  # missing key becomes NULL

    def test_from_dicts_empty_rejected(self):
        with pytest.raises(SchemaError):
            Relation.from_dicts("R", [])

    def test_from_dicts_explicit_attributes(self):
        r = Relation.from_dicts("R", [{"A": 1}], attributes=("A", "B"))
        assert r.attribute_set == {"A", "B"}


class TestEqualityHashing:
    def test_equal_regardless_of_order(self):
        left = Relation("R", ("A", "B"), [(1, 2), (3, 4)])
        right = Relation("R", ("B", "A"), [(4, 3), (2, 1)])
        assert left == right
        assert hash(left) == hash(right)

    def test_name_matters(self):
        assert rel() != Relation("S", ("N", "S"), [(1, "a"), (2, "b")])

    def test_rows_matter(self):
        assert rel() != rel(rows=((1, "a"),))

    def test_not_equal_to_other_types(self):
        assert rel() != "R"

    def test_usable_in_sets(self):
        assert len({rel(), rel()}) == 1


class TestAccessors:
    def test_attribute_position_error(self):
        with pytest.raises(UnknownAttributeError) as err:
            rel().attribute_position("Z")
        assert err.value.attribute == "Z"
        assert err.value.relation == "R"

    def test_has_attribute(self):
        assert rel().has_attribute("N")
        assert not rel().has_attribute("Z")

    def test_column(self):
        assert rel().column("N") == (1, 2)

    def test_column_values_excludes_null(self):
        r = Relation("R", ("A",), [(1,), (NULL,)])
        assert r.column_values("A") == {1}
        assert r.column_values("A", include_null=True) == {1, NULL}

    def test_value_set(self):
        assert rel().value_set() == {1, 2, "a", "b"}

    def test_value_set_with_null(self):
        r = Relation("R", ("A", "B"), [(1, NULL)])
        assert r.value_set() == {1}
        assert NULL in r.value_set(include_null=True)

    def test_has_nulls(self):
        assert not rel().has_nulls
        assert Relation("R", ("A",), [(NULL,)]).has_nulls

    def test_sorted_rows_deterministic(self):
        r = Relation("R", ("A",), [(3,), (1,), (2,)])
        assert r.sorted_rows() == [(1,), (2,), (3,)]

    def test_iter_dicts(self):
        dicts = list(rel().iter_dicts())
        assert dicts == [{"N": 1, "S": "a"}, {"N": 2, "S": "b"}]

    def test_len_iter_contains(self):
        r = rel()
        assert len(r) == 2
        assert set(iter(r)) == r.rows
        assert (1, "a") in r


class TestDerivations:
    def test_renamed(self):
        assert rel().renamed("S").name == "S"

    def test_rename_attribute(self):
        r = rel().rename_attribute("N", "Num")
        assert r.attribute_set == {"Num", "S"}
        assert r.column("Num") == (1, 2)

    def test_rename_attribute_collision(self):
        with pytest.raises(SchemaError):
            rel().rename_attribute("N", "S")

    def test_rename_attribute_unknown(self):
        with pytest.raises(UnknownAttributeError):
            rel().rename_attribute("Z", "Q")

    def test_project(self):
        r = rel().project(["N"])
        assert r.attributes == ("N",)
        assert r.rows == {(1,), (2,)}

    def test_project_collapses_duplicates(self):
        r = Relation("R", ("A", "B"), [(1, "x"), (1, "y")]).project(["A"])
        assert r.cardinality == 1

    def test_drop_attribute(self):
        r = rel().drop_attribute("S")
        assert r.attributes == ("N",)

    def test_drop_last_attribute_rejected(self):
        with pytest.raises(SchemaError):
            Relation("R", ("A",), [(1,)]).drop_attribute("A")

    def test_extend(self):
        r = rel().extend("D", lambda row: row["N"] * 10)
        assert r.column("D") == (10, 20)

    def test_extend_collision(self):
        with pytest.raises(SchemaError):
            rel().extend("N", lambda row: 0)

    def test_with_rows(self):
        r = rel().with_rows([(9, "z")])
        assert r.rows == {(9, "z")}
        assert r.attributes == rel().attributes

    def test_filter_rows(self):
        r = rel().filter_rows(lambda row: row["N"] > 1)
        assert r.rows == {(2, "b")}


class TestContainment:
    def test_contains_self(self):
        assert rel().contains(rel())

    def test_contains_projection_subset(self):
        small = Relation("R", ("N",), [(1,)])
        assert rel().contains(small)

    def test_respects_values(self):
        wrong = Relation("R", ("N",), [(9,)])
        assert not rel().contains(wrong)

    def test_requires_attribute_subset(self):
        wider = Relation("R", ("N", "S", "Z"), [(1, "a", 0)])
        assert not rel().contains(wider)

    def test_extra_rows_in_container_ok(self):
        small = Relation("R", ("N", "S"), [(1, "a")])
        assert rel().contains(small)

    def test_to_text_mentions_values(self):
        text = rel().to_text()
        assert "R:" in text and "N" in text and "a" in text
