"""The memoized kernel is semantically invisible: cache on == cache off.

Every algorithm x heuristic combination must return the identical result —
same status, same operator sequence, same states examined *in the same
order* — whether the transposition table and derived-view caches are on
(the default) or fully disabled.  This is the contract that lets the
caches exist at all: they may only change how fast the search runs, never
what it does.
"""

from __future__ import annotations

import pytest

from repro.errors import MappingNotFound, SearchBudgetExceeded
from repro.heuristics import HEURISTIC_NAMES, make_heuristic
from repro.relational.caching import view_caching_disabled
from repro.search import ALGORITHMS, MappingProblem, SearchConfig, SearchStats
from repro.workloads import matching_pair

#: blind-ish heuristics explode combinatorially — keep their workload tiny
BLIND = ("h0", "h2")
BUDGET = 100_000


def run_search(algorithm: str, heuristic: str, size: int, cache_on: bool):
    """One raw algorithm invocation, returning (status, ops, stats)."""
    pair = matching_pair(size)
    config = SearchConfig(cache_successors=cache_on, max_states=BUDGET)
    problem = MappingProblem(pair.source, pair.target, config=config)
    h = make_heuristic(heuristic, pair.target, algorithm=algorithm)
    stats = SearchStats(budget=BUDGET, trace=True)
    h.cache_capacity = config.cache_capacity
    h.bind_stats(stats)
    try:
        ops = ALGORITHMS[algorithm](problem, h, stats)
        status = "found"
    except MappingNotFound:
        ops, status = None, "not_found"
    except SearchBudgetExceeded:
        ops, status = None, "budget_exceeded"
    return status, ops, stats


@pytest.mark.parametrize("heuristic", HEURISTIC_NAMES)
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_cache_on_off_identical(algorithm, heuristic):
    size = 3 if heuristic in BLIND else 5
    status_on, ops_on, stats_on = run_search(algorithm, heuristic, size, True)
    with view_caching_disabled():
        status_off, ops_off, stats_off = run_search(
            algorithm, heuristic, size, False
        )

    assert status_on == status_off
    on_ops = [str(op) for op in (ops_on or [])]
    off_ops = [str(op) for op in (ops_off or [])]
    assert on_ops == off_ops
    assert stats_on.states_examined == stats_off.states_examined
    assert stats_on.states_generated == stats_off.states_generated
    # not just the same count — the same states in the same order
    assert stats_on.examined_states == stats_off.examined_states


def test_cached_run_reports_cache_traffic():
    """The cached arm actually exercises the table on a re-expanding search."""
    status, _, stats = run_search("ida", "h0", 3, cache_on=True)
    assert status == "found"
    assert stats.successor_cache_hits > 0
    assert stats.successor_cache_misses > 0
    assert stats.cache_hits == (
        stats.successor_cache_hits
        + stats.goal_cache_hits
        + stats.heuristic_cache_hits
    )


def test_uncached_run_reports_no_transposition_traffic():
    status, _, stats = run_search("ida", "h0", 3, cache_on=False)
    assert status == "found"
    assert stats.successor_cache_hits == 0
    assert stats.successor_cache_misses == 0
    assert stats.goal_cache_hits == 0
    assert stats.goal_cache_misses == 0
