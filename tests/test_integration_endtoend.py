"""Integration tests: full pipelines across modules.

These exercise the whole system the way a downstream user would: build
critical instances, discover a mapping, execute the expression on a *larger*
instance of the source schema, compile to SQL, round-trip through TNF and
the textual syntax.
"""

from __future__ import annotations

import pytest

from repro import (
    Database,
    Relation,
    SearchConfig,
    Tupelo,
    compile_expression,
    discover_mapping,
    parse_expression,
    tnf_decode,
    tnf_encode,
)
from repro.workloads import (
    bamm_domain,
    flights_a,
    flights_b,
    flights_registry,
    inventory_domain,
    total_cost_correspondence,
)


class TestDiscoverThenApplyToFullData:
    """The critical-instance workflow: discover on small examples, run on
    the real (bigger) data."""

    def test_bamm_style_schema_matching(self):
        domain = bamm_domain("Books")
        task = domain.tasks[1]
        result = discover_mapping(task.source, task.target, heuristic="cosine")
        assert result.found

        # a "production" instance with many more tuples than the critical one
        source_rel = task.source.relations[0]
        big_rows = []
        for i in range(25):
            row = dict(next(iter(source_rel.iter_dicts())))
            row["Title"] = f"Book{i:02d}"
            big_rows.append(row)
        big_source = Database.single(
            Relation.from_dicts(source_rel.name, big_rows, source_rel.attributes)
        )
        mapped = result.expression.apply(big_source)
        target_rel_name = task.target.relation_names[0]
        assert mapped.relation(target_rel_name).cardinality == 25

    def test_flights_full_route_network(self, db_a, db_b):
        """Discover B->A on the Fig. 1 critical instances, then run it on a
        larger network with a third route and carrier."""
        result = discover_mapping(db_b, db_a, heuristic="euclid_norm")
        assert result.found

        # a valid schema-B instance: AgentFee is functionally determined by
        # the carrier (it is a per-carrier column in schema A)
        fees = {"AirEast": 15, "JetWest": 16}
        bigger = Database.from_dict(
            {
                "Prices": [
                    {"Carrier": c, "Route": r, "Cost": 100 * k, "AgentFee": fees[c]}
                    for k, (c, r) in enumerate(
                        [
                            ("AirEast", "ATL29"),
                            ("AirEast", "ORD17"),
                            ("JetWest", "ATL29"),
                            ("JetWest", "ORD17"),
                        ],
                        start=1,
                    )
                ]
            }
        )
        mapped = result.expression.apply(bigger)
        flights = mapped.relation("Flights")
        assert flights.cardinality == 2  # one row per carrier
        assert flights.has_attribute("ATL29") and flights.has_attribute("ORD17")


class TestArtifactInterop:
    def test_expression_text_roundtrip_and_replay(self, db_a, db_b):
        result = discover_mapping(db_b, db_a, heuristic="cosine")
        text = str(result.expression)
        replayed = parse_expression(text)
        assert replayed.apply(db_b).contains(db_a)

    def test_sql_script_generation(self, db_a, db_b):
        result = discover_mapping(db_b, db_a, heuristic="cosine")
        script = compile_expression(result.expression, db_b)
        assert "CREATE TABLE" in script or "ALTER TABLE" in script

    def test_tnf_transport(self, db_b, db_a):
        """Ship both instances through TNF (the interop format), then map."""
        source = tnf_decode(tnf_encode(db_b))
        target = tnf_decode(tnf_encode(db_a))
        assert discover_mapping(source, target, heuristic="cosine").found


class TestComplexSemanticEndToEnd:
    def test_inventory_to_warehouse_schema(self):
        domain = inventory_domain()
        task = domain.task(6)
        engine = Tupelo(heuristic="h1", registry=task.registry)
        result = engine.discover(
            task.source, task.target, correspondences=task.correspondences
        )
        assert result.found
        mapped = result.expression.apply(task.source, task.registry)
        assert mapped.contains(task.target)

    def test_flights_b_to_c_with_execution_semantics(self, db_b, db_c):
        result = discover_mapping(
            db_b,
            db_c,
            correspondences=[total_cost_correspondence()],
            registry=flights_registry(),
        )
        mapped = result.expression.apply(db_b, flights_registry())
        air_east = mapped.relation("AirEast")
        totals = air_east.column_values("TotalCost")
        assert totals == {115, 125}


class TestRobustness:
    def test_unsolvable_multi_relation(self):
        source = Database.from_dict({"R": [{"A": 1}]})
        target = Database.from_dict({"R": [{"A": 1}], "Ghost": [{"Z": "no"}]})
        result = discover_mapping(
            source, target, config=SearchConfig(max_states=5_000)
        )
        assert not result.found

    def test_budget_respected_under_pathological_heuristic(self):
        from repro.workloads import matching_pair

        pair = matching_pair(12)
        result = discover_mapping(
            pair.source,
            pair.target,
            algorithm="ida",
            heuristic="h0",
            config=SearchConfig(max_states=2_000),
        )
        assert result.status == "budget_exceeded"
        assert result.states_examined == 2_001

    def test_pruning_ablation_still_correct(self):
        """With pruning off the search is slower but must stay correct.

        Uses a small matching pair — an unpruned run on the Flights task
        examines orders of magnitude more states (see the pruning ablation
        bench) and is too slow for the unit suite.
        """
        from repro.workloads import matching_pair

        pair = matching_pair(3)
        config = SearchConfig(
            prune_targets=False, break_symmetry=False, max_states=30_000
        )
        result = discover_mapping(
            pair.source, pair.target, heuristic="euclid_norm", config=config
        )
        if result.found:  # may exceed budget; correctness matters if found
            assert result.expression.apply(pair.source).contains(pair.target)
