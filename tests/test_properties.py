"""Property-based tests (hypothesis) for core invariants."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.fira import (
    DropAttribute,
    Merge,
    Promote,
    RenameAttribute,
    merge_group,
    parse_operator,
    tuples_compatible,
)
from repro.heuristics import (
    HEURISTIC_NAMES,
    levenshtein,
    make_heuristic,
)
from repro.relational import (
    NULL,
    Database,
    Relation,
    database_string,
    tnf_decode,
    tnf_encode,
)
from repro.relational.csvio import relation_from_csv, relation_to_csv

# -- strategies -------------------------------------------------------------

identifiers = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_",
    min_size=1,
    max_size=6,
)

values = st.one_of(
    st.integers(min_value=-999, max_value=999),
    st.text(alphabet="abcdefgXYZ0123456789", min_size=0, max_size=6),
    st.booleans(),
)

values_or_null = st.one_of(values, st.just(NULL))


@st.composite
def relations(draw, with_nulls: bool = False, min_rows: int = 0):
    name = draw(identifiers)
    n_attrs = draw(st.integers(min_value=1, max_value=4))
    attrs = draw(
        st.lists(
            identifiers, min_size=n_attrs, max_size=n_attrs, unique=True
        )
    )
    cell = values_or_null if with_nulls else values
    rows = draw(
        st.lists(
            st.tuples(*([cell] * n_attrs)), min_size=min_rows, max_size=5
        )
    )
    return Relation(name, attrs, rows)


@st.composite
def databases(draw, with_nulls: bool = False):
    n = draw(st.integers(min_value=1, max_value=3))
    rels = []
    names = set()
    for _ in range(n):
        rel = draw(relations(with_nulls=with_nulls))
        if rel.name not in names:
            names.add(rel.name)
            rels.append(rel)
    return Database(rels)


# -- relational invariants ------------------------------------------------------


class TestRelationalProperties:
    @given(relations())
    def test_attribute_order_irrelevant(self, rel):
        shuffled_attrs = tuple(reversed(rel.attributes))
        positions = [rel.attribute_position(a) for a in shuffled_attrs]
        rebuilt = Relation(
            rel.name,
            shuffled_attrs,
            [tuple(row[p] for p in positions) for row in rel.rows],
        )
        assert rebuilt == rel
        assert hash(rebuilt) == hash(rel)

    @given(relations(min_rows=1))
    def test_projection_contained(self, rel):
        subset = rel.attributes[: max(1, rel.arity // 2)]
        assert rel.contains(rel.project(subset))

    @given(relations())
    def test_rename_roundtrip(self, rel):
        attr = rel.attributes[0]
        fresh = attr + "_renamed"
        assert rel.rename_attribute(attr, fresh).rename_attribute(
            fresh, attr
        ) == rel

    @given(databases())
    def test_containment_reflexive(self, db):
        assert db.contains(db)

    @given(databases(with_nulls=True))
    def test_database_equality_consistent_with_hash(self, db):
        clone = Database(
            Relation(r.name, r.attributes, r.rows) for r in db
        )
        assert clone == db
        assert hash(clone) == hash(db)


class TestTnfProperties:
    @given(databases())
    def test_roundtrip_null_free(self, db):
        non_empty = Database(rel for rel in db if rel.cardinality > 0)
        assert tnf_decode(tnf_encode(non_empty)) == non_empty

    @given(databases(with_nulls=True))
    def test_encoding_deterministic(self, db):
        assert tnf_encode(db) == tnf_encode(db)
        assert database_string(db) == database_string(db)

    @given(databases(with_nulls=True))
    def test_cell_count_bounded(self, db):
        tnf = tnf_encode(db)
        assert tnf.cardinality <= sum(
            rel.arity * rel.cardinality for rel in db
        )


class TestCsvProperties:
    @given(relations())
    def test_roundtrip(self, rel):
        # restrict to values whose text form survives CSV parsing
        safe = all(
            not (isinstance(v, str) and _parses_differently(v))
            for row in rel.rows
            for v in row
        )
        if safe:
            assert relation_from_csv(rel.name, relation_to_csv(rel)) == rel


def _parses_differently(text: str) -> bool:
    from repro.relational.csvio import parse_value

    return parse_value(text) != text or text != text.strip()


# -- merge invariants ----------------------------------------------------------


class TestMergeProperties:
    @given(st.lists(st.tuples(values_or_null, values_or_null), max_size=6))
    def test_never_grows(self, rows):
        assert len(merge_group(rows)) <= max(len(set(rows)), 0) or not rows

    @given(st.lists(st.tuples(values_or_null, values_or_null), max_size=6))
    def test_idempotent(self, rows):
        once = merge_group(rows)
        assert merge_group(once) == once

    @given(st.lists(st.tuples(values_or_null, values_or_null), max_size=6))
    def test_every_input_covered(self, rows):
        merged = merge_group(rows)
        for row in rows:
            assert any(tuples_compatible(row, out) for out in merged)


# -- string view ------------------------------------------------------------------


class TestLevenshteinProperties:
    @given(st.text(max_size=12), st.text(max_size=12))
    def test_symmetric(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(st.text(max_size=12))
    def test_identity(self, a):
        assert levenshtein(a, a) == 0

    @given(st.text(max_size=8), st.text(max_size=8), st.text(max_size=8))
    @settings(max_examples=50)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(st.text(max_size=12), st.text(max_size=12))
    def test_bounded_by_longer(self, a, b):
        assert levenshtein(a, b) <= max(len(a), len(b))


# -- heuristics ---------------------------------------------------------------------


class TestHeuristicProperties:
    @given(databases(), databases(with_nulls=True))
    @settings(max_examples=40)
    def test_non_negative_everywhere(self, target, state):
        for name in HEURISTIC_NAMES:
            assert make_heuristic(name, target)(state) >= 0

    @given(databases())
    @settings(max_examples=40)
    def test_zero_at_target(self, target):
        # h2 (and hence h3) measures cross-level token coincidences and is
        # legitimately non-zero on targets whose own relation/attribute/
        # value names collide — see test_heuristics_setbased for the
        # deterministic cases.
        for name in HEURISTIC_NAMES:
            if name in ("h2", "h3"):
                continue
            assert make_heuristic(name, target)(target) == 0

    @given(databases())
    @settings(max_examples=40)
    def test_h2_at_target_counts_self_coincidences(self, target):
        h2 = make_heuristic("h2", target)
        from repro.relational import tnf_projections

        rels, atts, values = tnf_projections(target)
        expected = (
            len(rels & atts) * 2 + len(rels & values) * 2 + len(atts & values) * 2
        )
        assert h2(target) == expected


# -- SQL round-trips --------------------------------------------------------------


class TestMiniSqlProperties:
    @given(relations())
    @settings(max_examples=60)
    def test_generated_ddl_recreates_relation(self, rel):
        from repro.minisql import MiniSqlEngine
        from repro.relational.sql import relation_to_sql

        engine = MiniSqlEngine()
        engine.execute(relation_to_sql(rel))
        assert engine.table(rel.name) == rel

    @given(relations(min_rows=1))
    @settings(max_examples=40)
    def test_compiled_drop_matches_algebra(self, rel):
        from repro.fira import DropAttribute, compile_operator
        from repro.minisql import run_script
        from repro.relational import Database

        if rel.arity < 2:
            return
        db = Database.single(rel)
        op = DropAttribute(rel.name, rel.attributes[0])
        script = "\n".join(compile_operator(op, db))
        assert run_script(script, db) == op.apply(db)


# -- operators preserve well-formedness -----------------------------------------------


class TestOperatorProperties:
    @given(relations(min_rows=1))
    @settings(max_examples=60)
    def test_promote_preserves_cardinality(self, rel):
        db = Database.single(rel)
        op = Promote(rel.name, rel.attributes[0], rel.attributes[-1])
        if op.is_applicable(db):
            out = op.apply(db)
            assert out.relation(rel.name).cardinality == rel.cardinality

    @given(relations(min_rows=1, with_nulls=True))
    @settings(max_examples=60)
    def test_merge_never_grows(self, rel):
        db = Database.single(rel)
        out = Merge(rel.name, rel.attributes[0]).apply(db)
        assert out.relation(rel.name).cardinality <= rel.cardinality

    @given(relations(min_rows=1))
    @settings(max_examples=60)
    def test_drop_then_contains_projection(self, rel):
        if rel.arity < 2:
            return
        db = Database.single(rel)
        out = DropAttribute(rel.name, rel.attributes[0]).apply(db)
        assert rel.contains(out.relation(rel.name))

    @given(identifiers, identifiers, identifiers)
    def test_rename_parses_back(self, rel_name, old, new):
        op = RenameAttribute(rel_name, old, new)
        assert parse_operator(str(op)) == op
