"""Unit tests for drop (π̄) and select (σ) — repro.fira.structure."""

from __future__ import annotations

import pytest

from repro.errors import OperatorApplicationError
from repro.fira import DropAttribute, Select, parse_operator
from repro.relational import NULL, Database, Relation


class TestDropAttribute:
    def test_basic(self, tiny):
        out = DropAttribute("T", "Y").apply(tiny)
        assert out.relation("T").attributes == ("X",)

    def test_duplicate_collapse_after_drop(self):
        db = Database.single(Relation("R", ("A", "B"), [(1, "x"), (1, "y")]))
        out = DropAttribute("R", "B").apply(db)
        assert out.relation("R").cardinality == 1

    def test_missing_attribute(self, tiny):
        with pytest.raises(OperatorApplicationError):
            DropAttribute("T", "Q").apply(tiny)

    def test_missing_relation(self, tiny):
        with pytest.raises(OperatorApplicationError):
            DropAttribute("Nope", "X").apply(tiny)

    def test_last_attribute_protected(self):
        db = Database.single(Relation("R", ("A",), [(1,)]))
        with pytest.raises(OperatorApplicationError):
            DropAttribute("R", "A").apply(db)

    def test_is_applicable(self, tiny):
        assert DropAttribute("T", "X").is_applicable(tiny)
        assert not DropAttribute("T", "Q").is_applicable(tiny)
        single = Database.single(Relation("R", ("A",), [(1,)]))
        assert not DropAttribute("R", "A").is_applicable(single)

    def test_str_roundtrip(self):
        op = DropAttribute("T", "Y")
        assert parse_operator(str(op)) == op

    def test_unicode(self):
        assert "π̄" in DropAttribute("T", "Y").to_unicode()


class TestSelect:
    def test_keeps_matching_rows(self, db_b):
        out = Select("Prices", "Carrier", "AirEast").apply(db_b)
        rel = out.relation("Prices")
        assert rel.cardinality == 2
        assert rel.column_values("Carrier") == {"AirEast"}

    def test_no_match_empties(self, db_b):
        out = Select("Prices", "Carrier", "NoSuch").apply(db_b)
        assert out.relation("Prices").cardinality == 0

    def test_select_null_keeps_null_rows(self):
        db = Database.single(Relation("R", ("A", "B"), [(1, NULL), (2, "x")]))
        out = Select("R", "B", NULL).apply(db)
        assert out.relation("R").rows == {(1, NULL)}

    def test_null_never_equals_value(self):
        db = Database.single(Relation("R", ("A", "B"), [(1, NULL)]))
        out = Select("R", "B", "x").apply(db)
        assert out.relation("R").cardinality == 0

    def test_missing_attribute(self, db_b):
        with pytest.raises(OperatorApplicationError):
            Select("Prices", "Nope", 1).apply(db_b)

    def test_str_roundtrip_string_value(self):
        op = Select("Prices", "Carrier", "AirEast")
        assert parse_operator(str(op)) == op

    def test_str_roundtrip_int_value(self):
        op = Select("Prices", "Cost", 100)
        assert parse_operator(str(op)) == op

    def test_unicode(self):
        assert "σ" in Select("R", "A", 1).to_unicode()
