"""Unit tests for Tuple Normal Form (repro.relational.tnf)."""

from __future__ import annotations

import pytest

from repro.errors import TNFError
from repro.relational import (
    NULL,
    Database,
    Relation,
    database_string,
    tnf_decode,
    tnf_encode,
    tnf_projections,
    tnf_triples,
)
from repro.relational.tnf import TNF_ATTRIBUTES, iter_tnf_cells


class TestEncode:
    def test_paper_example4(self, db_c):
        """Example 4: the TNF of FlightsC has 12 rows over 4 tuple ids."""
        tnf = tnf_encode(db_c)
        assert tnf.attribute_set == set(TNF_ATTRIBUTES)
        assert tnf.cardinality == 12
        tids = tnf.column_values("TID")
        assert len(tids) == 4
        cells = {
            (row["REL"], row["ATT"], row["VALUE"]) for row in tnf.iter_dicts()
        }
        assert ("AirEast", "Route", "ATL29") in cells
        assert ("AirEast", "TotalCost", 115) in cells
        assert ("JetWest", "BaseCost", 220) in cells

    def test_deterministic(self, db_c):
        assert tnf_encode(db_c) == tnf_encode(db_c)

    def test_same_database_same_encoding_regardless_of_build_order(self):
        left = Database(
            [Relation("A", ("X",), [(1,)]), Relation("B", ("Y",), [(2,)])]
        )
        right = Database(
            [Relation("B", ("Y",), [(2,)]), Relation("A", ("X",), [(1,)])]
        )
        assert tnf_encode(left) == tnf_encode(right)

    def test_null_cells_skipped(self):
        db = Database.single(Relation("R", ("A", "B"), [(1, NULL)]))
        cells = list(iter_tnf_cells(db))
        assert len(cells) == 1
        assert cells[0][2] == "A"

    def test_custom_table_name(self, db_a):
        assert tnf_encode(db_a, table_name="Interop").name == "Interop"

    def test_tids_unique_per_tuple(self, db_b):
        tnf = tnf_encode(db_b)
        # 4 tuples x 4 attributes
        assert tnf.cardinality == 16
        assert len(tnf.column_values("TID")) == 4


class TestDecode:
    def test_roundtrip_flights(self, db_a, db_b, db_c):
        for db in (db_a, db_b, db_c):
            assert tnf_decode(tnf_encode(db)) == db

    def test_roundtrip_multi_relation(self):
        db = Database(
            [
                Relation("R", ("A", "B"), [(1, "x"), (2, "y")]),
                Relation("S", ("C",), [("z",)]),
            ]
        )
        assert tnf_decode(tnf_encode(db)) == db

    def test_wrong_schema_rejected(self):
        bad = Relation("T", ("A", "B"), [(1, 2)])
        with pytest.raises(TNFError):
            tnf_decode(bad)

    def test_conflicting_attribute_rejected(self):
        bad = Relation(
            "TNF",
            TNF_ATTRIBUTES,
            [("t1", "R", "A", 1), ("t1", "R", "A", 2)],
        )
        with pytest.raises(TNFError):
            tnf_decode(bad)

    def test_tid_in_two_relations_rejected(self):
        bad = Relation(
            "TNF",
            TNF_ATTRIBUTES,
            [("t1", "R", "A", 1), ("t1", "S", "B", 2)],
        )
        with pytest.raises(TNFError):
            tnf_decode(bad)

    def test_non_string_tid_rejected(self):
        bad = Relation("TNF", TNF_ATTRIBUTES, [(7, "R", "A", 1)])
        with pytest.raises(TNFError):
            tnf_decode(bad)


class TestViews:
    def test_triples_are_text(self, db_a):
        triples = tnf_triples(db_a)
        assert ("Flights", "ATL29", "100") in triples
        assert all(
            isinstance(part, str) for triple in triples for part in triple
        )

    def test_projections(self, db_c):
        rels, atts, values = tnf_projections(db_c)
        assert rels == {"AirEast", "JetWest"}
        assert atts == {"Route", "BaseCost", "TotalCost"}
        assert "115" in values and "ATL29" in values

    def test_database_string_sorted_concatenation(self):
        db = Database.single(Relation("R", ("A",), [("b",), ("a",)]))
        # rows sorted lexicographically: RAa then RAb
        assert database_string(db) == "RAaRAb"

    def test_database_string_equal_for_equal_databases(self, db_b):
        assert database_string(db_b) == database_string(flipped(db_b))


def flipped(db: Database) -> Database:
    """Rebuild a database from its own parts (different construction path)."""
    return Database(
        Relation(rel.name, rel.attributes, rel.sorted_rows()) for rel in db
    )
