"""Tests for semi-automated critical-instance extraction (repro.instances)."""

from __future__ import annotations

import pytest

from repro import Database, Relation, discover_mapping
from repro.instances import (
    align_rows,
    extract_critical_instances,
    row_similarity,
    row_value_texts,
)
from repro.workloads import flights_a, flights_b


class TestRowSignatures:
    def test_signature_renders_values(self):
        rel = Relation("R", ("A", "B"), [("x", 100)])
        row = next(iter(rel.rows))
        assert row_value_texts(rel, row) == {"x", "100"}

    def test_nulls_excluded(self):
        rel = Relation("R", ("A", "B"), [("x", None)])
        row = next(iter(rel.rows))
        assert row_value_texts(rel, row) == {"x"}

    def test_similarity(self):
        assert row_similarity(frozenset("ab"), frozenset("ab")) == 1.0
        assert row_similarity(frozenset("ab"), frozenset("bc")) == pytest.approx(1 / 3)
        assert row_similarity(frozenset(), frozenset()) == 0.0


class TestAlignment:
    def test_flights_rows_align_by_carrier(self, db_a, db_b):
        alignments = align_rows(db_b, db_a)
        assert alignments
        best = alignments[0]
        # the aligned rows must actually share values
        assert best.score > 0.3

    def test_one_to_one(self, db_a, db_b):
        alignments = align_rows(db_b, db_a)
        targets = [(a.target_relation, a.target_row) for a in alignments]
        sources = [(a.source_relation, a.source_row) for a in alignments]
        assert len(targets) == len(set(targets))
        assert len(sources) == len(set(sources))

    def test_threshold(self):
        left = Database.single(Relation("L", ("A",), [("x",)]))
        right = Database.single(Relation("R", ("B",), [("y",)]))
        assert align_rows(left, right, min_score=0.5) == []

    def test_deterministic(self, db_a, db_b):
        assert align_rows(db_b, db_a) == align_rows(db_b, db_a)


class TestExtraction:
    def test_extracted_instances_are_small(self, db_a, db_b):
        small_source, small_target = extract_critical_instances(
            db_b, db_a, per_relation=2
        )
        assert small_target.relation("Flights").cardinality <= 2
        assert small_source.relation("Prices").cardinality <= 2

    def test_extracted_instances_drive_discovery(self):
        """The whole §2.2 workflow on a schema-matching scenario (rows
        align one-to-one): extract critical instances from full data,
        discover the mapping on them, replay on the full data."""
        full_source = Database.from_dict(
            {
                "Staff": [
                    {"GivenName": f"First{i}", "Surname": f"Last{i}", "Office": f"Room{i}"}
                    for i in range(8)
                ]
            }
        )
        full_target = Database.from_dict(
            {
                "Employees": [
                    {"First": f"First{i}", "Last": f"Last{i}", "Location": f"Room{i}"}
                    for i in range(8)
                ]
            }
        )
        small_source, small_target = extract_critical_instances(
            full_source, full_target, per_relation=2
        )
        assert small_target.relation("Employees").cardinality == 2
        result = discover_mapping(small_source, small_target, heuristic="h1")
        assert result.found
        mapped = result.expression.apply(full_source)
        assert mapped.contains(full_target)

    def test_extraction_caps_many_to_one_scenarios(self, db_a, db_b):
        """B->A is many-to-one (several B rows per A row); greedy 1-1
        extraction still returns valid aligned sub-instances, just not
        enough rows to illustrate the pivot — callers widen per_relation
        or fall back to manual critical instances (the GUI workflow)."""
        small_source, small_target = extract_critical_instances(
            db_b, db_a, per_relation=4
        )
        # the sub-instances remain subsets of the originals
        assert db_b.contains(small_source)
        assert db_a.contains(small_target)

    def test_no_overlap_raises(self):
        left = Database.single(Relation("L", ("A",), [("x",)]))
        right = Database.single(Relation("R", ("B",), [("y",)]))
        with pytest.raises(ValueError):
            extract_critical_instances(left, right)

    def test_schemas_preserved(self, db_a, db_b):
        small_source, small_target = extract_critical_instances(db_b, db_a)
        assert (
            small_source.relation("Prices").attributes
            == db_b.relation("Prices").attributes
        )
        assert (
            small_target.relation("Flights").attributes
            == db_a.relation("Flights").attributes
        )
