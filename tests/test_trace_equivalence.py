"""Telemetry is semantically invisible: traced == untraced, bit for bit.

The zero-overhead contract of `repro.obs` has a stronger sibling: tracing
must never change what the search *does*.  Every algorithm x heuristic
combination must return the identical result — same status, same operator
sequence, same counters, same states examined *in the same order* —
whether the run is untraced (the shared NULL_TRACER default), traced into
a NullSink, or traced into a real MemorySink.  Telemetry may only observe.
"""

from __future__ import annotations

import pytest

from repro.errors import MappingNotFound, SearchBudgetExceeded
from repro.heuristics import HEURISTIC_NAMES, make_heuristic
from repro.obs import MemorySink, NullSink, Tracer
from repro.search import (
    ALGORITHMS,
    MappingProblem,
    SearchConfig,
    SearchStats,
    discover_mapping,
)
from repro.workloads import matching_pair

#: blind-ish heuristics explode combinatorially — keep their workload tiny
BLIND = ("h0", "h2")
BUDGET = 100_000


def run_search(algorithm: str, heuristic: str, size: int, tracer=None):
    """One raw algorithm invocation, returning (status, ops, stats)."""
    pair = matching_pair(size)
    config = SearchConfig(max_states=BUDGET)
    problem = MappingProblem(pair.source, pair.target, config=config)
    h = make_heuristic(heuristic, pair.target, algorithm=algorithm)
    stats = SearchStats(budget=BUDGET, trace=True)
    if tracer is not None:
        stats.tracer = tracer
    h.cache_capacity = config.cache_capacity
    h.bind_stats(stats)
    try:
        ops = ALGORITHMS[algorithm](problem, h, stats)
        status = "found"
    except MappingNotFound:
        ops, status = None, "not_found"
    except SearchBudgetExceeded:
        ops, status = None, "budget_exceeded"
    return status, ops, stats


def assert_identical(base, other):
    status_a, ops_a, stats_a = base
    status_b, ops_b, stats_b = other
    assert status_a == status_b
    assert [str(op) for op in (ops_a or [])] == [str(op) for op in (ops_b or [])]
    assert stats_a.states_examined == stats_b.states_examined
    assert stats_a.states_generated == stats_b.states_generated
    assert stats_a.iterations == stats_b.iterations
    assert stats_a.max_depth == stats_b.max_depth
    assert stats_a.cache_hits == stats_b.cache_hits
    assert stats_a.cache_misses == stats_b.cache_misses
    # not just the same counts — the same states in the same order
    assert stats_a.examined_states == stats_b.examined_states


@pytest.mark.parametrize("heuristic", HEURISTIC_NAMES)
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_nullsink_trace_is_bit_identical(algorithm, heuristic):
    size = 3 if heuristic in BLIND else 5
    untraced = run_search(algorithm, heuristic, size, tracer=None)
    nullsunk = run_search(
        algorithm, heuristic, size, tracer=Tracer(NullSink())
    )
    assert_identical(untraced, nullsunk)


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_live_trace_is_bit_identical(algorithm):
    """Even a *recording* tracer must not perturb the search itself."""
    untraced = run_search(algorithm, "h1", 5, tracer=None)
    sink = MemorySink()
    traced = run_search(algorithm, "h1", 5, tracer=Tracer(sink))
    assert_identical(untraced, traced)
    assert len(sink) > 0


def test_event_stream_covers_the_run():
    """The recorded stream carries every examination, in order."""
    sink = MemorySink()
    status, _, stats = run_search("ida", "h0", 3, tracer=Tracer(sink))
    assert status == "found"
    expands = [e for e in sink.events if e["event"] == "expand"]
    assert len(expands) == stats.states_examined
    # expand events carry the running examination count, 1..N in order
    assert [e["n"] for e in expands] == list(
        range(1, stats.states_examined + 1)
    )


# -- engine-level equivalence: spans and progress may only observe ----------


def engine_run(algorithm, heuristic, size, tracer=None, progress=None):
    """One full discover_mapping run (spans + heartbeats live here)."""
    pair = matching_pair(size)
    return discover_mapping(
        pair.source,
        pair.target,
        algorithm=algorithm,
        heuristic=heuristic,
        config=SearchConfig(max_states=BUDGET),
        simplify=False,
        tracer=tracer,
        progress=progress,
    )


def assert_results_identical(base, other):
    assert other.status == base.status
    assert str(other.expression) == str(base.expression)
    assert other.stats.states_examined == base.stats.states_examined
    assert other.stats.states_generated == base.stats.states_generated
    assert other.stats.iterations == base.stats.iterations
    assert other.stats.max_depth == base.stats.max_depth
    assert other.stats.cache_hits == base.stats.cache_hits
    assert other.stats.cache_misses == base.stats.cache_misses


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_spans_and_progress_are_bit_identical(algorithm):
    """Span emission and the heartbeat gate must not perturb the search."""
    plain = engine_run(algorithm, "h1", 5)
    sink = MemorySink()
    updates = []
    both = engine_run(
        algorithm, "h1", 5, tracer=Tracer(sink), progress=updates.append
    )
    progress_only = engine_run(algorithm, "h1", 5, progress=lambda u: None)
    assert_results_identical(plain, both)
    assert_results_identical(plain, progress_only)
    # spans frame the stream: discover opens it, search_end still closes it
    events = sink.events
    assert events[0]["event"] == "span_start"
    assert events[0]["name"] == "discover"
    assert events[-1]["event"] == "search_end"
    started = [e["span"] for e in events if e["event"] == "span_start"]
    ended = [e["span"] for e in events if e["event"] == "span_end"]
    assert sorted(started) == sorted(ended)


@pytest.mark.parametrize("heuristic", ("h0", "h1"))
def test_progress_heartbeats_do_not_change_the_answer(heuristic):
    """Heartbeat-heavy (h0) and heartbeat-free (h1) runs both hold up."""
    plain = engine_run("ida", heuristic, 4)
    updates = []
    observed = engine_run("ida", heuristic, 4, progress=updates.append)
    assert_results_identical(plain, observed)
    if updates:
        examined = [u.examined for u in updates]
        assert examined == sorted(examined)
        assert updates[-1].examined <= observed.stats.states_examined
