"""Telemetry is semantically invisible: traced == untraced, bit for bit.

The zero-overhead contract of `repro.obs` has a stronger sibling: tracing
must never change what the search *does*.  Every algorithm x heuristic
combination must return the identical result — same status, same operator
sequence, same counters, same states examined *in the same order* —
whether the run is untraced (the shared NULL_TRACER default), traced into
a NullSink, or traced into a real MemorySink.  Telemetry may only observe.
"""

from __future__ import annotations

import pytest

from repro.errors import MappingNotFound, SearchBudgetExceeded
from repro.heuristics import HEURISTIC_NAMES, make_heuristic
from repro.obs import MemorySink, NullSink, Tracer
from repro.search import ALGORITHMS, MappingProblem, SearchConfig, SearchStats
from repro.workloads import matching_pair

#: blind-ish heuristics explode combinatorially — keep their workload tiny
BLIND = ("h0", "h2")
BUDGET = 100_000


def run_search(algorithm: str, heuristic: str, size: int, tracer=None):
    """One raw algorithm invocation, returning (status, ops, stats)."""
    pair = matching_pair(size)
    config = SearchConfig(max_states=BUDGET)
    problem = MappingProblem(pair.source, pair.target, config=config)
    h = make_heuristic(heuristic, pair.target, algorithm=algorithm)
    stats = SearchStats(budget=BUDGET, trace=True)
    if tracer is not None:
        stats.tracer = tracer
    h.cache_capacity = config.cache_capacity
    h.bind_stats(stats)
    try:
        ops = ALGORITHMS[algorithm](problem, h, stats)
        status = "found"
    except MappingNotFound:
        ops, status = None, "not_found"
    except SearchBudgetExceeded:
        ops, status = None, "budget_exceeded"
    return status, ops, stats


def assert_identical(base, other):
    status_a, ops_a, stats_a = base
    status_b, ops_b, stats_b = other
    assert status_a == status_b
    assert [str(op) for op in (ops_a or [])] == [str(op) for op in (ops_b or [])]
    assert stats_a.states_examined == stats_b.states_examined
    assert stats_a.states_generated == stats_b.states_generated
    assert stats_a.iterations == stats_b.iterations
    assert stats_a.max_depth == stats_b.max_depth
    assert stats_a.cache_hits == stats_b.cache_hits
    assert stats_a.cache_misses == stats_b.cache_misses
    # not just the same counts — the same states in the same order
    assert stats_a.examined_states == stats_b.examined_states


@pytest.mark.parametrize("heuristic", HEURISTIC_NAMES)
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_nullsink_trace_is_bit_identical(algorithm, heuristic):
    size = 3 if heuristic in BLIND else 5
    untraced = run_search(algorithm, heuristic, size, tracer=None)
    nullsunk = run_search(
        algorithm, heuristic, size, tracer=Tracer(NullSink())
    )
    assert_identical(untraced, nullsunk)


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_live_trace_is_bit_identical(algorithm):
    """Even a *recording* tracer must not perturb the search itself."""
    untraced = run_search(algorithm, "h1", 5, tracer=None)
    sink = MemorySink()
    traced = run_search(algorithm, "h1", 5, tracer=Tracer(sink))
    assert_identical(untraced, traced)
    assert len(sink) > 0


def test_event_stream_covers_the_run():
    """The recorded stream carries every examination, in order."""
    sink = MemorySink()
    status, _, stats = run_search("ida", "h0", 3, tracer=Tracer(sink))
    assert status == "found"
    expands = [e for e in sink.events if e["event"] == "expand"]
    assert len(expands) == stats.states_examined
    # expand events carry the running examination count, 1..N in order
    assert [e["n"] for e in expands] == list(
        range(1, stats.states_examined + 1)
    )
