"""Unit tests for MappingExpression (repro.fira.expression)."""

from __future__ import annotations

import pytest

from repro.fira import (
    DropAttribute,
    MappingExpression,
    Merge,
    Promote,
    RenameAttribute,
    RenameRelation,
    equivalent_on,
    expression_of,
)
from repro.workloads import b_to_a_expression, flights_a, flights_b


class TestPipeline:
    def test_example2_reproduces_flights_a(self, db_a, db_b):
        out = b_to_a_expression().apply(db_b)
        assert out == db_a

    def test_trace_shows_intermediates(self, db_b):
        states = b_to_a_expression().trace(db_b)
        assert len(states) == 7  # input + 6 steps
        assert states[0] == db_b
        assert states[1].relation("Prices").has_attribute("ATL29")

    def test_empty_expression_is_identity(self, db_b):
        assert MappingExpression().apply(db_b) == db_b
        assert MappingExpression().is_identity

    def test_then_appends(self):
        expr = MappingExpression().then(RenameRelation("A", "B"))
        assert len(expr) == 1
        assert expr[0] == RenameRelation("A", "B")

    def test_compose(self):
        left = expression_of(RenameRelation("A", "B"))
        right = expression_of(RenameRelation("B", "C"))
        combined = left.compose(right)
        assert [op.old for op in combined] == ["A", "B"]  # type: ignore[attr-defined]

    def test_prefix(self):
        expr = b_to_a_expression()
        assert len(expr.prefix(2)) == 2
        assert expr.prefix(0).is_identity

    def test_iteration_and_index(self):
        expr = b_to_a_expression()
        assert list(expr)[0] == expr[0]
        assert isinstance(expr[0], Promote)

    def test_equality_and_hash(self):
        assert b_to_a_expression() == b_to_a_expression()
        assert hash(b_to_a_expression()) == hash(b_to_a_expression())
        assert b_to_a_expression() != MappingExpression()

    def test_immutable_then(self):
        expr = MappingExpression()
        expr.then(RenameRelation("A", "B"))
        assert expr.is_identity


class TestRendering:
    def test_str_one_op_per_line(self):
        text = str(b_to_a_expression())
        lines = text.splitlines()
        assert len(lines) == 6
        assert lines[0].startswith("promote[Prices]")

    def test_unicode_numbered_steps(self):
        text = b_to_a_expression().to_unicode()
        assert text.splitlines()[0].startswith("R1 := ↑")
        assert "R6 := ρrel" in text

    def test_repr(self):
        assert "6 ops" in repr(b_to_a_expression())


class TestEquivalence:
    def test_reordered_drops_equivalent(self, db_b):
        base = [
            Promote("Prices", "Route", "Cost"),
            DropAttribute("Prices", "Route"),
            DropAttribute("Prices", "Cost"),
            Merge("Prices", "Carrier"),
        ]
        swapped = [base[0], base[2], base[1], base[3]]
        assert equivalent_on(
            MappingExpression(base), MappingExpression(swapped), [db_b]
        )

    def test_inequivalent_detected(self, db_b):
        left = expression_of(RenameAttribute("Prices", "Cost", "X"))
        right = expression_of(RenameAttribute("Prices", "Cost", "Y"))
        assert not equivalent_on(left, right, [db_b])
