"""Tests for schema-matching extraction (repro.fira.matching)."""

from __future__ import annotations

from repro.fira import (
    ApplyFunction,
    AttributeMatch,
    RelationMatch,
    RenameAttribute,
    RenameRelation,
    expression_of,
    extract_matching,
)
from repro.workloads import b_to_a_expression, b_to_c_expression


class TestExtractMatching:
    def test_example2_matching(self):
        matching = extract_matching(b_to_a_expression())
        assert RelationMatch("Prices", "Flights") in matching.relation_matches
        assert (
            AttributeMatch(("AgentFee",), "Fee", "Prices")
            in matching.attribute_matches
        )
        assert matching.is_pure_matching

    def test_complex_matching_reported_with_function(self):
        matching = extract_matching(b_to_c_expression())
        complex_matches = [
            m for m in matching.attribute_matches if m.via == "add"
        ]
        assert complex_matches == [
            AttributeMatch(
                ("Cost", "AgentFee"), "TotalCost", "Prices", via="add"
            )
        ]
        assert not matching.is_pure_matching

    def test_transitive_renames_composed(self):
        expr = expression_of(
            RenameAttribute("R", "A", "Temp"),
            RenameAttribute("R", "Temp", "B"),
        )
        matching = extract_matching(expr)
        assert matching.attribute_matches == (
            AttributeMatch(("A",), "B", "R"),
        )

    def test_rename_back_is_identity(self):
        expr = expression_of(
            RenameAttribute("R", "A", "B"),
            RenameAttribute("R", "B", "A"),
        )
        assert extract_matching(expr).attribute_matches == ()

    def test_attribute_matches_survive_relation_rename(self):
        expr = expression_of(
            RenameAttribute("Old", "X", "Y"),
            RenameRelation("Old", "New"),
        )
        matching = extract_matching(expr)
        assert matching.attribute_matches == (
            AttributeMatch(("X",), "Y", "Old"),
        )
        assert matching.relation_matches == (RelationMatch("Old", "New"),)

    def test_lambda_inputs_traced_through_renames(self):
        expr = expression_of(
            RenameAttribute("R", "Amount", "Cost"),
            ApplyFunction("R", "add", ("Cost", "Fee"), "Total"),
        )
        matching = extract_matching(expr)
        complex_match = matching.attribute_matches[-1]
        assert complex_match.source_attributes == ("Amount", "Fee")
        assert complex_match.via == "add"

    def test_empty_expression(self):
        matching = extract_matching(expression_of())
        assert matching.attribute_matches == ()
        assert matching.relation_matches == ()

    def test_str_rendering(self):
        text = str(extract_matching(b_to_c_expression()))
        assert "--[add]->" in text
        assert "Cost <-> BaseCost" in text
