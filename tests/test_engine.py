"""Unit tests for the TUPELO facade (discover_mapping / Tupelo)."""

from __future__ import annotations

import pytest

from repro import (
    ALGORITHM_NAMES,
    Database,
    Relation,
    SearchConfig,
    Tupelo,
    discover_mapping,
)
from repro.errors import UnknownAlgorithmError, UnknownHeuristicError
from repro.workloads import (
    flights_registry,
    matching_pair,
    total_cost_correspondence,
)


class TestDiscoverMapping:
    def test_found_result(self, db_a, db_b):
        result = discover_mapping(db_b, db_a, heuristic="euclid_norm")
        assert result.found
        assert result.status == "found"
        assert result.expression.apply(db_b).contains(db_a)
        assert result.states_examined > 0
        assert result.algorithm == "rbfs"
        assert result.heuristic == "euclid_norm"

    def test_identity_mapping(self, db_a):
        result = discover_mapping(db_a, db_a)
        assert result.found
        assert result.expression.is_identity
        assert result.states_examined == 1

    def test_not_found(self):
        source = Database.single(Relation("R", ("A",), [("x",)]))
        target = Database.single(Relation("R", ("A",), [("unreachable",)]))
        result = discover_mapping(source, target)
        assert not result.found
        assert result.status == "not_found"
        assert result.expression is None

    def test_budget_exceeded(self):
        pair = matching_pair(8)
        result = discover_mapping(
            pair.source,
            pair.target,
            algorithm="ida",
            heuristic="h0",
            config=SearchConfig(max_states=10),
        )
        assert result.status == "budget_exceeded"
        assert result.states_examined == 11

    def test_unknown_algorithm(self, db_a):
        with pytest.raises(UnknownAlgorithmError):
            discover_mapping(db_a, db_a, algorithm="dfs")

    def test_unknown_heuristic(self, db_a):
        with pytest.raises(UnknownHeuristicError):
            discover_mapping(db_a, db_a, heuristic="nope")

    def test_algorithm_case_insensitive(self, db_a):
        assert discover_mapping(db_a, db_a, algorithm="RBFS").found

    def test_lambda_discovery(self, db_b, db_c):
        result = discover_mapping(
            db_b,
            db_c,
            correspondences=[total_cost_correspondence()],
            registry=flights_registry(),
        )
        assert result.found
        mapped = result.expression.apply(db_b, flights_registry())
        assert mapped.contains(db_c)

    def test_simplify_produces_minimal_expression(self, db_b, db_c):
        result = discover_mapping(
            db_b, db_c, correspondences=[total_cost_correspondence()]
        )
        # minimal pipeline: lambda + rename + partition + rename = 4 ops
        assert len(result.expression) <= 5

    def test_simplify_disabled_keeps_raw_path(self, db_b, db_c):
        raw = discover_mapping(
            db_b,
            db_c,
            correspondences=[total_cost_correspondence()],
            simplify=False,
        )
        simplified = discover_mapping(
            db_b, db_c, correspondences=[total_cost_correspondence()]
        )
        assert len(simplified.expression) <= len(raw.expression)

    def test_stats_clock_stopped(self, db_a):
        result = discover_mapping(db_a, db_a)
        assert result.stats.elapsed_seconds >= 0

    def test_repr(self, db_a):
        assert "found" in repr(discover_mapping(db_a, db_a))


class TestTupeloFacade:
    def test_reusable(self, db_a, db_b):
        engine = Tupelo(algorithm="rbfs", heuristic="cosine")
        assert engine.discover(db_b, db_a).found
        assert engine.discover(db_a, db_a).found

    def test_invalid_algorithm_at_construction(self):
        with pytest.raises(UnknownAlgorithmError):
            Tupelo(algorithm="bogus")

    def test_registry_and_correspondences(self, db_b, db_c):
        engine = Tupelo(registry=flights_registry())
        result = engine.discover(
            db_b, db_c, correspondences=[total_cost_correspondence()]
        )
        assert result.found

    def test_all_registered_algorithms_usable(self, db_a):
        for name in ALGORITHM_NAMES:
            assert Tupelo(algorithm=name).discover(db_a, db_a).found

    def test_repr(self):
        assert "rbfs" in repr(Tupelo())
