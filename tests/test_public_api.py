"""Tests for the public package surface (repro.__init__)."""

from __future__ import annotations

import repro


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"

    def test_quickstart_from_module_docstring(self):
        """The README/docstring quickstart must actually work."""
        from repro import Database, Tupelo

        source = Database.from_dict(
            {
                "Prices": [
                    {
                        "Carrier": "AirEast",
                        "Route": "ATL29",
                        "Cost": 100,
                        "AgentFee": 15,
                    }
                ]
            }
        )
        target = Database.from_dict(
            {"Flights": [{"Carrier": "AirEast", "Fee": 15, "ATL29": 100}]}
        )
        result = Tupelo(algorithm="rbfs", heuristic="h1").discover(source, target)
        assert result.found
        assert result.stats.states_examined > 0

    def test_error_hierarchy(self):
        from repro import (
            MappingNotFound,
            SearchBudgetExceeded,
            SearchError,
            TupeloError,
        )

        assert issubclass(MappingNotFound, SearchError)
        assert issubclass(SearchBudgetExceeded, SearchError)
        assert issubclass(SearchError, TupeloError)

    def test_algorithm_and_heuristic_catalogues(self):
        assert set(repro.ALGORITHM_NAMES) >= {"ida", "rbfs"}
        assert len(repro.HEURISTIC_NAMES) == 8

    def test_operator_classes_exported(self):
        operators = [
            repro.RenameAttribute,
            repro.RenameRelation,
            repro.DropAttribute,
            repro.Promote,
            repro.Demote,
            repro.Dereference,
            repro.Partition,
            repro.CartesianProduct,
            repro.Merge,
            repro.ApplyFunction,
            repro.Select,
        ]
        assert all(issubclass(op, repro.Operator) for op in operators)
