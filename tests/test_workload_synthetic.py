"""Tests for the Experiment-1 synthetic matching workload."""

from __future__ import annotations

import pytest

from repro import discover_mapping
from repro.workloads import (
    PAPER_SIZES,
    matching_pair,
    matching_pairs,
    shared_value,
    source_attribute,
    target_attribute,
)


class TestGenerator:
    def test_paper_sizes(self):
        assert PAPER_SIZES == tuple(range(2, 33))

    def test_shapes(self):
        pair = matching_pair(5)
        assert pair.size == 5
        rel = pair.source.relation("R")
        assert rel.arity == 5
        assert rel.cardinality == 1

    def test_attribute_names(self):
        pair = matching_pair(3)
        assert pair.source.attribute_names() == {"A01", "A02", "A03"}
        assert pair.target.attribute_names() == {"B01", "B02", "B03"}

    def test_shared_rosetta_tuple(self):
        pair = matching_pair(4)
        assert pair.source.value_set() == pair.target.value_set()

    def test_zero_padding_keeps_lexicographic_order(self):
        assert source_attribute(2) == "A02"
        assert source_attribute(10) == "A10"
        assert sorted([source_attribute(i) for i in range(1, 13)]) == [
            source_attribute(i) for i in range(1, 13)
        ]

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            matching_pair(0)

    def test_matching_pairs_series(self):
        pairs = matching_pairs((2, 3))
        assert [p.size for p in pairs] == [2, 3]

    def test_deterministic(self):
        assert matching_pair(7).source == matching_pair(7).source

    def test_values_shared_by_index(self):
        assert shared_value(3) == "a03"
        pair = matching_pair(3)
        row = next(iter(pair.source.relation("R").rows))
        assert set(row) == {"a01", "a02", "a03"}

    def test_custom_relation_name(self):
        pair = matching_pair(2, relation_name="Q")
        assert pair.source.relation_names == ("Q",)


class TestReferenceExpression:
    def test_solves_the_pair(self):
        pair = matching_pair(6)
        out = pair.reference_expression().apply(pair.source)
        assert out.contains(pair.target)

    def test_n_renames(self):
        assert len(matching_pair(9).reference_expression()) == 9


class TestDiscovery:
    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_h1_discovers_correct_matching(self, n):
        pair = matching_pair(n)
        result = discover_mapping(pair.source, pair.target, heuristic="h1")
        assert result.found
        out = result.expression.apply(pair.source)
        assert out.contains(pair.target)
        # the matching must be Ai <-> Bi, not just any bijection
        rel = out.relation("R")
        row = dict(zip(rel.attributes, next(iter(rel.rows))))
        for i in range(1, n + 1):
            assert row[target_attribute(i)] == shared_value(i)

    def test_large_instance_fast_with_h1(self):
        pair = matching_pair(32)
        result = discover_mapping(
            pair.source, pair.target, algorithm="ida", heuristic="h1"
        )
        assert result.found
        assert result.states_examined <= 200
