"""Unit tests for the Levenshtein string-view heuristic (§3)."""

from __future__ import annotations

import pytest

from repro.heuristics import LevenshteinHeuristic, levenshtein, round_half_up
from repro.relational import Database, Relation


class TestLevenshteinDistance:
    def test_identity(self):
        assert levenshtein("abc", "abc") == 0

    def test_empty_cases(self):
        assert levenshtein("", "") == 0
        assert levenshtein("abc", "") == 3
        assert levenshtein("", "abcd") == 4

    def test_substitution(self):
        assert levenshtein("kitten", "sitten") == 1

    def test_classic_kitten_sitting(self):
        assert levenshtein("kitten", "sitting") == 3

    def test_symmetric(self):
        assert levenshtein("flaw", "lawn") == levenshtein("lawn", "flaw") == 2

    def test_insert_delete(self):
        assert levenshtein("abc", "abxc") == 1
        assert levenshtein("abxc", "abc") == 1

    def test_triangle_inequality_sample(self):
        a, b, c = "route", "router", "outer"
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)


class TestRounding:
    def test_half_up(self):
        assert round_half_up(0.5) == 1
        assert round_half_up(1.5) == 2
        assert round_half_up(1.4) == 1

    def test_negative_half_away(self):
        assert round_half_up(-0.5) == -1
        assert round_half_up(-1.4) == -1


class TestLevenshteinHeuristic:
    def test_zero_on_target(self, db_a):
        assert LevenshteinHeuristic(db_a)(db_a) == 0

    def test_bounded_by_k(self, db_a, db_b):
        h = LevenshteinHeuristic(db_a, k=11)
        assert 0 <= h(db_b) <= 11

    def test_scaling_constant(self, db_a, db_b):
        small = LevenshteinHeuristic(db_a, k=5)(db_b)
        large = LevenshteinHeuristic(db_a, k=20)(db_b)
        assert large >= small

    def test_k_below_one_rejected(self, db_a):
        with pytest.raises(ValueError):
            LevenshteinHeuristic(db_a, k=0.5)

    def test_default_k_is_paper_ida_value(self, db_a):
        assert LevenshteinHeuristic(db_a).k == 11

    def test_monotone_under_growing_difference(self):
        target = Database.single(Relation("R", ("A",), [("aaaa",)]))
        near = Database.single(Relation("R", ("A",), [("aaab",)]))
        far = Database.single(Relation("R", ("A",), [("zzzz",)]))
        h = LevenshteinHeuristic(target, k=10)
        assert h(near) <= h(far)

    def test_database_order_irrelevant(self):
        """The string view sorts TNF rows, so tuple order cannot matter."""
        target = Database.single(Relation("R", ("A",), [("x",), ("y",)]))
        state1 = Database.single(Relation("R", ("A",), [("y",), ("x",)]))
        assert LevenshteinHeuristic(target)(state1) == 0
