"""Unit and integration tests for the mini-SQL engine."""

from __future__ import annotations

import pytest

from repro.fira import compile_expression
from repro.minisql import MiniSqlEngine, SqlExecutionError, run_script
from repro.relational import (
    NULL,
    Database,
    Relation,
    relation_to_sql,
    tnf_construction_sql,
    tnf_decode,
)
from repro.workloads import (
    b_to_a_expression,
    b_to_c_expression,
    flights_a,
    flights_b,
    flights_c,
    flights_registry,
)


def engine_with(db):
    return MiniSqlEngine(db)


class TestDdlDml:
    def test_create_insert_select(self):
        engine = MiniSqlEngine()
        engine.execute(
            'CREATE TABLE "T" ("A" TEXT, "B" INTEGER);'
            "INSERT INTO \"T\" (\"A\", \"B\") VALUES ('x', 1);"
            "INSERT INTO \"T\" (\"A\", \"B\") VALUES ('y', 2);"
        )
        assert engine.table("T").rows == {("x", 1), ("y", 2)}

    def test_recreate_from_generated_sql(self, db_b):
        engine = MiniSqlEngine()
        engine.execute(relation_to_sql(db_b.relation("Prices")))
        assert engine.database == db_b

    def test_insert_missing_column_null(self):
        engine = MiniSqlEngine()
        engine.execute(
            'CREATE TABLE "T" ("A" TEXT, "B" INTEGER);'
            "INSERT INTO \"T\" (\"A\") VALUES ('x');"
        )
        assert engine.table("T").rows == {("x", NULL)}

    def test_drop_table(self, db_b):
        engine = engine_with(db_b)
        engine.execute('DROP TABLE "Prices";')
        assert "Prices" not in engine

    def test_rename_table_and_column(self, db_b):
        engine = engine_with(db_b)
        engine.execute(
            'ALTER TABLE "Prices" RENAME COLUMN "AgentFee" TO "Fee";'
            'ALTER TABLE "Prices" RENAME TO "Flights";'
        )
        assert engine.table("Flights").has_attribute("Fee")

    def test_drop_column(self, db_b):
        engine = engine_with(db_b)
        engine.execute('ALTER TABLE "Prices" DROP COLUMN "Cost";')
        assert not engine.table("Prices").has_attribute("Cost")

    def test_delete_where(self, db_b):
        engine = engine_with(db_b)
        engine.execute(
            "DELETE FROM \"Prices\" WHERE \"Carrier\" <> 'AirEast';"
        )
        assert engine.table("Prices").column_values("Carrier") == {"AirEast"}

    def test_delete_all(self, db_b):
        engine = engine_with(db_b)
        engine.execute('DELETE FROM "Prices";')
        assert engine.table("Prices").cardinality == 0

    def test_errors(self, db_b):
        engine = engine_with(db_b)
        with pytest.raises(SqlExecutionError):
            engine.execute('DROP TABLE "Nope";')
        with pytest.raises(SqlExecutionError):
            engine.execute('CREATE TABLE "Prices" ("A" TEXT);')
        with pytest.raises(SqlExecutionError):
            engine.execute("INSERT INTO \"Prices\" (\"Nope\") VALUES (1);")


class TestSelect:
    def test_projection_and_where(self, db_b):
        engine = engine_with(db_b)
        engine.execute(
            'CREATE TABLE "T" AS SELECT "Carrier", "Cost" FROM "Prices" '
            "WHERE \"Route\" = 'ATL29';"
        )
        assert engine.table("T").rows == {("AirEast", 100), ("JetWest", 200)}

    def test_case_when(self, db_b):
        engine = engine_with(db_b)
        engine.execute(
            'CREATE TABLE "T" AS SELECT *, '
            "CASE WHEN \"Route\" = 'ATL29' THEN \"Cost\" END AS \"ATL29\" "
            'FROM "Prices";'
        )
        rel = engine.table("T")
        values = rel.column_values("ATL29", include_null=True)
        assert values == {100, 200, NULL}

    def test_cross_join_values(self, db_b):
        engine = engine_with(db_b)
        engine.execute(
            'CREATE TABLE "T" AS SELECT "Prices".*, __meta.* FROM "Prices" '
            "CROSS JOIN (VALUES ('Prices', 'Route'), ('Prices', 'Cost')) "
            'AS __meta("$REL", "$ATT");'
        )
        rel = engine.table("T")
        assert rel.cardinality == 8
        assert rel.column_values("$ATT") == {"Route", "Cost"}

    def test_group_by_max_coalesces(self):
        db = Database.single(
            Relation(
                "R",
                ("K", "X", "Y"),
                [("a", 1, NULL), ("a", NULL, 2), ("b", 3, NULL)],
            )
        )
        engine = engine_with(db)
        engine.execute(
            'CREATE TABLE "T" AS SELECT "K", MAX("X") AS "X", MAX("Y") AS "Y" '
            'FROM "R" GROUP BY "K";'
        )
        assert engine.table("T").rows == {("a", 1, 2), ("b", 3, NULL)}

    def test_count_aggregate(self, db_b):
        engine = engine_with(db_b)
        engine.execute(
            'CREATE TABLE "T" AS SELECT "Carrier", COUNT(*) AS "N" '
            'FROM "Prices" GROUP BY "Carrier";'
        )
        assert engine.table("T").rows == {("AirEast", 2), ("JetWest", 2)}

    def test_udf_call(self, db_b):
        engine = MiniSqlEngine(db_b, flights_registry())
        engine.execute(
            'CREATE TABLE "T" AS SELECT *, add("Cost", "AgentFee") AS "Total" '
            'FROM "Prices";'
        )
        assert 115 in engine.table("T").column_values("Total")

    def test_aliases(self, db_c):
        engine = engine_with(db_c)
        engine.execute(
            'CREATE TABLE "T" AS SELECT l."Route" AS "L", r."Route" AS "R" '
            'FROM "AirEast" l CROSS JOIN "JetWest" r;'
        )
        assert engine.table("T").cardinality == 4

    def test_ambiguous_column_rejected(self, db_c):
        engine = engine_with(db_c)
        with pytest.raises(SqlExecutionError):
            engine.execute(
                'CREATE TABLE "T" AS SELECT "Route" FROM "AirEast" l '
                'CROSS JOIN "JetWest" r;'
            )

    def test_unknown_column_rejected(self, db_b):
        engine = engine_with(db_b)
        with pytest.raises(SqlExecutionError):
            engine.execute('CREATE TABLE "T" AS SELECT "Nope" FROM "Prices";')

    def test_union_all(self, db_c):
        engine = engine_with(db_c)
        engine.execute(
            'CREATE TABLE "T" AS SELECT "Route" FROM "AirEast" '
            'UNION ALL SELECT "Route" FROM "JetWest";'
        )
        assert engine.table("T").rows == {("ATL29",), ("ORD17",)}


class TestCompiledPipelines:
    """The headline property: compile_expression + MiniSqlEngine replays the
    algebra exactly."""

    def test_example2_via_sql(self, db_a, db_b):
        script = compile_expression(b_to_a_expression(), db_b)
        out = run_script(script, db_b)
        assert out.contains(db_a)

    def test_b_to_c_via_sql_with_udf(self, db_b, db_c):
        script = compile_expression(
            b_to_c_expression(), db_b, flights_registry()
        )
        out = run_script(script, db_b, flights_registry())
        assert out.contains(db_c)

    def test_discovered_expression_via_sql(self, db_a, db_b):
        from repro import discover_mapping

        result = discover_mapping(db_b, db_a, heuristic="cosine")
        script = compile_expression(result.expression, db_b)
        assert run_script(script, db_b).contains(db_a)

    def test_tnf_construction_sql(self, db_c):
        engine = engine_with(db_c)
        engine.execute(tnf_construction_sql(db_c.relation("AirEast")))
        tnf = engine.table("TNF")
        assert tnf.cardinality == 6  # 2 tuples x 3 attributes
        decoded = tnf_decode(tnf)
        # values pass through CAST AS TEXT, so compare textually
        air_east = decoded.relation("AirEast")
        assert air_east.column_values("Route") == {"ATL29", "ORD17"}
        assert air_east.column_values("TotalCost") == {"115", "125"}

    def test_every_operator_compiles_and_runs(self, db_b):
        """Each operator family's compilation executes and matches apply()."""
        from repro.fira import (
            ApplyFunction,
            CartesianProduct,
            Demote,
            Dereference,
            DropAttribute,
            Merge,
            Partition,
            Promote,
            RenameAttribute,
            RenameRelation,
            Select,
            compile_operator,
        )

        operators = [
            RenameAttribute("Prices", "AgentFee", "Fee"),
            RenameRelation("Prices", "Quotes"),
            DropAttribute("Prices", "Cost"),
            Promote("Prices", "Route", "Cost"),
            Demote("Prices"),
            Dereference("Prices", "Route", "V"),
            Partition("Prices", "Carrier"),
            ApplyFunction("Prices", "add", ("Cost", "AgentFee"), "Total"),
            Select("Prices", "Carrier", "AirEast"),
        ]
        registry = flights_registry()
        for op in operators:
            expected = op.apply(db_b, registry)
            script = "\n".join(compile_operator(op, db_b))
            actual = run_script(script, db_b, registry)
            assert actual == expected, f"SQL mismatch for {op}"

    def test_merge_compiles_on_its_intended_input(self, db_b):
        """The GROUP BY/MAX rendering of µ assumes at most one non-NULL
        value per column per group — exactly the post-promote shape
        (documented caveat in the compiler).  On that shape SQL and
        algebra agree."""
        from repro.fira import DropAttribute, Merge, Promote, compile_operator

        prepared = db_b
        for op in (
            Promote("Prices", "Route", "Cost"),
            DropAttribute("Prices", "Route"),
            DropAttribute("Prices", "Cost"),
        ):
            prepared = op.apply(prepared)
        merge = Merge("Prices", "Carrier")
        expected = merge.apply(prepared)
        script = "\n".join(compile_operator(merge, prepared))
        assert run_script(script, prepared) == expected

    def test_product_compiles_and_runs(self, db_c):
        from repro.fira import CartesianProduct, compile_operator

        op = CartesianProduct("AirEast", "JetWest")
        expected = op.apply(db_c)
        script = "\n".join(compile_operator(op, db_c))
        assert run_script(script, db_c) == expected
