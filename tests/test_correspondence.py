"""Unit tests for correspondence declarations (repro.semantics.correspondence)."""

from __future__ import annotations

import pytest

from repro.errors import CorrespondenceError
from repro.relational import Relation
from repro.relational.tnf import TNF_ATTRIBUTES
from repro.semantics import (
    Correspondence,
    builtin_registry,
    correspondences_from_tnf,
    correspondences_to_tnf_rows,
    decode_correspondence,
    encode_correspondence,
    is_correspondence_value,
    validate_correspondences,
)


def corr(**overrides):
    base = dict(
        function="add", inputs=("Cost", "AgentFee"), output="TotalCost"
    )
    base.update(overrides)
    return Correspondence(**base)


class TestCorrespondence:
    def test_arity(self):
        assert corr().arity == 2

    def test_inputs_normalized(self):
        c = Correspondence("f", ["A"], "B")  # type: ignore[arg-type]
        assert c.inputs == ("A",)

    def test_str_form(self):
        assert str(corr()) == "TotalCost <- add(Cost, AgentFee)"

    def test_str_with_relation(self):
        c = corr(relation="Prices")
        assert str(c) == "Prices.TotalCost <- add(Cost, AgentFee)"

    def test_empty_function_rejected(self):
        with pytest.raises(CorrespondenceError):
            corr(function="")

    def test_empty_inputs_rejected(self):
        with pytest.raises(CorrespondenceError):
            corr(inputs=())

    def test_empty_input_name_rejected(self):
        with pytest.raises(CorrespondenceError):
            corr(inputs=("A", ""))

    def test_empty_output_rejected(self):
        with pytest.raises(CorrespondenceError):
            corr(output="")

    def test_check_signature_ok(self):
        fn = corr().check_signature(builtin_registry())
        assert fn.name == "add"

    def test_check_signature_arity_mismatch(self):
        bad = corr(inputs=("Cost",))
        with pytest.raises(CorrespondenceError):
            bad.check_signature(builtin_registry())

    def test_validate_many(self):
        validate_correspondences([corr()], builtin_registry())
        with pytest.raises(CorrespondenceError):
            validate_correspondences(
                [corr(inputs=("A",))], builtin_registry()
            )

    def test_hashable_and_ordered(self):
        assert len({corr(), corr()}) == 1
        assert sorted([corr(output="Z"), corr(output="A")])


class TestEncoding:
    def test_roundtrip(self):
        assert decode_correspondence(encode_correspondence(corr())) == corr()

    def test_roundtrip_with_relation(self):
        c = corr(relation="Prices")
        assert decode_correspondence(encode_correspondence(c)) == c

    def test_roundtrip_unary(self):
        c = Correspondence("upper", ("Name",), "NameUpper")
        assert decode_correspondence(encode_correspondence(c)) == c

    def test_format(self):
        assert encode_correspondence(corr()) == (
            "λ:TotalCost<-add(Cost,AgentFee)"
        )

    def test_is_correspondence_value(self):
        assert is_correspondence_value(encode_correspondence(corr()))
        assert not is_correspondence_value("plain text")
        assert not is_correspondence_value(42)

    def test_decode_garbage_rejected(self):
        with pytest.raises(CorrespondenceError):
            decode_correspondence("not a lambda")


class TestTnfEmbedding:
    def test_rows_shape(self):
        rows = correspondences_to_tnf_rows([corr()])
        assert len(rows) == 1
        tid, rel, att, value = rows[0]
        assert tid == "c1"
        assert value.startswith("λ:")

    def test_embed_and_extract(self, db_b):
        from repro.relational import tnf_encode

        base = tnf_encode(db_b)
        extra = correspondences_to_tnf_rows([corr()])
        combined = Relation(
            "TNF", TNF_ATTRIBUTES, list(base.rows) + extra
        )
        found = correspondences_from_tnf(combined)
        assert found == (corr(),)

    def test_duplicates_deduplicated(self):
        rows = correspondences_to_tnf_rows([corr(), corr()])
        assert len(rows) == 1

    def test_extract_requires_tnf_schema(self):
        bad = Relation("X", ("A", "B"), [(1, 2)])
        with pytest.raises(CorrespondenceError):
            correspondences_from_tnf(bad)
