"""Unit tests for the set-based heuristics h0-h3 (§3)."""

from __future__ import annotations

import pytest

from repro.heuristics import (
    BlindHeuristic,
    CrossLevelHeuristic,
    MaxSetHeuristic,
    MissingTokensHeuristic,
)
from repro.relational import Database, Relation


def db(name, attrs, rows):
    return Database.single(Relation(name, attrs, rows))


class TestBlind:
    def test_always_zero(self, db_a, db_b):
        h = BlindHeuristic(db_a)
        assert h(db_a) == 0
        assert h(db_b) == 0


class TestH1:
    def test_zero_on_target(self, db_a):
        assert MissingTokensHeuristic(db_a)(db_a) == 0

    def test_counts_missing_per_level(self):
        target = db("T", ("X", "Y"), [("u", "v")])
        state = db("S", ("X", "Z"), [("u", "w")])
        # missing: relation T, attribute Y, value v
        h = MissingTokensHeuristic(target)
        assert h(state) == 3

    def test_extra_state_tokens_free(self):
        """h1 only counts target tokens missing from the state."""
        target = db("T", ("X",), [("u",)])
        state = Database(
            [
                Relation("T", ("X", "Y", "Z"), [("u", "v", "w")]),
                Relation("Other", ("Q",), [(1,)]),
            ]
        )
        assert MissingTokensHeuristic(target)(state) == 0

    def test_matching_pair_equals_schema_size(self):
        """On Experiment 1 pairs, h1(source) = n missing attribute names."""
        from repro.workloads import matching_pair

        for n in (2, 5, 9):
            pair = matching_pair(n)
            assert MissingTokensHeuristic(pair.target)(pair.source) == n

    def test_value_level_by_text(self):
        target = db("T", ("X",), [(100,)])
        state = db("T", ("X",), [(100.0,)])
        # 100 and 100.0 render to the same text token
        assert MissingTokensHeuristic(target)(state) == 0


class TestH2:
    def test_zero_when_no_cross_level_overlap(self, db_a):
        assert CrossLevelHeuristic(db_a)(db_a) == 0

    def test_counts_attribute_needing_promotion(self):
        """A target attribute name appearing as a state data value."""
        target = db("T", ("ATL29",), [(100,)])
        state = db("T", ("Route",), [("ATL29",)])
        h = CrossLevelHeuristic(target)
        # ATL29: target-ATT token found among state VALUEs
        assert h(state) == 1

    def test_counts_relation_name_in_values(self):
        target = db("AirEast", ("Route",), [("ATL29",)])
        state = db("Prices", ("Carrier",), [("AirEast",)])
        # AirEast: target-REL token found among state VALUEs
        assert CrossLevelHeuristic(target)(state) == 1

    def test_flights_b_to_a_detects_promotions(self, db_a, db_b):
        """Routes are values in B but attributes in A: two promotions."""
        h = CrossLevelHeuristic(db_a)
        assert h(db_b) == 2  # ATL29, ORD17


class TestH3:
    def test_is_pointwise_max(self, db_a, db_b):
        h1 = MissingTokensHeuristic(db_a)
        h2 = CrossLevelHeuristic(db_a)
        h3 = MaxSetHeuristic(db_a)
        for state in (db_a, db_b):
            assert h3(state) == max(h1(state), h2(state))

    def test_zero_on_target(self, db_c):
        assert MaxSetHeuristic(db_c)(db_c) == 0


class TestCaching:
    def test_estimates_memoised(self, db_a, db_b):
        from repro.search import SearchStats

        h = MissingTokensHeuristic(db_a)
        stats = SearchStats()
        h.bind_stats(stats)
        first = h(db_b)
        second = h(db_b)
        assert first == second
        assert stats.heuristic_cache_misses == 1  # one computed
        assert stats.heuristic_cache_hits == 1  # one served from cache

    def test_cache_capacity_bound(self, db_a, db_b, db_c):
        from repro.search import SearchStats

        h = MissingTokensHeuristic(db_a)
        h.cache_capacity = 1
        stats = SearchStats()
        h.bind_stats(stats)
        h(db_b)
        h(db_c)  # evicts db_b under capacity 1
        h(db_b)  # recomputed, not a hit
        assert stats.heuristic_cache_evictions >= 1
        assert stats.heuristic_cache_hits == 0
        assert len(h._cache) <= 1

    def test_negative_estimate_rejected(self, db_a):
        class Broken(MissingTokensHeuristic):
            def estimate(self, state):
                return -1

        with pytest.raises(ValueError):
            Broken(db_a)(db_a)
