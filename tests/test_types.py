"""Unit tests for repro.relational.types."""

from __future__ import annotations

import pickle

import pytest

from repro.relational.types import (
    NULL,
    NullType,
    check_value,
    is_null,
    value_sort_key,
    value_to_text,
)


class TestNull:
    def test_singleton(self):
        assert NullType() is NULL

    def test_repr(self):
        assert repr(NULL) == "NULL"

    def test_falsy(self):
        assert not NULL

    def test_equality_only_with_null(self):
        assert NULL == NullType()
        assert NULL != 0
        assert NULL != ""
        assert NULL != "NULL"

    def test_hash_stable(self):
        assert hash(NULL) == hash(NullType())

    def test_pickle_preserves_singleton(self):
        assert pickle.loads(pickle.dumps(NULL)) is NULL

    def test_is_null(self):
        assert is_null(NULL)
        assert not is_null(None)
        assert not is_null(0)
        assert not is_null("")


class TestCheckValue:
    def test_passthrough_atoms(self):
        for value in ("a", 1, 1.5, True, NULL):
            assert check_value(value) is value or check_value(value) == value

    def test_none_coerces_to_null(self):
        assert check_value(None) is NULL

    def test_rejects_containers(self):
        with pytest.raises(TypeError):
            check_value([1, 2])
        with pytest.raises(TypeError):
            check_value({"a": 1})
        with pytest.raises(TypeError):
            check_value((1,))

    def test_rejects_object(self):
        with pytest.raises(TypeError):
            check_value(object())


class TestValueSortKey:
    def test_null_sorts_first(self):
        values = ["z", 3, NULL, "a"]
        ordered = sorted(values, key=value_sort_key)
        assert ordered[0] is NULL

    def test_total_order_deterministic(self):
        values = [1, "1", 1.0, True, NULL, "b"]
        first = sorted(values, key=value_sort_key)
        second = sorted(list(reversed(values)), key=value_sort_key)
        assert [repr(v) for v in first] == [repr(v) for v in second]

    def test_distinguishes_types(self):
        assert value_sort_key(1) != value_sort_key("1")


class TestValueToText:
    def test_string_identity(self):
        assert value_to_text("ATL29") == "ATL29"

    def test_null_is_empty(self):
        assert value_to_text(NULL) == ""

    def test_int(self):
        assert value_to_text(100) == "100"

    def test_integral_float_collapses(self):
        assert value_to_text(100.0) == "100"

    def test_fractional_float(self):
        assert value_to_text(12.5) == "12.5"

    def test_bool(self):
        assert value_to_text(True) == "true"
        assert value_to_text(False) == "false"
