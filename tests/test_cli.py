"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.relational import load_database_dir, save_database
from repro.workloads import flights_a, flights_b, flights_c


@pytest.fixture
def dirs(tmp_path):
    source = tmp_path / "source"
    target = tmp_path / "target"
    save_database(flights_b(), source)
    save_database(flights_a(), target)
    return source, target, tmp_path


class TestDiscover:
    def test_discover_success(self, dirs, capsys):
        source, target, _tmp = dirs
        code = main(
            [
                "discover",
                "--source",
                str(source),
                "--target",
                str(target),
                "--heuristic",
                "euclid_norm",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "status: found" in out
        assert "promote[" in out

    def test_discover_writes_replayable_expression(self, dirs, capsys):
        source, target, tmp = dirs
        expr_file = tmp / "expr.txt"
        assert (
            main(
                [
                    "discover",
                    "--source",
                    str(source),
                    "--target",
                    str(target),
                    "--heuristic",
                    "euclid_norm",
                    "--output",
                    str(expr_file),
                ]
            )
            == 0
        )
        capsys.readouterr()
        out_dir = tmp / "mapped"
        assert (
            main(
                [
                    "apply",
                    "--expression",
                    str(expr_file),
                    "--source",
                    str(source),
                    "--output",
                    str(out_dir),
                ]
            )
            == 0
        )
        mapped = load_database_dir(out_dir)
        assert mapped.contains(flights_a())

    def test_discover_failure_exit_code(self, dirs, capsys):
        source, target, tmp = dirs
        # unreachable target: unknown value nowhere in the source
        unreachable = tmp / "unreachable"
        save_database(flights_c(), unreachable)
        code = main(
            [
                "discover",
                "--source",
                str(source),
                "--target",
                str(unreachable),
                "--budget",
                "2000",
            ]
        )
        assert code == 1
        assert "status:" in capsys.readouterr().out

    def test_discover_with_correspondence(self, dirs, capsys):
        source, _target, tmp = dirs
        target_c = tmp / "target_c"
        save_database(flights_c(), target_c)
        code = main(
            [
                "discover",
                "--source",
                str(source),
                "--target",
                str(target_c),
                "--correspondence",
                "TotalCost<-add(Cost,AgentFee)",
                "--show-matching",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "apply[" in out
        assert "--[add]->" in out

    def test_show_sql(self, dirs, capsys):
        source, target, _tmp = dirs
        code = main(
            [
                "discover",
                "--source",
                str(source),
                "--target",
                str(target),
                "--heuristic",
                "cosine",
                "--show-sql",
            ]
        )
        assert code == 0
        assert "CREATE TABLE" in capsys.readouterr().out


class TestDiscoverTrace:
    def test_discover_records_trace(self, dirs, capsys):
        source, target, tmp = dirs
        trace_file = tmp / "run.jsonl"
        code = main(
            [
                "discover",
                "--source",
                str(source),
                "--target",
                str(target),
                "--heuristic",
                "euclid_norm",
                "--trace",
                str(trace_file),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert f"trace written to {trace_file}" in out
        from repro.obs import load_trace, replay_counters

        events = load_trace(trace_file)  # schema-validates on load
        assert events[0]["event"] == "span_start"  # the discover phase span
        assert events[0]["name"] == "discover"
        assert any(event["event"] == "search_start" for event in events)
        assert events[-1]["event"] == "search_end"
        assert replay_counters(events)["states_examined"] > 0

    def test_discover_unwritable_trace_path_exits_cleanly(self, dirs, capsys):
        source, target, tmp = dirs
        bad = tmp / "no_such_dir" / "run.jsonl"
        code = main(
            [
                "discover",
                "--source",
                str(source),
                "--target",
                str(target),
                "--trace",
                str(bad),
            ]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "error: cannot write trace to" in captured.err


class TestTrace:
    def test_synthetic_record_and_profile(self, tmp_path, capsys):
        trace_file = tmp_path / "fig5.jsonl"
        code = main(
            [
                "trace",
                "--synthetic",
                "3",
                "--algorithm",
                "ida",
                "--heuristic",
                "h0",
                "--output",
                str(trace_file),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert trace_file.exists()
        assert "traced synthetic matching n=3" in out
        assert "run profile: ida/h0" in out
        assert "cache efficiency" in out

    def test_inspect_existing_trace(self, tmp_path, capsys):
        trace_file = tmp_path / "fig5.jsonl"
        assert (
            main(
                ["trace", "--synthetic", "3", "--output", str(trace_file)]
            )
            == 0
        )
        capsys.readouterr()
        code = main(["trace", "--inspect", str(trace_file)])
        out = capsys.readouterr().out
        assert code == 0
        assert "schema v1" in out
        assert "run profile: ida/h0" in out

    def test_inspect_rejects_foreign_file(self, tmp_path, capsys):
        not_a_trace = tmp_path / "junk.jsonl"
        not_a_trace.write_text('{"hello": "world"}\n')
        code = main(["trace", "--inspect", str(not_a_trace)])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_csv_instances_work_too(self, dirs, tmp_path, capsys):
        source, target, _tmp = dirs
        trace_file = tmp_path / "csv.jsonl"
        code = main(
            [
                "trace",
                "--source",
                str(source),
                "--target",
                str(target),
                "--algorithm",
                "rbfs",
                "--heuristic",
                "euclid_norm",
                "--output",
                str(trace_file),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "run profile: rbfs/euclid_norm" in out

    def test_requires_workload(self, capsys):
        code = main(["trace", "--output", "x.jsonl"])
        assert code == 2
        assert "--synthetic" in capsys.readouterr().err

    def test_requires_output(self, capsys):
        code = main(["trace", "--synthetic", "3"])
        assert code == 2
        assert "--output" in capsys.readouterr().err

    def test_rejects_bad_synthetic_size(self, capsys):
        code = main(["trace", "--synthetic", "0", "--output", "x.jsonl"])
        assert code == 2
        assert "size >= 1" in capsys.readouterr().err


class TestOtherCommands:
    def test_apply_prints_by_default(self, dirs, capsys, tmp_path):
        source, _target, tmp = dirs
        expr_file = tmp / "e.txt"
        expr_file.write_text("rename_rel(Prices -> Quotes)\n")
        assert (
            main(["apply", "--expression", str(expr_file), "--source", str(source)])
            == 0
        )
        assert "Quotes:" in capsys.readouterr().out

    def test_tnf(self, dirs, capsys):
        source, _target, _tmp = dirs
        assert main(["tnf", "--source", str(source)]) == 0
        out = capsys.readouterr().out
        assert "TID" in out and "VALUE" in out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "rbfs" in out and "cosine" in out and "hybrid" in out

    def test_info_reports_telemetry(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "telemetry: structured tracing (schema v1)" in out
        assert "sinks: null, memory, jsonl, logging" in out
        assert "expand" in out and "search_end" in out

    def test_error_reported_cleanly(self, dirs, capsys, tmp_path):
        source, _target, tmp = dirs
        bad_expr = tmp / "bad.txt"
        bad_expr.write_text("frobnicate[R](A)\n")
        code = main(
            ["apply", "--expression", str(bad_expr), "--source", str(source)]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err
