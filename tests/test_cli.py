"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.relational import load_database_dir, save_database
from repro.workloads import flights_a, flights_b, flights_c


@pytest.fixture
def dirs(tmp_path):
    source = tmp_path / "source"
    target = tmp_path / "target"
    save_database(flights_b(), source)
    save_database(flights_a(), target)
    return source, target, tmp_path


class TestDiscover:
    def test_discover_success(self, dirs, capsys):
        source, target, _tmp = dirs
        code = main(
            [
                "discover",
                "--source",
                str(source),
                "--target",
                str(target),
                "--heuristic",
                "euclid_norm",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "status: found" in out
        assert "promote[" in out

    def test_discover_writes_replayable_expression(self, dirs, capsys):
        source, target, tmp = dirs
        expr_file = tmp / "expr.txt"
        assert (
            main(
                [
                    "discover",
                    "--source",
                    str(source),
                    "--target",
                    str(target),
                    "--heuristic",
                    "euclid_norm",
                    "--output",
                    str(expr_file),
                ]
            )
            == 0
        )
        capsys.readouterr()
        out_dir = tmp / "mapped"
        assert (
            main(
                [
                    "apply",
                    "--expression",
                    str(expr_file),
                    "--source",
                    str(source),
                    "--output",
                    str(out_dir),
                ]
            )
            == 0
        )
        mapped = load_database_dir(out_dir)
        assert mapped.contains(flights_a())

    def test_discover_failure_exit_code(self, dirs, capsys):
        source, target, tmp = dirs
        # unreachable target: unknown value nowhere in the source
        unreachable = tmp / "unreachable"
        save_database(flights_c(), unreachable)
        code = main(
            [
                "discover",
                "--source",
                str(source),
                "--target",
                str(unreachable),
                "--budget",
                "2000",
            ]
        )
        assert code == 1
        assert "status:" in capsys.readouterr().out

    def test_discover_with_correspondence(self, dirs, capsys):
        source, _target, tmp = dirs
        target_c = tmp / "target_c"
        save_database(flights_c(), target_c)
        code = main(
            [
                "discover",
                "--source",
                str(source),
                "--target",
                str(target_c),
                "--correspondence",
                "TotalCost<-add(Cost,AgentFee)",
                "--show-matching",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "apply[" in out
        assert "--[add]->" in out

    def test_show_sql(self, dirs, capsys):
        source, target, _tmp = dirs
        code = main(
            [
                "discover",
                "--source",
                str(source),
                "--target",
                str(target),
                "--heuristic",
                "cosine",
                "--show-sql",
            ]
        )
        assert code == 0
        assert "CREATE TABLE" in capsys.readouterr().out


class TestOtherCommands:
    def test_apply_prints_by_default(self, dirs, capsys, tmp_path):
        source, _target, tmp = dirs
        expr_file = tmp / "e.txt"
        expr_file.write_text("rename_rel(Prices -> Quotes)\n")
        assert (
            main(["apply", "--expression", str(expr_file), "--source", str(source)])
            == 0
        )
        assert "Quotes:" in capsys.readouterr().out

    def test_tnf(self, dirs, capsys):
        source, _target, _tmp = dirs
        assert main(["tnf", "--source", str(source)]) == 0
        out = capsys.readouterr().out
        assert "TID" in out and "VALUE" in out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "rbfs" in out and "cosine" in out and "hybrid" in out

    def test_error_reported_cleanly(self, dirs, capsys, tmp_path):
        source, _target, tmp = dirs
        bad_expr = tmp / "bad.txt"
        bad_expr.write_text("frobnicate[R](A)\n")
        code = main(
            ["apply", "--expression", str(bad_expr), "--source", str(source)]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err
