"""Live progress streaming: heartbeat cadence, sinks, console rendering."""

from __future__ import annotations

import io

from repro import SearchConfig, discover_mapping
from repro.obs import (
    CallbackProgress,
    ConsoleProgress,
    MemorySink,
    ProgressUpdate,
    Tracer,
)
from repro.search import LIMIT_CHECK_EVERY
from repro.workloads import matching_pair


def _discover(progress=None, tracer=None, size=4, heuristic="h0"):
    pair = matching_pair(size)
    return discover_mapping(
        pair.source,
        pair.target,
        algorithm="ida",
        heuristic=heuristic,
        config=SearchConfig(max_states=100_000),
        simplify=False,
        progress=progress,
        tracer=tracer,
    )


def test_callable_progress_receives_monotone_heartbeats():
    updates: list[ProgressUpdate] = []
    result = _discover(progress=updates.append)
    assert result.status == "found"
    # h0 at size 4 examines hundreds of states, so heartbeats must fire
    assert len(updates) >= 2
    examined = [u.examined for u in updates]
    assert examined == sorted(examined)
    assert all(u.examined >= LIMIT_CHECK_EVERY for u in updates)
    assert all(u.generated >= u.examined for u in updates)
    assert all(u.elapsed >= 0.0 for u in updates)
    assert updates[-1].examined <= result.stats.states_examined


def test_progress_trace_events_mirror_sink_updates():
    updates: list[ProgressUpdate] = []
    sink = MemorySink()
    _discover(progress=CallbackProgress(updates.append), tracer=Tracer(sink))
    events = [e for e in sink.events if e["event"] == "progress"]
    assert len(events) == len(updates)
    assert [e["examined"] for e in events] == [u.examined for u in updates]


def test_no_heartbeat_below_the_throttle():
    updates: list[ProgressUpdate] = []
    result = _discover(progress=updates.append, heuristic="h1")
    # h1 solves size 4 in a handful of examinations — under the cadence
    if result.stats.states_examined < LIMIT_CHECK_EVERY:
        assert updates == []


def test_progress_update_as_dict_round_trips():
    update = ProgressUpdate(
        examined=32, generated=64, depth=3, frontier=5, best_f=2.0, elapsed=0.1
    )
    assert update.as_dict() == {
        "examined": 32,
        "generated": 64,
        "depth": 3,
        "frontier": 5,
        "best_f": 2.0,
        "elapsed": 0.1,
    }


class TestConsoleProgress:
    def _update(self, **overrides):
        base = dict(
            examined=100, generated=200, depth=4, frontier=9, best_f=3.0,
            elapsed=1.5,
        )
        base.update(overrides)
        return ProgressUpdate(**base)

    def test_renders_carriage_return_status_line(self):
        stream = io.StringIO()
        console = ConsoleProgress(stream=stream, min_interval=0.0)
        console.update(self._update())
        console.finish()
        text = stream.getvalue()
        assert text.startswith("\r")
        assert "examined" in text and "100" in text
        assert text.endswith("\n")

    def test_missing_best_f_renders_dash(self):
        stream = io.StringIO()
        console = ConsoleProgress(stream=stream, min_interval=0.0)
        console.update(self._update(best_f=None))
        assert " f " in stream.getvalue()
        assert "-" in stream.getvalue()

    def test_finish_without_updates_is_silent(self):
        stream = io.StringIO()
        ConsoleProgress(stream=stream).finish()
        assert stream.getvalue() == ""

    def test_broken_stream_goes_quiet_instead_of_raising(self):
        stream = io.StringIO()
        console = ConsoleProgress(stream=stream, min_interval=0.0)
        stream.close()
        console.update(self._update())  # must not raise
        console.finish()  # must not raise

    def test_throttle_coalesces_rapid_updates(self):
        stream = io.StringIO()
        console = ConsoleProgress(stream=stream, min_interval=60.0)
        console.update(self._update(examined=1))
        console.update(self._update(examined=2))
        assert stream.getvalue().count("\r") == 1
