"""Cross-engine equivalence: the FIRA → SQL compiler's correctness oracle.

Every available backend must produce a result **bit-identical** (``==`` on
:class:`~repro.relational.database.Database`) with replaying the mapping
through the in-memory algebra — on the paper's Fig. 1 flights pipelines,
the synthetic matching workloads, BAMM-style rename tasks, and degenerate
inputs (empty relations, NULL-heavy columns, single-row dynamic
pipelines).  A divergence on any engine means the compiler, a dialect, or
a backend is lying about the mapping's semantics.
"""

from __future__ import annotations

import pytest

from repro import Database, Relation
from repro.backends import DuckDbBackend, available_backends, execute_mapping
from repro.fira import (
    ApplyFunction,
    CartesianProduct,
    Demote,
    Dereference,
    DropAttribute,
    MappingExpression,
    Merge,
    Partition,
    Promote,
    RenameAttribute,
    RenameRelation,
    Select,
)
from repro.relational import NULL
from repro.search import discover_mapping
from repro.workloads import flights_b, matching_pair
from repro.workloads.bamm import bamm_domain
from repro.workloads.flights import (
    b_to_a_expression,
    b_to_c_expression,
    flights_registry,
)

#: every backend runnable in this environment (duckdb joins when installed)
BACKENDS = tuple(b.name for b in available_backends())


def assert_all_backends_match(expression, source, registry=None):
    """The oracle: algebra == every available backend, bit for bit."""
    algebra = expression.apply(source, registry)
    for name in BACKENDS:
        result = execute_mapping(
            expression, source, backend=name, registry=registry
        )
        assert result.database == algebra, (
            f"backend {name} diverged from the in-memory algebra"
        )
    return algebra


class TestFlightsPipelines:
    """Fig. 1: the paper's three-schema flights example."""

    def test_b_to_a(self):
        assert_all_backends_match(
            b_to_a_expression(), flights_b(), flights_registry()
        )

    def test_b_to_c(self):
        assert_all_backends_match(
            b_to_c_expression(), flights_b(), flights_registry()
        )


class TestSyntheticWorkloads:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6])
    def test_reference_expressions(self, n):
        pair = matching_pair(n)
        assert_all_backends_match(
            pair.reference_expression(), pair.source
        )

    def test_discovered_expression(self):
        """A mapping found by search executes identically everywhere."""
        pair = matching_pair(3)
        result = discover_mapping(pair.source, pair.target, heuristic="h1")
        assert result.found
        algebra = assert_all_backends_match(result.expression, pair.source)
        assert algebra.contains(pair.target)


class TestBammWorkloads:
    def test_gold_rename_tasks(self):
        domain = bamm_domain("Books")
        for task in domain.tasks[:3]:
            relation = task.source.relation_names[0]
            expression = MappingExpression(
                RenameAttribute(relation, old, new)
                for old, new in task.gold_renames
            )
            assert_all_backends_match(expression, task.source)


class TestOperatorFamilies:
    """One instance-directed case per operator family."""

    @pytest.fixture
    def mixed(self):
        return Database.single(
            Relation(
                "T",
                ("K", "V"),
                [("x", 1), ("y", 2.5), ("z", NULL), ("w", "s")],
            )
        )

    def test_promote_merge_drop(self, mixed):
        assert_all_backends_match(
            MappingExpression(
                [
                    Promote("T", "K", "V"),
                    DropAttribute("T", "V"),
                    DropAttribute("T", "K"),
                ]
            ),
            mixed,
        )

    def test_demote(self, mixed):
        assert_all_backends_match(MappingExpression([Demote("T")]), mixed)

    def test_partition(self, mixed):
        assert_all_backends_match(
            MappingExpression([Partition("T", "K")]), mixed
        )

    def test_dereference_keeps_raw_values(self):
        db = Database.single(
            Relation(
                "P",
                ("ptr", "a", "b"),
                [("a", 1, 10), ("b", 2, 2.0), ("a", NULL, 30)],
            )
        )
        assert_all_backends_match(
            MappingExpression([Dereference("P", "ptr", "out")]), db
        )

    def test_product(self):
        db = Database(
            [
                Relation("L", ("x",), [("1",), ("2",)]),
                Relation("R", ("y",), [("u",)]),
            ]
        )
        assert_all_backends_match(
            MappingExpression([CartesianProduct("L", "R", "LR")]), db
        )

    def test_select_and_renames(self, mixed):
        assert_all_backends_match(
            MappingExpression(
                [
                    Select("T", "K", "x"),
                    RenameAttribute("T", "V", "W"),
                    RenameRelation("T", "U"),
                ]
            ),
            mixed,
        )

    def test_apply_function(self):
        from repro import builtin_registry

        db = Database.single(
            Relation("R", ("Cost", "Fee"), [(100, 15), (150, 25)])
        )
        assert_all_backends_match(
            MappingExpression(
                [ApplyFunction("R", "add", ("Cost", "Fee"), "Total")]
            ),
            db,
            registry=builtin_registry(),
        )


class TestDegenerateInputs:
    """Satellite: empty relations, NULL-heavy columns, single-row dynamics."""

    def test_empty_relation_rename_pipeline(self):
        db = Database.single(Relation("E", ("A", "B"), []))
        assert_all_backends_match(
            MappingExpression(
                [
                    RenameAttribute("E", "A", "C"),
                    DropAttribute("E", "B"),
                    RenameRelation("E", "F"),
                ]
            ),
            db,
        )

    def test_empty_relation_demote(self):
        db = Database.single(Relation("E", ("A",), []))
        assert_all_backends_match(MappingExpression([Demote("E")]), db)

    def test_null_heavy_columns(self):
        db = Database.single(
            Relation(
                "N",
                ("K", "V"),
                [("a", NULL), ("b", NULL), (NULL, NULL), (NULL, 1)],
            )
        )
        assert_all_backends_match(
            MappingExpression([Merge("N", "K")]), db
        )

    def test_mostly_null_promote_names(self):
        """Promote where all but one name cell is NULL."""
        db = Database.single(
            Relation(
                "N", ("K", "V"), [(NULL, 1), (NULL, 2), ("only", 3)]
            )
        )
        assert_all_backends_match(
            MappingExpression([Promote("N", "K", "V")]), db
        )

    def test_single_row_promote_dereference(self):
        db = Database.single(
            Relation("S", ("name", "value"), [("price", 99)])
        )
        assert_all_backends_match(
            MappingExpression(
                [
                    Promote("S", "name", "value"),
                    Dereference("S", "name", "looked_up"),
                ]
            ),
            db,
        )

    def test_select_to_empty(self):
        db = Database.single(Relation("R", ("A",), [("x",), ("y",)]))
        assert_all_backends_match(
            MappingExpression([Select("R", "A", "nothing-matches")]), db
        )

    def test_duplicate_collapse_after_drop(self):
        """The set-semantics honeypot: a drop that creates duplicates."""
        db = Database.single(
            Relation("D", ("A", "B"), [("x", 1), ("x", 2), ("y", 3)])
        )
        assert_all_backends_match(
            MappingExpression([DropAttribute("D", "B")]), db
        )


@pytest.mark.skipif(
    not DuckDbBackend().is_available(), reason="duckdb not installed"
)
class TestDuckDbLeg:  # pragma: no cover - exercised where duckdb exists
    """Runs automatically in environments (e.g. CI) with duckdb installed."""

    def test_flights_b_to_a(self):
        src = flights_b()
        expr = b_to_a_expression()
        result = execute_mapping(
            expr, src, backend="duckdb", registry=flights_registry()
        )
        assert result.database == expr.apply(src, flights_registry())

    def test_boolean_round_trip(self):
        db = Database.single(Relation("R", ("A", "F"), [("x", True)]))
        expr = MappingExpression([RenameAttribute("R", "A", "B")])
        result = execute_mapping(expr, db, backend="duckdb")
        assert result.database == expr.apply(db)
