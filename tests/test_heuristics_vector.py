"""Unit tests for the term-vector heuristics (§3)."""

from __future__ import annotations

import math

import pytest

from repro.heuristics import (
    CosineHeuristic,
    EuclideanHeuristic,
    NormalizedEuclideanHeuristic,
    cosine_similarity,
    euclidean_distance,
    term_vector,
    vector_norm,
)
from repro.relational import Database, Relation


def db(name, attrs, rows):
    return Database.single(Relation(name, attrs, rows))


class TestTermVector:
    def test_counts_triples(self, db_c):
        vector = term_vector(db_c)
        assert vector[("AirEast", "Route", "ATL29")] == 1
        assert sum(vector.values()) == 12

    def test_repeated_triples_counted(self):
        d = db("R", ("A", "B"), [("x", 1), ("x", 2)])
        vector = term_vector(d)
        assert vector[("R", "A", "x")] == 2

    def test_values_textified(self):
        d = db("R", ("A",), [(100,)])
        assert ("R", "A", "100") in term_vector(d)


class TestVectorMath:
    def test_distance_to_self_zero(self, db_b):
        v = term_vector(db_b)
        assert euclidean_distance(v, v) == 0

    def test_distance_simple(self):
        left = term_vector(db("R", ("A",), [("x",)]))
        right = term_vector(db("R", ("A",), [("y",)]))
        assert euclidean_distance(left, right) == pytest.approx(math.sqrt(2))

    def test_norm(self):
        v = term_vector(db("R", ("A",), [("x",), ("y",)]))
        assert vector_norm(v) == pytest.approx(math.sqrt(2))

    def test_cosine_identity(self, db_a):
        v = term_vector(db_a)
        assert cosine_similarity(v, v) == pytest.approx(1.0)

    def test_cosine_orthogonal(self):
        left = term_vector(db("R", ("A",), [("x",)]))
        right = term_vector(db("R", ("A",), [("y",)]))
        assert cosine_similarity(left, right) == 0.0

    def test_cosine_range(self, db_a, db_b):
        sim = cosine_similarity(term_vector(db_a), term_vector(db_b))
        assert 0.0 <= sim <= 1.0


class TestEuclideanHeuristic:
    def test_zero_on_target(self, db_b):
        assert EuclideanHeuristic(db_b)(db_b) == 0

    def test_counts_differing_cells(self):
        target = db("R", ("A",), [("x",)])
        state = db("R", ("A",), [("y",)])
        assert EuclideanHeuristic(target)(state) == 1  # round(sqrt(2))

    def test_no_scaling_constant(self, db_a):
        h = EuclideanHeuristic(db_a)
        assert not hasattr(h, "k")


class TestNormalizedEuclidean:
    def test_zero_on_target(self, db_b):
        assert NormalizedEuclideanHeuristic(db_b)(db_b) == 0

    def test_bounded_by_k_times_sqrt2(self, db_a, db_b):
        h = NormalizedEuclideanHeuristic(db_a, k=7)
        # unit vectors differ by at most sqrt(2)
        assert 0 <= h(db_b) <= round(7 * math.sqrt(2)) + 1

    def test_paper_default_k(self, db_a):
        assert NormalizedEuclideanHeuristic(db_a).k == 7

    def test_scale_invariance_of_direction(self):
        """A state with the same cell *proportions* scores 0."""
        target = db("R", ("A",), [("x",)])
        doubled = db("R", ("A",), [("x",)])  # same single triple
        assert NormalizedEuclideanHeuristic(target, k=10)(doubled) == 0


class TestCosineHeuristic:
    def test_zero_on_target(self, db_c):
        assert CosineHeuristic(db_c)(db_c) == 0

    def test_max_for_disjoint(self):
        target = db("R", ("A",), [("x",)])
        state = db("R", ("A",), [("y",)])
        assert CosineHeuristic(target, k=5)(state) == 5

    def test_paper_default_k(self, db_a):
        assert CosineHeuristic(db_a).k == 5

    def test_decreases_toward_target(self, db_a, db_b):
        """Promoting routes moves B's vector closer to A's."""
        from repro.fira import Promote

        h = CosineHeuristic(db_a, k=24)
        promoted = Promote("Prices", "Route", "Cost").apply(db_b)
        assert h(promoted) <= h(db_b)
