"""Tests for the exception hierarchy (repro.errors)."""

from __future__ import annotations

import pytest

from repro.errors import (
    CorrespondenceError,
    ExpressionParseError,
    MappingNotFound,
    NameCollisionError,
    OperatorApplicationError,
    RelationalError,
    SchemaError,
    SearchBudgetExceeded,
    SearchError,
    SemanticError,
    SignatureError,
    TNFError,
    TransformError,
    TupeloError,
    UnknownAlgorithmError,
    UnknownAttributeError,
    UnknownFunctionError,
    UnknownHeuristicError,
    UnknownRelationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            SchemaError,
            UnknownRelationError,
            UnknownAttributeError,
            TNFError,
            OperatorApplicationError,
            NameCollisionError,
            ExpressionParseError,
            UnknownFunctionError,
            SignatureError,
            CorrespondenceError,
            UnknownHeuristicError,
            UnknownAlgorithmError,
            SearchBudgetExceeded,
            MappingNotFound,
        ],
    )
    def test_everything_is_a_tupelo_error(self, exc):
        assert issubclass(exc, TupeloError)

    def test_sub_hierarchies(self):
        assert issubclass(SchemaError, RelationalError)
        assert issubclass(NameCollisionError, TransformError)
        assert issubclass(UnknownFunctionError, SemanticError)
        assert issubclass(MappingNotFound, SearchError)

    def test_single_except_catches_all(self):
        with pytest.raises(TupeloError):
            raise SearchBudgetExceeded(10, 11)


class TestMessages:
    def test_unknown_relation_lists_available(self):
        err = UnknownRelationError("X", ("A", "B"))
        assert "X" in str(err) and "A, B" in str(err)

    def test_unknown_attribute_names_relation(self):
        err = UnknownAttributeError("Col", "Rel", ("A",))
        assert "Col" in str(err) and "Rel" in str(err)

    def test_parse_error_position(self):
        err = ExpressionParseError("bad", text="xyz", position=2)
        assert "position 2" in str(err)

    def test_budget_exceeded_carries_numbers(self):
        err = SearchBudgetExceeded(100, 101)
        assert err.budget == 100
        assert err.states_examined == 101
        assert "100" in str(err)

    def test_unknown_heuristic_suggests(self):
        err = UnknownHeuristicError("cosinee", ("cosine", "h1"))
        assert "cosine" in str(err)

    def test_unknown_function(self):
        assert "frob" in str(UnknownFunctionError("frob"))
