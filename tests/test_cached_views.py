"""Unit tests for the memoised derived views on Relation/Database values."""

from __future__ import annotations

import pytest

from repro.errors import UnknownAttributeError
from repro.relational import Database, Relation, database_string, tnf_cells
from repro.relational.caching import (
    set_view_caching,
    view_caching_disabled,
    view_caching_enabled,
)
from repro.relational.tnf import tnf_projections, tnf_triples


@pytest.fixture
def rel():
    return Relation("R", ("A", "B"), [(1, "x"), (2, "y")])


@pytest.fixture
def db(rel):
    return Database([rel, Relation("S", ("C",), [(3,)])])


class TestRelationViews:
    def test_views_computed_once(self, rel):
        """Repeated calls return the identical stored object."""
        assert rel.value_set() is rel.value_set()
        assert rel.attribute_set is rel.attribute_set
        assert rel.column_values("A") is rel.column_values("A")
        assert rel.column_texts("A") is rel.column_texts("A")
        assert rel.sorted_rows_view() is rel.sorted_rows_view()

    def test_views_are_immutable_containers(self, rel):
        assert isinstance(rel.value_set(), frozenset)
        assert isinstance(rel.column_texts("A"), frozenset)
        assert isinstance(rel.sorted_rows_view(), tuple)

    def test_column_texts_contents(self, rel):
        assert rel.column_texts("A") == frozenset({"1", "2"})
        assert rel.column_texts("B") == frozenset({"x", "y"})

    def test_column_texts_unknown_attribute(self, rel):
        with pytest.raises(UnknownAttributeError):
            rel.column_texts("Nope")

    def test_sorted_rows_returns_a_private_list(self, rel):
        """Mutating the list sorted_rows() hands out can't poison the view."""
        rows = rel.sorted_rows()
        assert rows == list(rel.sorted_rows_view())
        rows.append(("junk",))
        assert rel.sorted_rows() == list(rel.sorted_rows_view())
        assert ("junk",) not in rel.sorted_rows_view()

    def test_include_null_variants_cached_separately(self):
        from repro.relational import NULL

        rel = Relation("R", ("A",), [(1,), (NULL,)])
        assert NULL not in rel.value_set()
        assert NULL in rel.value_set(include_null=True)
        assert rel.value_set() is not rel.value_set(include_null=True)

    def test_derived_relations_start_cold_and_correct(self, rel):
        warm = rel.column_texts("A")
        renamed = rel.rename_attribute("A", "Z")
        assert renamed.column_texts("Z") == warm
        assert rel.column_texts("A") is warm  # original untouched
        with pytest.raises(UnknownAttributeError):
            renamed.column_texts("A")


class TestDatabaseViews:
    def test_views_computed_once(self, db):
        assert db.attribute_names() is db.attribute_names()
        assert db.value_set() is db.value_set()
        assert db.value_texts() is db.value_texts()

    def test_value_texts_contents(self, db):
        assert db.value_texts() == frozenset({"1", "2", "3", "x", "y"})

    def test_tnf_views_memoised(self, db):
        assert tnf_cells(db) is tnf_cells(db)
        assert tnf_triples(db) is tnf_triples(db)
        assert database_string(db) is database_string(db)
        assert tnf_projections(db) is tnf_projections(db)

    def test_tnf_views_are_immutable(self, db):
        assert isinstance(tnf_cells(db), tuple)
        assert isinstance(tnf_triples(db), tuple)
        assert isinstance(database_string(db), str)
        rels, atts, vals = tnf_projections(db)
        assert all(isinstance(s, frozenset) for s in (rels, atts, vals))

    def test_with_relation_does_not_corrupt_views(self, db):
        names = db.attribute_names()
        bigger = db.with_relation(Relation("T", ("D",), [(4,)]))
        assert "D" in bigger.attribute_names()
        assert db.attribute_names() is names
        assert "D" not in names


class TestKillSwitch:
    def test_enabled_by_default(self):
        assert view_caching_enabled()

    def test_disabled_views_recompute(self, rel):
        with view_caching_disabled():
            assert not view_caching_enabled()
            first = rel.value_set()
            second = rel.value_set()
        assert first == second
        assert first is not second  # nothing was stored
        assert view_caching_enabled()
        # back on: the store fills as usual
        assert rel.value_set() is rel.value_set()

    def test_disabled_still_serves_already_cached_views(self, rel):
        warm = rel.column_texts("A")
        with view_caching_disabled():
            assert rel.column_texts("A") is warm

    def test_set_view_caching_restores(self):
        set_view_caching(False)
        try:
            assert not view_caching_enabled()
        finally:
            set_view_caching(True)
        assert view_caching_enabled()

    def test_nested_disable_restores_previous(self):
        with view_caching_disabled():
            with view_caching_disabled():
                assert not view_caching_enabled()
            assert not view_caching_enabled()
        assert view_caching_enabled()
