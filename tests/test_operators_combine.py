"""Unit tests for merge (µ) and cartesian product (×)."""

from __future__ import annotations

import pytest

from repro.errors import OperatorApplicationError
from repro.fira import (
    CartesianProduct,
    Merge,
    Promote,
    merge_group,
    merge_tuples,
    parse_operator,
    tuples_compatible,
)
from repro.relational import NULL, Database, Relation


class TestCompatibility:
    def test_equal_rows_compatible(self):
        assert tuples_compatible((1, "a"), (1, "a"))

    def test_null_is_wildcard(self):
        assert tuples_compatible((1, NULL), (1, "a"))
        assert tuples_compatible((NULL, NULL), (1, "a"))

    def test_conflict_incompatible(self):
        assert not tuples_compatible((1, "a"), (1, "b"))

    def test_merge_prefers_non_null(self):
        assert merge_tuples((1, NULL), (NULL, "a")) == (1, "a")

    def test_merge_keeps_left_on_agreement(self):
        assert merge_tuples((1, "a"), (1, "a")) == (1, "a")


class TestMergeGroup:
    def test_two_halves_coalesce(self):
        rows = [(1, "x", NULL), (1, NULL, "y")]
        assert merge_group(rows) == [(1, "x", "y")]

    def test_conflicting_rows_stay_apart(self):
        rows = [(1, "x", NULL), (1, "z", "y")]
        assert len(merge_group(rows)) == 2

    def test_chained_merge_fixpoint(self):
        rows = [
            (1, "a", NULL, NULL),
            (1, NULL, "b", NULL),
            (1, NULL, NULL, "c"),
        ]
        assert merge_group(rows) == [(1, "a", "b", "c")]

    def test_deterministic(self):
        rows = [(1, NULL, "y"), (1, "x", NULL)]
        assert merge_group(rows) == merge_group(list(reversed(rows)))


class TestMerge:
    def test_paper_example2_step_r3(self, db_b):
        """After promote + drops, µCarrier collapses to one row per carrier."""
        promoted = Promote("Prices", "Route", "Cost").apply(db_b)
        narrowed = (
            promoted.relation("Prices")
            .drop_attribute("Route")
            .drop_attribute("Cost")
        )
        db = promoted.with_relation(narrowed)
        out = Merge("Prices", "Carrier").apply(db)
        rel = out.relation("Prices")
        assert rel.cardinality == 2
        rows = {tuple(sorted(d.items())) for d in rel.iter_dicts()}
        assert (
            ("ATL29", 100),
            ("AgentFee", 15),
            ("Carrier", "AirEast"),
            ("ORD17", 110),
        ) in rows

    def test_null_keys_never_merge(self):
        db = Database.single(
            Relation("R", ("K", "V"), [(NULL, 1), (NULL, 2)])
        )
        out = Merge("R", "K").apply(db)
        assert out.relation("R").cardinality == 2

    def test_incompatible_tuples_preserved(self, db_b):
        """Merging FlightsB directly on Carrier changes nothing: the Route
        and Cost columns conflict."""
        out = Merge("Prices", "Carrier").apply(db_b)
        assert out == db_b

    def test_missing_attribute(self, db_b):
        with pytest.raises(OperatorApplicationError):
            Merge("Prices", "Nope").apply(db_b)

    def test_str_roundtrip(self):
        op = Merge("Prices", "Carrier")
        assert parse_operator(str(op)) == op

    def test_unicode(self):
        assert "µ" in Merge("R", "A").to_unicode()


class TestCartesianProduct:
    def test_row_count(self, db_c):
        out = CartesianProduct("AirEast", "JetWest").apply(db_c)
        product = out.relation("AirEast*JetWest")
        assert product.cardinality == 4

    def test_operands_kept(self, db_c):
        out = CartesianProduct("AirEast", "JetWest").apply(db_c)
        assert out.has_relation("AirEast") and out.has_relation("JetWest")

    def test_clashing_attributes_qualified(self, db_c):
        out = CartesianProduct("AirEast", "JetWest").apply(db_c)
        product = out.relation("AirEast*JetWest")
        assert product.has_attribute("AirEast.Route")
        assert product.has_attribute("JetWest.Route")

    def test_disjoint_attributes_unqualified(self):
        db = Database(
            [
                Relation("R", ("A",), [(1,)]),
                Relation("S", ("B",), [(2,)]),
            ]
        )
        out = CartesianProduct("R", "S").apply(db)
        assert out.relation("R*S").attribute_set == {"A", "B"}

    def test_custom_result_name(self, db_c):
        op = CartesianProduct("AirEast", "JetWest", "Both")
        assert op.result_name == "Both"
        out = op.apply(db_c)
        assert out.has_relation("Both")

    def test_result_name_collision(self, db_c):
        with pytest.raises(OperatorApplicationError):
            CartesianProduct("AirEast", "JetWest", "AirEast").apply(db_c)

    def test_self_product_rejected(self, db_c):
        with pytest.raises(OperatorApplicationError):
            CartesianProduct("AirEast", "AirEast").apply(db_c)

    def test_repeated_product_no_duplicate_attributes(self, db_c):
        once = CartesianProduct("AirEast", "JetWest").apply(db_c)
        twice = CartesianProduct("AirEast*JetWest", "JetWest").apply(once)
        rel = twice.relation("AirEast*JetWest*JetWest")
        assert len(set(rel.attributes)) == rel.arity

    def test_str_roundtrip(self):
        plain = CartesianProduct("R", "S")
        named = CartesianProduct("R", "S", "T")
        assert parse_operator(str(plain)) == plain
        assert parse_operator(str(named)) == named

    def test_unicode(self):
        assert "×" in CartesianProduct("R", "S").to_unicode()
