"""Tests for matching-quality evaluation (repro.experiments.quality)."""

from __future__ import annotations

import pytest

from repro import discover_mapping
from repro.experiments import MatchQuality, evaluate_matching
from repro.fira import MappingExpression, RenameAttribute, RenameRelation
from repro.workloads import bamm_domain


def quality(expected, found):
    return MatchQuality(expected=frozenset(expected), found=frozenset(found))


class TestMatchQuality:
    def test_perfect(self):
        q = quality([("A", "B")], [("A", "B")])
        assert q.precision == 1.0 and q.recall == 1.0 and q.f1 == 1.0
        assert q.perfect

    def test_miss(self):
        q = quality([("A", "B"), ("C", "D")], [("A", "B")])
        assert q.recall == 0.5
        assert q.precision == 1.0
        assert not q.perfect

    def test_spurious(self):
        q = quality([("A", "B")], [("A", "B"), ("X", "Y")])
        assert q.precision == 0.5
        assert q.recall == 1.0

    def test_both_empty_is_perfect(self):
        q = quality([], [])
        assert q.perfect and q.f1 == 1.0

    def test_all_wrong(self):
        q = quality([("A", "B")], [("X", "Y")])
        assert q.precision == 0.0 and q.recall == 0.0 and q.f1 == 0.0


class TestEvaluateMatching:
    def test_gold_expression_scores_perfect(self):
        task = bamm_domain("Books").tasks[5]
        rel = task.source.relation_names[0]
        ops = [
            RenameAttribute(rel, canonical, used)
            for canonical, used in task.gold_renames
        ]
        ops.append(RenameRelation(rel, task.target.relation_names[0]))
        q = evaluate_matching(task, MappingExpression(ops))
        assert q.perfect

    def test_wrong_expression_scores_low(self):
        task = next(
            t for t in bamm_domain("Books").tasks if len(t.gold_renames) >= 1
        )
        rel = task.source.relation_names[0]
        _canonical, used = task.gold_renames[0]
        # rename the WRONG source attribute to the interface name
        wrong_source = next(
            a
            for a in task.source.relation(rel).attributes
            if a != _canonical and (a, used) not in task.gold_renames
        )
        q = evaluate_matching(
            task, MappingExpression([RenameAttribute(rel, wrong_source, used)])
        )
        assert not q.perfect
        assert q.precision == 0.0

    @pytest.mark.parametrize("heuristic", ["h1", "euclid_norm", "cosine"])
    def test_discovered_mappings_are_correct(self, heuristic):
        """The paper's implicit claim: discovery returns the *correct*
        matchings, not just any goal-satisfying rename set."""
        domain = bamm_domain("Music")
        for task in domain.tasks[:10]:
            result = discover_mapping(task.source, task.target, heuristic=heuristic)
            assert result.found
            assert evaluate_matching(task, result.expression).perfect, (
                task.interface_id,
                heuristic,
            )
