"""Unit tests for IDA*, RBFS, A*, and greedy best-first search."""

from __future__ import annotations

import pytest

from repro.errors import MappingNotFound, SearchBudgetExceeded
from repro.fira import MappingExpression
from repro.heuristics import make_heuristic
from repro.relational import Database, Relation
from repro.search import (
    MappingProblem,
    SearchConfig,
    SearchStats,
    a_star,
    greedy,
    ida_star,
    rbfs,
)
from repro.workloads import matching_pair

ALGORITHMS = {
    "ida": ida_star,
    "rbfs": rbfs,
    "astar": a_star,
    "greedy": greedy,
}


def solve(algorithm, source, target, heuristic="h1", budget=100_000, **kwargs):
    problem = MappingProblem(
        source, target, config=SearchConfig(max_states=budget), **kwargs
    )
    h = make_heuristic(heuristic, target)
    stats = SearchStats(budget=budget)
    ops = ALGORITHMS[algorithm](problem, h, stats)
    return ops, stats


class TestAllAlgorithms:
    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_trivial_goal_zero_ops(self, algorithm, db_a):
        ops, stats = solve(algorithm, db_a, db_a)
        assert ops == []
        assert stats.states_examined == 1

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_matching_pair_solved(self, algorithm):
        pair = matching_pair(4)
        ops, _stats = solve(algorithm, pair.source, pair.target)
        result = MappingExpression(ops).apply(pair.source)
        assert result.contains(pair.target.relation("R") and pair.target)

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_flights_b_to_a(self, algorithm, db_a, db_b):
        ops, _stats = solve(algorithm, db_b, db_a, heuristic="euclid_norm")
        assert MappingExpression(ops).apply(db_b).contains(db_a)

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_unsolvable_raises(self, algorithm):
        source = Database.single(Relation("R", ("A",), [("x",)]))
        target = Database.single(Relation("R", ("A",), [("unreachable",)]))
        with pytest.raises(MappingNotFound):
            solve(algorithm, source, target)

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_budget_enforced(self, algorithm):
        pair = matching_pair(8)
        with pytest.raises(SearchBudgetExceeded):
            solve(algorithm, pair.source, pair.target, heuristic="h0", budget=20)

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_max_depth_blocks_solution(self, algorithm):
        pair = matching_pair(3)
        problem = MappingProblem(
            pair.source, pair.target, config=SearchConfig(max_depth=2)
        )
        h = make_heuristic("h1", pair.target)
        with pytest.raises(MappingNotFound):
            ALGORITHMS[algorithm](problem, h, SearchStats())


class TestOptimality:
    """With the admissible-in-practice h1 on matching tasks, IDA* and A*
    return shortest solutions (n renames)."""

    @pytest.mark.parametrize("algorithm", ["ida", "astar"])
    @pytest.mark.parametrize("n", [2, 4, 6])
    def test_shortest_path_on_matching(self, algorithm, n):
        pair = matching_pair(n)
        ops, _ = solve(algorithm, pair.source, pair.target)
        assert len(ops) == n

    def test_ida_matches_reference_expression(self):
        pair = matching_pair(4)
        ops, _ = solve("ida", pair.source, pair.target)
        assert MappingExpression(ops) == pair.reference_expression()


class TestCostAccounting:
    def test_h1_examines_linear_states_on_matching(self):
        pair = matching_pair(10)
        _ops, stats = solve("rbfs", pair.source, pair.target)
        assert stats.states_examined <= 3 * 10 + 5

    def test_blind_ida_explodes_exponentially(self):
        small = matching_pair(3)
        big = matching_pair(5)
        _, small_stats = solve("ida", small.source, small.target, heuristic="h0")
        _, big_stats = solve("ida", big.source, big.target, heuristic="h0")
        assert big_stats.states_examined > 10 * small_stats.states_examined

    def test_ida_iterations_counted(self):
        pair = matching_pair(3)
        _, stats = solve("ida", pair.source, pair.target, heuristic="h0")
        assert stats.iterations >= 3  # bounds 0..3 at least

    def test_astar_examines_no_more_than_ida(self):
        pair = matching_pair(5)
        _, ida_stats = solve("ida", pair.source, pair.target, heuristic="h0")
        _, astar_stats = solve("astar", pair.source, pair.target, heuristic="h0")
        assert astar_stats.states_examined <= ida_stats.states_examined

    def test_max_depth_recorded(self):
        pair = matching_pair(4)
        _, stats = solve("rbfs", pair.source, pair.target)
        assert stats.max_depth >= 4
