"""Property-style equivalence tests for the delta-incremental layer.

The columnar kernel's contract is invisibility: interned relations behave
exactly like the legacy ones, delta-patched summaries equal full rebuilds
after arbitrary operator chains, every heuristic scores delta-derived
states exactly as it scores provenance-free equals, and the fast JSON
path renders byte-for-byte what the stdlib renderer would.  These tests
drive each claim with randomised inputs (hypothesis) or exhaustive sweeps
over the registries.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

import repro.serialize as serialize
from repro.fira.delta import StateDelta
from repro.heuristics import HEURISTIC_NAMES, make_heuristic
from repro.relational import NULL, Database, Relation, database_string
from repro.relational.caching import (
    columnar_kernel_disabled,
    incremental_heuristics_disabled,
    incremental_heuristics_enabled,
    set_incremental_heuristics,
    view_caching_disabled,
)
from repro.relational.summary import (
    DatabaseSummary,
    attach_provenance,
    database_summary,
)
from repro.search import MappingProblem, SearchConfig
from repro.search.engine import discover_mapping
from repro.workloads import matching_pair

# -- strategies -------------------------------------------------------------

identifiers = st.text(
    alphabet="ABCDEFGHabcdefgh_", min_size=1, max_size=5
)

cells = st.one_of(
    st.integers(min_value=-50, max_value=50),
    st.text(alphabet="xyzXYZ012", min_size=0, max_size=4),
    st.just(NULL),
)


@st.composite
def relations(draw, name=None):
    rel_name = name if name is not None else draw(identifiers)
    arity = draw(st.integers(min_value=1, max_value=3))
    attrs = draw(
        st.lists(identifiers, min_size=arity, max_size=arity, unique=True)
    )
    rows = draw(
        st.lists(st.tuples(*([cells] * arity)), min_size=0, max_size=4)
    )
    return Relation(rel_name, attrs, rows)


@st.composite
def databases(draw):
    names = draw(
        st.lists(identifiers, min_size=1, max_size=3, unique=True)
    )
    return Database([draw(relations(name=n)) for n in names])


@st.composite
def derivation_chains(draw):
    """A root database plus a chain of structural steps applied to it.

    Steps exercise every delta shape the operators produce: replace a
    relation (rename/promote/drop all reduce to this), add one, and
    remove one.
    """
    root = draw(databases())
    chain = [root]
    state = root
    for _ in range(draw(st.integers(min_value=1, max_value=5))):
        kind = draw(st.sampled_from(["replace", "add", "remove"]))
        if kind == "remove" and len(state) > 1:
            victim = draw(st.sampled_from(sorted(state.relation_names)))
            child = state.without_relation(victim)
        elif kind == "add":
            fresh = draw(relations())
            if state.has_relation(fresh.name):
                child = state.with_relation(fresh)
            else:
                child = state.with_relation(fresh, replace=False)
        else:
            name = draw(st.sampled_from(sorted(state.relation_names)))
            child = state.with_relation(draw(relations(name=name)))
        chain.append(child)
        state = child
    return chain


def _attach_chain_provenance(chain):
    for parent, child in zip(chain, chain[1:]):
        attach_provenance(child, parent, StateDelta.between(parent, child))


def _summary_fields(summary):
    return (
        summary.triples,
        summary.rel_cells,
        summary.att_cells,
        summary.val_cells,
        summary.sum_sq,
        summary.total_cells,
    )


# -- incremental summaries == full rebuilds ---------------------------------


class TestSummaryEquivalence:
    @given(chain=derivation_chains())
    @settings(max_examples=60, deadline=None)
    def test_delta_folded_summary_matches_full_build(self, chain):
        _attach_chain_provenance(chain)
        for state in chain:
            incremental = database_summary(state)
            full = DatabaseSummary.from_database(
                Database(state.relations)  # fresh value: no provenance
            )
            assert _summary_fields(incremental) == _summary_fields(full)

    @given(chain=derivation_chains())
    @settings(max_examples=40, deadline=None)
    def test_summary_string_matches_tnf_database_string(self, chain):
        _attach_chain_provenance(chain)
        final = chain[-1]
        assert database_summary(final).to_database_string() == database_string(
            final
        )

    @given(chain=derivation_chains())
    @settings(max_examples=40, deadline=None)
    def test_view_caching_ablated_falls_back_to_full_build(self, chain):
        with view_caching_disabled():
            _attach_chain_provenance(chain)  # must be a no-op
            final = chain[-1]
            incremental = database_summary(final)
            full = DatabaseSummary.from_database(final)
            assert _summary_fields(incremental) == _summary_fields(full)


# -- heuristics: delta-derived states score like fresh ones ------------------


class TestHeuristicEquivalence:
    @given(chain=derivation_chains(), target=databases())
    @settings(max_examples=20, deadline=None)
    def test_all_heuristics_score_provenance_states_identically(
        self, chain, target
    ):
        _attach_chain_provenance(chain)
        for name in HEURISTIC_NAMES:
            heuristic = make_heuristic(name, target)
            for state in chain:
                fresh = Database(state.relations)
                assert heuristic.estimate(state) == heuristic.estimate(fresh)

    @pytest.mark.parametrize("heuristic", HEURISTIC_NAMES)
    def test_search_results_identical_with_incremental_disabled(
        self, heuristic
    ):
        pair = matching_pair(3)
        config = SearchConfig(max_states=200_000)

        def run():
            return discover_mapping(
                pair.source,
                pair.target,
                algorithm="ida",
                heuristic=heuristic,
                config=config,
            )

        previous = incremental_heuristics_enabled()
        set_incremental_heuristics(True)
        try:
            incremental = run()
        finally:
            set_incremental_heuristics(previous)
        with incremental_heuristics_disabled():
            recomputed = run()
        assert incremental.stats.states_examined == (
            recomputed.stats.states_examined
        )
        assert str(incremental.expression) == str(recomputed.expression)


# -- interned relations behave like legacy ones ------------------------------


class TestInternedRelationEquivalence:
    @given(rel=relations())
    @settings(max_examples=80, deadline=None)
    def test_columnar_and_legacy_relations_are_interchangeable(self, rel):
        with columnar_kernel_disabled():
            legacy = Relation(rel.name, rel.attributes, rel.rows)
        assert rel == legacy
        assert hash(rel) == hash(legacy)
        assert rel.rows == legacy.rows
        assert rel.value_set(include_null=True) == legacy.value_set(
            include_null=True
        )
        assert rel.has_nulls == legacy.has_nulls

    @given(db=databases())
    @settings(max_examples=60, deadline=None)
    def test_columnar_and_legacy_databases_are_interchangeable(self, db):
        with columnar_kernel_disabled():
            legacy = Database(
                Relation(r.name, r.attributes, r.rows) for r in db
            )
        assert db == legacy
        assert hash(db) == hash(legacy)
        assert database_string(db) == database_string(legacy)


# -- fast JSON renders byte-identically to the stdlib ------------------------

json_values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**53), max_value=2**53),
        st.text(max_size=8),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=6), children, max_size=4),
    ),
    max_leaves=12,
)


class TestSerializationByteIdentity:
    @given(payload=json_values)
    @settings(max_examples=100, deadline=None)
    def test_compact_and_indent_match_stdlib_bytes(self, payload):
        compact = serialize.json_dumps_compact(payload)
        indented = serialize.json_dumps_indent2(payload)
        assert compact == json.dumps(
            payload, sort_keys=True, separators=(",", ":"), ensure_ascii=False
        )
        assert indented == json.dumps(
            payload, sort_keys=True, indent=2, ensure_ascii=False
        )
        assert serialize.json_loads(compact) == payload
        assert serialize.json_loads(indented) == payload

    @given(payload=json_values)
    @settings(max_examples=60, deadline=None)
    def test_backend_fallback_is_byte_identical(self, payload):
        fast = serialize.json_dumps_compact(payload)
        original = serialize._orjson
        serialize._orjson = None
        try:
            slow = serialize.json_dumps_compact(payload)
        finally:
            serialize._orjson = original
        assert fast == slow

    def test_divergent_floats_route_to_stdlib(self):
        payload = {"tiny": 1e-7, "huge": 1e17, "plain": 0.5}
        rendered = serialize.json_dumps_compact(payload)
        assert rendered == json.dumps(
            payload, sort_keys=True, separators=(",", ":"), ensure_ascii=False
        )
        assert serialize.json_loads(rendered) == payload
