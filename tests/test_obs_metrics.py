"""Tests for the metrics registry (repro.obs.metrics)."""

from __future__ import annotations

import pytest

from repro.obs import (
    DEPTH_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_set_to_jumps_forward(self):
        c = Counter("x")
        c.set_to(10)
        assert c.value == 10

    def test_set_to_rejects_decrease(self):
        c = Counter("x")
        c.set_to(10)
        with pytest.raises(ValueError):
            c.set_to(9)


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("t")
        g.set(2.5)
        g.add(-1.0)
        assert g.value == 1.5


class TestHistogram:
    def test_observations_land_in_le_buckets(self):
        h = Histogram("d", (1, 2, 4))
        for value in (0, 1, 2, 3, 100):
            h.observe(value)
        # cumulative-style cells: le_1, le_2, le_4, le_inf
        assert h.counts == [2, 1, 1, 1]
        assert h.total == 5
        assert h.mean == pytest.approx(106 / 5)

    def test_as_dict(self):
        h = Histogram("d", (1, 2))
        h.observe(1)
        data = h.as_dict()
        assert data["total"] == 1
        assert data["buckets"] == {"le_1": 1, "le_2": 0, "le_inf": 0}

    def test_empty_mean_is_zero(self):
        assert Histogram("d", (1,)).mean == 0.0

    def test_rejects_empty_buckets(self):
        with pytest.raises(ValueError):
            Histogram("d", ())

    def test_rejects_non_increasing_buckets(self):
        with pytest.raises(ValueError):
            Histogram("d", (1, 1, 2))


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h", DEPTH_BUCKETS) is registry.histogram(
            "h", DEPTH_BUCKETS
        )

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ValueError, match="Counter"):
            registry.gauge("a")

    def test_histogram_bucket_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", (1, 2))
        with pytest.raises(ValueError, match="buckets"):
            registry.histogram("h", (1, 2, 3))

    def test_names_contains_len(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.gauge("a")
        assert registry.names() == ["a", "b"]
        assert "a" in registry and "c" not in registry
        assert len(registry) == 2

    def test_as_dict_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h", (1,)).observe(0)
        snapshot = registry.as_dict()
        assert snapshot["c"] == 3
        assert snapshot["g"] == 1.5
        assert snapshot["h"]["total"] == 1

    def test_publish_stats_splits_ints_and_floats(self):
        registry = MetricsRegistry()
        registry.publish_stats({"states_examined": 7, "elapsed_seconds": 0.25})
        assert registry.counter("search.states_examined").value == 7
        assert registry.gauge("search.elapsed_seconds").value == 0.25

    def test_publish_stats_accumulates_across_runs(self):
        registry = MetricsRegistry()
        registry.publish_stats({"states_examined": 7, "elapsed_seconds": 0.25})
        registry.publish_stats({"states_examined": 3, "elapsed_seconds": 0.75})
        assert registry.counter("search.states_examined").value == 10
        assert registry.gauge("search.elapsed_seconds").value == 1.0


class TestSearchIntegration:
    def test_registry_fed_by_real_run(self):
        from repro import discover_mapping
        from repro.workloads import matching_pair

        pair = matching_pair(3)
        registry = MetricsRegistry()
        result = discover_mapping(
            pair.source,
            pair.target,
            algorithm="ida",
            heuristic="h0",
            metrics=registry,
            simplify=False,
        )
        assert result.found
        # published snapshot matches the live stats exactly
        assert (
            registry.counter("search.states_examined").value
            == result.stats.states_examined
        )
        # live histograms observed once per examination / generation event
        depth = registry.histogram("search.depth", DEPTH_BUCKETS)
        assert depth.total == result.stats.states_examined
        assert registry.gauge("search.elapsed_seconds").value == pytest.approx(
            result.stats.elapsed_seconds
        )
