"""Unit tests for MappingProblem: goal test, pruning, symmetry breaking."""

from __future__ import annotations

import pytest

from repro.fira import (
    ApplyFunction,
    CartesianProduct,
    Demote,
    DropAttribute,
    Merge,
    Partition,
    Promote,
    RenameAttribute,
    RenameRelation,
)
from repro.relational import NULL, Database, Relation
from repro.search import MappingProblem, SearchConfig
from repro.semantics import Correspondence
from repro.workloads import matching_pair, total_cost_correspondence


def ops_of(problem, state, last_op=None, kind=None):
    moves = [op for op, _child in problem.successors(state, last_op)]
    if kind is not None:
        moves = [op for op in moves if isinstance(op, kind)]
    return moves


class TestGoal:
    def test_goal_is_containment(self, db_a, db_b):
        problem = MappingProblem(db_b, db_a)
        assert not problem.is_goal(db_b)
        assert problem.is_goal(db_a)

    def test_goal_tolerates_superset(self, db_a):
        wider = db_a.with_relation(Relation("Extra", ("Z",), [(1,)]))
        problem = MappingProblem(db_a, db_a)
        assert problem.is_goal(wider)

    def test_initial_state(self, db_a, db_b):
        assert MappingProblem(db_b, db_a).initial_state() == db_b


class TestRenamePruning:
    def test_renames_target_missing_names_only(self):
        pair = matching_pair(3)
        problem = MappingProblem(pair.source, pair.target)
        renames = ops_of(problem, pair.source, kind=RenameAttribute)
        assert renames  # proposals exist
        assert {op.new for op in renames} <= {"B01", "B02", "B03"}

    def test_no_renames_once_attributes_present(self):
        pair = matching_pair(2)
        problem = MappingProblem(pair.source, pair.target)
        assert ops_of(problem, pair.target, kind=RenameAttribute) == []

    def test_never_renames_away_target_attribute(self):
        source = Database.single(Relation("R", ("B01", "X"), [(1, 2)]))
        target = Database.single(Relation("R", ("B01", "B02"), [(1, 2)]))
        problem = MappingProblem(source, target)
        olds = {op.old for op in ops_of(problem, source, kind=RenameAttribute)}
        assert "B01" not in olds

    def test_symmetry_breaking_orders_runs(self):
        pair = matching_pair(3)
        problem = MappingProblem(pair.source, pair.target)
        last = RenameAttribute("R", "A02", "B02")
        state = last.apply(pair.source)
        olds = {op.old for op in ops_of(problem, state, last, RenameAttribute)}
        assert olds == {"A03"}  # A01 < A02 is pruned by canonical order

    def test_symmetry_breaking_disabled(self):
        pair = matching_pair(3)
        config = SearchConfig(break_symmetry=False)
        problem = MappingProblem(pair.source, pair.target, config=config)
        last = RenameAttribute("R", "A02", "B02")
        state = last.apply(pair.source)
        olds = {op.old for op in ops_of(problem, state, last, RenameAttribute)}
        assert olds == {"A01", "A03"}

    def test_relation_rename_proposed(self, db_a, db_b):
        problem = MappingProblem(db_b, db_a)
        renames = ops_of(problem, db_b, kind=RenameRelation)
        assert RenameRelation("Prices", "Flights") in renames


class TestDynamicPruning:
    def test_promote_only_for_missing_target_attribute_values(self, db_a, db_b):
        problem = MappingProblem(db_b, db_a)
        promotes = ops_of(problem, db_b, kind=Promote)
        assert promotes  # Route values are target attribute names
        assert all(op.name_attr == "Route" for op in promotes)

    def test_no_promote_when_target_flat(self, db_a, db_b):
        problem = MappingProblem(db_a, db_b)  # A -> B: no promote needed
        assert ops_of(problem, db_a, kind=Promote) == []

    def test_partition_only_for_missing_relation_values(self, db_b, db_c):
        problem = MappingProblem(db_b, db_c)
        partitions = ops_of(problem, db_b, kind=Partition)
        assert partitions == [Partition("Prices", "Carrier")]

    def test_demote_when_metadata_needed_as_data(self, db_a, db_b):
        problem = MappingProblem(db_a, db_b)  # A's route columns -> B's data
        demotes = ops_of(problem, db_a, kind=Demote)
        assert demotes == [Demote("Flights")]

    def test_no_demote_when_values_covered(self, db_a, db_b):
        problem = MappingProblem(db_b, db_a)
        assert ops_of(problem, db_b, kind=Demote) == []

    def test_merge_requires_nulls(self, db_a, db_b):
        problem = MappingProblem(db_b, db_a)
        assert ops_of(problem, db_b, kind=Merge) == []
        # after promote + drops the ragged tuples can actually coalesce
        narrowed = (
            Promote("Prices", "Route", "Cost")
            .apply(db_b)
            .relation("Prices")
            .drop_attribute("Route")
            .drop_attribute("Cost")
        )
        state = Database.single(narrowed)
        merges = ops_of(problem, state, kind=Merge)
        assert Merge("Prices", "Carrier") in merges

    def test_effectless_merge_filtered(self, db_a, db_b):
        """Right after promote, merging on Carrier changes nothing (Route
        and Cost still conflict), so the move is dropped as a no-op."""
        problem = MappingProblem(db_b, db_a)
        promoted = Promote("Prices", "Route", "Cost").apply(db_b)
        assert (
            Merge("Prices", "Carrier").apply(promoted) != promoted
            or ops_of(problem, promoted, kind=Merge) == []
        )

    def test_drop_requires_nulls_or_reserved(self, db_a, db_b):
        problem = MappingProblem(db_b, db_a)
        assert ops_of(problem, db_b, kind=DropAttribute) == []
        promoted = Promote("Prices", "Route", "Cost").apply(db_b)
        drops = {op.attribute for op in ops_of(problem, promoted, kind=DropAttribute)}
        assert "Route" in drops and "Cost" in drops
        # never drop names the target carries
        assert "Carrier" not in drops and "ATL29" not in drops

    def test_product_needs_spanning_target(self, db_c):
        target = Database.single(
            Relation("Wide", ("Route", "BaseCost"), [("ATL29", 100)])
        )
        problem = MappingProblem(db_c, target)
        # both operands carry the same attributes: nothing spans
        assert ops_of(problem, db_c, kind=CartesianProduct) == []

    def test_product_proposed_when_spanning(self):
        source = Database(
            [
                Relation("L", ("A",), [(1,)]),
                Relation("R", ("B",), [(2,)]),
            ]
        )
        target = Database.single(Relation("T", ("A", "B"), [(1, 2)]))
        problem = MappingProblem(source, target)
        products = ops_of(problem, source, kind=CartesianProduct)
        assert products == [CartesianProduct("L", "R")]


class TestLambdaProposals:
    def test_lambda_from_correspondence(self, db_b, db_c):
        corr = total_cost_correspondence()
        problem = MappingProblem(db_b, db_c, correspondences=[corr])
        lambdas = ops_of(problem, db_b, kind=ApplyFunction)
        assert lambdas == [
            ApplyFunction("Prices", "add", ("Cost", "AgentFee"), "TotalCost")
        ]

    def test_lambda_not_reproposed_once_applied(self, db_b, db_c):
        corr = total_cost_correspondence()
        problem = MappingProblem(db_b, db_c, correspondences=[corr])
        applied = ApplyFunction.from_correspondence("Prices", corr).apply(
            db_b, problem.registry
        )
        assert ops_of(problem, applied, kind=ApplyFunction) == []

    def test_lambda_respects_relation_scope(self, db_b, db_c):
        corr = Correspondence(
            "add", ("Cost", "AgentFee"), "TotalCost", relation="Other"
        )
        problem = MappingProblem(db_b, db_c, correspondences=[corr])
        assert ops_of(problem, db_b, kind=ApplyFunction) == []

    def test_bad_correspondence_rejected_at_construction(self, db_b, db_c):
        from repro.errors import CorrespondenceError

        bad = Correspondence("add", ("Cost",), "TotalCost")
        with pytest.raises(CorrespondenceError):
            MappingProblem(db_b, db_c, correspondences=[bad])


class TestSuccessorHygiene:
    def test_no_duplicate_children(self, db_a, db_b):
        problem = MappingProblem(db_b, db_a)
        children = [child for _op, child in problem.successors(db_b)]
        assert len(children) == len(set(children))

    def test_no_noop_children(self, db_a, db_b):
        problem = MappingProblem(db_b, db_a)
        assert all(child != db_b for _op, child in problem.successors(db_b))

    def test_deterministic_order(self, db_a, db_b):
        problem = MappingProblem(db_b, db_a)
        first = [str(op) for op, _ in problem.successors(db_b)]
        second = [str(op) for op, _ in problem.successors(db_b)]
        assert first == second

    def test_disabled_families_not_proposed(self, db_b, db_c):
        config = SearchConfig().without_operators("partition")
        problem = MappingProblem(db_b, db_c, config=config)
        assert ops_of(problem, db_b, kind=Partition) == []

    def test_stats_generation_counted(self, db_a, db_b):
        from repro.search import SearchStats

        problem = MappingProblem(db_b, db_a)
        stats = SearchStats()
        children = problem.successors(db_b, stats=stats)
        assert stats.states_generated == len(children)
