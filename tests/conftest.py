"""Shared fixtures: the Fig. 1 databases and small helper instances."""

from __future__ import annotations

import pytest

from repro import Database, Relation
from repro.workloads import flights_a, flights_b, flights_c


@pytest.fixture
def db_a() -> Database:
    """FlightsA (routes as columns)."""
    return flights_a()


@pytest.fixture
def db_b() -> Database:
    """FlightsB (fully flat)."""
    return flights_b()


@pytest.fixture
def db_c() -> Database:
    """FlightsC (carriers as relation names)."""
    return flights_c()


@pytest.fixture
def tiny() -> Database:
    """A minimal two-column relation used by operator unit tests."""
    return Database.single(
        Relation("T", ("X", "Y"), [("x1", 1), ("x2", 2)])
    )


@pytest.fixture
def people() -> Database:
    """A small people table with string values."""
    return Database.from_dict(
        {
            "People": [
                {"First": "John", "Last": "Smith", "Age": 40},
                {"First": "Jane", "Last": "Doe", "Age": 35},
            ]
        }
    )
