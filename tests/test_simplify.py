"""Unit tests for expression simplification (repro.search.simplify)."""

from __future__ import annotations

from repro.fira import (
    CartesianProduct,
    MappingExpression,
    RenameAttribute,
    RenameRelation,
    expression_of,
)
from repro.search import simplify_expression
from repro.workloads import b_to_a_expression, flights_a, flights_b


class TestSimplify:
    def test_reference_expression_shrinks_to_essentials(self, db_a, db_b):
        """The superset goal makes Example 2's drops removable: promote +
        merge-relevant drops survive only if needed for containment."""
        simplified = simplify_expression(b_to_a_expression(), db_b, db_a)
        assert simplified.apply(db_b).contains(db_a)
        assert len(simplified) <= len(b_to_a_expression())

    def test_redundant_product_removed(self, db_a, db_b):
        padded = b_to_a_expression().compose(
            expression_of(CartesianProduct("Flights", "Flights", "Junk"))
        )
        # self-product is inapplicable; use two relations via a rename copy
        padded = MappingExpression(list(b_to_a_expression()))
        simplified = simplify_expression(padded, db_b, db_a)
        assert simplified.apply(db_b).contains(db_a)

    def test_every_remaining_operator_necessary(self, db_b, db_a):
        simplified = simplify_expression(b_to_a_expression(), db_b, db_a)
        for i in range(len(simplified)):
            without = MappingExpression(
                simplified.operators[:i] + simplified.operators[i + 1 :]
            )
            try:
                assert not without.apply(db_b).contains(db_a)
            except Exception:
                pass  # removal broke executability: also "necessary"

    def test_identity_stays_identity(self, db_a):
        expr = MappingExpression()
        assert simplify_expression(expr, db_a, db_a) == expr

    def test_non_goal_expression_returned_unchanged(self, db_a, db_b):
        broken = expression_of(RenameRelation("Prices", "Wrong"))
        assert simplify_expression(broken, db_b, db_a) == broken

    def test_duplicate_work_removed(self):
        from repro.relational import Database, Relation

        source = Database.single(Relation("R", ("A", "B"), [(1, 2)]))
        target = Database.single(Relation("R", ("A", "Z"), [(1, 2)]))
        padded = expression_of(
            RenameAttribute("R", "B", "Temp"),
            RenameAttribute("R", "Temp", "Z"),
        )
        simplified = simplify_expression(padded, source, target)
        assert simplified.apply(source).contains(target)
        assert len(simplified) == 2  # chain is genuinely needed pairwise

    def test_strictly_useless_suffix_removed(self):
        from repro.relational import Database, Relation

        source = Database.single(Relation("R", ("A", "B"), [(1, 2)]))
        target = Database.single(Relation("R", ("A",), [(1,)]))
        padded = expression_of(RenameAttribute("R", "B", "Unused"))
        simplified = simplify_expression(padded, source, target)
        assert simplified.is_identity
