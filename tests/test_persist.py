"""Tests for experiment persistence (repro.experiments.persist)."""

from __future__ import annotations

import pytest

from repro.experiments import (
    ExperimentPoint,
    ExperimentSeries,
    load_series,
    save_series,
    series_from_dict,
    series_to_dict,
)


def sample_series():
    return ExperimentSeries(
        "ida/h1",
        (
            ExperimentPoint(2, 3, "found", expression_size=2),
            ExperimentPoint(4, 5, "found", expression_size=4),
            ExperimentPoint(8, 200001, "budget_exceeded"),
        ),
    )


class TestDictRoundtrip:
    def test_roundtrip(self):
        series = sample_series()
        assert series_from_dict(series_to_dict(series)) == series

    def test_missing_expression_size_defaults(self):
        data = series_to_dict(sample_series())
        for point in data["points"]:
            point.pop("expression_size")
        restored = series_from_dict(data)
        assert all(p.expression_size == 0 for p in restored.points)

    def test_trace_path_roundtrip(self):
        series = ExperimentSeries(
            "ida/h0",
            (ExperimentPoint(2, 3, "found", trace_path="traces/run_x2.jsonl"),),
        )
        restored = series_from_dict(series_to_dict(series))
        assert restored.points[0].trace_path == "traces/run_x2.jsonl"
        assert restored == series

    def test_missing_trace_path_defaults(self):
        # archives written before the telemetry layer carry no trace_path
        data = series_to_dict(sample_series())
        for point in data["points"]:
            point.pop("trace_path")
        restored = series_from_dict(data)
        assert all(p.trace_path == "" for p in restored.points)


class TestFileRoundtrip:
    def test_save_and_load(self, tmp_path):
        path = tmp_path / "results" / "fig5.json"
        save_series(path, [sample_series()], metadata={"budget": 200000})
        loaded, metadata = load_series(path)
        assert loaded == [sample_series()]
        assert metadata == {"budget": 200000}

    def test_creates_parent_directories(self, tmp_path):
        path = save_series(tmp_path / "a" / "b" / "x.json", [sample_series()])
        assert path.exists()

    def test_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format_version": 99, "series": []}')
        with pytest.raises(ValueError):
            load_series(path)

    def test_deterministic_output(self, tmp_path):
        a = save_series(tmp_path / "a.json", [sample_series()])
        b = save_series(tmp_path / "b.json", [sample_series()])
        assert a.read_text() == b.read_text()

    def test_real_run_roundtrip(self, tmp_path):
        from repro.experiments import run_matching_series

        series = run_matching_series("rbfs", "h1", (2, 3))
        save_series(tmp_path / "run.json", [series])
        loaded, _ = load_series(tmp_path / "run.json")
        assert loaded[0] == series
