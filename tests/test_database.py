"""Unit tests for repro.relational.database.Database."""

from __future__ import annotations

import pytest

from repro.errors import NameCollisionError, SchemaError, UnknownRelationError
from repro.relational import NULL, Database, Relation


def make_db():
    return Database(
        [
            Relation("R", ("A", "B"), [(1, "x")]),
            Relation("S", ("C",), [("y",)]),
        ]
    )


class TestConstruction:
    def test_relations_sorted_by_name(self):
        db = Database([Relation("Z", ("A",), []), Relation("A", ("A",), [])])
        assert db.relation_names == ("A", "Z")

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Database([Relation("R", ("A",), []), Relation("R", ("B",), [])])

    def test_non_relation_rejected(self):
        with pytest.raises(SchemaError):
            Database(["not a relation"])  # type: ignore[list-item]

    def test_from_dict(self, db_b):
        assert db_b.relation_names == ("Prices",)
        assert db_b.relation("Prices").cardinality == 4

    def test_single(self):
        db = Database.single(Relation("R", ("A",), [(1,)]))
        assert len(db) == 1

    def test_empty_database(self):
        db = Database()
        assert len(db) == 0
        assert not db


class TestAccessors:
    def test_relation_lookup(self):
        assert make_db().relation("R").name == "R"

    def test_unknown_relation(self):
        with pytest.raises(UnknownRelationError) as err:
            make_db().relation("Q")
        assert err.value.name == "Q"
        assert "R" in err.value.available

    def test_has_relation(self):
        db = make_db()
        assert db.has_relation("R")
        assert not db.has_relation("Q")

    def test_total_tuples(self):
        assert make_db().total_tuples == 2

    def test_attribute_names_union(self):
        assert make_db().attribute_names() == {"A", "B", "C"}

    def test_value_set_union(self):
        assert make_db().value_set() == {1, "x", "y"}

    def test_has_nulls(self):
        assert not make_db().has_nulls
        db = Database.single(Relation("R", ("A",), [(NULL,)]))
        assert db.has_nulls


class TestDerivations:
    def test_with_relation_adds(self):
        db = make_db().with_relation(Relation("T", ("D",), []))
        assert db.has_relation("T")
        assert len(db) == 3

    def test_with_relation_replaces(self):
        db = make_db().with_relation(Relation("R", ("Z",), [(0,)]))
        assert db.relation("R").attributes == ("Z",)

    def test_with_relation_no_replace(self):
        with pytest.raises(NameCollisionError):
            make_db().with_relation(Relation("R", ("Z",), []), replace=False)

    def test_with_relations(self):
        db = make_db().with_relations(
            [Relation("T", ("D",), []), Relation("U", ("E",), [])]
        )
        assert len(db) == 4

    def test_without_relation(self):
        db = make_db().without_relation("S")
        assert db.relation_names == ("R",)

    def test_without_unknown_relation(self):
        with pytest.raises(UnknownRelationError):
            make_db().without_relation("Q")

    def test_rename_relation(self):
        db = make_db().rename_relation("R", "Renamed")
        assert db.has_relation("Renamed")
        assert not db.has_relation("R")

    def test_rename_relation_identity(self):
        db = make_db()
        assert db.rename_relation("R", "R") is db

    def test_rename_relation_collision(self):
        with pytest.raises(NameCollisionError):
            make_db().rename_relation("R", "S")

    def test_original_unchanged(self):
        db = make_db()
        db.with_relation(Relation("T", ("D",), []))
        assert not db.has_relation("T")


class TestEqualityContainment:
    def test_equality_order_independent(self):
        left = Database([Relation("A", ("X",), [(1,)]), Relation("B", ("Y",), [(2,)])])
        right = Database([Relation("B", ("Y",), [(2,)]), Relation("A", ("X",), [(1,)])])
        assert left == right
        assert hash(left) == hash(right)

    def test_not_equal_different_rows(self):
        left = Database.single(Relation("A", ("X",), [(1,)]))
        right = Database.single(Relation("A", ("X",), [(2,)]))
        assert left != right

    def test_contains_self(self, db_a):
        assert db_a.contains(db_a)

    def test_contains_requires_names(self):
        container = Database.single(Relation("R", ("A",), [(1,)]))
        needle = Database.single(Relation("Other", ("A",), [(1,)]))
        assert not container.contains(needle)

    def test_contains_projection(self):
        container = Database.single(Relation("R", ("A", "B"), [(1, 2)]))
        needle = Database.single(Relation("R", ("A",), [(1,)]))
        assert container.contains(needle)
        assert not needle.contains(container)

    def test_contains_extra_relations_ok(self):
        container = make_db()
        needle = Database.single(Relation("S", ("C",), [("y",)]))
        assert container.contains(needle)

    def test_contains_empty_database(self, db_a):
        assert db_a.contains(Database())

    def test_repr_and_text(self):
        db = make_db()
        assert "R(2x1)" in repr(db)
        assert "S:" in db.to_text()
