"""SQL dialect rendering: shared quoting rules and per-engine divergences."""

from __future__ import annotations

import pytest

from repro.errors import SqlRenderingError
from repro.relational import NULL
from repro.relational.dialect import (
    CANONICAL_DIALECT,
    DIALECTS,
    DuckDbDialect,
    MiniSqlDialect,
    SqlDialect,
    SqliteDialect,
    get_dialect,
)
from repro.relational.sql import quote_identifier, quote_literal

ALL_DIALECTS = sorted(DIALECTS.values(), key=lambda d: d.name)


def _ids(dialects):
    return [d.name for d in dialects]


class TestIdentifierQuoting:
    """All backends quote identifiers identically (satellite: shared rules)."""

    @pytest.mark.parametrize("dialect", ALL_DIALECTS, ids=_ids(ALL_DIALECTS))
    def test_plain_identifier(self, dialect):
        assert dialect.quote_identifier("Carrier") == '"Carrier"'

    @pytest.mark.parametrize("dialect", ALL_DIALECTS, ids=_ids(ALL_DIALECTS))
    def test_embedded_double_quote_is_doubled(self, dialect):
        assert dialect.quote_identifier('a"b') == '"a""b"'

    @pytest.mark.parametrize("dialect", ALL_DIALECTS, ids=_ids(ALL_DIALECTS))
    def test_non_ascii_identifier_passes_through(self, dialect):
        assert dialect.quote_identifier("Straße") == '"Straße"'

    @pytest.mark.parametrize("dialect", ALL_DIALECTS, ids=_ids(ALL_DIALECTS))
    def test_empty_identifier_rejected(self, dialect):
        with pytest.raises(SqlRenderingError):
            dialect.quote_identifier("")

    @pytest.mark.parametrize("dialect", ALL_DIALECTS, ids=_ids(ALL_DIALECTS))
    def test_nul_byte_rejected(self, dialect):
        with pytest.raises(SqlRenderingError):
            dialect.quote_identifier("a\x00b")

    @pytest.mark.parametrize("dialect", ALL_DIALECTS, ids=_ids(ALL_DIALECTS))
    def test_non_string_rejected(self, dialect):
        with pytest.raises(SqlRenderingError):
            dialect.quote_identifier(None)

    def test_identifier_quoting_identical_across_dialects(self):
        specimens = ["x", 'say "hi"', "füße", "a'b", "  spaced  "]
        for name in specimens:
            rendered = {d.quote_identifier(name) for d in ALL_DIALECTS}
            assert len(rendered) == 1, name


class TestLiteralQuoting:
    @pytest.mark.parametrize("dialect", ALL_DIALECTS, ids=_ids(ALL_DIALECTS))
    def test_string_single_quotes_doubled(self, dialect):
        assert dialect.quote_literal("O'Hare") == "'O''Hare'"

    @pytest.mark.parametrize("dialect", ALL_DIALECTS, ids=_ids(ALL_DIALECTS))
    def test_null(self, dialect):
        assert dialect.quote_literal(NULL) == "NULL"

    @pytest.mark.parametrize("dialect", ALL_DIALECTS, ids=_ids(ALL_DIALECTS))
    def test_numbers(self, dialect):
        assert dialect.quote_literal(42) == "42"
        assert dialect.quote_literal(1.5) == "1.5"

    @pytest.mark.parametrize("dialect", ALL_DIALECTS, ids=_ids(ALL_DIALECTS))
    def test_nul_byte_in_string_rejected(self, dialect):
        with pytest.raises(SqlRenderingError):
            dialect.quote_literal("a\x00b")

    @pytest.mark.parametrize("dialect", ALL_DIALECTS, ids=_ids(ALL_DIALECTS))
    @pytest.mark.parametrize("bad", [float("inf"), float("-inf"), float("nan")])
    def test_non_finite_floats_rejected(self, dialect, bad):
        with pytest.raises(SqlRenderingError):
            dialect.quote_literal(bad)

    def test_booleans_per_engine(self):
        assert MiniSqlDialect().quote_literal(True) == "TRUE"
        assert DuckDbDialect().quote_literal(False) == "FALSE"
        with pytest.raises(SqlRenderingError):
            SqliteDialect().quote_literal(True)


class TestModuleLevelHelpers:
    """The historical quote_* functions keep their canonical behavior."""

    def test_quote_identifier_matches_canonical(self):
        assert quote_identifier("a") == CANONICAL_DIALECT.quote_identifier("a")

    def test_quote_literal_booleans(self):
        assert quote_literal(True) == "TRUE"
        assert quote_literal(False) == "FALSE"

    def test_quote_identifier_rejects_empty(self):
        with pytest.raises(SqlRenderingError):
            quote_identifier("")


class TestDialectBehaviors:
    def test_set_vs_bag_semantics(self):
        assert MiniSqlDialect().select_modifier() == ""
        assert SqliteDialect().select_modifier() == "DISTINCT "
        assert DuckDbDialect().select_modifier() == "DISTINCT "

    def test_drop_column_in_place(self):
        assert MiniSqlDialect().drop_column_in_place()
        assert not SqliteDialect().drop_column_in_place()

    def test_sqlite_cast_guards_integral_reals(self):
        cast = SqliteDialect().cast_to_text('"x"')
        assert "typeof" in cast and "CAST" in cast

    def test_canonical_cast_is_plain(self):
        assert CANONICAL_DIALECT.cast_to_text('"x"') == 'CAST("x" AS TEXT)'

    def test_sqlite_values_table_uses_union_all(self):
        rendered = SqliteDialect().values_table(
            [("T", "a"), ("T", "b")], "__meta", ("REL", "ATT")
        )
        assert "UNION ALL" in rendered and "VALUES" not in rendered

    def test_ansi_values_table(self):
        rendered = SqlDialect().values_table(
            [("T", "a")], "__meta", ("REL", "ATT")
        )
        assert rendered == "(VALUES ('T', 'a')) AS __meta(\"REL\", \"ATT\")"

    def test_sqlite_function_call_quotes_keyword_names(self):
        call = SqliteDialect().function_call("add", ['"A"', '"B"'])
        assert call == '"add"("A", "B")'
        assert MiniSqlDialect().function_call("add", ['"A"']) == 'add("A")'


class TestRegistry:
    def test_get_dialect(self):
        assert get_dialect("sqlite").name == "sqlite"
        assert get_dialect("minisql") is DIALECTS["minisql"]

    def test_unknown_dialect(self):
        with pytest.raises(SqlRenderingError, match="unknown SQL dialect"):
            get_dialect("oracle9i")

    def test_canonical_is_minisql(self):
        assert CANONICAL_DIALECT.name == "minisql"
