"""Tests for the hybrid content+structure heuristic (extension)."""

from __future__ import annotations

from repro import discover_mapping
from repro.heuristics import (
    CosineHeuristic,
    HybridHeuristic,
    MissingTokensHeuristic,
    make_heuristic,
)
from repro.workloads import bamm_domain, flights_a, flights_b, matching_pair


class TestHybridHeuristic:
    def test_registered(self, db_a):
        h = make_heuristic("hybrid", db_a)
        assert isinstance(h, HybridHeuristic)

    def test_zero_on_target(self, db_a):
        assert HybridHeuristic(db_a)(db_a) == 0

    def test_is_pointwise_max(self, db_a, db_b):
        hybrid = HybridHeuristic(db_a, k=12)
        h1 = MissingTokensHeuristic(db_a)
        cosine = CosineHeuristic(db_a, k=12)
        for state in (db_a, db_b):
            assert hybrid(state) == max(h1(state), cosine(state))

    def test_dominates_components(self, db_a, db_b):
        """max of two lower bounds is a tighter (still >=) estimate."""
        hybrid = HybridHeuristic(db_a, k=12)
        h1 = MissingTokensHeuristic(db_a)
        assert hybrid(db_b) >= h1(db_b)

    def test_solves_matching(self):
        pair = matching_pair(6)
        result = discover_mapping(pair.source, pair.target, heuristic="hybrid")
        assert result.found

    def test_solves_flights_restructuring(self):
        result = discover_mapping(
            flights_b(), flights_a(), heuristic="hybrid"
        )
        assert result.found
        assert result.expression.apply(flights_b()).contains(flights_a())

    def test_no_worse_than_h1_on_hard_bamm_task(self):
        """The content component breaks h1's rename plateaus."""
        domain = bamm_domain("Automobiles")
        hardest = max(domain.tasks, key=lambda t: t.target_size)
        h1_result = discover_mapping(
            hardest.source, hardest.target, heuristic="h1"
        )
        hybrid_result = discover_mapping(
            hardest.source, hardest.target, heuristic="hybrid"
        )
        assert hybrid_result.found
        assert (
            hybrid_result.states_examined <= h1_result.states_examined
        )
