"""Tests for the Fig. 1 Flights scenario — data and end-to-end discovery."""

from __future__ import annotations

import pytest

from repro import discover_mapping
from repro.workloads import (
    b_to_a_expression,
    b_to_c_expression,
    flights_a,
    flights_b,
    flights_c,
    flights_registry,
    total_cost_correspondence,
)


class TestData:
    def test_shapes_match_figure1(self, db_a, db_b, db_c):
        assert db_a.relation("Flights").arity == 4
        assert db_a.relation("Flights").cardinality == 2
        assert db_b.relation("Prices").cardinality == 4
        assert db_c.relation_names == ("AirEast", "JetWest")
        assert db_c.relation("AirEast").cardinality == 2

    def test_same_information_content(self, db_a, db_b):
        """Rosetta Stone: every base fare appears in all representations."""
        assert {100, 110, 200, 220} <= db_a.value_set()
        assert {100, 110, 200, 220} <= db_b.value_set()

    def test_total_cost_is_cost_plus_fee(self, db_c):
        air_east = {
            (d["Route"], d["BaseCost"], d["TotalCost"])
            for d in db_c.relation("AirEast").iter_dicts()
        }
        assert ("ATL29", 100, 115) in air_east  # 100 + 15


class TestReferenceExpressions:
    def test_b_to_a_exact(self, db_a, db_b):
        assert b_to_a_expression().apply(db_b) == db_a

    def test_b_to_c_contains(self, db_b, db_c):
        out = b_to_c_expression().apply(db_b, flights_registry())
        assert out.contains(db_c)

    def test_correspondence_well_typed(self):
        corr = total_cost_correspondence()
        corr.check_signature(flights_registry())


class TestDiscovery:
    """Integration: TUPELO rediscovers the Fig. 1 mappings from scratch."""

    @pytest.mark.parametrize("algorithm", ["ida", "rbfs"])
    @pytest.mark.parametrize("heuristic", ["h1", "h3", "euclid_norm", "cosine"])
    def test_b_to_a(self, algorithm, heuristic, db_a, db_b):
        result = discover_mapping(
            db_b, db_a, algorithm=algorithm, heuristic=heuristic
        )
        assert result.found
        assert result.expression.apply(db_b).contains(db_a)

    @pytest.mark.parametrize("heuristic", ["h1", "euclid_norm", "cosine"])
    def test_b_to_c_with_lambda(self, heuristic, db_b, db_c):
        result = discover_mapping(
            db_b,
            db_c,
            heuristic=heuristic,
            correspondences=[total_cost_correspondence()],
            registry=flights_registry(),
        )
        assert result.found
        mapped = result.expression.apply(db_b, flights_registry())
        assert mapped.contains(db_c)

    def test_b_to_a_discovered_uses_data_metadata_ops(self, db_a, db_b):
        from repro.fira import Merge, Promote

        result = discover_mapping(db_b, db_a, heuristic="euclid_norm")
        kinds = {type(op) for op in result.expression}
        assert Promote in kinds and Merge in kinds

    def test_a_to_b_needs_selection_so_search_cannot_finish(self, db_a, db_b):
        """A -> B needs a σ filter after unpivot; σ is post-processing only
        (§2.1), so pure search must not claim success."""
        from repro import SearchConfig

        result = discover_mapping(
            db_a, db_b, config=SearchConfig(max_states=3000)
        )
        assert not result.found
