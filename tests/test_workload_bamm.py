"""Tests for the BAMM deep-web workload (Experiment 2 substitute)."""

from __future__ import annotations

import pytest

from repro import discover_mapping
from repro.workloads import (
    DOMAIN_NAMES,
    DOMAIN_SIZES,
    bamm_corpus,
    bamm_domain,
    domain_concepts,
    fixed_source,
)


class TestVocabulary:
    @pytest.mark.parametrize("domain", DOMAIN_NAMES)
    def test_eight_concepts_each(self, domain):
        assert len(domain_concepts(domain)) == 8

    @pytest.mark.parametrize("domain", DOMAIN_NAMES)
    def test_synonyms_unique_within_domain(self, domain):
        seen = set()
        for concept in domain_concepts(domain):
            for synonym in concept.synonyms:
                assert synonym not in seen, f"duplicate synonym {synonym}"
                seen.add(synonym)

    @pytest.mark.parametrize("domain", DOMAIN_NAMES)
    def test_values_unique_within_domain(self, domain):
        values = [c.value for c in domain_concepts(domain)]
        assert len(values) == len(set(values))

    def test_canonical_included_in_synonyms(self):
        for concept in domain_concepts("Books"):
            assert concept.canonical in concept.synonyms

    def test_unknown_domain(self):
        with pytest.raises(KeyError):
            bamm_domain("Gardening")


class TestGeneration:
    def test_paper_counts(self):
        assert DOMAIN_SIZES == {
            "Books": 55,
            "Automobiles": 55,
            "Music": 49,
            "Movies": 52,
        }
        corpus = bamm_corpus()
        for name, domain in corpus.items():
            assert len(domain) == DOMAIN_SIZES[name]

    def test_interface_sizes_in_range(self):
        for domain in bamm_corpus().values():
            for task in domain.tasks:
                assert 1 <= task.target_size <= 8

    def test_deterministic(self):
        assert bamm_domain("Music").tasks == bamm_domain("Music").tasks

    def test_seed_changes_corpus(self):
        assert bamm_domain("Music", seed=1).tasks != bamm_domain(
            "Music", seed=2
        ).tasks

    def test_fixed_source_has_all_canonical_names(self):
        source = fixed_source("Movies")
        rel = source.relation("Movies")
        assert rel.attribute_set == {
            c.canonical for c in domain_concepts("Movies")
        }

    def test_interfaces_have_unique_relation_names(self):
        domain = bamm_domain("Books")
        names = [task.target.relation_names[0] for task in domain.tasks]
        assert len(names) == len(set(names))

    def test_rosetta_stone_values(self):
        """Every target value also appears in the fixed source."""
        domain = bamm_domain("Automobiles")
        source_values = domain.source.value_set()
        for task in domain.tasks:
            assert task.target.value_set() <= source_values


class TestDiscovery:
    @pytest.mark.parametrize("heuristic", ["h1", "cosine", "euclid_norm"])
    def test_sample_tasks_solvable(self, heuristic):
        domain = bamm_domain("Books")
        for task in domain.tasks[:5]:
            result = discover_mapping(
                task.source, task.target, heuristic=heuristic
            )
            assert result.found, f"{task.interface_id} failed with {heuristic}"
            mapped = result.expression.apply(task.source)
            assert mapped.contains(task.target)

    def test_mapping_is_renames_only(self):
        from repro.fira import RenameAttribute, RenameRelation

        domain = bamm_domain("Music")
        result = discover_mapping(
            domain.tasks[0].source, domain.tasks[0].target, heuristic="h1"
        )
        assert result.found
        assert all(
            isinstance(op, (RenameAttribute, RenameRelation))
            for op in result.expression
        )
