"""Span subsystem: tracer span API, tree assembly, rendering, export."""

from __future__ import annotations

import pytest

from repro import SearchConfig, discover_mapping
from repro.obs import (
    MemorySink,
    NullSink,
    Tracer,
    build_span_tree,
    collapsed_stacks,
    render_span_tree,
)
from repro.obs.tracer import _NULL_SPAN
from repro.workloads import matching_pair


@pytest.fixture(scope="module")
def traced_events():
    """Events from one span-traced discovery (ida/h0, small synthetic)."""
    pair = matching_pair(4)
    sink = MemorySink()
    result = discover_mapping(
        pair.source,
        pair.target,
        algorithm="ida",
        heuristic="h0",
        config=SearchConfig(max_states=100_000),
        tracer=Tracer(sink),
    )
    assert result.status == "found"
    return sink.events


class TestTracerSpanApi:
    def test_disabled_tracer_returns_shared_null_span(self):
        tracer = Tracer(NullSink())
        span = tracer.span("anything", attr=1)
        assert span is _NULL_SPAN
        with span as handle:  # context protocol is a no-op
            handle.annotate(counter=3)

    def test_span_events_carry_nesting_and_duration(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("outer", kind="test"):
            with tracer.span("inner") as inner:
                inner.annotate(widgets=2)
        tracer.close()
        starts = [e for e in sink.events if e["event"] == "span_start"]
        ends = [e for e in sink.events if e["event"] == "span_end"]
        assert [s["name"] for s in starts] == ["outer", "inner"]
        assert starts[0].get("parent") is None
        assert starts[1]["parent"] == starts[0]["span"]
        assert starts[0]["kind"] == "test"
        # inner closes before outer, each with a non-negative duration
        assert [e["name"] for e in ends] == ["inner", "outer"]
        assert all(e["dur"] >= 0.0 for e in ends)
        inner_end = ends[0]
        assert inner_end["widgets"] == 2

    def test_out_of_order_close_unwinds_the_stack(self):
        tracer = Tracer(MemorySink())
        outer = tracer.span("outer").__enter__()
        tracer.span("inner").__enter__()
        # closing the outer span first still leaves a clean stack
        outer.__exit__(None, None, None)
        assert tracer._span_stack == []


class TestBuildSpanTree:
    def test_engine_run_has_the_documented_phase_nesting(self, traced_events):
        roots = build_span_tree(traced_events)
        assert [r.name for r in roots] == ["discover"]
        discover = roots[0]
        child_names = [c.name for c in discover.children]
        assert child_names[:2] == ["setup", "search"]
        search = discover.children[1]
        assert "expand_loop" in [c.name for c in search.children]
        expand = next(c for c in search.children if c.name == "expand_loop")
        assert expand.attrs["examined"] > 0
        # phase leaves synthesized from the loop's stats timers
        synthetic = [c for c in expand.children if c.synthetic]
        assert synthetic, "expand_loop should carry phase-attribution leaves"
        assert all(c.span_id is None for c in synthetic)

    def test_totals_nest_and_self_time_is_non_negative(self, traced_events):
        roots = build_span_tree(traced_events)

        def walk(node):
            assert node.total >= 0.0
            assert node.self_time >= 0.0
            for child in node.children:
                if not child.synthetic:
                    assert child.start >= node.start - 1e-9
                walk(child)

        for root in roots:
            walk(root)

    def test_unclosed_span_closes_at_last_timestamp(self):
        events = [
            {"event": "span_start", "seq": 1, "t": 0.0, "span": 1, "name": "a"},
            {"event": "expand", "seq": 2, "t": 0.5, "depth": 1, "n": 1},
        ]
        roots = build_span_tree(events)
        assert len(roots) == 1
        assert roots[0].end == 0.5

    def test_orphan_span_end_is_ignored(self):
        events = [
            {"event": "span_end", "seq": 1, "t": 1.0, "span": 9, "name": "?",
             "dur": 1.0},
        ]
        assert build_span_tree(events) == []

    def test_spanless_trace_yields_empty_forest(self):
        events = [{"event": "expand", "seq": 1, "t": 0.1, "depth": 1, "n": 1}]
        assert build_span_tree(events) == []


class TestRenderAndExport:
    def test_render_lists_every_phase(self, traced_events):
        text = render_span_tree(build_span_tree(traced_events))
        for name in ("discover", "setup", "search", "expand_loop"):
            assert name in text
        assert "attributed from stats timers" in text  # synthetic footnote

    def test_collapsed_stacks_are_flamegraph_shaped(self, traced_events):
        lines = collapsed_stacks(build_span_tree(traced_events))
        assert lines
        for line in lines:
            path, weight = line.rsplit(" ", 1)
            assert int(weight) >= 1
            assert path.startswith("discover")
        assert any(";search;expand_loop" in line for line in lines)
        # frame names are sanitized for the collapsed format
        assert any("successor_generation" in line for line in lines) or any(
            "heuristic_evaluation" in line for line in lines
        ) or any("goal_tests" in line for line in lines)
