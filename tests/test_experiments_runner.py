"""Tests for the experiment runner (repro.experiments.runner)."""

from __future__ import annotations

import pytest

from repro.experiments import (
    ExperimentPoint,
    ExperimentSeries,
    average_states,
    run_bamm_domain,
    run_matching_series,
    run_semantic_series,
)
from repro.workloads import bamm_domain, inventory_domain


class TestMatchingSeries:
    def test_h1_linear_shape(self):
        series = run_matching_series("ida", "h1", sizes=(2, 4, 8))
        assert [p.x for p in series.points] == [2, 4, 8]
        # IDA with h1 examines n+1 states on the canonical path
        assert series.states() == [3, 5, 9]
        assert all(p.found for p in series.points)

    def test_h0_exponential_shape(self):
        series = run_matching_series("ida", "h0", sizes=(2, 3, 4), budget=50_000)
        states = series.states()
        assert states[1] > 2 * states[0]
        assert states[2] > 2 * states[1]

    def test_cutoff_stops_series(self):
        series = run_matching_series(
            "ida", "h0", sizes=(2, 8, 16), budget=500
        )
        assert series.points[-1].status == "budget_exceeded"
        assert len(series.points) == 2  # 16 never attempted

    def test_cutoff_continue_mode(self):
        series = run_matching_series(
            "ida", "h0", sizes=(8, 9), budget=100, stop_after_cutoff=False
        )
        assert len(series.points) == 2

    def test_label(self):
        series = run_matching_series("rbfs", "cosine", sizes=(2,))
        assert series.label == "rbfs/cosine"


class TestBammSeries:
    def test_limit(self):
        domain = bamm_domain("Books")
        series = run_bamm_domain("rbfs", "h1", domain, limit=5)
        assert len(series.points) == 5

    def test_all_found_with_h1(self):
        domain = bamm_domain("Movies")
        series = run_bamm_domain("rbfs", "h1", domain, limit=8, budget=50_000)
        assert all(p.found for p in series.points)

    def test_average(self):
        series = ExperimentSeries(
            "x",
            (
                ExperimentPoint(1, 10, "found"),
                ExperimentPoint(2, 30, "found"),
            ),
        )
        assert average_states(series) == 20

    def test_average_empty(self):
        assert average_states(ExperimentSeries("x", ())) == 0.0


class TestTelemetryHooks:
    def test_trace_dir_persists_one_trace_per_point(self, tmp_path):
        from repro.obs import load_trace, replay_counters

        series = run_matching_series(
            "ida", "h1", sizes=(2, 3), trace_dir=tmp_path / "traces"
        )
        for point in series.points:
            assert point.trace_path
            events = load_trace(point.trace_path)  # schema-validates
            assert replay_counters(events)["states_examined"] == point.states

    def test_trace_filenames_are_filesystem_safe(self, tmp_path):
        series = run_matching_series(
            "ida", "h1", sizes=(2,), trace_dir=tmp_path
        )
        name = series.points[0].trace_path
        assert "/" not in name.rsplit("/", 1)[-1]
        assert name.endswith("_x2.jsonl")

    def test_without_trace_dir_no_paths(self):
        series = run_matching_series("ida", "h1", sizes=(2,))
        assert all(p.trace_path == "" for p in series.points)

    def test_metrics_accumulate_across_series(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        series = run_matching_series(
            "ida", "h1", sizes=(2, 3), metrics=registry
        )
        total = sum(p.states for p in series.points)
        assert registry.counter("search.states_examined").value == total


class TestSemanticSeries:
    def test_h1_series(self):
        series = run_semantic_series(
            "rbfs", "h1", inventory_domain(), counts=(1, 2, 3)
        )
        assert [p.x for p in series.points] == [1, 2, 3]
        assert all(p.found for p in series.points)
        # one lambda per declared function plus the goal state
        assert series.states() == [2, 3, 4]

    def test_counts_clamped_to_domain(self):
        series = run_semantic_series(
            "rbfs", "h1", inventory_domain(), counts=(9, 10, 11)
        )
        assert [p.x for p in series.points] == [9, 10]

    def test_expression_size_recorded(self):
        series = run_semantic_series(
            "rbfs", "h1", inventory_domain(), counts=(3,)
        )
        assert series.points[0].expression_size == 3
