"""Unit tests for the heuristic registry and scaling constants (§5 table)."""

from __future__ import annotations

import pytest

from repro.errors import UnknownHeuristicError
from repro.heuristics import (
    HEURISTIC_NAMES,
    PAPER_SCALING_CONSTANTS,
    default_k,
    heuristic_factory,
    make_heuristic,
)


class TestRegistry:
    def test_all_eight_heuristics(self):
        assert len(HEURISTIC_NAMES) == 8
        assert set(HEURISTIC_NAMES) == {
            "h0",
            "h1",
            "h2",
            "h3",
            "euclid",
            "euclid_norm",
            "cosine",
            "levenshtein",
        }

    @pytest.mark.parametrize("name", HEURISTIC_NAMES)
    def test_make_each(self, name, db_a):
        h = make_heuristic(name, db_a)
        assert h.name == name
        assert h(db_a) == 0

    def test_unknown_name(self, db_a):
        with pytest.raises(UnknownHeuristicError) as err:
            make_heuristic("nope", db_a)
        assert "h1" in err.value.available

    def test_factory_defers_target(self, db_a):
        factory = heuristic_factory("cosine", k=9)
        h = factory(db_a)
        assert h.name == "cosine"
        assert h.k == 9


class TestScalingConstants:
    def test_paper_table(self):
        assert PAPER_SCALING_CONSTANTS["ida"] == {
            "euclid_norm": 7,
            "cosine": 5,
            "levenshtein": 11,
        }
        assert PAPER_SCALING_CONSTANTS["rbfs"] == {
            "euclid_norm": 20,
            "cosine": 24,
            "levenshtein": 15,
        }

    def test_default_k_lookup(self):
        assert default_k("cosine", "ida") == 5
        assert default_k("cosine", "rbfs") == 24
        assert default_k("cosine", None) is None
        assert default_k("h1", "ida") is None

    def test_algorithm_selects_k(self, db_a):
        ida = make_heuristic("levenshtein", db_a, algorithm="ida")
        rbfs = make_heuristic("levenshtein", db_a, algorithm="rbfs")
        assert ida.k == 11
        assert rbfs.k == 15

    def test_explicit_k_overrides(self, db_a):
        h = make_heuristic("cosine", db_a, k=3, algorithm="rbfs")
        assert h.k == 3

    def test_unscaled_ignores_k(self, db_a):
        h = make_heuristic("h1", db_a, k=99)
        assert not hasattr(h, "k")
