"""CLI coverage for the `repro execute` command and backend surfaces."""

from __future__ import annotations

import pytest

from repro.cli import EXIT_DEADLINE_EXCEEDED, main
from repro.relational import load_database_dir, save_database
from repro.workloads import flights_b
from repro.workloads.flights import b_to_a_expression, flights_registry


@pytest.fixture
def prepared(tmp_path):
    source = tmp_path / "source"
    save_database(flights_b(), source)
    expr_file = tmp_path / "expr.txt"
    expr_file.write_text(str(b_to_a_expression()) + "\n")
    return source, expr_file, tmp_path


class TestExecute:
    def test_execute_prints_backend_and_result(self, prepared, capsys):
        source, expr_file, _tmp = prepared
        code = main(
            ["execute", "--expression", str(expr_file), "--source", str(source)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "backend:" in out
        assert "Flights" in out

    def test_execute_matches_algebra_via_output_dir(self, prepared, capsys):
        source, expr_file, tmp = prepared
        out_dir = tmp / "result"
        for backend in ("minisql", "sqlite"):
            code = main(
                [
                    "execute",
                    "--expression",
                    str(expr_file),
                    "--source",
                    str(source),
                    "--backend",
                    backend,
                    "--output",
                    str(out_dir / backend),
                ]
            )
            assert code == 0
        capsys.readouterr()
        expected = b_to_a_expression().apply(flights_b(), flights_registry())
        assert load_database_dir(out_dir / "minisql") == expected
        assert load_database_dir(out_dir / "sqlite") == expected

    def test_show_sql_prints_dialect_script(self, prepared, capsys):
        source, expr_file, _tmp = prepared
        code = main(
            [
                "execute",
                "--expression",
                str(expr_file),
                "--source",
                str(source),
                "--backend",
                "sqlite",
                "--show-sql",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "SELECT DISTINCT" in out

    def test_unknown_backend_exits_2_with_known_list(self, prepared, capsys):
        source, expr_file, _tmp = prepared
        code = main(
            [
                "execute",
                "--expression",
                str(expr_file),
                "--source",
                str(source),
                "--backend",
                "bogus",
            ]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown backend 'bogus'" in err
        for name in ("duckdb", "minisql", "sqlite"):
            assert name in err

    def test_zero_deadline_exits_3(self, prepared, capsys):
        source, expr_file, _tmp = prepared
        code = main(
            [
                "execute",
                "--expression",
                str(expr_file),
                "--source",
                str(source),
                "--deadline",
                "0",
            ]
        )
        err = capsys.readouterr().err
        assert code == EXIT_DEADLINE_EXCEEDED
        assert "deadline" in err


class TestDiscoverExecute:
    def test_discover_execute_prints_backend_result(self, capsys):
        code = main(["discover", "--synthetic", "3", "--execute"])
        out = capsys.readouterr().out
        assert code == 0
        assert "executed on backend" in out
        assert "B01" in out

    def test_discover_bogus_backend_fails_before_search(self, capsys):
        code = main(
            ["discover", "--synthetic", "3", "--execute", "--backend", "nope"]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown backend 'nope'" in err


class TestInfoBackends:
    def test_info_lists_backends(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "backends:" in out
        assert "minisql" in out and "sqlite" in out
        # duckdb is listed either as available or with its unavailability
        # reason (probed via importlib) — never silently omitted
        assert "duckdb" in out
