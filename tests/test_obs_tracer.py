"""Tests for the tracing core (repro.obs: events, sinks, tracer)."""

from __future__ import annotations

import json
import logging

import pytest

from repro.errors import (
    ObservabilityError,
    TraceFormatError,
    TraceWriteError,
    TupeloError,
)
from repro.obs import (
    EXPAND,
    SCHEMA_VERSION,
    SEARCH_START,
    TRACE_HEADER,
    JsonlSink,
    LoggingSink,
    MemorySink,
    NullSink,
    Tracer,
    load_trace,
    memory_tracer,
    record_jsonl,
    validate_event,
    validate_events,
)
from repro.obs.tracer import NULL_TRACER


class TestTracer:
    def test_emit_builds_envelope(self):
        tracer, sink = memory_tracer()
        tracer.emit(EXPAND, depth=2, n=1)
        tracer.emit(EXPAND, depth=3, n=2)
        assert len(sink) == 2
        first, second = sink.events
        assert first["event"] == EXPAND
        assert (first["seq"], second["seq"]) == (1, 2)
        assert 0.0 <= first["t"] <= second["t"]
        assert first["depth"] == 2 and first["n"] == 1

    def test_disabled_tracer_emits_nothing(self):
        tracer = Tracer(NullSink())
        assert not tracer.enabled
        tracer.emit(EXPAND, depth=1, n=1)
        assert tracer.seq == 0

    def test_default_sink_is_null(self):
        assert not Tracer().enabled
        assert not NULL_TRACER.enabled

    def test_context_manager_closes_sink(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Tracer(JsonlSink(path)) as tracer:
            tracer.emit(EXPAND, depth=0, n=1)
        # sink is closed: further direct writes must fail, typed
        with pytest.raises(TraceWriteError):
            tracer.sink.write({"event": EXPAND})


class TestSinks:
    def test_memory_sink_copies_records(self):
        sink = MemorySink()
        record = {"event": EXPAND, "seq": 1, "t": 0.0}
        sink.write(record)
        record["seq"] = 99
        assert sink.events[0]["seq"] == 1

    def test_jsonl_sink_stamps_header(self, tmp_path):
        path = tmp_path / "t.jsonl"
        JsonlSink(path).close()
        header = json.loads(path.read_text().splitlines()[0])
        assert header["event"] == TRACE_HEADER
        assert header["schema_version"] == SCHEMA_VERSION

    def test_jsonl_sink_unwritable_path_fails_fast(self, tmp_path):
        with pytest.raises(OSError):
            JsonlSink(tmp_path / "missing_dir" / "t.jsonl")

    def test_jsonl_sink_close_is_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.close()
        sink.close()

    def test_logging_sink_bridges_to_stdlib(self, caplog):
        sink = LoggingSink(level=logging.INFO)
        with caplog.at_level(logging.INFO, logger="repro.obs.trace"):
            sink.write({"event": EXPAND, "seq": 1, "t": 0.0, "depth": 4})
        assert len(caplog.records) == 1
        assert EXPAND in caplog.text
        assert "depth=4" in caplog.text


class TestJsonlRoundTrip:
    def record(self, path):
        with record_jsonl(path) as tracer:
            tracer.emit(
                SEARCH_START, algorithm="ida", heuristic="h0", budget=10
            )
            tracer.emit(EXPAND, depth=0, n=1)
        return tracer

    def test_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self.record(path)
        events = load_trace(path)
        # header stripped; events intact and ordered
        assert [e["event"] for e in events] == [SEARCH_START, EXPAND]
        assert events[0]["algorithm"] == "ida"
        assert events[0]["seq"] == 1

    def test_wrong_schema_version_fails_loudly(self, tmp_path):
        path = tmp_path / "old.jsonl"
        header = {"event": TRACE_HEADER, "seq": 0, "t": 0.0, "schema_version": 0}
        path.write_text(json.dumps(header) + "\n")
        with pytest.raises(TraceFormatError, match="version"):
            load_trace(path)

    def test_missing_header_fails(self, tmp_path):
        path = tmp_path / "headerless.jsonl"
        path.write_text(json.dumps({"event": EXPAND, "seq": 1, "t": 0.0}) + "\n")
        with pytest.raises(TraceFormatError, match="trace_header"):
            load_trace(path)

    def test_malformed_json_line_fails(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self.record(path)
        path.write_text(path.read_text() + "{not json\n")
        with pytest.raises(TraceFormatError, match="not valid JSON"):
            load_trace(path)

    def test_trace_errors_are_tupelo_errors(self):
        # CLI-level `except TupeloError` must catch trace problems too
        assert issubclass(TraceFormatError, ObservabilityError)
        assert issubclass(ObservabilityError, TupeloError)


class TestValidation:
    def good(self):
        return {"event": EXPAND, "seq": 1, "t": 0.0, "depth": 0, "n": 1}

    def test_valid_record_passes(self):
        validate_event(self.good())

    def test_missing_envelope_field_rejected(self):
        record = self.good()
        del record["seq"]
        with pytest.raises(TraceFormatError, match="seq"):
            validate_event(record)

    def test_unknown_event_type_rejected(self):
        record = self.good()
        record["event"] = "teleport"
        with pytest.raises(TraceFormatError, match="teleport"):
            validate_event(record)

    def test_missing_payload_field_rejected(self):
        record = self.good()
        del record["depth"]
        with pytest.raises(TraceFormatError, match="depth"):
            validate_event(record)

    def test_stream_requires_increasing_seq(self):
        a = self.good()
        b = self.good()  # same seq -> not strictly increasing
        with pytest.raises(TraceFormatError, match="seq"):
            validate_events([a, b])

    def test_stream_requires_monotone_time(self):
        a = self.good()
        b = dict(self.good(), seq=2, t=-1.0)
        with pytest.raises(TraceFormatError, match="backwards"):
            validate_events([a, b])

    def test_stream_returns_count(self):
        a = self.good()
        b = dict(self.good(), seq=2, t=0.5)
        assert validate_events([a, b]) == 2
