"""Tests for the Experiment-3 complex semantic mapping domains."""

from __future__ import annotations

import pytest

from repro import discover_mapping
from repro.fira import ApplyFunction
from repro.workloads import (
    PAPER_FUNCTION_COUNTS,
    inventory_domain,
    real_estate_domain,
    semantic_domains,
)


class TestDomains:
    def test_paper_mapping_counts(self):
        """Inventory has 10 complex mappings, Real Estate II has 12 (§5.3)."""
        assert inventory_domain().max_functions == 10
        assert real_estate_domain().max_functions == 12

    def test_function_counts_axis(self):
        assert PAPER_FUNCTION_COUNTS == tuple(range(1, 9))

    def test_registry_covers_all_correspondences(self):
        for domain in semantic_domains().values():
            for corr in domain.correspondences:
                corr.check_signature(domain.registry)

    def test_outputs_unique(self):
        for domain in semantic_domains().values():
            outputs = [c.output for c in domain.correspondences]
            assert len(outputs) == len(set(outputs))

    def test_inputs_exist_in_source(self):
        for domain in semantic_domains().values():
            attrs = domain.source.attribute_names()
            for corr in domain.correspondences:
                assert set(corr.inputs) <= attrs


class TestTasks:
    def test_task_target_shape(self):
        domain = inventory_domain()
        task = domain.task(3)
        rel = task.target.relation("Products")
        # every source attribute (direct correspondences) + 3 complex outputs
        assert rel.arity == len(domain.anchor_attributes) + 3
        assert rel.cardinality == 2

    def test_anchors_cover_source_schema(self):
        """Archive-style targets carry a direct correspondence for every
        source attribute, so search needs no renames (see Fig. 9)."""
        for domain in semantic_domains().values():
            assert (
                frozenset(domain.anchor_attributes)
                == domain.source.attribute_names()
            )

    def test_target_values_are_function_outputs(self):
        domain = inventory_domain()
        task = domain.task(1)  # TotalValue = UnitsInStock * UnitPrice
        values = task.target.relation("Products").column_values("TotalValue")
        assert values == {54, 694.75}  # 12*4.5, 7*99.25

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            inventory_domain().task(0)
        with pytest.raises(ValueError):
            inventory_domain().task(11)

    def test_tasks_series_clamped(self):
        series = inventory_domain().tasks(counts=tuple(range(1, 20)))
        assert len(series) == 10

    def test_rosetta_stone_by_construction(self):
        """Applying the declared lambdas to the source yields the target."""
        domain = real_estate_domain()
        task = domain.task(5)
        db = task.source
        for corr in task.correspondences:
            db = ApplyFunction.from_correspondence("Listings", corr).apply(
                db, task.registry
            )
        assert db.contains(task.target)


class TestDiscovery:
    @pytest.mark.parametrize("domain_name", ["Inventory", "RealEstateII"])
    @pytest.mark.parametrize("n", [1, 3, 5])
    def test_discovery_h1(self, domain_name, n):
        domain = semantic_domains()[domain_name]
        task = domain.task(n)
        result = discover_mapping(
            task.source,
            task.target,
            heuristic="h1",
            correspondences=task.correspondences,
            registry=task.registry,
        )
        assert result.found
        lambdas = [
            op for op in result.expression if isinstance(op, ApplyFunction)
        ]
        assert len(lambdas) == n
        mapped = result.expression.apply(task.source, task.registry)
        assert mapped.contains(task.target)

    def test_discovery_needs_exactly_declared_functions(self):
        """With zero correspondences declared the task is unsolvable."""
        task = inventory_domain().task(2)
        result = discover_mapping(
            task.source,
            task.target,
            heuristic="h1",
            correspondences=[],
            registry=task.registry,
        )
        assert not result.found
