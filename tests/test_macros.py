"""Tests for the PIVOT / UNPIVOT macros (repro.fira.macros)."""

from __future__ import annotations

import pytest

from repro import pivot, unpivot
from repro.errors import OperatorApplicationError
from repro.fira import MappingExpression, RenameAttribute, RenameRelation
from repro.relational import NULL, Database, Relation
from repro.workloads import b_to_a_expression, flights_a, flights_b


class TestPivot:
    def test_reproduces_example2_prefix(self, db_a, db_b):
        """pivot + the two renames equals the full Example 2 mapping."""
        expr = pivot(
            "Prices", key="Carrier", name_attr="Route", value_attr="Cost"
        ).compose(
            MappingExpression(
                [
                    RenameAttribute("Prices", "AgentFee", "Fee"),
                    RenameRelation("Prices", "Flights"),
                ]
            )
        )
        assert expr.apply(db_b) == db_a

    def test_equals_reference_pipeline(self, db_b):
        macro = pivot(
            "Prices", key="Carrier", name_attr="Route", value_attr="Cost"
        )
        reference_prefix = MappingExpression(b_to_a_expression().operators[:4])
        assert macro.apply(db_b) == reference_prefix.apply(db_b)

    def test_collapses_rows(self, db_b):
        out = pivot("Prices", "Carrier", "Route", "Cost").apply(db_b)
        assert out.relation("Prices").cardinality == 2

    def test_requires_distinct_attributes(self):
        with pytest.raises(OperatorApplicationError):
            pivot("R", "K", "K", "V")

    def test_is_plain_pipeline(self):
        macro = pivot("R", "K", "N", "V")
        assert len(macro) == 4  # promote, 2 drops, merge


class TestUnpivot:
    def test_flights_a_to_b_shape(self, db_a, db_b):
        """The A->B direction needs σ, so search cannot discover it — but
        the unpivot macro expresses it directly."""
        expr = unpivot(
            "Flights", ["ATL29", "ORD17"], name_attr="Route", value_attr="Cost"
        ).then(RenameAttribute("Flights", "Fee", "AgentFee")).then(
            RenameRelation("Flights", "Prices")
        )
        out = expr.apply(db_a)
        assert out == db_b

    def test_round_trip_with_pivot(self, db_a):
        """unpivot then pivot restores the original relation."""
        folded = unpivot(
            "Flights", ["ATL29", "ORD17"], name_attr="Route", value_attr="Cost"
        ).apply(db_a)
        restored = pivot(
            "Flights", key="Carrier", name_attr="Route", value_attr="Cost"
        ).apply(folded)
        assert restored == db_a

    def test_null_cells_fold_to_null_values(self):
        db = Database.single(
            Relation("R", ("K", "X", "Y"), [("a", 1, NULL)])
        )
        out = unpivot("R", ["X", "Y"]).apply(db)
        cells = {
            (row["ATT"], row["VAL"]) for row in out.relation("R").iter_dicts()
        }
        assert ("X", 1) in cells and ("Y", NULL) in cells

    def test_empty_columns_rejected(self):
        with pytest.raises(OperatorApplicationError):
            unpivot("R", [])

    def test_textual_rendering(self):
        text = str(unpivot("R", ["X", "Y"]))
        assert "demote[R]" in text
        assert "keep rows" in text
