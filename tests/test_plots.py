"""Tests for the ASCII chart renderer (repro.experiments.plots)."""

from __future__ import annotations

from repro.experiments import ExperimentPoint, ExperimentSeries, ascii_chart


def series(label, pairs, status="found"):
    return ExperimentSeries(
        label, tuple(ExperimentPoint(x, y, status) for x, y in pairs)
    )


class TestAsciiChart:
    def test_empty(self):
        assert ascii_chart([]) == "(no data)"
        assert ascii_chart([series("s", [])]) == "(no data)"

    def test_legend_and_axis(self):
        chart = ascii_chart(
            [series("a", [(1, 10)]), series("b", [(1, 100)])], x_label="n"
        )
        assert "o=a" in chart and "x=b" in chart
        assert "(n; y = states examined, log scale)" in chart

    def test_log_scale_ordering(self):
        chart = ascii_chart(
            [series("low", [(1, 1)]), series("high", [(1, 100000)])]
        )
        lines = chart.splitlines()
        high_row = next(i for i, l in enumerate(lines) if "x" in l)
        low_row = next(i for i, l in enumerate(lines) if "o" in l)
        assert high_row < low_row  # higher magnitude renders nearer the top

    def test_marks_per_x_column(self):
        chart = ascii_chart([series("s", [(1, 10), (2, 100), (3, 1000)])])
        body = [l for l in chart.splitlines() if "|" in l]
        marks = sum(line.count("o") for line in body)
        assert marks == 3

    def test_collision_marked(self):
        chart = ascii_chart(
            [series("a", [(1, 50)]), series("b", [(1, 50)])]
        )
        assert "!" in chart

    def test_missing_points_skipped(self):
        chart = ascii_chart(
            [series("a", [(1, 10), (3, 30)]), series("b", [(2, 20)])]
        )
        assert "1" in chart and "2" in chart and "3" in chart

    def test_handles_zero_states(self):
        chart = ascii_chart([series("s", [(1, 0)])])
        assert "o" in chart
