"""Warm-start store suite: fingerprints, memo, spills, and failure modes.

The store's contract is *warmth is optional, correctness is not*: every
test that damages a store file (corruption, truncation, version skew,
forged entries, torn spills) asserts the search degrades to a cold run
with a ``resilience.store_*`` counter — never an exception, never an
unverified answer.
"""

from __future__ import annotations

import json
import threading

from repro import Database, Relation, discover_mapping
from repro.fira import parse_expression
from repro.relational.fingerprint import (
    instance_digest,
    pair_fingerprint,
    pair_shape_fingerprint,
    relation_digest,
    relation_shape_digest,
    shape_digest,
)
from repro.resilience.runtime import resilience_counters, resilience_delta
from repro.search.problem import MappingProblem
from repro.semantics import builtin_registry
from repro.store import (
    MappingMemo,
    WarmStartStore,
    problem_signature,
    read_spill,
    resolve_store,
    warm_store_disabled,
    write_spill,
)
from repro.workloads.synthetic import matching_pair


def _pair(n: int = 3):
    pair = matching_pair(n)
    return pair.source, pair.target


def _discover(source, target, store=None, **kwargs):
    kwargs.setdefault("algorithm", "ida")
    kwargs.setdefault("heuristic", "h0")
    return discover_mapping(source, target, store=store, **kwargs)


# -- fingerprints ------------------------------------------------------------


def test_digest_insensitive_to_construction_order():
    rows = [("a", 1), ("b", 2), ("c", 3)]
    fwd = Database.single(Relation("R", ("X", "Y"), rows))
    rev = Database.single(Relation("R", ("X", "Y"), list(reversed(rows))))
    assert instance_digest(fwd) == instance_digest(rev)
    r1 = Relation("R", ("X",), [("x",)])
    s1 = Relation("S", ("Y",), [("y",)])
    assert instance_digest(Database([r1, s1])) == instance_digest(
        Database([s1, r1])
    )


def test_digest_is_type_faithful():
    ints = Database.single(Relation("R", ("X",), [(1,)]))
    strs = Database.single(Relation("R", ("X",), [("1",)]))
    assert instance_digest(ints) != instance_digest(strs)


def test_rename_changes_exact_but_not_shape_digest():
    base = Relation("R", ("X", "Y"), [("a", 1), ("b", 2)])
    renamed = Relation("Q", ("P", "Q"), [("a", 1), ("b", 2)])
    assert relation_digest(base) != relation_digest(renamed)
    assert relation_shape_digest(base) == relation_shape_digest(renamed)
    assert shape_digest(Database.single(base)) == shape_digest(
        Database.single(renamed)
    )


def test_pair_fingerprint_is_direction_sensitive():
    source, target = _pair(2)
    assert pair_fingerprint(source, target) != pair_fingerprint(target, source)
    assert pair_shape_fingerprint(source, target) == pair_shape_fingerprint(
        source, target
    )


def test_fingerprint_stable_across_processes():
    # The digest must not depend on the process-local intern pool: a child
    # process interning in a different order reports the same fingerprint.
    import subprocess
    import sys

    source, target = _pair(2)
    code = (
        "import sys; sys.path.insert(0, 'src');"
        "from repro.workloads.synthetic import matching_pair;"
        "from repro.relational.fingerprint import pair_fingerprint;"
        "p = matching_pair(2);"
        "print(pair_fingerprint(p.source, p.target))"
    )
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        check=True,
    )
    assert out.stdout.strip() == pair_fingerprint(source, target)


# -- mapping memo ------------------------------------------------------------


def test_memo_round_trip_is_bit_identical(tmp_path):
    source, target = _pair(3)
    cold = _discover(source, target)
    memo = MappingMemo(tmp_path / "memo.jsonl")
    memo.record(
        source,
        target,
        expression=cold.expression,
        algorithm="ida",
        heuristic="h0",
    )
    served = memo.serve(source, target, algorithm="ida", heuristic="h0")
    assert served is not None
    expression, entry = served
    assert str(expression) == str(cold.expression)
    assert entry["fingerprint"] == pair_fingerprint(source, target)


def test_memo_prefers_exact_request_variant(tmp_path):
    source, target = _pair(2)
    cold = _discover(source, target)
    memo = MappingMemo(tmp_path / "memo.jsonl")
    memo.record(
        source, target, expression=cold.expression,
        algorithm="astar", heuristic="h1",
    )
    memo.record(
        source, target, expression=cold.expression,
        algorithm="ida", heuristic="h0",
    )
    served = memo.serve(source, target, algorithm="astar", heuristic="h1")
    assert served is not None
    assert served[1]["algorithm"] == "astar"


def test_memo_survives_corrupt_and_torn_lines(tmp_path):
    source, target = _pair(2)
    cold = _discover(source, target)
    path = tmp_path / "memo.jsonl"
    memo = MappingMemo(path)
    memo.record(
        source, target, expression=cold.expression,
        algorithm="ida", heuristic="h0",
    )
    with path.open("a", encoding="utf-8") as fh:
        fh.write("this is not json\n")
        fh.write('{"kind": "mapping", "fingerprint": 7}\n')
        fh.write('{"kind": "mapping", "fingerprint": "abc", "expr')  # torn
    baseline = resilience_counters()
    fresh = MappingMemo(path)
    served = fresh.serve(source, target, algorithm="ida", heuristic="h0")
    assert served is not None
    assert str(served[0]) == str(cold.expression)
    assert fresh.corrupt_lines == 3
    assert resilience_delta(baseline).get("resilience.store_corrupt_entry") == 3


def test_memo_version_mismatch_degrades_cold(tmp_path):
    path = tmp_path / "memo.jsonl"
    path.write_text(
        '{"kind": "header", "store": "tupelo-memo", "version": 99}\n'
    )
    baseline = resilience_counters()
    memo = MappingMemo(path)
    source, target = _pair(2)
    assert memo.serve(source, target) is None
    assert memo.version_mismatch
    delta = resilience_delta(baseline)
    assert delta.get("resilience.store_version_mismatch") == 1


def test_forged_fingerprint_collision_is_rejected(tmp_path):
    # An entry whose fingerprint matches but whose expression maps the
    # pair wrongly (hash collision / hand-edited file) must be refused by
    # verification, not served.
    source, target = _pair(2)
    path = tmp_path / "memo.jsonl"
    memo = MappingMemo(path)
    forged = {
        "kind": "mapping",
        "version": 1,
        "fingerprint": pair_fingerprint(source, target),
        "algorithm": "ida",
        "heuristic": "h0",
        "k": None,
        "expression": "rename_rel(A -> NoSuchPlace)",
        "ops": 1,
    }
    path.write_text(
        memo._header_line() + "\n" + json.dumps(forged) + "\n"
    )
    baseline = resilience_counters()
    assert memo.serve(source, target, algorithm="ida", heuristic="h0") is None
    delta = resilience_delta(baseline)
    assert delta.get("resilience.store_stale_entry", 0) >= 1


def test_stale_entry_falls_back_to_older_verified_entry(tmp_path):
    source, target = _pair(2)
    cold = _discover(source, target)
    path = tmp_path / "memo.jsonl"
    memo = MappingMemo(path)
    memo.record(
        source, target, expression=cold.expression,
        algorithm="ida", heuristic="h0",
    )
    # a newer-but-wrong entry for the same fingerprint shadows the good one
    forged = {
        "kind": "mapping",
        "version": 1,
        "fingerprint": pair_fingerprint(source, target),
        "algorithm": "ida",
        "heuristic": "h0",
        "k": None,
        "expression": "rename_rel(A -> Elsewhere)",
        "ops": 1,
    }
    with path.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(forged) + "\n")
    fresh = MappingMemo(path)
    served = fresh.serve(source, target, algorithm="ida", heuristic="h0")
    assert served is not None
    assert str(served[0]) == str(cold.expression)


def test_memo_gc_bounds_entries(tmp_path):
    memo = MappingMemo(tmp_path / "memo.jsonl", max_entries=3)
    expression = parse_expression("rename_rel(R -> S)")
    for i in range(6):
        db = Database.single(Relation("R", ("X",), [(f"v{i}",)]))
        out = Database.single(Relation("S", ("X",), [(f"v{i}",)]))
        memo.record(
            db, out, expression=expression, algorithm="ida", heuristic="h0"
        )
    assert len(memo.fingerprints()) <= 3
    summary = memo.gc()
    assert summary["kept"] <= 3
    # the newest pair is among the survivors
    newest = Database.single(Relation("R", ("X",), [("v5",)]))
    newest_out = Database.single(Relation("S", ("X",), [("v5",)]))
    assert memo.serve(newest, newest_out) is not None


def test_concurrent_reader_and_writer_on_one_path(tmp_path):
    path = tmp_path / "memo.jsonl"
    expression = parse_expression("rename_rel(R -> S)")
    pairs = []
    for i in range(20):
        db = Database.single(Relation("R", ("X",), [(f"w{i}",)]))
        out = Database.single(Relation("S", ("X",), [(f"w{i}",)]))
        pairs.append((db, out))
    errors: list[BaseException] = []

    def writer():
        memo = MappingMemo(path, max_entries=8)
        try:
            for db, out in pairs:
                memo.record(
                    db, out, expression=expression,
                    algorithm="ida", heuristic="h0",
                )
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    def reader():
        memo = MappingMemo(path, max_entries=8)
        try:
            for _ in range(60):
                for db, out in pairs[:4]:
                    memo.serve(db, out)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=writer), threading.Thread(target=reader)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    # after the dust settles, the file is readable and serves verified hits
    memo = MappingMemo(path)
    db, out = pairs[-1]
    served = memo.serve(db, out)
    assert served is not None and str(served[0]) == str(expression)


# -- warm spills -------------------------------------------------------------


def _problem(source, target):
    return MappingProblem(source, target)


def test_spill_round_trip_preseed_matches_cold(tmp_path):
    source, target = _pair(3)
    store = WarmStartStore(tmp_path / "store")
    cold = _discover(source, target, store=store)
    assert cold.found and not cold.served_from_store
    # drop the memo so the next run must *search*, warmed by the spill only
    store.memo.path.unlink()
    warm = _discover(source, target, store=WarmStartStore(tmp_path / "store"))
    assert warm.found and not warm.served_from_store
    assert str(warm.expression) == str(cold.expression)
    assert warm.states_examined == cold.states_examined
    assert warm.stats.cache_hits >= cold.stats.cache_hits


def test_unchanged_spill_is_not_rewritten(tmp_path):
    # a search that runs entirely inside the pre-seeded tables must not
    # re-encode and rewrite an identical spill (store.spill_skips)
    from repro.obs.metrics import MetricsRegistry

    source, target = _pair(3)
    store = WarmStartStore(tmp_path / "store")
    _discover(source, target, store=store)
    store.memo.path.unlink()
    [spill] = list((store.path / "warm").glob("*.json"))
    before = (spill.stat().st_mtime_ns, spill.stat().st_size)

    metrics = MetricsRegistry()
    again = _discover(
        source,
        target,
        store=WarmStartStore(tmp_path / "store"),
        metrics=metrics,
    )
    assert again.found and not again.served_from_store
    assert (spill.stat().st_mtime_ns, spill.stat().st_size) == before
    assert metrics.counter("store.spill_skips").value == 1
    assert metrics.counter("store.spill_writes").value == 0


def test_torn_spill_degrades_cold(tmp_path):
    source, target = _pair(2)
    store = WarmStartStore(tmp_path / "store")
    cold = _discover(source, target, store=store)
    store.memo.path.unlink()
    # truncate every spill file mid-payload
    spills = list((store.path / "warm").glob("*.json"))
    assert spills
    for spill in spills:
        spill.write_bytes(spill.read_bytes()[: 40])
    baseline = resilience_counters()
    again = _discover(source, target, store=WarmStartStore(tmp_path / "store"))
    assert again.found
    assert str(again.expression) == str(cold.expression)
    delta = resilience_delta(baseline)
    assert delta.get("resilience.store_torn_spill", 0) >= 1


def test_spill_rejects_signature_mismatch(tmp_path):
    source, target = _pair(2)
    problem = _problem(source, target)
    signature = problem_signature(problem)
    tables = problem.export_warm_tables()
    path = tmp_path / "spill.json"
    assert write_spill(path, signature, tables, max_states=100) or True
    assert read_spill(path, signature) is not None
    baseline = resilience_counters()
    assert read_spill(path, "deadbeef" * 8) is None
    delta = resilience_delta(baseline)
    assert delta.get("resilience.store_torn_spill", 0) >= 1


# -- store facade and engine wiring ------------------------------------------


def test_store_serves_verified_hit_bit_identically(tmp_path):
    source, target = _pair(3)
    cold = _discover(source, target, store=tmp_path / "store")
    warm = _discover(source, target, store=tmp_path / "store")
    assert not cold.served_from_store
    assert warm.served_from_store
    assert warm.states_examined == 0
    assert str(warm.expression) == str(cold.expression)
    # a served expression verifies against the live pair by construction
    assert (
        warm.expression.apply(source, builtin_registry()).contains(target)
    )


def test_kill_switch_restores_cold_path(tmp_path):
    source, target = _pair(2)
    _discover(source, target, store=tmp_path / "store")
    with warm_store_disabled():
        assert resolve_store(tmp_path / "store") is None
        result = _discover(source, target, store=tmp_path / "store")
    assert result.found
    assert not result.served_from_store
    assert result.states_examined > 0


def test_store_info_and_gc(tmp_path):
    source, target = _pair(2)
    store = WarmStartStore(tmp_path / "store", max_spills=0)
    _discover(source, target, store=store)
    info = store.info()
    assert info["memo"]["entries"] == 1
    assert info["spills"] == 1
    summary = store.gc()
    assert summary["spills_dropped"] == 1
    assert store.info()["spills"] == 0


def test_cli_store_info_and_gc(tmp_path, capsys):
    from repro.cli import main

    store_dir = str(tmp_path / "store")
    source, target = _pair(2)
    _discover(source, target, store=store_dir)
    assert main(["store", "info", "--path", store_dir]) == 0
    out = capsys.readouterr().out
    assert "memo: 1 entr(ies)" in out
    assert main(["store", "gc", "--path", store_dir]) == 0
    assert "kept" in capsys.readouterr().out
