"""Unit tests for the mini-SQL lexer and parser."""

from __future__ import annotations

import pytest

from repro.minisql import SqlSyntaxError, parse_script, parse_select, tokenize
from repro.minisql.lexer import IDENT, NUMBER, QIDENT, STRING, SYMBOL
from repro.minisql.nodes import (
    Aggregate,
    CaseWhen,
    Cast,
    ColumnRef,
    Comparison,
    Concat,
    CreateTable,
    CreateTableAs,
    CrossJoin,
    Delete,
    DropColumn,
    DropTable,
    FunctionCall,
    InsertValues,
    IsNull,
    Literal,
    RenameColumn,
    RenameTable,
    RowNumber,
    Select,
    Star,
    TableSource,
    UnionAll,
    ValuesSource,
)
from repro.relational import NULL


class TestLexer:
    def test_kinds(self):
        tokens = tokenize("SELECT \"A\", 'txt', 42, 1.5 FROM t;")
        kinds = [t.kind for t in tokens[:-1]]
        assert kinds == [
            IDENT, QIDENT, SYMBOL, STRING, SYMBOL, NUMBER, SYMBOL, NUMBER,
            IDENT, IDENT, SYMBOL,
        ]

    def test_quoted_identifier_escapes(self):
        tokens = tokenize('"a""b"')
        assert tokens[0].text == 'a"b'

    def test_string_escapes(self):
        tokens = tokenize("'O''Hare'")
        assert tokens[0].text == "O'Hare"

    def test_comments_skipped(self):
        tokens = tokenize("-- a comment\nSELECT")
        assert tokens[0].norm == "SELECT"

    def test_negative_numbers(self):
        assert tokenize("-42")[0].text == "-42"

    def test_dollar_identifiers(self):
        assert tokenize("$ATT")[0].text == "$ATT"

    def test_concat_operator(self):
        assert tokenize("a || b")[1].text == "||"

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_unterminated_identifier(self):
        with pytest.raises(SqlSyntaxError):
            tokenize('"oops')

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT @")


class TestStatementParsing:
    def test_create_table_columns(self):
        (stmt,) = parse_script('CREATE TABLE "T" ("A" TEXT, "B" DOUBLE PRECISION);')
        assert isinstance(stmt, CreateTable)
        assert stmt.columns[1].type_name == "DOUBLE PRECISION"

    def test_create_table_as(self):
        (stmt,) = parse_script('CREATE TABLE "T" AS SELECT * FROM "R";')
        assert isinstance(stmt, CreateTableAs)
        assert isinstance(stmt.select, Select)

    def test_union_all(self):
        (stmt,) = parse_script(
            'CREATE TABLE "T" AS SELECT "A" FROM "R" UNION ALL SELECT "A" FROM "S";'
        )
        assert isinstance(stmt.select, UnionAll)
        assert len(stmt.select.selects) == 2

    def test_drop_and_renames(self):
        statements = parse_script(
            'DROP TABLE "T"; ALTER TABLE "T" RENAME TO "U";'
            ' ALTER TABLE "U" RENAME COLUMN "A" TO "B";'
            ' ALTER TABLE "U" DROP COLUMN "B";'
        )
        assert [type(s) for s in statements] == [
            DropTable, RenameTable, RenameColumn, DropColumn,
        ]

    def test_insert(self):
        (stmt,) = parse_script(
            "INSERT INTO \"T\" (\"A\", \"B\") VALUES ('x', NULL);"
        )
        assert isinstance(stmt, InsertValues)
        assert stmt.values == ("x", NULL)

    def test_delete_where(self):
        (stmt,) = parse_script(
            'DELETE FROM "T" WHERE "A" IS NULL OR "A" <> 3;'
        )
        assert isinstance(stmt, Delete)
        assert stmt.where is not None

    def test_unsupported_statement(self):
        with pytest.raises(SqlSyntaxError):
            parse_script("VACUUM;")

    def test_missing_semicolon(self):
        with pytest.raises(SqlSyntaxError):
            parse_script('DROP TABLE "A" DROP TABLE "B";')


class TestSelectParsing:
    def test_star_and_aliased_expr(self):
        select = parse_select(
            "SELECT *, CASE WHEN \"A\" = 'x' THEN \"B\" END AS \"x\" FROM \"R\""
        )
        assert isinstance(select.items[0].expr, Star)
        case = select.items[1].expr
        assert isinstance(case, CaseWhen)
        assert select.items[1].alias == "x"

    def test_qualified_star(self):
        select = parse_select('SELECT "R".*, m.* FROM "R" CROSS JOIN "M" m')
        assert select.items[0].expr == Star("R")
        assert select.items[1].expr == Star("m")
        assert isinstance(select.source, CrossJoin)

    def test_values_source(self):
        select = parse_select(
            "SELECT * FROM (VALUES ('R', 'A'), ('R', 'B')) AS __meta(\"$REL\", \"$ATT\")"
        )
        source = select.source
        assert isinstance(source, ValuesSource)
        assert source.alias == "__meta"
        assert source.columns == ("$REL", "$ATT")
        assert source.rows == (("R", "A"), ("R", "B"))

    def test_group_by_max(self):
        select = parse_select(
            'SELECT "K", MAX("V") AS "V" FROM "R" GROUP BY "K"'
        )
        assert select.group_by == (ColumnRef("K"),)
        assert select.items[1].expr == Aggregate("MAX", ColumnRef("V"))

    def test_function_call(self):
        select = parse_select('SELECT add("A", "B") AS "S" FROM "R"')
        assert select.items[0].expr == FunctionCall(
            "add", (ColumnRef("A"), ColumnRef("B"))
        )

    def test_cast_and_rownumber_concat(self):
        select = parse_select(
            "SELECT 't' || CAST(ROW_NUMBER() OVER () AS TEXT) AS TID FROM \"R\""
        )
        concat = select.items[0].expr
        assert isinstance(concat, Concat)
        assert concat.parts[0] == Literal("t")
        cast = concat.parts[1]
        assert isinstance(cast, Cast)
        assert isinstance(cast.expr, RowNumber)

    def test_where_comparison(self):
        select = parse_select("SELECT * FROM \"R\" WHERE \"A\" = 'v'")
        assert select.where == Comparison("=", ColumnRef("A"), Literal("v"))

    def test_is_not_null(self):
        select = parse_select('SELECT * FROM "R" WHERE "A" IS NOT NULL')
        assert select.where == IsNull(ColumnRef("A"), negated=True)

    def test_alias_after_table(self):
        select = parse_select('SELECT l."A" FROM "R" l')
        assert select.source == TableSource("R", "l")
        assert select.items[0].expr == ColumnRef("A", qualifier="l")

    def test_case_with_else(self):
        select = parse_select(
            "SELECT CASE WHEN \"A\" = 1 THEN 'one' ELSE 'other' END AS c FROM \"R\""
        )
        case = select.items[0].expr
        assert case.default == Literal("other")

    def test_literals(self):
        select = parse_select("SELECT 1, 2.5, NULL, TRUE, 'x' FROM \"R\"")
        values = [item.expr.value for item in select.items]
        assert values == [1, 2.5, NULL, True, "x"]
