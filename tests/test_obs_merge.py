"""Cross-process trace aggregation: merge, causal order, counter equality."""

from __future__ import annotations

import json

import pytest

from repro.errors import TraceFormatError
from repro.obs import (
    load_trace,
    merge_report,
    merge_traces,
    merged_metrics,
    validate_events,
    write_merged,
)
from repro.obs.merge import discover_trace_files, load_trace_lenient
from repro.experiments.runner import run_matching_series

SIZES = (3, 4, 5)
BUDGET = 50_000


@pytest.fixture(scope="module")
def sweep_traces(tmp_path_factory):
    """Trace files from the same sweep run serially and with workers=2."""
    serial_dir = tmp_path_factory.mktemp("serial")
    worker_dir = tmp_path_factory.mktemp("workers")
    run_matching_series(
        "ida", "h1", SIZES, budget=BUDGET, trace_dir=serial_dir, workers=0
    )
    run_matching_series(
        "ida", "h1", SIZES, budget=BUDGET, trace_dir=worker_dir, workers=2
    )
    serial = sorted(serial_dir.glob("*.jsonl"))
    workers = sorted(worker_dir.glob("*.jsonl"))
    assert len(serial) == len(SIZES)
    assert len(workers) == len(SIZES)
    # the fan-out spliced worker markers into every trace name
    assert all(".w" in path.name for path in workers)
    return serial, workers


class TestMergeTimeline:
    def test_merged_timeline_is_causally_ordered(self, sweep_traces):
        _, workers = sweep_traces
        merged = merge_traces(workers)
        times = [event["t"] for event in merged.events]
        assert times == sorted(times)
        assert [event["seq"] for event in merged.events] == list(
            range(1, len(merged.events) + 1)
        )
        validate_events(merged.events)

    def test_every_event_attributes_its_source(self, sweep_traces):
        _, workers = sweep_traces
        merged = merge_traces(workers)
        labels = {event["src"] for event in merged.events}
        assert labels == {path.stem for path in workers}
        # each source contributes its full event stream
        assert len(merged.events) == sum(
            len(source.events) for source in merged.sources
        )

    def test_workers_merge_counters_equal_serial(self, sweep_traces):
        serial, workers = sweep_traces
        serial_counters = merged_metrics(merge_traces(serial)).counters()
        worker_counters = merged_metrics(merge_traces(workers)).counters()
        assert worker_counters == serial_counters
        assert worker_counters["trace.states_examined"] > 0

    def test_merged_trace_round_trips_through_load_trace(
        self, sweep_traces, tmp_path
    ):
        _, workers = sweep_traces
        merged = merge_traces(workers)
        out = tmp_path / "merged.jsonl"
        write_merged(merged, out)
        reloaded = load_trace(out)
        assert len(reloaded) == len(merged.events)
        header = json.loads(out.read_text().splitlines()[0])
        assert sorted(header["merged_from"]) == sorted(
            path.stem for path in workers
        )

    def test_merge_report_names_sources_and_totals(self, sweep_traces):
        _, workers = sweep_traces
        report = merge_report(merge_traces(workers))
        for path in workers:
            assert path.stem in report
        assert "merged counters" in report
        assert "states_examined" in report


class TestLenientLoading:
    def test_torn_final_line_is_tolerated(self, sweep_traces):
        serial, _ = sweep_traces
        text = serial[0].read_text()
        torn = serial[0].parent / "torn.jsonl"
        torn.write_text(text + '{"event": "expand", "seq"')
        source = load_trace_lenient(torn)
        assert source.torn
        assert merge_traces([torn]).torn_sources == ["torn"]
        torn.unlink()

    def test_mid_file_corruption_still_raises(self, tmp_path, sweep_traces):
        serial, _ = sweep_traces
        lines = serial[0].read_text().splitlines()
        lines[1] = "not json"
        bad = tmp_path / "bad.jsonl"
        bad.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceFormatError, match="not valid JSON"):
            load_trace_lenient(bad)

    def test_header_only_and_foreign_files_raise(self, tmp_path):
        missing_header = tmp_path / "foreign.jsonl"
        missing_header.write_text('{"event": "expand", "seq": 1, "t": 0.0}\n')
        with pytest.raises(TraceFormatError, match="trace_header"):
            load_trace_lenient(missing_header)
        stale = tmp_path / "stale.jsonl"
        stale.write_text(
            '{"event": "trace_header", "seq": 0, "t": 0.0, '
            '"schema_version": 999}\n'
        )
        with pytest.raises(TraceFormatError, match="schema version"):
            load_trace_lenient(stale)

    def test_merge_requires_at_least_one_source(self):
        with pytest.raises(TraceFormatError, match="no trace files"):
            merge_traces([])


def test_discover_trace_files_expands_directories(tmp_path, sweep_traces):
    serial, _ = sweep_traces
    assert discover_trace_files(serial[0]) == [serial[0]]
    found = discover_trace_files(serial[0].parent)
    assert serial[0] in found
    assert found == sorted(found)
