"""Unit tests for ρatt / ρrel (repro.fira.renames)."""

from __future__ import annotations

import pytest

from repro.errors import OperatorApplicationError
from repro.fira import RenameAttribute, RenameRelation, parse_operator


class TestRenameAttribute:
    def test_basic(self, tiny):
        out = RenameAttribute("T", "X", "Label").apply(tiny)
        rel = out.relation("T")
        assert rel.attribute_set == {"Label", "Y"}
        assert rel.column("Label") == ("x1", "x2")

    def test_paper_example2_step(self, db_b):
        out = RenameAttribute("Prices", "AgentFee", "Fee").apply(db_b)
        assert out.relation("Prices").has_attribute("Fee")
        assert not out.relation("Prices").has_attribute("AgentFee")

    def test_missing_relation(self, tiny):
        with pytest.raises(OperatorApplicationError):
            RenameAttribute("Nope", "X", "Z").apply(tiny)

    def test_missing_attribute(self, tiny):
        with pytest.raises(OperatorApplicationError):
            RenameAttribute("T", "Q", "Z").apply(tiny)

    def test_collision(self, tiny):
        with pytest.raises(OperatorApplicationError):
            RenameAttribute("T", "X", "Y").apply(tiny)

    def test_self_rename_rejected(self, tiny):
        with pytest.raises(OperatorApplicationError):
            RenameAttribute("T", "X", "X").apply(tiny)

    def test_is_applicable(self, tiny):
        assert RenameAttribute("T", "X", "Z").is_applicable(tiny)
        assert not RenameAttribute("T", "X", "Y").is_applicable(tiny)
        assert not RenameAttribute("T", "Q", "Z").is_applicable(tiny)
        assert not RenameAttribute("Nope", "X", "Z").is_applicable(tiny)
        assert not RenameAttribute("T", "X", "X").is_applicable(tiny)

    def test_other_relations_untouched(self, db_c):
        out = RenameAttribute("AirEast", "Route", "Leg").apply(db_c)
        assert out.relation("JetWest").has_attribute("Route")

    def test_str_roundtrip(self):
        op = RenameAttribute("T", "X", "Z")
        assert parse_operator(str(op)) == op

    def test_unicode_form(self):
        assert "ρatt" in RenameAttribute("T", "X", "Z").to_unicode()

    def test_value_equality(self):
        assert RenameAttribute("T", "X", "Z") == RenameAttribute("T", "X", "Z")
        assert RenameAttribute("T", "X", "Z") != RenameAttribute("T", "X", "W")


class TestRenameRelation:
    def test_basic(self, db_b):
        out = RenameRelation("Prices", "Flights").apply(db_b)
        assert out.has_relation("Flights")
        assert not out.has_relation("Prices")
        assert out.relation("Flights").rows == db_b.relation("Prices").rows

    def test_missing_relation(self, db_b):
        with pytest.raises(OperatorApplicationError):
            RenameRelation("Nope", "X").apply(db_b)

    def test_collision(self, db_c):
        with pytest.raises(OperatorApplicationError):
            RenameRelation("AirEast", "JetWest").apply(db_c)

    def test_self_rename_rejected(self, db_b):
        with pytest.raises(OperatorApplicationError):
            RenameRelation("Prices", "Prices").apply(db_b)

    def test_is_applicable(self, db_c):
        assert RenameRelation("AirEast", "Other").is_applicable(db_c)
        assert not RenameRelation("AirEast", "JetWest").is_applicable(db_c)
        assert not RenameRelation("Nope", "X").is_applicable(db_c)

    def test_str_roundtrip(self):
        op = RenameRelation("Prices", "Flights")
        assert parse_operator(str(op)) == op

    def test_unicode_form(self):
        assert "ρrel" in RenameRelation("A", "B").to_unicode()
