"""Chaos suite: deadlines, cancellation, and fault-injected degradation.

Every test here either (a) cuts a real search with a wall-clock deadline
or a :class:`CancelToken` and checks the partial result is usable, or
(b) injects a deterministic fault (``repro.resilience.faults``) into a
parallel/tracing path and checks the run degrades — parallel → serial,
traced → untraced, portfolio → single-arm — with bit-identical
deterministic payloads and ``resilience.*`` counters recording what
happened.  No test leaves child processes behind.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import signal
import threading
import time

import pytest

from repro import (
    CancelToken,
    SearchConfig,
    SearchCancelled,
    SearchDeadlineExceeded,
    discover_mapping,
)
from repro.errors import TraceWriteError
from repro.experiments.persist import series_from_dict, series_to_dict
from repro.experiments.runner import run_matching_series
from repro.obs import JsonlSink, MemorySink, Tracer
from repro.obs.sinks import SITE_SINK_WRITE
from repro.parallel import strided_chunks
from repro.parallel.fanout import (
    SITE_FANOUT_POOL,
    SITE_FANOUT_WORKER,
    normalize_series,
)
from repro.parallel.portfolio import (
    SITE_PORTFOLIO_ARM,
    SITE_PORTFOLIO_SPAWN,
    _STATUS_RANK,
    _pick_best,
    _reap_processes,
    discover_mapping_portfolio,
)
from repro.resilience import (
    CRASH_EXIT_CODE,
    FAULTS_ENV,
    FaultSpec,
    InjectedIOError,
    absorb_resilience,
    activate,
    backoff_delay,
    deactivate,
    enter_worker,
    fault_plan,
    in_worker,
    inject,
    reset_resilience,
    resilience_counters,
    resilience_delta,
    resilience_events,
    resilience_warning,
    retry_call,
)
from repro.search import LIMIT_CHECK_EVERY, STATUS_DEADLINE_EXCEEDED
from repro.search.stats import SearchStats
from repro.workloads.synthetic import matching_pair

# The cooperative check runs every LIMIT_CHECK_EVERY examinations, so the
# overshoot has an *absolute* floor (one check gap) on top of the relative
# 1.25x contract; the deadline must be long enough that a slow gap on a
# loaded single-CPU box stays inside the ratio.
DEADLINE = 0.5
DEADLINE_SLACK = 1.25  # accepted overshoot ratio (docs/robustness.md)


@pytest.fixture(autouse=True)
def _clean_slate():
    """Every test starts with no fault plan and zeroed resilience counters."""
    deactivate()
    reset_resilience()
    yield
    deactivate()
    reset_resilience()


def _no_leaked_children():
    """True when no live child processes remain (after a short settle)."""
    for _ in range(50):
        if not mp.active_children():
            return True
        time.sleep(0.02)
    return not mp.active_children()


# ---------------------------------------------------------------------------
# Wall-clock deadlines
# ---------------------------------------------------------------------------


# beam finishes matching_pair(7) in well under DEADLINE, so it races a
# larger instance that runs for seconds when unbounded.
DEADLINE_CASES = [
    ("ida", 7),
    ("rbfs", 7),
    ("astar", 7),
    ("beam", 24),
]


@pytest.mark.parametrize("algorithm,size", DEADLINE_CASES)
def test_deadline_cuts_every_algorithm(algorithm, size):
    pair = matching_pair(size)
    config = SearchConfig(max_states=10_000_000, deadline_seconds=DEADLINE)
    start = time.perf_counter()
    result = discover_mapping(
        pair.source,
        pair.target,
        algorithm=algorithm,
        heuristic="h0",
        config=config,
        simplify=False,
    )
    elapsed = time.perf_counter() - start
    assert result.status == STATUS_DEADLINE_EXCEEDED
    assert result.deadline_exceeded
    assert result.expression is None
    assert elapsed <= DEADLINE * DEADLINE_SLACK
    # the partial run still reports usable statistics
    assert result.stats.states_examined > 0
    assert result.frontier_depth >= 1
    payload = result.stats.as_dict()
    assert payload["deadline_seconds"] == DEADLINE
    assert payload["states_examined"] == result.stats.states_examined


def test_deadline_unset_by_default():
    pair = matching_pair(3)
    result = discover_mapping(pair.source, pair.target, algorithm="ida", heuristic="h1")
    assert result.status == "found"
    # unbounded runs keep the historical stats-dict shape
    assert "deadline_seconds" not in result.stats.as_dict()


@pytest.mark.parametrize("bad", [0.0, -1.0])
def test_deadline_must_be_positive(bad):
    with pytest.raises(ValueError):
        SearchConfig(deadline_seconds=bad)


def test_generous_deadline_does_not_change_result():
    pair = matching_pair(4)
    plain = discover_mapping(pair.source, pair.target, algorithm="ida", heuristic="h1")
    bounded = discover_mapping(
        pair.source,
        pair.target,
        algorithm="ida",
        heuristic="h1",
        config=SearchConfig(deadline_seconds=60.0),
    )
    assert bounded.status == "found"
    assert bounded.states_examined == plain.states_examined
    assert str(bounded.expression) == str(plain.expression)


def test_deadline_emits_trace_event():
    pair = matching_pair(7)
    sink = MemorySink()
    result = discover_mapping(
        pair.source,
        pair.target,
        algorithm="ida",
        heuristic="h0",
        config=SearchConfig(max_states=10_000_000, deadline_seconds=DEADLINE),
        tracer=Tracer(sink),
        simplify=False,
    )
    assert result.deadline_exceeded
    types = [event["event"] for event in sink.events]
    assert "deadline_exceeded" in types
    assert types[-1] == "search_end"


# ---------------------------------------------------------------------------
# Cooperative cancellation
# ---------------------------------------------------------------------------


def test_cancel_token_basics():
    token = CancelToken()
    assert not token.cancelled
    assert not bool(token)
    token.cancel()
    assert token.cancelled
    assert bool(token)
    token.cancel()  # idempotent
    assert token.cancelled


def test_cancel_token_wraps_multiprocessing_event():
    event = mp.get_context("fork").Event()
    token = CancelToken(event=event)
    assert not token.cancelled
    event.set()
    assert token.cancelled
    event.clear()
    # the token latches: once observed cancelled, it stays cancelled
    assert token.cancelled


def test_cancel_cuts_search_quickly():
    pair = matching_pair(7)
    token = CancelToken()
    cancelled_at = []

    def fire():
        cancelled_at.append(time.perf_counter())
        token.cancel()

    timer = threading.Timer(0.2, fire)
    timer.start()
    try:
        result = discover_mapping(
            pair.source,
            pair.target,
            algorithm="ida",
            heuristic="h0",
            config=SearchConfig(max_states=10_000_000),
            cancel=token,
            simplify=False,
        )
    finally:
        timer.cancel()
    latency = time.perf_counter() - cancelled_at[0]
    assert result.cancelled
    assert result.status == "cancelled"
    assert result.stats.states_examined > 0
    assert latency < 0.1  # responds within 100ms of the token firing


def test_stats_check_limits_raises_typed_errors():
    cancelled = SearchStats()
    cancelled.cancel_token = CancelToken()
    cancelled.cancel_token.cancel()
    with pytest.raises(SearchCancelled):
        cancelled.check_limits()

    expired = SearchStats()
    expired.deadline_seconds = 1e-9
    time.sleep(0.002)
    with pytest.raises(SearchDeadlineExceeded):
        expired.check_limits()


def test_stop_clock_is_idempotent():
    stats = SearchStats()
    time.sleep(0.01)
    stats.stop_clock()
    frozen = stats.elapsed_seconds
    assert frozen > 0
    time.sleep(0.01)
    stats.stop_clock()  # second call must be a no-op
    assert stats.elapsed_seconds == frozen


def test_limit_check_cadence_constant():
    # the cooperative polling cadence is part of the latency contract
    assert LIMIT_CHECK_EVERY == 16
    assert SearchStats().check_every == LIMIT_CHECK_EVERY


# ---------------------------------------------------------------------------
# Fault-injection harness
# ---------------------------------------------------------------------------


def test_fault_spec_validation():
    with pytest.raises(ValueError):
        FaultSpec(site="x", kind="nope")
    with pytest.raises(ValueError):
        FaultSpec(site="x", kind="crash", scope="nope")
    with pytest.raises(ValueError):
        FaultSpec(site="x", kind="crash", at=0)
    with pytest.raises(ValueError):
        FaultSpec(site="x", kind="crash", times=-1)


def test_fault_spec_round_trip():
    spec = FaultSpec(site="a.b", kind="io_error", at=2, times=3, scope="worker", match="m")
    assert FaultSpec.from_dict(spec.to_dict()) == spec


def test_inject_hit_window():
    spec = FaultSpec(site="s", kind="io_error", at=2, times=2)
    with fault_plan(spec):
        inject("s")  # hit 1: before the window
        with pytest.raises(InjectedIOError):
            inject("s")  # hit 2
        with pytest.raises(InjectedIOError):
            inject("s")  # hit 3
        inject("s")  # hit 4: window exhausted
        inject("other.site")  # different site never fires


def test_inject_match_filter():
    with fault_plan(FaultSpec(site="s", kind="io_error", match="beam")):
        inject("s", key="ida")  # no match, no fire
        with pytest.raises(InjectedIOError):
            inject("s", key="beam-w20")


def test_inject_scope_gating():
    assert not in_worker()
    with fault_plan(FaultSpec(site="s", kind="io_error", scope="worker")):
        inject("s")  # parent process: worker-scoped fault stays quiet
        enter_worker()
        try:
            assert in_worker()
            with pytest.raises(InjectedIOError):
                inject("s")
        finally:
            deactivate()  # also resets the worker flag
    assert not in_worker()


def test_fault_env_transport_round_trip():
    spec = FaultSpec(site="s", kind="slow", delay=0.5)
    activate([spec], env=True)
    try:
        payload = json.loads(os.environ[FAULTS_ENV])
        assert [FaultSpec.from_dict(item) for item in payload] == [spec]
    finally:
        deactivate()
    assert FAULTS_ENV not in os.environ


def test_retry_call_recovers_and_counts():
    calls = []

    def flaky():
        calls.append(1)
        if len(calls) < 3:
            raise OSError("transient")
        return "ok"

    assert retry_call(flaky, site="t.flaky", base_delay=0.001) == "ok"
    assert len(calls) == 3
    assert resilience_counters()["resilience.retries"] == 2
    assert any(name == "retries" for name, _ in resilience_events())


def test_retry_call_exhausts_and_raises():
    def always():
        raise OSError("permanent")

    with pytest.raises(OSError):
        retry_call(always, site="t.always", retries=1, base_delay=0.001)
    assert resilience_counters()["resilience.retries"] == 1


def test_resilience_delta_and_absorb_round_trip():
    baseline = resilience_counters()
    resilience_warning("trace_write_errors", "worker-side failure")
    resilience_warning("trace_write_errors", "again")
    delta = resilience_delta(baseline)
    assert delta == {"resilience.trace_write_errors": 2}
    # the parent-side half: absorbing the shipped delta replays the counts
    reset_resilience()
    absorb_resilience(delta)
    assert resilience_counters()["resilience.trace_write_errors"] == 2
    absorb_resilience({})  # empty delta (serial fallback) is a no-op
    assert resilience_counters()["resilience.trace_write_errors"] == 2


def test_resilience_delta_drops_unchanged_names():
    resilience_warning("retries", "pre-existing")
    baseline = resilience_counters()
    resilience_warning("worker_crashes", "new since snapshot")
    assert resilience_delta(baseline) == {"resilience.worker_crashes": 1}


def test_backoff_delay_deterministic_and_bounded():
    first = backoff_delay("some.site", 1, 0.05)
    assert first == backoff_delay("some.site", 1, 0.05)
    assert backoff_delay("some.site", 2, 0.05) == backoff_delay("some.site", 2, 0.05)
    # exponential base with at most 25% jitter
    assert 0.05 <= backoff_delay("some.site", 1, 0.05) <= 0.05 * 1.25
    assert 0.10 <= backoff_delay("some.site", 2, 0.05) <= 0.10 * 1.25


# ---------------------------------------------------------------------------
# Fanout under faults: parallel -> serial, bit-identical
# ---------------------------------------------------------------------------

SIZES = (2, 3, 4)
BUDGET = 50_000


def _series(workers=0):
    return normalize_series(
        run_matching_series("ida", "h1", SIZES, budget=BUDGET, workers=workers)
    )


@pytest.fixture(scope="module")
def serial_baseline():
    return _series(workers=0)


def test_worker_crash_degrades_to_serial(serial_baseline):
    spec = FaultSpec(site=SITE_FANOUT_WORKER, kind="crash", times=0, scope="worker")
    with fault_plan(spec, env=True):
        got = _series(workers=2)
    counters = resilience_counters()
    assert got == serial_baseline
    assert counters["resilience.parallel_degraded"] == 1
    assert counters["resilience.serial_fallbacks"] == 1
    assert counters["resilience.retries"] == 2  # pool retried before giving up
    assert _no_leaked_children()


def test_transient_pool_fault_retries_then_succeeds(serial_baseline):
    spec = FaultSpec(site=SITE_FANOUT_POOL, kind="io_error", at=1, times=1)
    with fault_plan(spec):
        got = _series(workers=2)
    counters = resilience_counters()
    assert got == serial_baseline
    assert counters["resilience.retries"] == 1
    assert "resilience.serial_fallbacks" not in counters
    assert _no_leaked_children()


def test_slow_worker_still_completes(serial_baseline):
    spec = FaultSpec(site=SITE_FANOUT_WORKER, kind="slow", delay=0.2, scope="worker")
    with fault_plan(spec, env=True):
        got = _series(workers=2)
    assert got == serial_baseline
    assert "resilience.serial_fallbacks" not in resilience_counters()
    assert _no_leaked_children()


def test_fanout_worker_sink_fault_ships_trace_write_errors_home(
    serial_baseline, tmp_path
):
    # the header write is hit 1, so at=2 breaks the first event write in
    # each worker: its tracer degrades to untraced mid-point and the
    # warning must travel home in the chunk payload's resilience delta
    spec = FaultSpec(site=SITE_SINK_WRITE, kind="io_error", at=2, scope="worker")
    with fault_plan(spec, env=True):
        got = normalize_series(
            run_matching_series(
                "ida", "h1", SIZES, budget=BUDGET, workers=2, trace_dir=tmp_path
            )
        )
    counters = resilience_counters()
    assert got == serial_baseline  # degraded tracing never changes results
    assert "resilience.serial_fallbacks" not in counters  # pool path ran
    assert counters["resilience.trace_write_errors"] >= 1
    assert _no_leaked_children()


def test_strided_chunks_more_workers_than_points():
    chunks = strided_chunks(["a", "b", "c"], 8)
    assert chunks == [["a"], ["b"], ["c"]]  # empty chunks dropped
    assert strided_chunks(["a"], 8) == [["a"]]


# ---------------------------------------------------------------------------
# Tracing under faults: traced -> untraced
# ---------------------------------------------------------------------------


def test_sink_write_fault_degrades_tracer_not_search(tmp_path):
    pair = matching_pair(4)
    plain = discover_mapping(pair.source, pair.target, algorithm="ida", heuristic="h1")
    path = tmp_path / "trace.jsonl"
    with fault_plan(FaultSpec(site=SITE_SINK_WRITE, kind="io_error", at=5)):
        tracer = Tracer(JsonlSink(path))
        traced = discover_mapping(
            pair.source, pair.target, algorithm="ida", heuristic="h1", tracer=tracer
        )
        tracer.close()
    assert traced.status == "found"
    assert traced.states_examined == plain.states_examined
    assert str(traced.expression) == str(plain.expression)
    assert not tracer.enabled
    assert "InjectedIOError" in tracer.degraded_reason
    assert resilience_counters()["resilience.trace_write_errors"] == 1


def test_jsonl_sink_write_after_close_raises_typed_error(tmp_path):
    sink = JsonlSink(tmp_path / "t.jsonl")
    sink.write({"type": "x"})
    sink.close()
    sink.close()  # idempotent
    with pytest.raises(TraceWriteError):
        sink.write({"type": "y"})


def test_jsonl_sink_write_fault_closes_file(tmp_path):
    sink = JsonlSink(tmp_path / "t.jsonl")
    with fault_plan(FaultSpec(site=SITE_SINK_WRITE, kind="io_error")):
        with pytest.raises(TraceWriteError):
            sink.write({"type": "x"})
    # the failed sink is already closed; closing again stays safe
    sink.close()


# ---------------------------------------------------------------------------
# Portfolio under faults and cancellation
# ---------------------------------------------------------------------------


def _race(**kwargs):
    pair = matching_pair(5)
    kwargs.setdefault("config", SearchConfig(max_states=200_000))
    kwargs.setdefault("cancel_grace", 0.5)
    kwargs.setdefault("terminate_grace", 2.0)
    return discover_mapping_portfolio(
        pair.source, pair.target, heuristic="h1", **kwargs
    )


def test_portfolio_losers_cancel_cooperatively():
    race = _race()
    assert race.winner is not None
    losers = [report for report in race.arms if report.arm != race.winner]
    assert losers
    for report in losers:
        assert report.status in ("cancelled", "found", "not_found", "budget_exceeded")
    # at least one loser handed back partial statistics on its way out
    cancelled = [r for r in losers if r.status == "cancelled" and r.stats]
    assert cancelled
    assert cancelled[0].stats["states_examined"] >= 0
    assert _no_leaked_children()


def test_portfolio_arm_crash_does_not_kill_race():
    spec = FaultSpec(site=SITE_PORTFOLIO_ARM, kind="crash", scope="worker", match="rbfs")
    with fault_plan(spec, env=True):
        race = _race()
    assert race.winner is not None
    assert race.winner != "rbfs"
    assert race.arm("rbfs").status in ("error", "cancelled")
    assert _no_leaked_children()


def test_portfolio_spawn_fault_degrades_to_serial():
    with fault_plan(FaultSpec(site=SITE_PORTFOLIO_SPAWN, kind="io_error")):
        race = _race()
    assert race.mode == "serial"
    assert race.winner is not None
    assert resilience_counters()["resilience.portfolio_degraded"] == 1
    assert _no_leaked_children()


def test_portfolio_arm_sink_fault_ships_trace_write_errors_home(tmp_path):
    # each arm's JsonlSink dies at its 5th write (header + a few events
    # land first), so every reporting arm finishes untraced and ships a
    # trace_write_errors delta the parent must absorb
    spec = FaultSpec(site=SITE_SINK_WRITE, kind="io_error", at=5, scope="worker")
    with fault_plan(spec, env=True):
        race = _race(trace_dir=tmp_path)
    assert race.mode == "process"
    assert race.winner is not None
    assert resilience_counters()["resilience.trace_write_errors"] >= 1
    assert _no_leaked_children()


def test_portfolio_serial_sink_fault_counts_once(tmp_path):
    # serial arms run in this process, so their warnings land directly in
    # the ledger; the payload-absorb path must not double-count them
    # (times=1 -> the fault fired exactly once across the whole race)
    spec = FaultSpec(site=SITE_SINK_WRITE, kind="io_error", at=5)
    with fault_plan(spec):
        race = _race(trace_dir=tmp_path, parallel=False)
    assert race.mode == "serial"
    assert resilience_counters()["resilience.trace_write_errors"] == 1


def test_portfolio_caller_cancel_stops_race():
    token = CancelToken()
    timer = threading.Timer(0.15, token.cancel)
    timer.start()
    try:
        pair = matching_pair(7)
        race = discover_mapping_portfolio(
            pair.source,
            pair.target,
            heuristic="h0",
            config=SearchConfig(max_states=10_000_000),
            cancel=token,
            cancel_grace=0.5,
            terminate_grace=2.0,
        )
    finally:
        timer.cancel()
    assert race.winner is None
    assert _no_leaked_children()


def _ignore_sigterm_forever():
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    while True:
        time.sleep(0.1)


def test_reap_escalates_terminate_to_kill():
    context = mp.get_context("fork")
    child = context.Process(target=_ignore_sigterm_forever, daemon=True)
    child.start()
    time.sleep(0.1)  # let the child install its SIGTERM handler
    killed = _reap_processes({"stubborn": child}, terminate_grace=0.3)
    assert killed == 1
    assert not child.is_alive()
    assert resilience_counters()["resilience.portfolio_kills"] == 1
    assert _no_leaked_children()


def test_pick_best_prefers_more_informative_statuses():
    assert _STATUS_RANK["deadline_exceeded"] > _STATUS_RANK["budget_exceeded"]
    assert _STATUS_RANK["cancelled"] > _STATUS_RANK["deadline_exceeded"]
    payloads = {
        "ida": {"status": "deadline_exceeded"},
        "rbfs": {"status": "cancelled"},
        "astar": {"status": "not_found"},
    }
    best = _pick_best(payloads, ("ida", "rbfs", "astar"))
    assert best["status"] == "not_found"


# ---------------------------------------------------------------------------
# Persistence of deadline metadata
# ---------------------------------------------------------------------------


def test_persist_round_trips_deadline_seconds():
    pair_sizes = (2, 3)
    series = run_matching_series(
        "ida", "h1", pair_sizes, budget=BUDGET, deadline_seconds=60.0
    )
    data = series_to_dict(series)
    for point in data["points"]:
        assert point["deadline_seconds"] == 60.0
    back = series_from_dict(data)
    assert back.points[0].deadline_seconds == 60.0


def test_persist_accepts_archives_without_deadline():
    series = run_matching_series("ida", "h1", (2,), budget=BUDGET)
    data = series_to_dict(series)
    for point in data["points"]:
        # unbounded runs keep the historical archive shape byte-for-byte
        assert "deadline_seconds" not in point
    back = series_from_dict(data)
    assert back.points[0].deadline_seconds == 0.0


def test_crash_exit_code_is_distinctive():
    assert CRASH_EXIT_CODE == 13
