#!/usr/bin/env python
"""Track ``BENCH_*.json`` headline metrics across runs and flag regressions.

The perf benches publish machine-readable results at the repo root
(``BENCH_kernel_columnar.json``, ``BENCH_parallel_scaling.json``).  Each
file carries one or two *headline* numbers — the speedup ratios the repo's
performance story rests on.  This tool keeps them honest over time:

* ``record`` appends each file's tracked metrics as one JSONL line to a
  history file (default ``bench_history.jsonl``; override with
  ``--history`` or the ``REPRO_BENCH_HISTORY`` environment variable, which
  also makes :func:`benchmarks._bench_utils.write_bench_json` append
  automatically whenever a bench publishes).
* ``check`` compares each file's current metrics against the best value in
  the history and exits ``1`` when any metric fell more than
  ``--threshold`` (default 15 %) below that best — the CI regression gate.

All tracked metrics are higher-is-better ratios.  Exit codes: 0 OK,
1 regression detected, 2 usage/input error.

Usage::

    PYTHONPATH=src python tools/bench_history.py record BENCH_*.json
    PYTHONPATH=src python tools/bench_history.py check BENCH_*.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Iterable, Mapping, Sequence

#: environment variable naming the history file (also read by
#: benchmarks/_bench_utils.write_bench_json for automatic appends)
HISTORY_ENV = "REPRO_BENCH_HISTORY"

#: default history file, relative to the current working directory
DEFAULT_HISTORY = "bench_history.jsonl"

#: a metric this far below the historical best is flagged as a regression
DEFAULT_THRESHOLD = 0.15

#: bench name (the ``<name>`` of ``BENCH_<name>.json``) -> tracked
#: higher-is-better metrics as dotted paths into the payload
TRACKED_METRICS: dict[str, tuple[str, ...]] = {
    "kernel_columnar": ("headline.vs_seed", "headline.vs_memoized"),
    "parallel_scaling": ("arms.workers_2.speedup",),
    "sql_backends": ("headline.sqlite_vs_minisql",),
    "warm_start": ("headline.warm_vs_cold", "headline.preseed_vs_cold"),
}


def bench_name(path: str | Path) -> str:
    """``BENCH_kernel_columnar.json`` -> ``kernel_columnar``."""
    stem = Path(path).stem
    return stem[len("BENCH_"):] if stem.startswith("BENCH_") else stem


def extract_path(payload: Mapping, dotted: str) -> float | None:
    """Resolve a ``a.b.c`` path into *payload*; None when absent/non-numeric."""
    node: object = payload
    for part in dotted.split("."):
        if not isinstance(node, Mapping) or part not in node:
            return None
        node = node[part]
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return None
    return float(node)


def extract_metrics(name: str, payload: Mapping) -> dict[str, float]:
    """The tracked metrics present in *payload* (unknown bench -> KeyError)."""
    if name not in TRACKED_METRICS:
        raise KeyError(
            f"no tracked metrics for bench {name!r}; known: "
            f"{sorted(TRACKED_METRICS)}"
        )
    metrics: dict[str, float] = {}
    for dotted in TRACKED_METRICS[name]:
        value = extract_path(payload, dotted)
        if value is not None:
            metrics[dotted] = value
    return metrics


def load_history(history_path: str | Path) -> list[dict]:
    """History entries, oldest first; a missing file is an empty history."""
    path = Path(history_path)
    if not path.exists():
        return []
    entries: list[dict] = []
    for line_no, line in enumerate(path.read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{path}:{line_no}: bad history line ({exc})"
            ) from exc
        if isinstance(entry, dict):
            entries.append(entry)
    return entries


def append_history(
    history_path: str | Path,
    name: str,
    metrics: Mapping[str, float],
    source: str = "",
) -> dict:
    """Append one run's metrics as a JSONL line; returns the entry written."""
    entry = {
        "bench": name,
        "recorded_unix": round(time.time(), 3),
        "metrics": dict(metrics),
    }
    if source:
        entry["source"] = source
    path = Path(history_path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def best_values(entries: Iterable[Mapping], name: str) -> dict[str, float]:
    """Best historical value per metric for one bench (all higher-better)."""
    best: dict[str, float] = {}
    for entry in entries:
        if entry.get("bench") != name:
            continue
        for metric, value in (entry.get("metrics") or {}).items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                value = float(value)
                if metric not in best or value > best[metric]:
                    best[metric] = value
    return best


def find_regressions(
    name: str,
    current: Mapping[str, float],
    entries: Iterable[Mapping],
    threshold: float,
) -> list[str]:
    """Human-readable regression lines (empty = all metrics hold up).

    A metric regresses when its current value is more than *threshold*
    below the best value the history has ever recorded for it.  Metrics
    with no history yet pass vacuously (first run seeds the baseline).
    """
    best = best_values(entries, name)
    problems: list[str] = []
    for metric, value in sorted(current.items()):
        if metric not in best:
            continue
        floor = best[metric] * (1.0 - threshold)
        if value < floor:
            problems.append(
                f"{name}: {metric} = {value:.3f} is {1 - value / best[metric]:.1%} "
                f"below the historical best {best[metric]:.3f} "
                f"(allowed {threshold:.0%})"
            )
    return problems


def _load_payload(path: Path) -> Mapping:
    try:
        payload = json.loads(path.read_text())
    except OSError as exc:
        raise ValueError(f"cannot read {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, Mapping):
        raise ValueError(f"{path} holds {type(payload).__name__}, not an object")
    return payload


def _resolve_history(arg: str | None) -> Path:
    return Path(arg or os.environ.get(HISTORY_ENV) or DEFAULT_HISTORY)


def cmd_record(args: argparse.Namespace) -> int:
    history = _resolve_history(args.history)
    for name in sorted({bench_name(p) for p in args.paths}):
        if name not in TRACKED_METRICS:
            print(
                f"error: no tracked metrics for bench {name!r}; "
                f"known: {sorted(TRACKED_METRICS)}",
                file=sys.stderr,
            )
            return 2
    for path_text in args.paths:
        path = Path(path_text)
        payload = _load_payload(path)
        metrics = extract_metrics(bench_name(path), payload)
        if not metrics:
            print(
                f"error: {path} has none of the tracked metrics "
                f"{TRACKED_METRICS[bench_name(path)]}",
                file=sys.stderr,
            )
            return 2
        entry = append_history(history, bench_name(path), metrics, source=str(path))
        rendered = " ".join(
            f"{metric}={value:.3f}" for metric, value in sorted(metrics.items())
        )
        print(f"recorded {entry['bench']}: {rendered} -> {history}")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    history = _resolve_history(args.history)
    entries = load_history(history)
    problems: list[str] = []
    for path_text in args.paths:
        path = Path(path_text)
        payload = _load_payload(path)
        name = bench_name(path)
        current = extract_metrics(name, payload)
        if not current:
            print(
                f"error: {path} has none of the tracked metrics "
                f"{TRACKED_METRICS.get(name, ())}",
                file=sys.stderr,
            )
            return 2
        found = find_regressions(name, current, entries, args.threshold)
        problems.extend(found)
        if not found:
            best = best_values(entries, name)
            for metric, value in sorted(current.items()):
                reference = (
                    f"best {best[metric]:.3f}" if metric in best else "no history"
                )
                print(f"ok {name}: {metric} = {value:.3f} ({reference})")
    for line in problems:
        print(f"REGRESSION {line}", file=sys.stderr)
    return 1 if problems else 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser("record", help="append tracked metrics to the history")
    record.add_argument("paths", nargs="+", metavar="BENCH_JSON")
    record.add_argument(
        "--history", default=None,
        help=f"history file (default ${HISTORY_ENV} or {DEFAULT_HISTORY})",
    )
    record.set_defaults(func=cmd_record)

    check = sub.add_parser("check", help="flag metrics below the historical best")
    check.add_argument("paths", nargs="+", metavar="BENCH_JSON")
    check.add_argument(
        "--history", default=None,
        help=f"history file (default ${HISTORY_ENV} or {DEFAULT_HISTORY})",
    )
    check.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help=f"allowed drop below the best (default {DEFAULT_THRESHOLD:.0%})",
    )
    check.set_defaults(func=cmd_check)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ValueError, KeyError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
