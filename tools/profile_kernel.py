"""Profile the search hot kernel on a Fig. 5 synthetic point.

A standalone wrapper around :func:`repro.experiments.profile_point` — the
same engine as ``repro profile`` — for running straight from a checkout::

    python tools/profile_kernel.py [--synthetic 5] [--algorithm ida]
        [--heuristic h0] [--budget 1000000] [--top 20]
        [--sort cumulative|tottime] [--kernel legacy|columnar|columnar+delta]
        [--cold]

Pass ``--kernel`` to pin the hot-kernel mode for the run (the default is
whatever the ``REPRO_COLUMNAR_KERNEL`` / ``REPRO_INCREMENTAL_HEURISTICS``
environment switches say); compare two invocations to see where the time
moved.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments import profile_point  # noqa: E402
from repro.relational import caching  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="cProfile one synthetic mapping discovery"
    )
    parser.add_argument("--synthetic", type=int, default=5, metavar="N")
    parser.add_argument("--algorithm", default="ida")
    parser.add_argument("--heuristic", default="h0")
    parser.add_argument("--budget", type=int, default=1_000_000)
    parser.add_argument("--top", type=int, default=20)
    parser.add_argument(
        "--sort", default="cumulative", choices=["cumulative", "tottime"]
    )
    parser.add_argument(
        "--kernel",
        default=None,
        choices=["legacy", "columnar", "columnar+delta"],
    )
    parser.add_argument("--cold", action="store_true")
    args = parser.parse_args(argv)
    if args.kernel is not None:
        caching.set_columnar_kernel(args.kernel != "legacy")
        caching.set_incremental_heuristics(args.kernel == "columnar+delta")
    profile = profile_point(
        n=args.synthetic,
        algorithm=args.algorithm,
        heuristic=args.heuristic,
        budget=args.budget,
        top=args.top,
        sort=args.sort,
        warm=not args.cold,
    )
    print(profile.table())
    return 0


if __name__ == "__main__":
    sys.exit(main())
