#!/bin/sh
# Final benchmark run: every figure/table bench, output teed for the record.
cd /root/repo
python -m pytest benchmarks/ --benchmark-only 2>&1 | tee /root/repo/bench_output.txt
