"""Regenerate every experiment series and archive the results.

A thin, scriptable alternative to the pytest-benchmark harness: runs the
series behind each figure, saves them as JSON archives under ``results/``
(via :mod:`repro.experiments.persist`), and prints the tables.  Useful for
versioning results or re-rendering EXPERIMENTS.md data without pytest.

Usage::

    python tools/regenerate.py [--out results/] [--quick]

``--quick`` shrinks budgets and sweep sizes for a fast smoke run.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.experiments import (
    ascii_chart,
    average_states,
    averages_table,
    run_bamm_domain,
    run_matching_series,
    run_semantic_series,
    save_series,
    series_table,
)
from repro.heuristics import HEURISTIC_NAMES
from repro.workloads import DOMAIN_NAMES, bamm_corpus, inventory_domain


def regenerate_fig5_fig6(out: Path, quick: bool) -> None:
    budget = 20_000 if quick else 200_000
    h1_sizes = (2, 8, 16) if quick else tuple(range(2, 33, 3))
    h0_sizes = (2, 3, 4) if quick else tuple(range(2, 9))
    scaled_sizes = (2, 4) if quick else tuple(range(2, 9))
    for algorithm, figure in (("ida", "fig5"), ("rbfs", "fig6")):
        series = [
            run_matching_series(algorithm, "h0", h0_sizes, budget=budget),
            run_matching_series(algorithm, "h1", h1_sizes, budget=budget),
        ]
        series += [
            run_matching_series(algorithm, name, scaled_sizes, budget=50_000)
            for name in ("euclid", "euclid_norm", "cosine", "levenshtein")
        ]
        save_series(out / f"{figure}.json", series, metadata={"budget": budget})
        print(f"== {figure} ({algorithm}) ==")
        print(series_table(series, x_label="n"))
        print()
        print(ascii_chart(series, x_label="n"))
        print()


def regenerate_fig7_fig8(out: Path, quick: bool) -> None:
    corpus = bamm_corpus()
    limit = 6 if quick else 24
    heuristics = ("h0", "h1", "euclid_norm", "cosine") if quick else HEURISTIC_NAMES
    all_series = []
    for algorithm in ("ida", "rbfs"):
        table = {}
        for heuristic in heuristics:
            row = {}
            for name in DOMAIN_NAMES:
                series = run_bamm_domain(
                    algorithm, heuristic, corpus[name], budget=60_000, limit=limit
                )
                all_series.append(series)
                row[name] = average_states(series)
            table[heuristic] = row
        print(f"== fig7 ({algorithm}) ==")
        print(averages_table(table))
        print()
    save_series(out / "fig7_fig8.json", all_series, metadata={"limit": limit})


def regenerate_fig9(out: Path, quick: bool) -> None:
    domain = inventory_domain()
    counts = (1, 2, 3) if quick else tuple(range(1, 9))
    heuristics = ("h0", "h1", "cosine") if quick else HEURISTIC_NAMES
    for algorithm in ("ida", "rbfs"):
        series = [
            run_semantic_series(algorithm, name, domain, counts=counts, budget=30_000)
            for name in heuristics
        ]
        save_series(out / f"fig9_{algorithm}.json", series)
        print(f"== fig9 ({algorithm}) ==")
        print(series_table(series, x_label="#functions"))
        print()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="results", help="archive directory")
    parser.add_argument(
        "--quick", action="store_true", help="small budgets / sweeps"
    )
    args = parser.parse_args(argv)
    out = Path(args.out)
    regenerate_fig5_fig6(out, args.quick)
    regenerate_fig7_fig8(out, args.quick)
    regenerate_fig9(out, args.quick)
    print(f"archives written to {out}/")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
