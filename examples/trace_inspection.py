"""Trace inspection: record a Fig. 5 workload trace and read the profile.

The paper's Fig. 5 measures IDA* on the synthetic matching workload
(A1..An -> B1..Bn) — with the blind heuristic h0 the deepening iterations
re-expand shallow states heavily, which is exactly the behaviour a flat
"states examined" counter can't show.  This example traces that run three
ways:

1. in memory (``MemorySink``) — replay the events back into counters and
   check they match the live ``SearchStats`` exactly;
2. to disk (``JsonlSink`` via ``--trace``-style recording) — reload with
   ``load_trace`` (schema-validated) and render the full run profile;
3. into a ``MetricsRegistry`` — aggregate depth/branching histograms.

Run:  python examples/trace_inspection.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import discover_mapping
from repro.obs import (
    DEPTH_BUCKETS,
    JsonlSink,
    MemorySink,
    MetricsRegistry,
    Tracer,
    load_trace,
    replay_counters,
    run_profile,
)
from repro.workloads import matching_pair

#: Fig. 5 workload size — big enough for several IDA* thresholds
SIZE = 5


def main() -> None:
    pair = matching_pair(SIZE)

    # --- 1. trace into memory and verify the replay contract ---------------
    sink = MemorySink()
    registry = MetricsRegistry()
    result = discover_mapping(
        pair.source,
        pair.target,
        algorithm="ida",
        heuristic="h0",
        tracer=Tracer(sink),
        metrics=registry,
        simplify=False,
    )
    replayed = replay_counters(sink.events)
    assert replayed["states_examined"] == result.stats.states_examined
    assert replayed["states_generated"] == result.stats.states_generated
    assert replayed["iterations"] == result.stats.iterations
    assert replayed["cache_hits"] == result.stats.cache_hits
    print(
        f"replay contract holds: {replayed['states_examined']} states examined, "
        f"{replayed['iterations']} IDA* iterations, "
        f"{replayed['cache_hits']} cache hits — identical live and replayed"
    )

    # --- 2. persist to JSONL, reload, render the profile --------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / f"fig5_ida_h0_n{SIZE}.jsonl"
        with Tracer(JsonlSink(path)) as tracer:
            discover_mapping(
                pair.source,
                pair.target,
                algorithm="ida",
                heuristic="h0",
                tracer=tracer,
                simplify=False,
            )
        events = load_trace(path)  # schema-validated; old versions fail loudly
        print(f"\npersisted {len(events)} events to {path.name}; profile:\n")
        print(run_profile(events))

    # --- 3. what the metrics registry aggregated ----------------------------
    depth = registry.histogram("search.depth", DEPTH_BUCKETS)
    print(
        f"\nmetrics registry: mean examined depth {depth.mean:.2f} "
        f"over {depth.total} observations; "
        f"{registry.counter('search.states_examined').value} states examined"
    )


if __name__ == "__main__":
    main()
