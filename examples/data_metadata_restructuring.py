"""Data-metadata restructuring: the full Fig. 1 three-schema scenario.

Shows the dynamic operators of the language L moving information between
data and metadata levels:

* FlightsB -> FlightsA — routes (data) become columns: ``promote`` then
  ``merge`` (the Example 2 pipeline, discovered by search);
* FlightsB -> FlightsC — carriers (data) become relation names:
  ``partition``, plus a complex semantic λ for TotalCost;
* intermediate states of the Example 2 pipeline (its R1..R4 trace);
* the TNF interop encoding of FlightsC (the paper's Example 4).

Run:  python examples/data_metadata_restructuring.py
"""

from __future__ import annotations

from repro import discover_mapping, tnf_encode
from repro.workloads import (
    b_to_a_expression,
    flights_a,
    flights_b,
    flights_c,
    flights_registry,
    total_cost_correspondence,
)


def show_example2_trace() -> None:
    print("=" * 72)
    print("Example 2: the reference FlightsB -> FlightsA pipeline, step by step")
    print("=" * 72)
    expression = b_to_a_expression()
    states = expression.trace(flights_b())
    print(flights_b().to_text())
    for op, state in zip(expression, states[1:]):
        print()
        print(f"--- after {op.to_unicode()} ---")
        print(state.to_text())
    assert states[-1] == flights_a()
    print("\nfinal state equals FlightsA exactly.")


def discover_b_to_a() -> None:
    print()
    print("=" * 72)
    print("Search discovers FlightsB -> FlightsA (routes: data -> columns)")
    print("=" * 72)
    result = discover_mapping(
        flights_b(), flights_a(), algorithm="rbfs", heuristic="euclid_norm"
    )
    assert result.found
    print(result.expression)
    print(f"\n[{result.stats.states_examined} states examined]")


def discover_b_to_c() -> None:
    print()
    print("=" * 72)
    print("Search discovers FlightsB -> FlightsC (carriers: data -> relations,")
    print("TotalCost via the complex function f3 = Cost + AgentFee)")
    print("=" * 72)
    registry = flights_registry()
    result = discover_mapping(
        flights_b(),
        flights_c(),
        algorithm="rbfs",
        heuristic="h1",
        correspondences=[total_cost_correspondence()],
        registry=registry,
    )
    assert result.found
    print(result.expression)
    mapped = result.expression.apply(flights_b(), registry)
    print()
    print(mapped.to_text())
    assert mapped.contains(flights_c())


def show_tnf() -> None:
    print()
    print("=" * 72)
    print("Example 4: Tuple Normal Form of FlightsC (the interop encoding)")
    print("=" * 72)
    print(tnf_encode(flights_c()).to_text())


def main() -> None:
    show_example2_trace()
    discover_b_to_a()
    discover_b_to_c()
    show_tnf()


if __name__ == "__main__":
    main()
