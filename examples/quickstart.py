"""Quickstart: discover a schema mapping from critical instances.

Scenario (Fig. 1 of the paper): two travel agencies store the same flight
prices under different schemas.  FlightsB keeps routes as *data*; FlightsA
keeps routes as *columns*.  We give TUPELO one small example instance of
each ("critical instances" illustrating the same information) and it finds
the transformation pipeline — promote, drop, merge, rename — that maps B
onto A.  The discovered expression is then executed on a bigger instance.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Database, Tupelo

# --- 1. critical instances ---------------------------------------------------

source = Database.from_dict(
    {
        "Prices": [
            {"Carrier": "AirEast", "Route": "ATL29", "Cost": 100, "AgentFee": 15},
            {"Carrier": "JetWest", "Route": "ATL29", "Cost": 200, "AgentFee": 16},
            {"Carrier": "AirEast", "Route": "ORD17", "Cost": 110, "AgentFee": 15},
            {"Carrier": "JetWest", "Route": "ORD17", "Cost": 220, "AgentFee": 16},
        ]
    }
)

target = Database.from_dict(
    {
        "Flights": [
            {"Carrier": "AirEast", "Fee": 15, "ATL29": 100, "ORD17": 110},
            {"Carrier": "JetWest", "Fee": 16, "ATL29": 200, "ORD17": 220},
        ]
    }
)


def main() -> None:
    print("Source critical instance:")
    print(source.to_text())
    print()
    print("Target critical instance:")
    print(target.to_text())
    print()

    # --- 2. discovery ---------------------------------------------------------
    engine = Tupelo(algorithm="rbfs", heuristic="euclid_norm")
    result = engine.discover(source, target)
    assert result.found, result.status

    print("Discovered mapping expression (language L):")
    print(result.expression)
    print()
    print("Paper-style notation:")
    print(result.expression.to_unicode())
    print()
    print(
        f"search: {result.algorithm}/{result.heuristic}, "
        f"{result.stats.states_examined} states examined, "
        f"{result.stats.elapsed_seconds * 1000:.1f} ms"
    )
    print()

    # --- 3. execute the mapping on a larger instance ---------------------------
    production = Database.from_dict(
        {
            "Prices": [
                {"Carrier": "AirEast", "Route": "ATL29", "Cost": 100, "AgentFee": 15},
                {"Carrier": "AirEast", "Route": "ORD17", "Cost": 110, "AgentFee": 15},
                {"Carrier": "JetWest", "Route": "ATL29", "Cost": 200, "AgentFee": 16},
                {"Carrier": "JetWest", "Route": "ORD17", "Cost": 220, "AgentFee": 16},
                {"Carrier": "SkyHop", "Route": "ATL29", "Cost": 150, "AgentFee": 12},
                {"Carrier": "SkyHop", "Route": "ORD17", "Cost": 160, "AgentFee": 12},
            ]
        }
    )
    mapped = result.expression.apply(production)
    print("Expression replayed on a bigger Prices instance:")
    print(mapped.to_text())


if __name__ == "__main__":
    main()
