"""Complex (many-to-one) semantic mappings with the λ operator (paper §4).

An inventory system must be mapped onto a warehouse schema whose columns
are *computed*: total stock value, available units, metric weights, euro
prices, SKU lookups.  The user declares each complex correspondence
("TotalValue <- multiply(UnitsInStock, UnitPrice)") on the critical
instances; TUPELO places the λ applications inside the larger mapping
expression by search, treating every function as an opaque black box.

Run:  python examples/complex_semantic_mapping.py
"""

from __future__ import annotations

from repro import Tupelo
from repro.semantics import encode_correspondence
from repro.workloads import inventory_domain


def main() -> None:
    domain = inventory_domain()
    task = domain.task(6)  # first six of the ten declared complex mappings

    print("Source critical instance (inventory system):")
    print(task.source.to_text())
    print()
    print("Declared complex correspondences:")
    for corr in task.correspondences:
        print(f"  {corr}")
        print(f"    TNF encoding: {encode_correspondence(corr)}")
    print()
    print("Target critical instance (warehouse schema, values computed):")
    print(task.target.to_text())
    print()

    engine = Tupelo(algorithm="rbfs", heuristic="h1", registry=task.registry)
    result = engine.discover(
        task.source, task.target, correspondences=task.correspondences
    )
    assert result.found

    print("Discovered mapping expression:")
    print(result.expression)
    print()
    print(
        f"search: {result.stats.states_examined} states examined, "
        f"expression has {len(result.expression)} operators"
    )
    print()

    mapped = result.expression.apply(task.source, task.registry)
    print("Expression executed on the source instance:")
    print(mapped.relation(domain.target_relation).to_text())
    assert mapped.contains(task.target)

    print()
    print("Scaling with the number of declared functions (the Fig. 9 axis):")
    for n in range(1, domain.max_functions + 1):
        step = domain.task(n)
        run = engine.discover(
            step.source, step.target, correspondences=step.correspondences
        )
        bar = "#" * run.stats.states_examined
        print(f"  {n:2d} functions: {run.stats.states_examined:4d} states  {bar}")


if __name__ == "__main__":
    main()
