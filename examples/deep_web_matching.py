"""Deep-web schema matching: mapping a mediator schema onto query interfaces.

This is the paper's Experiment 2 scenario (the BAMM domains of the UIUC Web
Integration Repository, here a synthetic stand-in with the same structure):
a mediator holds a full "Books" schema and must map it onto dozens of book
search interfaces, each exposing a subset of concepts under its own
attribute names.  The mapping is pure schema matching — a special case of
the language L (attribute and relation renames).

The example also compares heuristics on the same tasks, previewing the
Fig. 7 result that the term-vector heuristics dominate the set-based ones.

Run:  python examples/deep_web_matching.py
"""

from __future__ import annotations

from repro import Tupelo
from repro.experiments import ascii_table
from repro.workloads import bamm_domain


def main() -> None:
    domain = bamm_domain("Books")
    print(f"Fixed mediator schema for the {domain.name} domain:")
    print(domain.source.to_text())
    print()

    engine = Tupelo(algorithm="rbfs", heuristic="cosine")

    print("Mapping the mediator schema onto the first five interfaces:")
    for task in domain.tasks[:5]:
        result = engine.discover(task.source, task.target)
        assert result.found
        print()
        print(f"--- interface {task.target.relation_names[0]} "
              f"({task.target_size} attributes, "
              f"{result.stats.states_examined} states) ---")
        if result.expression.is_identity:
            print("(schemas already aligned — identity mapping)")
        else:
            print(result.expression)

    print()
    print("Heuristic comparison on the same 12 interfaces (states examined):")
    heuristics = ["h0", "h1", "euclid_norm", "cosine"]
    rows = []
    for task in domain.tasks[:12]:
        row: list[object] = [task.target.relation_names[0]]
        for heuristic in heuristics:
            result = Tupelo(algorithm="rbfs", heuristic=heuristic).discover(
                task.source, task.target
            )
            row.append(result.stats.states_examined if result.found else "cutoff")
        rows.append(row)
    print(ascii_table(["interface", *heuristics], rows))
    print()
    print("Note how the term-vector heuristics (euclid_norm, cosine) examine")
    print("far fewer states on the harder interfaces — the Fig. 7/8 result.")


if __name__ == "__main__":
    main()
