"""Semi-automated critical-instance extraction (paper §2.2).

TUPELO needs critical instances — small aligned examples of the same
information under both schemas.  When the two *full* databases share
entities, the paper notes the instances can be extracted automatically
with duplicate-identification / record-linkage techniques.  This example
runs that workflow end to end:

1. two full HR databases with overlapping staff under different schemas,
2. record-linkage alignment extracts a two-row Rosetta Stone,
3. TUPELO discovers the mapping on the small instances,
4. the mapping replays on the full source database.

Run:  python examples/critical_instance_extraction.py
"""

from __future__ import annotations

from repro import Database, Tupelo, extract_critical_instances
from repro.instances import align_rows


def full_databases() -> tuple[Database, Database]:
    people = [
        ("Ada", "Lovelace", "Analytics", "B-201"),
        ("Edgar", "Codd", "Databases", "C-104"),
        ("Grace", "Hopper", "Compilers", "A-017"),
        ("Alan", "Turing", "Theory", "D-310"),
        ("Barbara", "Liskov", "Languages", "B-112"),
    ]
    source = Database.from_dict(
        {
            "Staff": [
                {
                    "GivenName": first,
                    "Surname": last,
                    "Dept": dept,
                    "Office": office,
                }
                for first, last, dept, office in people
            ]
        }
    )
    target = Database.from_dict(
        {
            "Employees": [
                {
                    "FirstName": first,
                    "LastName": last,
                    "Department": dept,
                    "Room": office,
                }
                for first, last, dept, office in people
            ]
        }
    )
    return source, target


def main() -> None:
    full_source, full_target = full_databases()
    print("Full source database:")
    print(full_source.to_text())
    print()

    alignments = align_rows(full_source, full_target)
    print(f"Record linkage found {len(alignments)} aligned row pairs, e.g.:")
    for alignment in alignments[:3]:
        print(f"  {alignment}")
    print()

    small_source, small_target = extract_critical_instances(
        full_source, full_target, per_relation=2
    )
    print("Extracted critical instances (the Rosetta Stone):")
    print(small_source.to_text())
    print()
    print(small_target.to_text())
    print()

    result = Tupelo(algorithm="rbfs", heuristic="cosine").discover(
        small_source, small_target
    )
    assert result.found
    print("Mapping discovered on the critical instances "
          f"({result.stats.states_examined} states):")
    print(result.expression)
    print()

    mapped = result.expression.apply(full_source)
    assert mapped.contains(full_target)
    print("Replayed on the full database:")
    print(mapped.to_text())


if __name__ == "__main__":
    main()
