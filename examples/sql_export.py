"""Exporting TUPELO artifacts to SQL.

TUPELO's internal format is Tuple Normal Form and its output is an
executable mapping expression; both can be rendered as portable SQL so the
discovered mapping can be replayed inside an RDBMS:

* DDL + INSERTs recreating the critical instances,
* the TNF-construction statement for a relation (paper §2.2),
* the discovered pipeline compiled to a step-by-step SQL script (dynamic
  operators are materialised against the instance, since their column and
  table names come from data).

Run:  python examples/sql_export.py
"""

from __future__ import annotations

from repro import compile_expression, discover_mapping
from repro.relational import relation_to_sql, tnf_construction_sql
from repro.workloads import flights_a, flights_b


def main() -> None:
    source, target = flights_b(), flights_a()

    print("-- DDL + DML for the source critical instance " + "-" * 24)
    print(relation_to_sql(source.relation("Prices")))
    print()

    print("-- TNF construction (one UNION ALL branch per attribute) " + "-" * 13)
    print(tnf_construction_sql(source.relation("Prices")))
    print()

    result = discover_mapping(source, target, heuristic="euclid_norm")
    assert result.found
    print("-- discovered mapping expression " + "-" * 38)
    for line in str(result.expression).splitlines():
        print(f"--   {line}")
    print()

    script = compile_expression(result.expression, source)
    print("-- the same expression compiled to SQL " + "-" * 32)
    print(script)

    # prove the script is executable: run it on the bundled mini-SQL engine
    from repro import run_script

    mapped = run_script(script, source)
    assert mapped.contains(target)
    print("-- script executed by repro.minisql; result " + "-" * 27)
    print("\n".join(f"--   {line}" for line in mapped.to_text().splitlines()))


if __name__ == "__main__":
    main()
