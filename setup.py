"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs (``pip install -e .`` with build isolation) cannot build an
editable wheel.  This shim lets ``pip install -e . --no-use-pep517`` (or
``python setup.py develop``) install the package the classic way.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "TUPELO: data mapping as heuristic search "
        "(reproduction of Fletcher & Wyss, EDBT 2006)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
