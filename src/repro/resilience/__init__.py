"""Resilience layer: deterministic fault injection and degradation accounting.

Two halves:

* :mod:`repro.resilience.faults` — the chaos harness.  Production failure
  points call :func:`inject` (free when no plan is active); tests activate
  :class:`FaultSpec` plans to crash workers, slow them down, break sink
  writes, or poison pickling — deterministically, selected by hit count.
* :mod:`repro.resilience.runtime` — the degradation ledger.  Survivable
  failures record ``resilience.*`` counters in a process-global registry
  (kept out of caller metrics so degraded runs stay metric-identical to
  healthy ones) and share :func:`retry_call`, the bounded
  deterministic-jitter retry helper.

See ``docs/robustness.md`` for the degradation contract.
"""

from .faults import (
    CRASH_EXIT_CODE,
    FAULTS_ENV,
    KIND_CRASH,
    KIND_HANG,
    KIND_IO_ERROR,
    KIND_NAMES,
    KIND_PICKLE_ERROR,
    KIND_SLOW,
    SCOPE_ANY,
    SCOPE_NAMES,
    SCOPE_PARENT,
    SCOPE_WORKER,
    FaultSpec,
    InjectedFault,
    InjectedIOError,
    InjectedPicklingError,
    activate,
    deactivate,
    enter_worker,
    fault_plan,
    in_worker,
    inject,
)
from .runtime import (
    RESILIENCE,
    absorb_resilience,
    backoff_delay,
    reset_resilience,
    resilience_counters,
    resilience_delta,
    resilience_events,
    resilience_warning,
    retry_call,
)

__all__ = [
    "CRASH_EXIT_CODE",
    "FAULTS_ENV",
    "KIND_CRASH",
    "KIND_HANG",
    "KIND_IO_ERROR",
    "KIND_NAMES",
    "KIND_PICKLE_ERROR",
    "KIND_SLOW",
    "SCOPE_ANY",
    "SCOPE_NAMES",
    "SCOPE_PARENT",
    "SCOPE_WORKER",
    "FaultSpec",
    "InjectedFault",
    "InjectedIOError",
    "InjectedPicklingError",
    "RESILIENCE",
    "absorb_resilience",
    "activate",
    "backoff_delay",
    "deactivate",
    "enter_worker",
    "fault_plan",
    "in_worker",
    "inject",
    "reset_resilience",
    "resilience_counters",
    "resilience_delta",
    "resilience_events",
    "resilience_warning",
    "retry_call",
]
