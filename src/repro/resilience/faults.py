"""Deterministic fault injection for the chaos suite.

Production code is sprinkled with :func:`inject` calls at its failure
points ("sites": pool submission, worker entry, sink writes, portfolio
spawn...).  With no plan activated an injection site costs one global
load and one branch — the fleet-wide default.  Tests activate a plan of
:class:`FaultSpec` records and the named sites then fail on command:
crash the process, sleep, raise an ``OSError`` / ``PicklingError``, or
hang.

Everything is deterministic: *which* call fails is selected by a
per-process hit counter (``at`` / ``times``), never by wall-clock or
randomness, so a chaos test that passes once passes always.

Cross-process transport: ``activate(..., env=True)`` serialises the plan
into the ``REPRO_FAULTS`` environment variable.  Forked workers inherit
the live registry; spawned workers find the registry empty, read the
variable on their first :func:`inject` call, and load the same plan.
Worker-scoped specs (``scope="worker"``) additionally require
:func:`enter_worker` to have been called in the current process — that
flag is set only by the pool / child entry wrappers, so when a parallel
path degrades to a serial re-run in the parent, worker faults do not
re-fire there (a crash spec would otherwise take down the parent too).
"""

from __future__ import annotations

import json
import os
import pickle
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Sequence

#: environment variable carrying the active plan to spawned workers
FAULTS_ENV = "REPRO_FAULTS"

# -- fault kinds --------------------------------------------------------------

KIND_CRASH = "crash"  #: hard-exit the process (os._exit), like a segfault
KIND_SLOW = "slow"  #: sleep ``delay`` seconds, then continue normally
KIND_IO_ERROR = "io_error"  #: raise InjectedIOError (an OSError)
KIND_PICKLE_ERROR = "pickle_error"  #: raise InjectedPicklingError
KIND_HANG = "hang"  #: sleep ``delay`` seconds (alias of slow, reads as intent)

KIND_NAMES: tuple[str, ...] = (
    KIND_CRASH,
    KIND_SLOW,
    KIND_IO_ERROR,
    KIND_PICKLE_ERROR,
    KIND_HANG,
)

# -- scopes -------------------------------------------------------------------

SCOPE_ANY = "any"  #: fire wherever the site is reached
SCOPE_WORKER = "worker"  #: fire only in processes that called enter_worker()
SCOPE_PARENT = "parent"  #: fire only in processes that did not

SCOPE_NAMES: tuple[str, ...] = (SCOPE_ANY, SCOPE_WORKER, SCOPE_PARENT)

#: exit code used by crash faults — distinctive in waitpid status reports
CRASH_EXIT_CODE = 13


class InjectedFault(RuntimeError):
    """Base marker for exceptions raised by the fault-injection harness."""


class InjectedIOError(OSError):
    """Injected I/O failure; an ``OSError`` so production handling fires."""


class InjectedPicklingError(pickle.PicklingError):
    """Injected serialisation failure; a real ``PicklingError`` subclass."""


@dataclass
class FaultSpec:
    """One planned fault at one injection site.

    Attributes:
        site: injection-site name (see the ``SITE_*`` constants in the
            modules that declare sites, e.g. :mod:`repro.parallel.fanout`).
        kind: one of :data:`KIND_NAMES`.
        at: 1-based hit number at which the fault starts firing.
        times: how many consecutive hits fire (0 = every hit from ``at``).
        delay: sleep seconds for ``slow`` / ``hang`` kinds.
        scope: one of :data:`SCOPE_NAMES`; ``worker`` specs fire only in
            processes that entered via :func:`enter_worker`.
        match: optional substring that must appear in the ``key`` the site
            passes to :func:`inject` (targets e.g. one portfolio arm).
        hits: per-process hit counter (runtime state, not part of the plan).
    """

    site: str
    kind: str
    at: int = 1
    times: int = 1
    delay: float = 0.0
    scope: str = SCOPE_ANY
    match: str | None = None
    hits: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in KIND_NAMES:
            raise ValueError(f"unknown fault kind {self.kind!r}; use {KIND_NAMES}")
        if self.scope not in SCOPE_NAMES:
            raise ValueError(f"unknown fault scope {self.scope!r}; use {SCOPE_NAMES}")
        if self.at < 1:
            raise ValueError(f"fault 'at' is 1-based; got {self.at}")
        if self.times < 0:
            raise ValueError(f"fault 'times' cannot be negative; got {self.times}")

    def to_dict(self) -> dict:
        return {
            "site": self.site,
            "kind": self.kind,
            "at": self.at,
            "times": self.times,
            "delay": self.delay,
            "scope": self.scope,
            "match": self.match,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        return cls(
            site=data["site"],
            kind=data["kind"],
            at=int(data.get("at", 1)),
            times=int(data.get("times", 1)),
            delay=float(data.get("delay", 0.0)),
            scope=data.get("scope", SCOPE_ANY),
            match=data.get("match"),
        )


#: the active plan (empty tuple = injection disabled, the hot-path check)
_PLAN: tuple[FaultSpec, ...] = ()
#: set when this process loaded (or was handed) a plan, so an empty
#: registry is not re-read from the environment on every inject() call
_PLAN_LOADED = False
#: set by enter_worker(); gates scope="worker" specs
_IN_WORKER = False


def activate(specs: Sequence[FaultSpec], env: bool = False) -> None:
    """Install *specs* as the active plan (replacing any previous plan).

    With ``env=True`` the plan is also exported through ``REPRO_FAULTS``
    so worker processes started with the ``spawn`` method pick it up.
    """
    global _PLAN, _PLAN_LOADED
    _PLAN = tuple(specs)
    _PLAN_LOADED = True
    for spec in _PLAN:
        spec.hits = 0
    if env:
        os.environ[FAULTS_ENV] = json.dumps([spec.to_dict() for spec in _PLAN])


def deactivate() -> None:
    """Clear the active plan, the environment transport, and the worker flag."""
    global _PLAN, _PLAN_LOADED, _IN_WORKER
    _PLAN = ()
    _PLAN_LOADED = True
    _IN_WORKER = False
    os.environ.pop(FAULTS_ENV, None)


@contextmanager
def fault_plan(*specs: FaultSpec, env: bool = False) -> Iterator[tuple[FaultSpec, ...]]:
    """Activate *specs* for the duration of a ``with`` block."""
    activate(specs, env=env)
    try:
        yield _PLAN
    finally:
        deactivate()


def enter_worker() -> None:
    """Mark this process as a worker (arms ``scope="worker"`` specs)."""
    global _IN_WORKER
    _IN_WORKER = True


def in_worker() -> bool:
    """Whether this process has been marked as a worker."""
    return _IN_WORKER


def _load_plan() -> tuple[FaultSpec, ...]:
    """Return the active plan, reading ``REPRO_FAULTS`` once if unset."""
    global _PLAN, _PLAN_LOADED
    if not _PLAN_LOADED:
        _PLAN_LOADED = True
        raw = os.environ.get(FAULTS_ENV)
        if raw:
            _PLAN = tuple(FaultSpec.from_dict(d) for d in json.loads(raw))
    return _PLAN


def inject(site: str, key: str | None = None) -> None:
    """Fault-injection site: a no-op unless an active spec matches.

    Args:
        site: the site name this call guards.
        key: optional discriminator (e.g. the portfolio arm name) matched
            against ``FaultSpec.match``.
    """
    plan = _PLAN if _PLAN_LOADED else _load_plan()
    if not plan:
        return
    for spec in plan:
        if spec.site != site:
            continue
        if spec.scope == SCOPE_WORKER and not _IN_WORKER:
            continue
        if spec.scope == SCOPE_PARENT and _IN_WORKER:
            continue
        if spec.match is not None and (key is None or spec.match not in key):
            continue
        spec.hits += 1
        if spec.hits < spec.at:
            continue
        if spec.times and spec.hits >= spec.at + spec.times:
            continue
        _fire(spec, site, key)


def _fire(spec: FaultSpec, site: str, key: str | None) -> None:
    where = site if key is None else f"{site}[{key}]"
    if spec.kind == KIND_CRASH:
        # hard exit, bypassing finally blocks — models a segfaulted worker
        os._exit(CRASH_EXIT_CODE)
    if spec.kind in (KIND_SLOW, KIND_HANG):
        time.sleep(spec.delay)
        return
    if spec.kind == KIND_IO_ERROR:
        raise InjectedIOError(f"injected io_error at {where} (hit {spec.hits})")
    if spec.kind == KIND_PICKLE_ERROR:
        raise InjectedPicklingError(
            f"injected pickle_error at {where} (hit {spec.hits})"
        )
    raise InjectedFault(f"injected {spec.kind} at {where}")  # pragma: no cover
