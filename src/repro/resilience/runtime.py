"""Degradation accounting and bounded retry.

Every survivable failure in the parallel / telemetry layers records a
``resilience.*`` counter here before degrading (parallel → serial,
traced → untraced, portfolio → single arm).  The counters live in a
process-global registry — *not* the caller's
:class:`~repro.obs.metrics.MetricsRegistry` — so degraded runs still
publish bit-identical search metrics to healthy runs; the chaos suite
reads this registry to prove each failure path was actually taken.

:func:`retry_call` is the shared transient-failure helper: bounded
attempts with exponential backoff and a *deterministic* jitter (seeded
from the site name and attempt number, never the wall clock or
``random``), so retry schedules are reproducible in tests.
"""

from __future__ import annotations

import time
from typing import Callable, Mapping, TypeVar
from zlib import crc32

from ..obs.metrics import MetricsRegistry

T = TypeVar("T")

#: process-global registry for resilience.* warning counters
RESILIENCE = MetricsRegistry()

#: recent (name, detail) warning events, newest last (bounded ring)
_EVENTS: list[tuple[str, str]] = []
_EVENTS_CAP = 256


def resilience_warning(name: str, detail: str = "") -> None:
    """Record one survivable failure: bump ``resilience.<name>``.

    *detail* (free-form, e.g. the exception repr or the degraded arm) is
    kept in a bounded in-process event list for test assertions and
    post-mortems; it never reaches the metric itself.
    """
    RESILIENCE.counter(f"resilience.{name}").inc()
    _EVENTS.append((name, detail))
    del _EVENTS[:-_EVENTS_CAP]


def resilience_counters(prefix: str = "resilience.") -> dict[str, int]:
    """Snapshot of the global warning counters (sorted by name)."""
    return RESILIENCE.counters(prefix)


def resilience_delta(baseline: Mapping[str, int]) -> dict[str, int]:
    """Warnings raised since *baseline* (a :func:`resilience_counters` snapshot).

    Worker processes snapshot on entry and ship the delta home inside
    their picklable result payload; under ``fork`` the child inherits the
    parent's counters, so only the growth is the child's own.  Zero-growth
    names are dropped to keep payloads small.
    """
    delta: dict[str, int] = {}
    for name, value in resilience_counters().items():
        grew = value - int(baseline.get(name, 0))
        if grew > 0:
            delta[name] = grew
    return delta


def absorb_resilience(delta: Mapping[str, int]) -> None:
    """Fold a worker's shipped counter delta into this process's registry.

    The inverse of :func:`resilience_delta`: the parent calls this once
    per collected worker payload, so degradations that happened across a
    process boundary (e.g. a child's tracer going dark) still show up in
    the parent's ``resilience.*`` counters and hence in chaos assertions.
    """
    for name, amount in delta.items():
        if amount > 0:
            RESILIENCE.counter(name).inc(int(amount))


def resilience_events() -> list[tuple[str, str]]:
    """Recent warning events as ``(name, detail)`` pairs, oldest first."""
    return list(_EVENTS)


def reset_resilience() -> None:
    """Drop all counters and events (test isolation).

    Clears the singleton in place so every importer — including modules
    that bound ``RESILIENCE`` at import time — sees the fresh state.
    """
    RESILIENCE._instruments.clear()
    _EVENTS.clear()


def backoff_delay(site: str, attempt: int, base_delay: float) -> float:
    """Deterministic jittered exponential backoff for *attempt* (1-based).

    ``base * 2^(attempt-1)`` scaled by a jitter factor in [1.0, 1.25)
    derived from ``crc32(site) ^ attempt`` — reproducible across runs and
    processes, yet de-synchronised across sites and attempts.
    """
    jitter = 1.0 + ((crc32(site.encode("utf-8")) ^ attempt) % 256) / 1024.0
    return base_delay * (2 ** (attempt - 1)) * jitter


def retry_call(
    fn: Callable[[], T],
    *,
    site: str,
    retries: int = 2,
    base_delay: float = 0.05,
    retry_on: tuple[type[BaseException], ...] = (OSError,),
) -> T:
    """Call *fn*, retrying up to *retries* times on *retry_on* failures.

    Each retry records a ``resilience.retries`` warning and sleeps the
    :func:`backoff_delay` for its attempt number.  The final failure
    propagates unchanged so callers keep their own degradation path.
    """
    attempt = 0
    while True:
        try:
            return fn()
        except retry_on as exc:
            attempt += 1
            if attempt > retries:
                raise
            resilience_warning("retries", f"{site}: {type(exc).__name__}: {exc}")
            time.sleep(backoff_delay(site, attempt, base_delay))
