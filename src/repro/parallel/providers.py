"""Named registry providers — how function registries cross process lines.

A :class:`~repro.semantics.functions.FunctionRegistry` holds arbitrary
callables (lambdas, closures over lookup tables), which pickle refuses to
ship.  The parallel layer therefore never serialises a registry: work
specs carry a *provider name*, and each worker rebuilds the registry
locally by calling the named zero-argument factory.

The built-in providers cover everything the repository's own workloads
need (``builtin`` plus the two Fig. 9 semantic domains).  Code that races
or fans out custom domains registers a factory once per process — under
``fork`` the parent's registrations are inherited; under ``spawn`` the
factory module must perform the registration at import time.
"""

from __future__ import annotations

from typing import Callable

from ..semantics.functions import FunctionRegistry, builtin_registry

#: provider name used when a caller passes no registry at all
BUILTIN_PROVIDER = "builtin"


def _inventory_registry() -> FunctionRegistry:
    from ..workloads.semantic_domains import inventory_domain

    return inventory_domain().registry


def _real_estate_registry() -> FunctionRegistry:
    from ..workloads.semantic_domains import real_estate_domain

    return real_estate_domain().registry


_PROVIDERS: dict[str, Callable[[], FunctionRegistry]] = {
    BUILTIN_PROVIDER: builtin_registry,
    "Inventory": _inventory_registry,
    "RealEstateII": _real_estate_registry,
}


def provider_names() -> tuple[str, ...]:
    """Registered provider names, sorted."""
    return tuple(sorted(_PROVIDERS))


def has_provider(name: str) -> bool:
    """Whether a registry provider called *name* is registered."""
    return name in _PROVIDERS


def register_provider(
    name: str, factory: Callable[[], FunctionRegistry], replace: bool = False
) -> None:
    """Register a zero-argument registry factory under *name*.

    Raises:
        ValueError: when *name* is taken and ``replace`` is False.
    """
    if name in _PROVIDERS and not replace:
        raise ValueError(
            f"registry provider {name!r} already registered; pass replace=True"
        )
    _PROVIDERS[name] = factory


def resolve_registry(provider: str | None) -> FunctionRegistry:
    """Build the registry for *provider* (None means the built-ins).

    Raises:
        KeyError: for unknown provider names — a worker raising this turns
            into a clean per-point/per-arm error, not a hang.
    """
    if provider is None:
        provider = BUILTIN_PROVIDER
    try:
        factory = _PROVIDERS[provider]
    except KeyError:
        raise KeyError(
            f"unknown registry provider {provider!r}; "
            f"known: {provider_names()}"
        ) from None
    return factory()
