"""Process-pool plumbing shared by the parallel entry points.

TUPELO's evaluation grid — (workload × algorithm × heuristic × size × trial)
— is embarrassingly parallel: every measured point is an independent search.
This module centralises the process-level mechanics both entry points
(:mod:`repro.parallel.fanout`, :mod:`repro.parallel.portfolio`) need:

* **start-method selection** — ``fork`` is preferred where available (cheap,
  and children inherit already-imported modules plus any warm module-level
  caches); ``forkserver`` and ``spawn`` are the fallbacks.  Everything
  shipped across the boundary is plain picklable data, so all three work.
* **worker sizing** — :func:`default_workers` respects CPU affinity masks
  (cgroup-limited containers report the usable count, not the machine's).
* **chunked dispatch** — :func:`strided_chunks` deals a work list into one
  chunk per worker, round-robin, so expensive neighbouring points (grids
  are typically sorted by size) land on different workers.
* **graceful degradation** — :func:`try_executor` returns ``None`` instead
  of raising when process pools are unavailable (missing ``_multiprocessing``
  in minimal builds, fork failures, read-only semaphore dirs); callers then
  run the identical work serially in-process.

Nothing here imports the search kernel, so the module is cheap to import
inside freshly spawned workers.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Sequence, TypeVar

T = TypeVar("T")

#: start methods in preference order (cheapest / warmest first)
START_METHOD_PREFERENCE: tuple[str, ...] = ("fork", "forkserver", "spawn")

#: errors that mean "no process pool here" rather than a bug — the parallel
#: entry points degrade to serial execution on any of these
POOL_UNAVAILABLE_ERRORS: tuple[type[BaseException], ...] = (
    ImportError,
    NotImplementedError,
    OSError,
    PermissionError,
)


def cpu_count() -> int:
    """Usable CPUs for this process (affinity-aware, minimum 1).

    ``os.sched_getaffinity`` sees cgroup/affinity restrictions that
    ``os.cpu_count`` ignores — the honest number for sizing a worker pool
    inside a container.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def default_workers() -> int:
    """Default pool size: one worker per usable CPU."""
    return cpu_count()


def available_start_methods() -> tuple[str, ...]:
    """Start methods this platform offers (empty when mp is unusable)."""
    try:
        import multiprocessing

        return tuple(multiprocessing.get_all_start_methods())
    except POOL_UNAVAILABLE_ERRORS:  # pragma: no cover - minimal builds
        return ()


def preferred_start_method() -> str | None:
    """The best available start method (None when none work)."""
    available = available_start_methods()
    for method in START_METHOD_PREFERENCE:
        if method in available:
            return method
    return available[0] if available else None


def supports_start_method(method: str) -> bool:
    """Whether *method* is offered on this platform."""
    return method in available_start_methods()


def resolve_start_method(method: str | None) -> str | None:
    """Validate an explicit start method, or pick the preferred one.

    Raises:
        ValueError: when an explicitly requested method is unsupported
            (a typo should fail loudly; only *absence* degrades silently).
    """
    if method is None:
        return preferred_start_method()
    if not supports_start_method(method):
        raise ValueError(
            f"start method {method!r} not supported here; "
            f"available: {available_start_methods()}"
        )
    return method


def get_context(method: str | None = None):
    """A multiprocessing context for *method* (or the preferred one).

    Returns None when multiprocessing is unavailable entirely.
    """
    resolved = resolve_start_method(method)
    if resolved is None:  # pragma: no cover - minimal builds
        return None
    import multiprocessing

    return multiprocessing.get_context(resolved)


def try_executor(workers: int, start_method: str | None = None):
    """A ``ProcessPoolExecutor`` with *workers* processes, or None.

    Any platform-level failure (no ``multiprocessing``, fork refusal,
    unusable semaphores) yields None so callers can degrade to serial
    execution; an explicitly invalid *start_method* still raises.
    """
    try:
        from concurrent.futures import ProcessPoolExecutor

        context = get_context(start_method)
        if context is None:  # pragma: no cover - minimal builds
            return None
        return ProcessPoolExecutor(max_workers=workers, mp_context=context)
    except POOL_UNAVAILABLE_ERRORS:
        return None


def strided_chunks(items: Sequence[T], n_chunks: int) -> list[list[T]]:
    """Deal *items* round-robin into at most *n_chunks* non-empty chunks.

    ``strided_chunks([a, b, c, d, e], 2) == [[a, c, e], [b, d]]`` — the
    stride interleaves cheap and expensive grid points (grids are usually
    sorted by size) across workers, a static form of load balancing that
    keeps chunk assignment deterministic for a given worker count.
    """
    if n_chunks < 1:
        raise ValueError(f"n_chunks must be positive, got {n_chunks}")
    chunks = [list(items[i::n_chunks]) for i in range(n_chunks)]
    return [chunk for chunk in chunks if chunk]


def worker_trace_path(path: str, worker_id: int) -> str:
    """Insert a ``.w{worker_id}`` marker before the path's extension.

    ``traces/ida-h1_x4.jsonl`` → ``traces/ida-h1_x4.w0.jsonl``: every
    worker writes trace files nobody else touches, so two workers can never
    interleave lines into one JSONL stream.  Paths without an extension get
    the marker appended; "" (tracing off) passes through unchanged.
    """
    if not path:
        return path
    p = Path(path)
    if p.suffix:
        return str(p.with_suffix(f".w{worker_id}{p.suffix}"))
    return f"{path}.w{worker_id}"
