"""Algorithm-portfolio racing: all search algorithms, one problem, first
verified mapping wins.

The paper's algorithms have wildly different cost profiles per task shape
(Figs. 5–9: IDA* wins some grids, RBFS others; beam is fast but incomplete).
When latency matters more than CPU-seconds — the interactive-mapping setting
— the right move is to race the whole portfolio across processes and return
the first *verified* mapping, cancelling the losers mid-search.

:func:`discover_mapping_portfolio` does exactly that:

* one child process per arm (default portfolio: IDA*, RBFS, A*, beam),
  each running :func:`~repro.search.engine.discover_mapping` unchanged;
* a worker that finds an expression **verifies it before racing home**
  (applies the expression to the source and checks target containment),
  and the parent re-verifies before declaring a winner — a corrupted or
  unsound arm cannot win the race;
* losers are cancelled the moment a verified mapping arrives, gently
  first and forcibly after: each arm carries a
  :class:`~repro.search.cancel.CancelToken` backed by a shared
  ``multiprocessing.Event``, so a losing arm usually unwinds cooperatively
  within *cancel_grace* and reports its partial ``SearchStats``; whatever
  is still alive after that is ``terminate()``d, then ``kill()``ed after
  *terminate_grace*, then joined — the parent never leaks a child
  process, even for an arm stuck in native code;
* per-arm :class:`~repro.search.stats.SearchStats` come back as plain
  dicts and are published into a caller-supplied
  :class:`~repro.obs.metrics.MetricsRegistry` under ``portfolio.<arm>.*``,
  so one registry shows the whole race;
* with ``trace_dir=`` every arm streams its own JSONL trace
  (``arm_<name>.jsonl``) — ``repro trace --inspect`` renders any arm's
  ``run_profile`` after the fact;
* when process pools are unavailable the race degrades to running arms
  serially in preference order, stopping at the first verified mapping
  (same answer, no speedup, ``mode="serial"``).

Function registries cross the process boundary by *provider name* (see
:mod:`repro.parallel.providers`), never by pickling callables.
"""

from __future__ import annotations

import queue as queue_mod
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import Mapping, Sequence

from ..fira.expression import MappingExpression
from ..obs.metrics import MetricsRegistry
from ..obs.sinks import JsonlSink
from ..obs.tracer import Tracer
from ..relational.database import Database
from ..resilience.faults import enter_worker, inject
from ..resilience.runtime import (
    absorb_resilience,
    resilience_counters,
    resilience_delta,
    resilience_warning,
)
from ..search.cancel import CancelToken
from ..search.config import SearchConfig
from ..search.engine import ALGORITHM_NAMES, discover_mapping
from ..search.result import STATUS_FOUND, SearchResult
from ..search.stats import SearchStats
from ..semantics.correspondence import Correspondence
from .pool import POOL_UNAVAILABLE_ERRORS, get_context, resolve_start_method
from .providers import resolve_registry

#: the default racing portfolio — the paper's two linear-memory algorithms
#: plus the best-first and beam ablations (one arm per search strategy)
DEFAULT_PORTFOLIO: tuple[str, ...] = ("ida", "rbfs", "astar", "beam")

#: seconds to keep polling for a dead child's already-queued report
_DRAIN_GRACE = 2.0

#: queue poll interval while the race is live
_POLL_INTERVAL = 0.1

#: default seconds losers get to unwind cooperatively before terminate()
DEFAULT_CANCEL_GRACE = 1.0

#: default seconds a terminated child gets to die before kill()
DEFAULT_TERMINATE_GRACE = 5.0

#: fault-injection sites (see repro.resilience.faults)
SITE_PORTFOLIO_SPAWN = "portfolio.spawn"  #: parent, before arms start
SITE_PORTFOLIO_ARM = "portfolio.arm"  #: child, on arm entry (key = arm name)

ARM_STATUS_ERROR = "error"
ARM_STATUS_CANCELLED = "cancelled"


@dataclass(frozen=True)
class ArmReport:
    """What one portfolio arm did during the race.

    Attributes:
        arm: arm name (the algorithm registry key).
        status: the arm's search status, or ``"cancelled"`` (terminated
            when another arm won / never started in serial mode) or
            ``"error"`` (the arm crashed; see ``error``).
        verified: the arm's expression re-applied to the source contains
            the target (checked in the worker *and* re-checked by the
            parent for the winning arm).
        states_examined: the paper's cost metric for this arm.
        elapsed_seconds: the arm's own search wall-clock.
        stats: full ``SearchStats.as_dict()`` snapshot (empty when the arm
            was cancelled before reporting).
        trace_path: the arm's JSONL trace ("" when untraced).
        error: crash diagnostics for ``status == "error"``.
    """

    arm: str
    status: str
    verified: bool = False
    states_examined: int = 0
    elapsed_seconds: float = 0.0
    stats: Mapping[str, float | int] | None = None
    trace_path: str = ""
    error: str = ""

    @property
    def finished(self) -> bool:
        """Whether the arm ran to completion (any terminal search status)."""
        return self.status not in (ARM_STATUS_CANCELLED, ARM_STATUS_ERROR)


@dataclass(frozen=True)
class PortfolioResult:
    """Outcome of one portfolio race.

    Attributes:
        winner: name of the winning arm (None when no arm found a mapping).
        result: the winner's :class:`SearchResult` (status/expression/stats
            reconstructed from the worker's report), or the best-effort
            result of the preferred finished arm when nothing was found.
        arms: one :class:`ArmReport` per arm, in portfolio order.
        mode: ``"process"`` (raced across processes) or ``"serial"``
            (degraded / requested in-process fallback).
        start_method: multiprocessing start method used (None in serial).
        elapsed_seconds: wall-clock of the whole race, including process
            startup and cancellation.
    """

    winner: str | None
    result: SearchResult | None
    arms: tuple[ArmReport, ...]
    mode: str
    start_method: str | None
    elapsed_seconds: float

    @property
    def found(self) -> bool:
        """Whether any arm returned a verified mapping."""
        return self.winner is not None

    def arm(self, name: str) -> ArmReport:
        """The report for one arm (raises ``KeyError`` when unknown)."""
        for report in self.arms:
            if report.arm == name:
                return report
        raise KeyError(f"no portfolio arm {name!r}; ran {[a.arm for a in self.arms]}")


def _arm_trace_path(trace_dir: str | Path | None, arm: str) -> str:
    if trace_dir is None:
        return ""
    path = Path(trace_dir) / f"arm_{arm}.jsonl"
    path.parent.mkdir(parents=True, exist_ok=True)
    return str(path)


def _run_arm(
    arm: str,
    source: Database,
    target: Database,
    heuristic: str,
    k: float | None,
    correspondences: tuple[Correspondence, ...],
    registry_provider: str | None,
    config: SearchConfig,
    simplify: bool,
    trace_path: str,
    store: str = "",
    cancel: CancelToken | None = None,
) -> dict:
    """Run one arm to completion and summarise it as a picklable dict.

    *store* (a path, shipped as a string so it pickles) points every arm
    at one shared :class:`~repro.store.WarmStartStore`: the first arm to
    spill its memo tables warms the others mid-race, and the winner's
    mapping lands in the memo for the next request.
    """
    registry = resolve_registry(registry_provider)
    tracer = Tracer(JsonlSink(trace_path)) if trace_path else None
    try:
        result = discover_mapping(
            source,
            target,
            algorithm=arm,
            heuristic=heuristic,
            k=k,
            correspondences=correspondences,
            registry=registry,
            config=config,
            simplify=simplify,
            tracer=tracer,
            metrics=None,
            cancel=cancel,
            store=store or None,
        )
    finally:
        if tracer is not None:
            tracer.close()
    verified = False
    if result.found:
        mapped = result.expression.apply(source, registry)
        verified = mapped.contains(target)
    return {
        "arm": arm,
        "status": result.status,
        "verified": verified,
        "operators": tuple(result.expression) if result.found else None,
        "stats": result.stats.as_dict(),
        "trace_path": trace_path,
        "error": "",
    }


def _race_arm(out_queue, kwargs: dict, cancel_event=None) -> None:
    """Child-process entry point: run the arm, report, never raise.

    *cancel_event* is the arm's shared ``multiprocessing.Event``; wrapped
    in a :class:`CancelToken`, it lets the parent unwind this arm
    cooperatively (status ``"cancelled"``, partial stats intact) instead
    of terminating it blind.

    Every payload carries the arm's ``resilience.*`` counter delta (the
    warnings this child raised, e.g. a tracer going dark mid-race), so the
    parent can absorb cross-process degradations into its own ledger.
    """
    arm = kwargs.get("arm", "?")
    baseline = resilience_counters()
    try:
        enter_worker()
        inject(SITE_PORTFOLIO_ARM, key=arm)
        token = CancelToken(cancel_event) if cancel_event is not None else None
        payload = _run_arm(**kwargs, cancel=token)
        payload["resilience"] = resilience_delta(baseline)
        out_queue.put(payload)
    except BaseException as err:  # noqa: BLE001 - crash must become a report
        out_queue.put(
            {
                "arm": arm,
                "status": ARM_STATUS_ERROR,
                "verified": False,
                "operators": None,
                "stats": {},
                "trace_path": kwargs.get("trace_path", ""),
                "error": f"{type(err).__name__}: {err}",
                "resilience": resilience_delta(baseline),
            }
        )


def _stats_from_dict(
    payload: Mapping[str, float | int], budget: int
) -> SearchStats:
    """Rebuild a frozen-clock :class:`SearchStats` from its dict snapshot."""
    stats = SearchStats(budget=budget)
    for key, value in payload.items():
        if hasattr(stats, key):
            setattr(stats, key, value)
    stats.clock_stopped = True
    return stats


def _report_from_payload(payload: Mapping) -> ArmReport:
    stats = payload.get("stats") or {}
    return ArmReport(
        arm=payload["arm"],
        status=payload["status"],
        verified=bool(payload.get("verified")),
        states_examined=int(stats.get("states_examined", 0)),
        elapsed_seconds=float(stats.get("elapsed_seconds", 0.0)),
        stats=dict(stats),
        trace_path=str(payload.get("trace_path", "")),
        error=str(payload.get("error", "")),
    )


def _result_from_payload(payload: Mapping, config: SearchConfig) -> SearchResult:
    operators = payload.get("operators")
    expression = MappingExpression(operators) if operators is not None else None
    return SearchResult(
        status=payload["status"],
        expression=expression,
        stats=_stats_from_dict(payload.get("stats") or {}, config.max_states),
        algorithm=payload["arm"],
        heuristic=payload.get("heuristic", ""),
    )


#: preference order when no arm found a mapping: a definitive "not found"
#: beats a budget cut, beats a deadline cut, beats a cancelled partial,
#: beats a crash
_STATUS_RANK = {
    "not_found": 0,
    "budget_exceeded": 1,
    "deadline_exceeded": 2,
    ARM_STATUS_CANCELLED: 3,
    ARM_STATUS_ERROR: 4,
}


def _pick_best(payloads: "dict[str, Mapping]", arms: Sequence[str]) -> Mapping | None:
    """The best-effort payload when the race produced no verified mapping."""
    candidates = [payloads[arm] for arm in arms if arm in payloads]
    if not candidates:
        return None
    return min(
        candidates,
        key=lambda p: (_STATUS_RANK.get(p["status"], 5),),
    )


def _verify_payload(
    payload: Mapping,
    source: Database,
    target: Database,
    registry_provider: str | None,
) -> bool:
    """Parent-side re-verification of a worker's claimed mapping."""
    operators = payload.get("operators")
    if operators is None:
        return False
    registry = resolve_registry(registry_provider)
    mapped = MappingExpression(operators).apply(source, registry)
    return mapped.contains(target)


def discover_mapping_portfolio(
    source: Database,
    target: Database,
    algorithms: Sequence[str] = DEFAULT_PORTFOLIO,
    heuristic: str = "h1",
    k: float | None = None,
    correspondences: Sequence[Correspondence] = (),
    registry_provider: str | None = None,
    config: SearchConfig | None = None,
    simplify: bool = True,
    parallel: bool = True,
    start_method: str | None = None,
    trace_dir: str | Path | None = None,
    metrics: MetricsRegistry | None = None,
    timeout: float | None = None,
    cancel: CancelToken | None = None,
    cancel_grace: float = DEFAULT_CANCEL_GRACE,
    terminate_grace: float = DEFAULT_TERMINATE_GRACE,
    store: str | Path | None = None,
) -> PortfolioResult:
    """Race the algorithm portfolio on one problem; first verified win takes all.

    Args:
        source / target: the critical-instance pair to map.
        algorithms: arms to race (each a
            :data:`~repro.search.engine.ALGORITHM_NAMES` entry).
        heuristic / k: heuristic shared by every arm.
        correspondences: declared complex correspondences (§4).
        registry_provider: named registry factory resolved *inside each
            worker* (see :mod:`repro.parallel.providers`); None = built-ins.
        config: shared :class:`SearchConfig` (budget, per-arm
            ``deadline_seconds``, ...).
        simplify: post-simplify the winning expression (done in the worker).
        parallel: False forces the serial in-process fallback.
        start_method: multiprocessing start method override.
        trace_dir: directory for per-arm JSONL traces (``arm_<name>.jsonl``).
        metrics: registry receiving every finished arm's stats under
            ``portfolio.<arm>.*`` plus the race-level counters.
        timeout: overall race budget in seconds; on expiry the remaining
            arms are cancelled and the best finished arm is reported.
        cancel: caller-level :class:`CancelToken`; setting it mid-race
            cancels every arm (no winner is declared after it is seen).
        cancel_grace: seconds losers get to unwind cooperatively (report
            partial stats) before being ``terminate()``d.
        terminate_grace: seconds a terminated child gets to exit before
            escalation to ``kill()``.
        store: optional warm-start store path shared by every arm (see
            :mod:`repro.store`): arms pre-seed from and spill to the same
            files, so the race warms itself and subsequent requests.

    Returns:
        A :class:`PortfolioResult`; ``result.result.expression`` is the
        winning mapping when ``result.found``.
    """
    arms = tuple(dict.fromkeys(a.lower() for a in algorithms))
    if not arms:
        raise ValueError("portfolio needs at least one algorithm")
    unknown = [a for a in arms if a not in ALGORITHM_NAMES]
    if unknown:
        raise ValueError(
            f"unknown portfolio algorithms {unknown}; known: {ALGORITHM_NAMES}"
        )
    config = config if config is not None else SearchConfig()
    started = perf_counter()

    def arm_kwargs(arm: str) -> dict:
        return {
            "arm": arm,
            "source": source,
            "target": target,
            "heuristic": heuristic,
            "k": k,
            "correspondences": tuple(correspondences),
            "registry_provider": registry_provider,
            "config": config,
            "simplify": simplify,
            "trace_path": _arm_trace_path(trace_dir, arm),
            "store": str(store) if store is not None else "",
        }

    context = None
    resolved_method = None
    if parallel and len(arms) > 1:
        resolved_method = resolve_start_method(start_method)
        if resolved_method is not None:
            context = get_context(resolved_method)
    if context is None:
        outcome = _race_serial(
            arms, arm_kwargs, source, target, registry_provider, cancel
        )
        mode, resolved_method = "serial", None
    else:
        try:
            outcome = _race_processes(
                context,
                arms,
                arm_kwargs,
                source,
                target,
                registry_provider,
                timeout,
                cancel,
                cancel_grace,
                terminate_grace,
            )
            mode = "process"
        except POOL_UNAVAILABLE_ERRORS as exc:
            resilience_warning(
                "portfolio_degraded", f"{type(exc).__name__}: {exc}"
            )
            outcome = _race_serial(
                arms, arm_kwargs, source, target, registry_provider, cancel
            )
            mode, resolved_method = "serial", None
    winner, payloads, reports = outcome

    # Only the child entry point (_race_arm) sets "resilience", so serial
    # arms — whose warnings already landed in this process's ledger — are
    # never double-counted here.
    for payload in payloads.values():
        absorb_resilience(payload.get("resilience") or {})

    result: SearchResult | None = None
    if winner is not None:
        result = _result_from_payload(dict(payloads[winner], heuristic=heuristic), config)
    else:
        best = _pick_best(payloads, arms)
        if best is not None and best["status"] != ARM_STATUS_ERROR:
            result = _result_from_payload(dict(best, heuristic=heuristic), config)

    if metrics is not None:
        metrics.counter("portfolio.races").inc()
        if winner is not None:
            metrics.counter("portfolio.wins." + winner).inc()
        for report in reports:
            if report.stats:
                metrics.publish_stats(report.stats, prefix=f"portfolio.{report.arm}.")

    return PortfolioResult(
        winner=winner,
        result=result,
        arms=tuple(reports),
        mode=mode,
        start_method=resolved_method,
        elapsed_seconds=perf_counter() - started,
    )


def _race_serial(
    arms: Sequence[str],
    arm_kwargs,
    source: Database,
    target: Database,
    registry_provider: str | None,
    cancel: CancelToken | None = None,
) -> tuple[str | None, dict, list[ArmReport]]:
    """In-process fallback: run arms in order, stop at first verified win.

    The caller's *cancel* token threads into every arm (cooperative
    unwind mid-search) and is checked between arms (skip the rest).
    """
    payloads: dict[str, Mapping] = {}
    reports: list[ArmReport] = []
    winner: str | None = None
    for arm in arms:
        if winner is not None or (cancel is not None and cancel.cancelled):
            reports.append(ArmReport(arm=arm, status=ARM_STATUS_CANCELLED))
            continue
        try:
            payload = _run_arm(**arm_kwargs(arm), cancel=cancel)
        except Exception as err:  # noqa: BLE001 - match process-mode isolation
            payload = {
                "arm": arm,
                "status": ARM_STATUS_ERROR,
                "verified": False,
                "operators": None,
                "stats": {},
                "trace_path": arm_kwargs(arm)["trace_path"],
                "error": f"{type(err).__name__}: {err}",
            }
        payloads[arm] = payload
        reports.append(_report_from_payload(payload))
        if (
            payload["status"] == STATUS_FOUND
            and payload["verified"]
            and _verify_payload(payload, source, target, registry_provider)
        ):
            winner = arm
    return winner, payloads, reports


def _reap_processes(processes: Mapping[str, object], terminate_grace: float) -> int:
    """Escalation ladder for still-live children: terminate -> kill -> join.

    Every live child is ``terminate()``d, given *terminate_grace* seconds
    collectively to exit, then ``kill()``ed (SIGKILL cannot be blocked)
    and joined — so the parent reaps every child and leaks no zombies.
    A needed kill records ``resilience.portfolio_kills``; a child that
    somehow survives even that records ``resilience.leaked_processes``.

    Returns the number of children that needed ``kill()``.
    """
    for process in processes.values():
        if process.is_alive():
            process.terminate()
    deadline = perf_counter() + max(0.0, terminate_grace)
    for process in processes.values():
        remaining = deadline - perf_counter()
        process.join(timeout=max(0.05, remaining))
    kills = 0
    for arm, process in processes.items():
        if process.is_alive():
            kills += 1
            resilience_warning("portfolio_kills", arm)
            process.kill()
    for arm, process in processes.items():
        process.join(timeout=5.0)
        if process.is_alive():  # pragma: no cover - SIGKILL cannot be blocked
            resilience_warning("leaked_processes", arm)
    return kills


def _crash_payload(arm: str, process) -> dict:
    return {
        "arm": arm,
        "status": ARM_STATUS_ERROR,
        "verified": False,
        "operators": None,
        "stats": {},
        "trace_path": "",
        "error": f"worker exited with code {process.exitcode} before reporting",
    }


def _race_processes(
    context,
    arms: Sequence[str],
    arm_kwargs,
    source: Database,
    target: Database,
    registry_provider: str | None,
    timeout: float | None,
    cancel: CancelToken | None = None,
    cancel_grace: float = DEFAULT_CANCEL_GRACE,
    terminate_grace: float = DEFAULT_TERMINATE_GRACE,
) -> tuple[str | None, dict, list[ArmReport]]:
    """Race arms across child processes; cancel losers on first win.

    Loser teardown is staged: cooperative cancel (per-arm Event, drained
    for up to *cancel_grace* so losers report partial stats), then
    :func:`_reap_processes` (terminate -> kill -> join).  The queue's
    feeder thread is shut down explicitly on exit, so the parent holds no
    queue resources after the race either.
    """
    inject(SITE_PORTFOLIO_SPAWN)
    out_queue = context.Queue()
    cancel_events = {arm: context.Event() for arm in arms}
    processes = {}
    for arm in arms:
        process = context.Process(
            target=_race_arm,
            args=(out_queue, arm_kwargs(arm), cancel_events[arm]),
            daemon=True,
        )
        processes[arm] = process
        process.start()

    payloads: dict[str, Mapping] = {}
    pending = set(arms)
    winner: str | None = None
    deadline = None if timeout is None else perf_counter() + timeout
    grace: dict[str, float] = {}
    try:
        while pending:
            if deadline is not None and perf_counter() > deadline:
                break
            if cancel is not None and cancel.cancelled:
                break
            try:
                payload = out_queue.get(timeout=_POLL_INTERVAL)
            except queue_mod.Empty:
                now = perf_counter()
                for arm in sorted(pending):
                    process = processes[arm]
                    if process.is_alive():
                        continue
                    # dead child: give its queued report a short grace
                    # window before declaring a crash
                    first_seen = grace.setdefault(arm, now)
                    if now - first_seen >= _DRAIN_GRACE:
                        pending.discard(arm)
                        resilience_warning("worker_crashes", arm)
                        payloads[arm] = _crash_payload(arm, process)
                continue
            arm = payload.get("arm")
            if arm not in pending:
                continue
            pending.discard(arm)
            payloads[arm] = payload
            if (
                payload["status"] == STATUS_FOUND
                and payload["verified"]
                and _verify_payload(payload, source, target, registry_provider)
            ):
                winner = arm
                break
    finally:
        # stage 1 — cooperative: flip every pending arm's cancel event and
        # drain their partial-stats reports until they exit or grace runs out
        for arm in pending:
            cancel_events[arm].set()
        drain_deadline = perf_counter() + max(0.0, cancel_grace)
        while pending and perf_counter() < drain_deadline:
            try:
                payload = out_queue.get(timeout=min(_POLL_INTERVAL, 0.05))
            except queue_mod.Empty:
                if not any(processes[arm].is_alive() for arm in pending):
                    break
                continue
            arm = payload.get("arm")
            if arm in pending:
                pending.discard(arm)
                payloads[arm] = payload
        # stage 2 — forcible: terminate -> kill -> join whatever remains
        _reap_processes(processes, terminate_grace)
        # the parent never put() to this queue, so cancelling the feeder
        # thread cannot drop parent data; close() + cancel_join_thread()
        # guarantees queue teardown never blocks process exit
        out_queue.close()
        out_queue.cancel_join_thread()

    reports: list[ArmReport] = []
    for arm in arms:
        payload = payloads.get(arm)
        if payload is None:
            reports.append(ArmReport(arm=arm, status=ARM_STATUS_CANCELLED))
        else:
            reports.append(_report_from_payload(payload))
    return winner, payloads, reports


def race_table(result: PortfolioResult) -> str:
    """ASCII rendering of one race — one row per arm, winner marked."""
    from ..experiments.report import ascii_table

    rows: list[list[object]] = []
    for report in result.arms:
        marker = "<- winner" if report.arm == result.winner else ""
        if report.status == ARM_STATUS_CANCELLED:
            note = "cancelled"
        elif report.status == ARM_STATUS_ERROR:
            note = report.error
        else:
            note = "verified" if report.verified else ""
        rows.append(
            [
                report.arm,
                report.status,
                report.states_examined if report.finished else "-",
                f"{report.elapsed_seconds:.3f}" if report.finished else "-",
                note,
                marker,
            ]
        )
    title = (
        f"portfolio race ({result.mode}"
        + (f"/{result.start_method}" if result.start_method else "")
        + f", {result.elapsed_seconds:.3f}s)"
    )
    return ascii_table(
        ["arm", "status", "states", "elapsed (s)", "note", ""], rows, title=title
    )
