"""Experiment fan-out: shard measured grid points across worker processes.

The paper's evaluation (Figs. 5–9) is a grid of independent measurements;
:func:`run_experiment_points` executes a list of :class:`PointSpec`\\ s
across a ``ProcessPoolExecutor`` and returns
:class:`~repro.experiments.runner.ExperimentPoint`\\ s **re-sorted by grid
index**, so callers persist results in exactly the order a serial sweep
would have produced.

Design decisions, in the order they matter:

* **Specs, not objects.**  A spec ships either plain parameters (synthetic
  sizes rebuild in the worker) or pickle-safe critical instances plus a
  *registry provider name* (see :mod:`repro.parallel.providers`) — never a
  live ``FunctionRegistry`` or a warm ``MappingProblem``.
* **Chunked dispatch, one chunk per worker.**  Chunks are dealt round-robin
  (:func:`~repro.parallel.pool.strided_chunks`), each worker runs its chunk
  serially, and module-level workload caches stay warm across the chunk's
  points (the same synthetic pair / semantic domain is rebuilt once per
  process, not once per point).
* **Per-worker trace files.**  When a spec carries a trace path, the chunk
  id is spliced in as ``.w{chunk}`` before the extension
  (:func:`~repro.parallel.pool.worker_trace_path`) so no two workers ever
  write into the same JSONL stream; the rewritten path is what lands in
  ``ExperimentPoint.trace_path`` and hence in ``trace_index_table``.
* **Determinism contract.**  Every counter a point carries (states, status,
  expression size, cache hits/misses/evictions) is bit-identical to the
  serial run; only wall-clock fields (``elapsed_seconds``) and trace paths
  (the ``.w{n}`` marker) are volatile.  :func:`normalize_point` /
  :func:`normalize_series` zero the volatile fields so archives from serial
  and parallel runs can be compared byte-for-byte.
* **Graceful degradation.**  If process pools are unavailable (ImportError,
  fork failure, broken pool mid-run, unpicklable payloads) the same chunks
  run serially in this process — identical results, no parallelism, no
  crash.  Transient pool failures are retried first
  (:func:`~repro.resilience.runtime.retry_call`, bounded with
  deterministic jittered backoff); every degradation records a
  ``resilience.*`` counter in the process-global registry, never in the
  caller's *metrics* (which must stay bit-identical to a healthy run).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache
from pickle import PicklingError
from typing import Sequence

from ..experiments.runner import ExperimentPoint, ExperimentSeries, _point
from ..obs.metrics import MetricsRegistry
from ..obs.sinks import JsonlSink
from ..obs.tracer import Tracer
from ..relational.database import Database
from ..resilience.faults import enter_worker, inject
from ..resilience.runtime import (
    absorb_resilience,
    resilience_counters,
    resilience_delta,
    resilience_warning,
    retry_call,
)
from ..search.config import SearchConfig
from ..search.engine import discover_mapping
from ..semantics.correspondence import Correspondence
from .pool import strided_chunks, try_executor, worker_trace_path
from .providers import resolve_registry

#: spec kinds understood by the worker
KIND_MATCHING = "matching"
KIND_DATABASES = "databases"
KIND_SEMANTIC = "semantic"

#: fault-injection sites (see repro.resilience.faults)
SITE_FANOUT_POOL = "fanout.pool"  #: parent, before the pool spins up
SITE_FANOUT_SUBMIT = "fanout.submit"  #: parent, as chunks are submitted
SITE_FANOUT_WORKER = "fanout.worker"  #: worker, on chunk entry

#: pool attempts beyond the first before degrading to serial
POOL_RETRIES = 2


@dataclass(frozen=True)
class PointSpec:
    """One measured grid point, in pickle-safe form.

    Attributes:
        index: position in the grid (collection re-sorts on this).
        kind: ``"matching"`` (rebuild the synthetic pair from ``size``),
            ``"databases"`` (ship ``source``/``target`` directly), or
            ``"semantic"`` (databases plus correspondences and a registry
            provider name).
        x: the point's independent variable, recorded verbatim.
        algorithm / heuristic / k / budget: search parameters.
        size: synthetic pair size (``matching`` kind only).
        source / target: critical instances (``databases`` / ``semantic``).
        correspondences: declared complex correspondences (``semantic``).
        registry_provider: provider name resolving the function registry in
            the worker (``semantic``; None means built-ins).
        trace_path: JSONL trace destination ("" = untraced); fan-out
            rewrites it with the worker marker before dispatch.
        store_path: warm-start store directory ("" = no store); workers
            share the path, so each chunk pre-seeds from and spills to
            the same :class:`~repro.store.WarmStartStore` files.
        collect_metrics: record this point into the chunk's local
            :class:`~repro.obs.metrics.MetricsRegistry` for merging.
        deadline_seconds: per-point wall-clock deadline (0.0 = unbounded);
            each worker enforces it cooperatively inside its own search,
            so one slow point cannot starve the rest of the chunk.
    """

    index: int
    kind: str
    x: float
    algorithm: str
    heuristic: str
    k: float | None = None
    budget: int = 1_000_000
    size: int = 0
    source: Database | None = None
    target: Database | None = None
    correspondences: tuple[Correspondence, ...] = ()
    registry_provider: str | None = None
    trace_path: str = ""
    store_path: str = ""
    collect_metrics: bool = False
    deadline_seconds: float = 0.0


@lru_cache(maxsize=64)
def _matching_pair_cached(size: int):
    """Per-process synthetic pair cache (warm across a chunk's points)."""
    from ..workloads.synthetic import matching_pair

    return matching_pair(size)


def _execute_spec(spec: PointSpec, metrics: MetricsRegistry | None) -> ExperimentPoint:
    """Run one grid point exactly as the serial runner would."""
    if spec.kind == KIND_MATCHING:
        pair = _matching_pair_cached(spec.size)
        source, target = pair.source, pair.target
        correspondences: tuple[Correspondence, ...] = ()
        registry = None
    elif spec.kind == KIND_DATABASES:
        source, target = spec.source, spec.target
        correspondences, registry = (), None
    elif spec.kind == KIND_SEMANTIC:
        source, target = spec.source, spec.target
        correspondences = spec.correspondences
        registry = resolve_registry(spec.registry_provider)
    else:
        raise ValueError(f"unknown point spec kind {spec.kind!r}")
    tracer = Tracer(JsonlSink(spec.trace_path)) if spec.trace_path else None
    try:
        result = discover_mapping(
            source,
            target,
            algorithm=spec.algorithm,
            heuristic=spec.heuristic,
            k=spec.k,
            correspondences=correspondences,
            registry=registry,
            config=SearchConfig(
                max_states=spec.budget,
                deadline_seconds=spec.deadline_seconds or None,
            ),
            simplify=False,
            tracer=tracer,
            metrics=metrics,
            store=spec.store_path or None,
        )
    finally:
        if tracer is not None:
            tracer.close()
    return _point(spec.x, result, spec.trace_path)


def _run_chunk(
    specs: Sequence[PointSpec],
) -> tuple[list[tuple[int, ExperimentPoint]], MetricsRegistry | None]:
    """Worker entry point: run one chunk serially, return indexed points.

    The chunk shares one local :class:`MetricsRegistry` (when any spec asks
    for metrics), mirroring how a serial sweep accumulates into a single
    registry; the parent merges chunk registries on collection.
    """
    metrics = MetricsRegistry() if any(s.collect_metrics for s in specs) else None
    out: list[tuple[int, ExperimentPoint]] = []
    for spec in specs:
        out.append((spec.index, _execute_spec(spec, metrics)))
    return out, metrics


def _run_chunk_pooled(
    specs: Sequence[PointSpec],
) -> tuple[
    list[tuple[int, ExperimentPoint]], MetricsRegistry | None, dict[str, int]
]:
    """Pool-dispatched chunk entry: arm worker-scope faults, then run.

    ``enter_worker()`` marks this process so ``scope="worker"`` fault specs
    fire here but *not* during a serial fallback re-run in the parent —
    otherwise an injected worker crash would take the parent down with it.

    The third element is the chunk's ``resilience.*`` counter delta — the
    warnings this worker raised (e.g. its tracer degrading to untraced) —
    which the parent absorbs into its own ledger on collection.
    """
    baseline = resilience_counters()
    enter_worker()
    inject(SITE_FANOUT_WORKER, key=f"chunk{specs[0].index}" if specs else None)
    points, metrics = _run_chunk(specs)
    return points, metrics, resilience_delta(baseline)


def _mark_worker_traces(chunks: list[list[PointSpec]]) -> list[list[PointSpec]]:
    """Rewrite each traced spec's path with its chunk's ``.w{n}`` marker."""
    marked: list[list[PointSpec]] = []
    for worker_id, chunk in enumerate(chunks):
        marked.append(
            [
                replace(s, trace_path=worker_trace_path(s.trace_path, worker_id))
                if s.trace_path
                else s
                for s in chunk
            ]
        )
    return marked


def run_experiment_points(
    specs: Sequence[PointSpec],
    workers: int,
    start_method: str | None = None,
    metrics: MetricsRegistry | None = None,
) -> list[ExperimentPoint]:
    """Execute *specs* on a pool of *workers* processes.

    Points come back sorted by grid index — byte-identical (modulo
    wall-clock and trace-path markers) to running the specs serially.
    Metrics observed by workers merge into *metrics* in chunk order
    (commutative adds, so ordering cannot change totals).

    Degrades to serial in-process execution when pools are unavailable,
    break mid-run (retried up to :data:`POOL_RETRIES` times first — the
    chunks are side-effect-idempotent, so a full redo is safe), or the
    payload fails to pickle; every degradation records a ``resilience.*``
    counter.  An explicitly invalid *start_method* still raises.
    """
    if not specs:
        return []
    chunks = _mark_worker_traces(strided_chunks(list(specs), max(1, workers)))
    outcomes: list[tuple] | None = None
    if workers >= 1:
        from concurrent.futures.process import BrokenProcessPool

        def _pooled():
            inject(SITE_FANOUT_POOL)
            executor = try_executor(len(chunks), start_method)
            if executor is None:
                return None  # pool machinery unavailable on this platform
            with executor:
                inject(SITE_FANOUT_SUBMIT)
                return list(executor.map(_run_chunk_pooled, chunks))

        try:
            outcomes = retry_call(
                _pooled,
                site=SITE_FANOUT_POOL,
                retries=POOL_RETRIES,
                retry_on=(BrokenProcessPool, OSError),
            )
        except (BrokenProcessPool, OSError, PicklingError) as exc:
            resilience_warning(
                "parallel_degraded", f"{type(exc).__name__}: {exc}"
            )
            outcomes = None
        if outcomes is None:
            resilience_warning("serial_fallbacks", f"{len(chunks)} chunk(s)")
    if outcomes is None:
        # serial fallback: warnings land directly in this process's
        # ledger, so the shipped delta is empty by construction
        outcomes = [(*_run_chunk(chunk), {}) for chunk in chunks]
    indexed: list[tuple[int, ExperimentPoint]] = []
    for chunk_points, chunk_metrics, chunk_resilience in outcomes:
        indexed.extend(chunk_points)
        if metrics is not None and chunk_metrics is not None:
            metrics.merge_from(chunk_metrics)
        absorb_resilience(chunk_resilience)
    indexed.sort(key=lambda item: item[0])
    return [point for _index, point in indexed]


# -- determinism contract helpers -------------------------------------------


def normalize_point(point: ExperimentPoint) -> ExperimentPoint:
    """Zero the volatile fields of a point (wall-clock, trace path).

    What remains is the deterministic payload the parallel layer guarantees
    bit-identical to a serial run: x, states, status, expression size, and
    every cache counter.
    """
    return replace(point, elapsed_seconds=0.0, trace_path="")


def normalize_series(series: ExperimentSeries) -> ExperimentSeries:
    """A copy of *series* with every point normalized (label untouched)."""
    return ExperimentSeries(
        label=series.label,
        points=tuple(normalize_point(p) for p in series.points),
    )
