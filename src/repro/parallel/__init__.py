"""Parallel execution layer: experiment fan-out and portfolio racing.

Two entry points put every available core behind TUPELO:

* :func:`~repro.parallel.fanout.run_experiment_points` — shard a grid of
  independent experiment measurements across a process pool (the
  ``workers=`` mode of the :mod:`repro.experiments.runner` functions).
* :func:`~repro.parallel.portfolio.discover_mapping_portfolio` — race the
  search-algorithm portfolio on one problem and return the first verified
  mapping, cancelling the losers.

Both degrade gracefully to serial execution when process pools are
unavailable, and both guarantee the deterministic parts of their results
are identical to a serial run (see ``docs/performance.md``).
"""

from .fanout import (
    PointSpec,
    normalize_point,
    normalize_series,
    run_experiment_points,
)
from .pool import (
    available_start_methods,
    cpu_count,
    default_workers,
    preferred_start_method,
    strided_chunks,
    supports_start_method,
    worker_trace_path,
)
from .portfolio import (
    DEFAULT_CANCEL_GRACE,
    DEFAULT_PORTFOLIO,
    DEFAULT_TERMINATE_GRACE,
    ArmReport,
    PortfolioResult,
    discover_mapping_portfolio,
    race_table,
)
from .providers import (
    provider_names,
    register_provider,
    resolve_registry,
)

__all__ = [
    "PointSpec",
    "normalize_point",
    "normalize_series",
    "run_experiment_points",
    "available_start_methods",
    "cpu_count",
    "default_workers",
    "preferred_start_method",
    "strided_chunks",
    "supports_start_method",
    "worker_trace_path",
    "DEFAULT_CANCEL_GRACE",
    "DEFAULT_PORTFOLIO",
    "DEFAULT_TERMINATE_GRACE",
    "ArmReport",
    "PortfolioResult",
    "discover_mapping_portfolio",
    "race_table",
    "provider_names",
    "register_provider",
    "resolve_registry",
]
