"""DuckDB backend: optional, skipped cleanly when the module is absent.

DuckDB is not a stdlib module and is **not** installed in every
environment; this backend therefore gates everything behind an import
probe — :meth:`DuckDbBackend.availability` reports why the engine cannot
run instead of raising at import time, the auto-dispatching executor
simply skips it, and the test suite marks its equivalence legs
``skipif`` .

Faithfulness notes (docs/execution.md has the full matrix):

* **Bag semantics** — like SQLite, handled by the dialect's ``SELECT
  DISTINCT`` re-creations.
* **Strict typing** — DuckDB columns hold one type; a source column mixing
  ints and strings cannot round-trip, so :meth:`why_unsupported` declines
  mixed-type columns (NULLs aside) rather than letting the engine coerce.
* **Native booleans** — unlike SQLite, ``True`` round-trips as a BOOLEAN.
* **UDFs** — registered via ``duckdb``'s ``create_function`` when the
  installed version exposes it; otherwise λ-bearing mappings are declined.
"""

from __future__ import annotations

import importlib.util
from typing import TYPE_CHECKING

from ..errors import BackendExecutionError
from ..fira.semantic import ApplyFunction
from ..relational.database import Database
from ..relational.dialect import DuckDbDialect
from ..relational.relation import Relation
from ..relational.types import NULL, is_null
from ..semantics.functions import builtin_registry
from .base import SqlBackend, StatementLimiter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..fira.expression import MappingExpression
    from ..fira.sqlcompile import SqlScript
    from ..search.cancel import CancelToken
    from ..semantics.functions import FunctionRegistry


def _column_kinds(rel: Relation, pos: int) -> set[type]:
    """Python types present in a column, NULLs excluded, bool distinct."""
    return {type(row[pos]) for row in rel.rows if not is_null(row[pos])}


def _mixed_type_column(db: Database) -> str | None:
    """Name of a relation.attribute whose cells mix engine types, if any."""
    for rel in db:
        for pos, attr in enumerate(rel.attributes):
            kinds = _column_kinds(rel, pos)
            # int/float coexist fine in a DOUBLE column only by coercing
            # ints to floats, which breaks bit-identity — treat any mix
            # (including numeric mixes) as unsupported.
            if len(kinds) > 1:
                return f"{rel.name}.{attr}"
    return None


class DuckDbBackend(SqlBackend):
    """Optional DuckDB backend (in-memory database per execution)."""

    name = "duckdb"
    dialect = DuckDbDialect()

    def availability(self) -> str | None:
        if importlib.util.find_spec("duckdb") is None:
            return "the duckdb module is not installed"
        return None

    def why_unsupported(
        self,
        expression: "MappingExpression",
        source: Database | None = None,
    ) -> str | None:
        reason = self.availability()
        if reason is not None:
            return reason
        if source is not None:
            mixed = _mixed_type_column(source)
            if mixed is not None:
                return (
                    f"column {mixed} mixes value types and DuckDB columns "
                    "are strictly typed (coercion would break bit-identity)"
                )
        if any(isinstance(op, ApplyFunction) for op in expression):
            import duckdb

            if not hasattr(duckdb.DuckDBPyConnection, "create_function"):
                return (
                    "mapping applies a semantic function but this duckdb "
                    "version has no create_function UDF API"
                )
        return None

    def execute(
        self,
        script: "SqlScript",
        source: Database,
        registry: "FunctionRegistry | None" = None,
        deadline: float | None = None,
        cancel: "CancelToken | None" = None,
    ) -> Database:
        self.require_available()
        import duckdb

        limiter = StatementLimiter(deadline, cancel)
        conn = duckdb.connect(":memory:")
        try:
            self._register_functions(conn, registry, script)
            self._load(conn, source)
            for statement in script.statements:
                limiter.check()
                try:
                    conn.execute(statement)
                except duckdb.Error as exc:  # pragma: no cover - needs duckdb
                    raise BackendExecutionError(
                        self.name, statement, exc
                    ) from exc
                limiter.completed()
            limiter.check()
            return self._read_back(conn)
        finally:
            conn.close()

    # -- helpers (exercised only where duckdb is installed) -------------------

    def _load(self, conn, source: Database) -> None:  # pragma: no cover
        from ..relational.sql import create_table_sql, insert_sql

        for rel in source:
            conn.execute(create_table_sql(rel, self.dialect))
            for stmt in insert_sql(rel, self.dialect):
                conn.execute(stmt)

    def _register_functions(
        self, conn, registry, script
    ) -> None:  # pragma: no cover
        if not hasattr(conn, "create_function"):
            return
        reg = registry if registry is not None else builtin_registry()
        for fn in reg:
            def wrapper(*args: object, _fn=fn) -> object:
                out = _fn.apply(
                    *[NULL if a is None else a for a in args]
                )
                return None if is_null(out) else out

            try:
                conn.create_function(fn.name, wrapper)
            except Exception:
                # Signature inference can fail for exotic UDFs; execution
                # will then raise a clear BackendExecutionError instead.
                continue

    def _read_back(self, conn) -> Database:  # pragma: no cover
        tables = [
            row[0]
            for row in conn.execute(
                "SELECT table_name FROM information_schema.tables "
                "WHERE table_schema = 'main'"
            ).fetchall()
        ]
        relations = []
        for table in tables:
            cursor = conn.execute(
                f"SELECT * FROM {self.dialect.quote_identifier(table)}"
            )
            attributes = [desc[0] for desc in cursor.description]
            rows = [
                tuple(NULL if cell is None else cell for cell in row)
                for row in cursor.fetchall()
            ]
            relations.append(Relation(table, attributes, rows))
        return Database(relations)
