"""The :class:`SqlBackend` ABC: pluggable engines for discovered mappings.

A backend owns one :class:`~repro.relational.dialect.SqlDialect` and knows
how to (1) decide whether it can *faithfully* execute a given mapping over
a given instance, (2) compile the mapping to a :class:`~repro.fira
.sqlcompile.SqlScript` in its dialect, and (3) execute that script against
the source instance, returning the result as an ordinary
:class:`~repro.relational.database.Database` value — so every backend's
output is directly comparable (``==`` is bit-identity) with the in-memory
FIRA algebra and with every other backend.  That cross-engine equivalence
is the correctness oracle for the FIRA → SQL compiler
(``tests/test_backend_equivalence.py``).

Backends honor the deadline/cancel contract of the search kernel (PR 5):
``execute`` polls its :class:`~repro.search.cancel.CancelToken` and
wall-clock deadline *between statements* and unwinds with the standard
:class:`~repro.errors.SearchCancelled` /
:class:`~repro.errors.SearchDeadlineExceeded`, so the CLI's exit-code-3
deadline path covers engine execution too.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from time import perf_counter
from typing import TYPE_CHECKING

from ..errors import (
    BackendUnavailableError,
    BackendUnsupportedError,
    SearchCancelled,
    SearchDeadlineExceeded,
)
from ..fira.expression import MappingExpression
from ..fira.sqlcompile import SqlScript, compile_script
from ..relational.database import Database
from ..relational.dialect import SqlDialect

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..search.cancel import CancelToken
    from ..semantics.functions import FunctionRegistry


class StatementLimiter:
    """Per-script deadline/cancel poller shared by all backends.

    Construct once at the top of ``execute`` and call :meth:`check` before
    every statement (and once more after the last): a set cancel token
    raises :class:`~repro.errors.SearchCancelled`, an elapsed deadline
    raises :class:`~repro.errors.SearchDeadlineExceeded`, both carrying the
    number of statements completed so far as their progress counter.
    """

    __slots__ = ("deadline", "cancel", "started", "statements_done")

    def __init__(
        self,
        deadline: float | None = None,
        cancel: "CancelToken | None" = None,
    ) -> None:
        self.deadline = deadline
        self.cancel = cancel
        self.started = perf_counter()
        self.statements_done = 0

    def check(self) -> None:
        """Raise if cancelled or past deadline; otherwise return cheaply."""
        if self.cancel is not None and self.cancel.cancelled:
            raise SearchCancelled(self.statements_done)
        if self.deadline is not None:
            elapsed = perf_counter() - self.started
            if elapsed > self.deadline:
                raise SearchDeadlineExceeded(
                    self.deadline, elapsed, self.statements_done
                )

    def completed(self, count: int = 1) -> None:
        """Record *count* more statements finished."""
        self.statements_done += count


class SqlBackend(ABC):
    """One pluggable SQL execution engine for discovered mappings.

    Subclasses set :attr:`name` and :attr:`dialect` and implement
    :meth:`execute`; :meth:`compile` and :meth:`supports` have sensible
    shared defaults (compile via :func:`~repro.fira.sqlcompile
    .compile_script` in the backend's dialect; support everything the
    dialect can render).
    """

    #: registry key, also the CLI ``--backend`` spelling
    name: str = "sql-backend"
    #: rendering rules for this engine
    dialect: SqlDialect

    # -- availability ---------------------------------------------------------

    def availability(self) -> str | None:
        """None when the engine can run here, else a human-readable reason.

        Backends over optional modules (duckdb) override this; stdlib and
        in-process backends are always available.
        """
        return None

    def is_available(self) -> bool:
        """Whether the engine is importable/usable in this environment."""
        return self.availability() is None

    def require_available(self) -> None:
        """Raise :class:`~repro.errors.BackendUnavailableError` if absent."""
        reason = self.availability()
        if reason is not None:
            raise BackendUnavailableError(self.name, reason)

    # -- capability -----------------------------------------------------------

    def why_unsupported(
        self,
        expression: MappingExpression,
        source: Database | None = None,
    ) -> str | None:
        """None when this backend can faithfully execute the mapping,
        else the reason it cannot (used verbatim in errors and logs)."""
        return None

    def supports(
        self,
        expression: MappingExpression,
        source: Database | None = None,
    ) -> bool:
        """Whether this backend can faithfully execute *expression*.

        "Faithfully" means the executed result is bit-identical with the
        in-memory algebra — backends decline instances their engine cannot
        round-trip (e.g. SQLite and booleans) rather than silently
        diverging.
        """
        return self.why_unsupported(expression, source) is None

    def require_supported(
        self,
        expression: MappingExpression,
        source: Database | None = None,
    ) -> None:
        """Raise :class:`~repro.errors.BackendUnsupportedError` with the
        reason when :meth:`supports` is False."""
        reason = self.why_unsupported(expression, source)
        if reason is not None:
            raise BackendUnsupportedError(self.name, reason)

    # -- compile / execute ----------------------------------------------------

    def compile(
        self,
        expression: MappingExpression,
        source: Database,
        registry: "FunctionRegistry | None" = None,
    ) -> SqlScript:
        """Compile *expression* over *source* into this backend's dialect."""
        return compile_script(expression, source, registry, self.dialect)

    @abstractmethod
    def execute(
        self,
        script: SqlScript,
        source: Database,
        registry: "FunctionRegistry | None" = None,
        deadline: float | None = None,
        cancel: "CancelToken | None" = None,
    ) -> Database:
        """Load *source*, run *script* statement by statement, read back.

        Returns the resulting catalogue as a :class:`Database`
        bit-identical (for supported inputs) with replaying the mapping
        through the in-memory algebra.  Polls *cancel* and *deadline*
        between statements (see :class:`StatementLimiter`).
        """

    def run(
        self,
        expression: MappingExpression,
        source: Database,
        registry: "FunctionRegistry | None" = None,
        deadline: float | None = None,
        cancel: "CancelToken | None" = None,
    ) -> Database:
        """Convenience: availability + support checks, compile, execute."""
        self.require_available()
        self.require_supported(expression, source)
        script = self.compile(expression, source, registry)
        return self.execute(
            script, source, registry=registry, deadline=deadline, cancel=cancel
        )

    def __repr__(self) -> str:
        state = "available" if self.is_available() else "unavailable"
        return f"<{type(self).__name__} {self.name} ({state})>"
