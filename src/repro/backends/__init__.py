"""Pluggable SQL execution backends for discovered mappings.

TUPELO's output is an executable mapping expression; this package makes
"executable" literal across engines.  A :class:`~repro.backends.base
.SqlBackend` pairs a rendering dialect with an engine that can load a
source instance, run the compiled script, and hand the result back as a
plain :class:`~repro.relational.database.Database` — so every engine's
output is bit-comparable with the in-memory FIRA algebra and with every
other engine.  Cross-backend equivalence is the compiler's correctness
oracle (``tests/test_backend_equivalence.py``).

Shipped backends:

======== ================================= ==============================
name     engine                            availability
======== ================================= ==============================
minisql  in-process reference interpreter  always (zero dependencies)
sqlite   stdlib :mod:`sqlite3`             always
duckdb   DuckDB                            only when ``duckdb`` installed
======== ================================= ==============================

:func:`execute_mapping` / :class:`Executor` dispatch between them
(``backend="auto"`` prefers the fastest faithful engine available); see
``docs/execution.md`` for the semantics matrix and how to add a backend.
"""

from .base import SqlBackend, StatementLimiter
from .duckdb_backend import DuckDbBackend
from .executor import (
    AUTO,
    AUTO_ORDER,
    ExecutionResult,
    Executor,
    available_backends,
    backend_names,
    execute_mapping,
    get_backend,
)
from .minisql_backend import MiniSqlBackend
from .sqlite_backend import SqliteBackend

__all__ = [
    "AUTO",
    "AUTO_ORDER",
    "DuckDbBackend",
    "ExecutionResult",
    "Executor",
    "MiniSqlBackend",
    "SqlBackend",
    "SqliteBackend",
    "StatementLimiter",
    "available_backends",
    "backend_names",
    "execute_mapping",
    "get_backend",
]
