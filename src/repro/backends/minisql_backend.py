"""The zero-dependency reference backend over :mod:`repro.minisql`.

This is the engine the project has always verified its SQL compilation
against: an in-process interpreter with set-semantics tables and the
library's canonical text rendering.  It supports every mapping the
compiler can emit and every instance the relational model can hold, so it
anchors the cross-backend equivalence oracle — other engines are compared
against it (and against the in-memory algebra).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..minisql.engine import MiniSqlEngine
from ..relational.database import Database
from ..relational.dialect import MiniSqlDialect
from .base import SqlBackend, StatementLimiter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..fira.sqlcompile import SqlScript
    from ..search.cancel import CancelToken
    from ..semantics.functions import FunctionRegistry


class MiniSqlBackend(SqlBackend):
    """Reference backend: the in-process mini-SQL interpreter."""

    name = "minisql"
    dialect = MiniSqlDialect()

    def execute(
        self,
        script: "SqlScript",
        source: Database,
        registry: "FunctionRegistry | None" = None,
        deadline: float | None = None,
        cancel: "CancelToken | None" = None,
    ) -> Database:
        limiter = StatementLimiter(deadline, cancel)
        engine = MiniSqlEngine(source, registry)
        for statement in script.statements:
            limiter.check()
            engine.execute(statement)
            limiter.completed()
        limiter.check()
        return engine.database
