"""SQLite backend: execute discovered mappings on the stdlib engine.

SQLite ships with Python, so this backend is always available — it is the
first "real" RDBMS in the equivalence oracle and typically executes large
instances far faster than the interpreted reference engine.

Faithfulness notes (see docs/execution.md for the full matrix):

* **Bag semantics** — SQLite tables are bags; the sqlite dialect re-creates
  tables with ``SELECT DISTINCT`` and compiles column drops as DISTINCT
  re-creations so results match the paper's set-semantics model.
* **Untyped loading** — source tables are created *without* declared column
  types.  SQLite's type affinity would otherwise coerce cells (an INTEGER
  in a ``DOUBLE PRECISION`` column comes back as a REAL) and break
  bit-identical round-trips of mixed-type columns; columns with no declared
  type store every value exactly as supplied.
* **No booleans** — SQLite has no BOOLEAN storage class: ``True`` round
  trips as ``1``.  Rather than silently rewriting values, the backend
  *declines* sources containing booleans (:meth:`SqliteBackend
  .why_unsupported`), and the auto-dispatching executor falls back to the
  reference engine.
* **UDFs** — λ applications run through :meth:`sqlite3.Connection
  .create_function` wrappers around the project's semantic functions, with
  NULL↔None conversion at the boundary.
"""

from __future__ import annotations

import sqlite3
from itertools import islice
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from ..errors import BackendExecutionError
from ..fira.structure import Select
from ..relational.database import Database
from ..relational.dialect import SqliteDialect
from ..relational.relation import Relation
from ..relational.sql import create_table_sql
from ..relational.types import NULL, Value, is_null
from ..semantics.functions import builtin_registry
from .base import SqlBackend, StatementLimiter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..fira.expression import MappingExpression
    from ..fira.sqlcompile import SqlScript
    from ..search.cancel import CancelToken
    from ..semantics.functions import FunctionRegistry


def _to_engine(value: Value) -> object:
    """Library value -> sqlite3 parameter (NULL becomes None)."""
    return None if is_null(value) else value


def _from_engine(cell: object) -> Value:
    """sqlite3 cell -> library value (None becomes NULL)."""
    if cell is None:
        return NULL
    if isinstance(cell, (int, float, str)):
        return cell
    raise BackendExecutionError(
        "sqlite",
        "<read-back>",
        TypeError(f"sqlite returned unsupported cell type {type(cell).__name__}"),
    )


#: rows per executemany batch during load — large enough to amortise the
#: statement dispatch, small enough that peak memory stays one chunk of
#: parameter tuples rather than a full copy of the relation
LOAD_CHUNK_ROWS = 4096


def _chunked(rows: Iterable[Sequence], size: int) -> Iterator[list]:
    """Yield *rows* in lists of at most *size* (last chunk may be short)."""
    it = iter(rows)
    while chunk := list(islice(it, size)):
        yield chunk


def _database_has_bool(db: Database) -> bool:
    return any(
        isinstance(cell, bool)
        for rel in db
        for row in rel.rows
        for cell in row
    )


class SqliteBackend(SqlBackend):
    """Stdlib :mod:`sqlite3` backend (in-memory database per execution)."""

    name = "sqlite"
    dialect = SqliteDialect()

    def why_unsupported(
        self,
        expression: "MappingExpression",
        source: Database | None = None,
    ) -> str | None:
        if source is not None and _database_has_bool(source):
            return (
                "source contains boolean values and SQLite has no BOOLEAN "
                "storage class (True would round-trip as 1)"
            )
        for op in expression:
            if isinstance(op, Select) and isinstance(op.value, bool):
                return (
                    f"select on boolean literal {op.value!r} cannot be "
                    "rendered for SQLite"
                )
        return None

    def _load(self, conn: sqlite3.Connection, source: Database) -> None:
        """Create untyped tables and stream rows in via chunked inserts.

        NULL-free relations (the overwhelmingly common case) feed the
        memoised ``sorted_rows_view`` tuples to ``executemany`` as-is —
        no per-row Python copy; relations with NULLs stream through a
        converting generator.  Either way the load materialises at most
        :data:`LOAD_CHUNK_ROWS` parameter tuples at a time.
        """
        d = self.dialect
        for rel in source:
            conn.execute(create_table_sql(rel, d, typed=False))
            placeholders = ", ".join("?" for _ in rel.attributes)
            cols = ", ".join(d.quote_identifier(a) for a in rel.attributes)
            sql = (
                f"INSERT INTO {d.quote_identifier(rel.name)} "
                f"({cols}) VALUES ({placeholders})"
            )
            rows: Iterable[Sequence] = rel.sorted_rows_view()
            if rel.has_nulls:
                rows = (
                    tuple(_to_engine(v) for v in row) for row in rows
                )
            for chunk in _chunked(rows, LOAD_CHUNK_ROWS):
                conn.executemany(sql, chunk)

    def _register_functions(
        self,
        conn: sqlite3.Connection,
        registry: "FunctionRegistry | None",
    ) -> None:
        reg = registry if registry is not None else builtin_registry()
        for fn in reg:
            def wrapper(*args: object, _fn=fn) -> object:
                return _to_engine(
                    _fn.apply(*[_from_engine(a) for a in args])
                )

            conn.create_function(
                fn.name, fn.arity, wrapper, deterministic=True
            )

    def _read_back(self, conn: sqlite3.Connection) -> Database:
        """Turn the connection's catalogue back into a Database value."""
        tables = [
            row[0]
            for row in conn.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table' "
                "AND name NOT LIKE 'sqlite_%'"
            )
        ]
        relations = []
        for table in tables:
            cursor = conn.execute(
                f"SELECT * FROM {self.dialect.quote_identifier(table)}"
            )
            attributes = [desc[0] for desc in cursor.description]
            rows = [
                tuple(_from_engine(cell) for cell in row) for row in cursor
            ]
            relations.append(Relation(table, attributes, rows))
        return Database(relations)

    def execute(
        self,
        script: "SqlScript",
        source: Database,
        registry: "FunctionRegistry | None" = None,
        deadline: float | None = None,
        cancel: "CancelToken | None" = None,
    ) -> Database:
        limiter = StatementLimiter(deadline, cancel)
        conn = sqlite3.connect(":memory:")
        try:
            self._register_functions(conn, registry)
            self._load(conn, source)
            for statement in script.statements:
                limiter.check()
                try:
                    conn.execute(statement)
                except sqlite3.Error as exc:
                    raise BackendExecutionError(
                        self.name, statement, exc
                    ) from exc
                limiter.completed()
            limiter.check()
            return self._read_back(conn)
        finally:
            conn.close()
