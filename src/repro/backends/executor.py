"""The dialect-dispatching front door for executing discovered mappings.

:func:`execute_mapping` is the one-call API: give it a mapping expression
and a source instance, and it picks an engine (``backend="auto"`` prefers
the fastest *faithful* engine available — duckdb, then sqlite, then the
reference interpreter), compiles the pipeline into that engine's dialect,
executes it, and hands back the resulting
:class:`~repro.relational.database.Database` together with the compiled
script and timings.  Telemetry rides along: ``backend.*`` counters/gauges
on an optional :class:`~repro.obs.metrics.MetricsRegistry` and
``backend_compile`` / ``backend_execute`` trace events on an optional
:class:`~repro.obs.tracer.Tracer`.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import TYPE_CHECKING

from ..errors import UnknownBackendError
from ..fira.expression import MappingExpression
from ..fira.sqlcompile import SqlScript
from ..obs.events import BACKEND_COMPILE, BACKEND_EXECUTE
from ..relational.database import Database
from .base import SqlBackend
from .duckdb_backend import DuckDbBackend
from .minisql_backend import MiniSqlBackend
from .sqlite_backend import SqliteBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.metrics import MetricsRegistry
    from ..obs.tracer import Tracer
    from ..search.cancel import CancelToken
    from ..semantics.functions import FunctionRegistry

#: auto-dispatch preference: fastest faithful engine first, reference last
AUTO_ORDER: tuple[str, ...] = ("duckdb", "sqlite", "minisql")

#: the dispatch pseudo-backend name
AUTO = "auto"


def _registry() -> dict[str, SqlBackend]:
    return {
        b.name: b for b in (MiniSqlBackend(), SqliteBackend(), DuckDbBackend())
    }


_BACKENDS = _registry()


def backend_names() -> tuple[str, ...]:
    """All registered backend names (regardless of availability), sorted."""
    return tuple(sorted(_BACKENDS))


def get_backend(name: str) -> SqlBackend:
    """Look up a backend by name.

    Raises:
        UnknownBackendError: naming the known backends (the CLI turns this
            into an exit-code-2 usage error).
    """
    try:
        return _BACKENDS[name]
    except KeyError:
        raise UnknownBackendError(name, backend_names()) from None


def available_backends() -> tuple[SqlBackend, ...]:
    """The backends that can actually run in this environment."""
    return tuple(
        b for b in _BACKENDS.values() if b.is_available()
    )


@dataclass(frozen=True)
class ExecutionResult:
    """What one mapping execution produced.

    Attributes:
        backend: name of the engine that ran the script.
        script: the compiled script (in that engine's dialect).
        database: the resulting instance, bit-comparable across backends.
        compile_seconds / execute_seconds: wall-clock timings.
    """

    backend: str
    script: SqlScript
    database: Database
    compile_seconds: float
    execute_seconds: float


class Executor:
    """Dialect-dispatching mapping executor with telemetry.

    Args:
        backend: a backend name, or ``"auto"`` to pick the first engine in
            :data:`AUTO_ORDER` that is available **and** supports the
            mapping/instance at hand (falling back to the reference engine,
            which supports everything).
        metrics: optional registry receiving ``backend.*`` instruments.
        tracer: optional tracer receiving ``backend_compile`` /
            ``backend_execute`` events.
    """

    def __init__(
        self,
        backend: str = AUTO,
        metrics: "MetricsRegistry | None" = None,
        tracer: "Tracer | None" = None,
    ) -> None:
        if backend != AUTO:
            get_backend(backend)  # validate eagerly: raises UnknownBackendError
        self.backend = backend
        self.metrics = metrics
        self.tracer = tracer

    def resolve(
        self,
        expression: MappingExpression,
        source: Database | None = None,
    ) -> SqlBackend:
        """The concrete backend that would run this mapping."""
        if self.backend != AUTO:
            return get_backend(self.backend)
        for name in AUTO_ORDER:
            candidate = _BACKENDS[name]
            if candidate.is_available() and candidate.supports(
                expression, source
            ):
                return candidate
        return _BACKENDS["minisql"]

    def execute(
        self,
        expression: MappingExpression,
        source: Database,
        registry: "FunctionRegistry | None" = None,
        deadline: float | None = None,
        cancel: "CancelToken | None" = None,
    ) -> ExecutionResult:
        """Compile and run *expression* over *source*; see module docs."""
        backend = self.resolve(expression, source)
        backend.require_available()
        backend.require_supported(expression, source)

        t0 = perf_counter()
        script = backend.compile(expression, source, registry)
        compile_seconds = perf_counter() - t0
        if self.tracer is not None:
            self.tracer.emit(
                BACKEND_COMPILE,
                backend=backend.name,
                statements=script.statement_count,
            )

        t1 = perf_counter()
        database = backend.execute(
            script, source, registry=registry, deadline=deadline, cancel=cancel
        )
        execute_seconds = perf_counter() - t1
        if self.tracer is not None:
            self.tracer.emit(
                BACKEND_EXECUTE,
                backend=backend.name,
                statements=script.statement_count,
                dur=execute_seconds,
            )
        if self.metrics is not None:
            self.metrics.counter("backend.executions").inc()
            self.metrics.counter(f"backend.{backend.name}.executions").inc()
            self.metrics.counter("backend.statements").inc(
                script.statement_count
            )
            self.metrics.gauge("backend.compile_seconds").add(compile_seconds)
            self.metrics.gauge("backend.execute_seconds").add(execute_seconds)

        return ExecutionResult(
            backend=backend.name,
            script=script,
            database=database,
            compile_seconds=compile_seconds,
            execute_seconds=execute_seconds,
        )


def execute_mapping(
    expression: MappingExpression,
    source: Database,
    backend: str = AUTO,
    registry: "FunctionRegistry | None" = None,
    deadline: float | None = None,
    cancel: "CancelToken | None" = None,
    metrics: "MetricsRegistry | None" = None,
    tracer: "Tracer | None" = None,
) -> ExecutionResult:
    """One-call mapping execution (see :class:`Executor`)."""
    executor = Executor(backend=backend, metrics=metrics, tracer=tracer)
    return executor.execute(
        expression,
        source,
        registry=registry,
        deadline=deadline,
        cancel=cancel,
    )
