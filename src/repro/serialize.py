"""Fast JSON rendering with a byte-compatible stdlib fallback.

The JSONL trace sink serializes one record per traced event — millions per
long run — and the experiment/bench archives re-render whole sweeps; both
are pure-overhead sites where serializer speed directly widens the traced
vs untraced gap.  When :mod:`orjson` is importable it does the rendering;
otherwise (or under ``REPRO_FAST_JSON=0``) the stdlib :mod:`json` module
does.  **The bytes are identical either way**, so archives and traces
diff clean across environments:

* both arms render compact form with sorted keys, ``(",", ":")``
  separators and raw (non-ascii-escaped) UTF-8, and indented form with
  two-space indent — formats orjson and stdlib agree on byte-for-byte;
* the one rendering divergence between the two libraries is floats whose
  shortest form is scientific notation (``repr`` gives ``1e-07`` /
  ``1e+17``, orjson gives ``1e-7`` / ``1e17``).  Payloads are pre-scanned
  for such floats (plus non-finite values) and routed to the stdlib
  renderer, which defines the canonical bytes.  Plain-decimal floats
  render identically in both libraries (both emit the shortest
  round-tripping form);
* payloads orjson rejects outright (ints beyond 64 bits, non-string
  keys) fall back to the stdlib renderer via ``TypeError``, again
  yielding the canonical bytes.

Parsing (:func:`json_loads`) prefers orjson and falls back to stdlib for
documents orjson cannot represent (e.g. integers beyond 64 bits).
"""

from __future__ import annotations

import json as _json
import math
import os
from typing import Any

try:  # pragma: no cover - exercised indirectly via FAST_JSON_BACKEND
    import orjson as _orjson
except ImportError:  # pragma: no cover - orjson is a soft dependency
    _orjson = None

if os.environ.get("REPRO_FAST_JSON", "").strip().lower() in ("0", "false", "no"):
    _orjson = None

#: which renderer is active ("orjson" or "json") — surfaced by ``repro info``
FAST_JSON_BACKEND: str = "orjson" if _orjson is not None else "json"

if _orjson is not None:
    _COMPACT_OPTS = _orjson.OPT_SORT_KEYS
    _INDENT_OPTS = _orjson.OPT_SORT_KEYS | _orjson.OPT_INDENT_2


def _has_divergent_float(obj: Any) -> bool:
    """Whether *obj* contains a float the two renderers would disagree on.

    That is exactly the floats whose ``repr`` uses scientific notation
    (``abs(x) >= 1e16`` or ``0 < abs(x) < 1e-4``) plus the non-finite
    values; everything else renders identically in orjson and stdlib.
    """
    t = type(obj)
    if t is float:
        return "e" in float.__repr__(obj) or not math.isfinite(obj)
    if t is dict:
        return any(_has_divergent_float(v) for v in obj.values())
    if t is list or t is tuple:
        return any(_has_divergent_float(v) for v in obj)
    return False


def json_dumps_compact(obj: Any) -> str:
    """Render *obj* as compact JSON: sorted keys, no spaces, raw UTF-8."""
    if _orjson is not None and not _has_divergent_float(obj):
        try:
            return _orjson.dumps(obj, option=_COMPACT_OPTS).decode("utf-8")
        except TypeError:
            pass  # 64-bit int overflow, non-str keys, ... — stdlib handles
    return _json.dumps(
        obj, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    )


def json_dumps_indent2(obj: Any) -> str:
    """Render *obj* as two-space-indented JSON with sorted keys.

    The stable diff-friendly format of the ``BENCH_*.json`` payloads and
    experiment archives (no trailing newline — callers append one).
    """
    if _orjson is not None and not _has_divergent_float(obj):
        try:
            return _orjson.dumps(obj, option=_INDENT_OPTS).decode("utf-8")
        except TypeError:
            pass
    return _json.dumps(obj, indent=2, sort_keys=True, ensure_ascii=False)


def json_loads(data: str | bytes) -> Any:
    """Parse JSON text, preferring the fast backend.

    Falls back to stdlib for documents orjson cannot represent (integers
    beyond 64 bits); malformed input raises a ``ValueError`` subclass from
    whichever parser rejects it last.
    """
    if _orjson is not None:
        try:
            return _orjson.loads(data)
        except _orjson.JSONDecodeError:
            pass  # e.g. a >64-bit integer literal; stdlib parses it
    return _json.loads(data)
