"""CSV import/export for relations and databases.

The paper's TUPELO elicits critical instances through a GUI (Fig. 3); this
module is the programmatic stand-in.  A critical instance is small, so the
loaders favour clarity over throughput.  Values are parsed conservatively:
integers and floats are recognised, the literal ``NULL`` (or an empty field)
becomes the NULL sentinel, everything else stays a string.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, Mapping

from ..errors import SchemaError
from .database import Database
from .relation import Relation
from .types import NULL, Value, is_null, value_to_text


def parse_value(text: str) -> Value:
    """Parse a CSV field into a relational value.

    Empty string and the literal ``NULL`` parse to NULL; decimal integers
    and floats are converted; ``true``/``false`` become booleans; all other
    text stays a string.
    """
    if text == "" or text == "NULL":
        return NULL
    lowered = text.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def render_value(value: Value) -> str:
    """Render a relational value into a CSV field (inverse of parse_value)."""
    if is_null(value):
        return "NULL"
    return value_to_text(value)


def relation_from_csv(name: str, text: str) -> Relation:
    """Parse CSV *text* (first row = header) into a relation called *name*."""
    reader = csv.reader(io.StringIO(text))
    rows = [row for row in reader if row]
    if not rows:
        raise SchemaError(f"CSV for relation {name!r} is empty")
    header = [field.strip() for field in rows[0]]
    parsed_rows = []
    for raw in rows[1:]:
        if len(raw) != len(header):
            raise SchemaError(
                f"CSV row {raw!r} has {len(raw)} fields, expected {len(header)} "
                f"for relation {name!r}"
            )
        parsed_rows.append([parse_value(field.strip()) for field in raw])
    return Relation(name, header, parsed_rows)


def relation_to_csv(relation: Relation) -> str:
    """Render a relation to CSV text (header + canonical-order rows)."""
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(relation.attributes)
    for row in relation.sorted_rows():
        writer.writerow([render_value(v) for v in row])
    return out.getvalue()


def load_relation(path: str | Path, name: str | None = None) -> Relation:
    """Load a relation from a CSV file; name defaults to the file stem."""
    path = Path(path)
    return relation_from_csv(name or path.stem, path.read_text())


def save_relation(relation: Relation, path: str | Path) -> None:
    """Write a relation to a CSV file."""
    Path(path).write_text(relation_to_csv(relation))


def load_database(paths: Iterable[str | Path]) -> Database:
    """Load a database from multiple CSV files (one relation per file)."""
    return Database(load_relation(path) for path in paths)


def load_database_dir(directory: str | Path, pattern: str = "*.csv") -> Database:
    """Load every CSV file in *directory* as one database."""
    directory = Path(directory)
    return load_database(sorted(directory.glob(pattern)))


def save_database(db: Database, directory: str | Path) -> list[Path]:
    """Write each relation of *db* to ``<directory>/<relation>.csv``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for rel in db:
        path = directory / f"{rel.name}.csv"
        save_relation(rel, path)
        written.append(path)
    return written


def database_from_mapping(data: Mapping[str, str]) -> Database:
    """Build a database from ``{relation_name: csv_text}``."""
    return Database(relation_from_csv(name, text) for name, text in data.items())
