"""Delta-incremental TNF summaries for the heuristics.

Every paper heuristic is a function of a handful of aggregates over the
state's TNF view: the (REL, ATT, VALUE) triple multiset (term vector), its
sum of squared counts (for vector norms), and per-level cell counts (for
the π_REL / π_ATT / π_VALUE projections).  A :class:`DatabaseSummary`
bundles exactly those aggregates, keyed by intern-pool token ids.

Summaries compose additively over relations (a database's triples are the
disjoint-by-name union of its members'), so a child search state's summary
is its parent's summary patched by the step's
:class:`~repro.fira.delta.StateDelta`: subtract the removed relations'
contributions, add the added ones'.  Per-relation contributions are
memoised on the :class:`~repro.relational.relation.Relation` value itself,
so the cost of one search step's summary is proportional to the *changed*
cells, not the whole database.

Successor generation stashes ``(parent, delta)`` provenance on each child
(see :func:`attach_provenance`); :func:`database_summary` resolves a state's
summary by walking that chain up to the nearest summarised ancestor and
folding the deltas forward — in practice one hop, since heuristics evaluate
every generated child.  States with no provenance (roots, deserialised
states, direct API use) fall back to a full build.  The
:mod:`~repro.relational.caching` incremental kill switch governs whether
search threads provenance at all; this module itself is always exact.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, KeysView

from . import caching
from .database import Database
from .intern import NULL_TOKEN, TEXT_IDS, TEXTS, intern_value
from .relation import Relation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..fira.delta import StateDelta

#: cached-view keys on Database
SUMMARY_VIEW_KEY = "db_summary"
PROVENANCE_VIEW_KEY = "summary_provenance"

#: cached-view key on Relation
_CONTRIBUTION_KEY = "tnf_summary"

TripleKey = tuple[int, int, int]
"""(relation-name token, attribute-name token, value-text token)."""


class RelationSummary:
    """One relation's additive contribution to a database summary."""

    __slots__ = ("triples", "rel_cells", "att_cells", "val_cells", "cells")

    def __init__(
        self,
        triples: dict[TripleKey, int],
        rel_cells: dict[int, int],
        att_cells: dict[int, int],
        val_cells: dict[int, int],
        cells: int,
    ) -> None:
        self.triples = triples
        self.rel_cells = rel_cells
        self.att_cells = att_cells
        self.val_cells = val_cells
        self.cells = cells


def relation_summary(rel: Relation) -> RelationSummary:
    """The TNF contribution of *rel* (memoised on the relation value).

    NULL cells contribute nothing, matching the TNF encoding; a relation
    whose cells are all NULL (or that is empty) therefore contributes no
    π_REL entry either, exactly as in
    :func:`~repro.relational.tnf.tnf_projections`.
    """

    def compute() -> RelationSummary:
        text_ids = TEXT_IDS
        rel_token = intern_value(rel.name)
        att_tokens = [intern_value(a) for a in rel.attributes]
        triples: dict[TripleKey, int] = {}
        att_cells: dict[int, int] = {}
        val_cells: dict[int, int] = {}
        cells = 0
        for trow in rel.token_rows:
            for att_token, token in zip(att_tokens, trow):
                if token == NULL_TOKEN:
                    continue
                value_id = text_ids[token]
                key = (rel_token, att_token, value_id)
                triples[key] = triples.get(key, 0) + 1
                att_cells[att_token] = att_cells.get(att_token, 0) + 1
                val_cells[value_id] = val_cells.get(value_id, 0) + 1
                cells += 1
        rel_cells = {rel_token: cells} if cells else {}
        return RelationSummary(triples, rel_cells, att_cells, val_cells, cells)

    return rel.cached_view(_CONTRIBUTION_KEY, compute)


def _add_counts(target: dict, source: dict) -> None:
    get = target.get
    for key, count in source.items():
        target[key] = get(key, 0) + count


def _subtract_counts(target: dict, source: dict) -> None:
    for key, count in source.items():
        remaining = target[key] - count
        if remaining:
            target[key] = remaining
        else:
            del target[key]


def _add_triples(target: dict, source: dict, sum_sq: int) -> int:
    get = target.get
    for key, count in source.items():
        old = get(key, 0)
        new = old + count
        target[key] = new
        sum_sq += new * new - old * old
    return sum_sq


def _subtract_triples(target: dict, source: dict, sum_sq: int) -> int:
    for key, count in source.items():
        old = target[key]
        new = old - count
        if new:
            target[key] = new
        else:
            del target[key]
        sum_sq += new * new - old * old
    return sum_sq


class DatabaseSummary:
    """The heuristic-relevant aggregates of one database state.

    Attributes:
        triples: sparse term vector — (REL, ATT, VALUE) token-id triple
            counts; zero entries are always deleted, so key membership is
            the support.
        rel_cells / att_cells / val_cells: non-NULL cell counts per
            relation-name / attribute-name / value-text token; key
            membership gives the π_REL / π_ATT / π_VALUE projections.
        sum_sq: Σ count² over :attr:`triples` — the squared L2 norm of the
            term vector, maintained exactly (integer arithmetic).
        total_cells: total non-NULL cell count.
    """

    __slots__ = (
        "triples", "rel_cells", "att_cells", "val_cells", "sum_sq", "total_cells"
    )

    def __init__(
        self,
        triples: dict[TripleKey, int],
        rel_cells: dict[int, int],
        att_cells: dict[int, int],
        val_cells: dict[int, int],
        sum_sq: int,
        total_cells: int,
    ) -> None:
        self.triples = triples
        self.rel_cells = rel_cells
        self.att_cells = att_cells
        self.val_cells = val_cells
        self.sum_sq = sum_sq
        self.total_cells = total_cells

    @classmethod
    def from_database(cls, db: Database) -> "DatabaseSummary":
        """Full (non-incremental) build from the member relations."""
        return cls.from_contributions(relation_summary(rel) for rel in db)

    @classmethod
    def from_contributions(
        cls, contributions: Iterable[RelationSummary]
    ) -> "DatabaseSummary":
        triples: dict[TripleKey, int] = {}
        rel_cells: dict[int, int] = {}
        att_cells: dict[int, int] = {}
        val_cells: dict[int, int] = {}
        total = 0
        for contribution in contributions:
            _add_counts(triples, contribution.triples)
            _add_counts(rel_cells, contribution.rel_cells)
            _add_counts(att_cells, contribution.att_cells)
            _add_counts(val_cells, contribution.val_cells)
            total += contribution.cells
        sum_sq = sum(count * count for count in triples.values())
        return cls(triples, rel_cells, att_cells, val_cells, sum_sq, total)

    def apply_delta(self, delta: "StateDelta") -> "DatabaseSummary":
        """A new summary with *delta*'s relations subtracted/added.

        Cost: one dict copy of each aggregate plus work proportional to the
        changed relations' cells — independent of the database size when
        the step touches one small relation.
        """
        triples = dict(self.triples)
        rel_cells = dict(self.rel_cells)
        att_cells = dict(self.att_cells)
        val_cells = dict(self.val_cells)
        sum_sq = self.sum_sq
        total = self.total_cells
        for rel in delta.removed:
            contribution = relation_summary(rel)
            sum_sq = _subtract_triples(triples, contribution.triples, sum_sq)
            _subtract_counts(rel_cells, contribution.rel_cells)
            _subtract_counts(att_cells, contribution.att_cells)
            _subtract_counts(val_cells, contribution.val_cells)
            total -= contribution.cells
        for rel in delta.added:
            contribution = relation_summary(rel)
            sum_sq = _add_triples(triples, contribution.triples, sum_sq)
            _add_counts(rel_cells, contribution.rel_cells)
            _add_counts(att_cells, contribution.att_cells)
            _add_counts(val_cells, contribution.val_cells)
            total += contribution.cells
        return DatabaseSummary(
            triples, rel_cells, att_cells, val_cells, sum_sq, total
        )

    # -- projections and views -------------------------------------------------

    @property
    def rel_ids(self) -> KeysView[int]:
        """π_REL as a token-id key view."""
        return self.rel_cells.keys()

    @property
    def att_ids(self) -> KeysView[int]:
        """π_ATT as a token-id key view."""
        return self.att_cells.keys()

    @property
    def val_ids(self) -> KeysView[int]:
        """π_VALUE as a token-id key view."""
        return self.val_cells.keys()

    def dot(self, other_triples: dict[TripleKey, int]) -> int:
        """Exact inner product with another sparse triple vector."""
        if len(other_triples) > len(self.triples):
            small, large = self.triples, other_triples
        else:
            small, large = other_triples, self.triples
        get = large.get
        return sum(count * get(key, 0) for key, count in small.items())

    def to_database_string(self) -> str:
        """The §3 string view rebuilt from the triple counts.

        Identical to :func:`~repro.relational.tnf.database_string`: the
        multiset of per-cell ``REL + ATT + VALUE`` strings, sorted and
        concatenated.
        """
        texts = TEXTS
        parts: list[str] = []
        for (rel_id, att_id, val_id), count in self.triples.items():
            term = texts[rel_id] + texts[att_id] + texts[val_id]
            if count == 1:
                parts.append(term)
            else:
                parts.extend([term] * count)
        parts.sort()
        return "".join(parts)

    def __repr__(self) -> str:
        return (
            f"DatabaseSummary(rels={len(self.rel_cells)}, "
            f"atts={len(self.att_cells)}, vals={len(self.val_cells)}, "
            f"triples={len(self.triples)}, cells={self.total_cells})"
        )


def attach_provenance(
    child: Database, parent: Database, delta: "StateDelta"
) -> None:
    """Record how *child* was derived, for lazy summary resolution.

    A no-op when the child already has a summary or provenance (first
    derivation wins — any valid parent works), and when view caching is
    ablated (the recompute world must not accumulate state).
    """
    if not caching.view_caching_enabled():
        return
    views = child._views
    if SUMMARY_VIEW_KEY in views or PROVENANCE_VIEW_KEY in views:
        return
    views[PROVENANCE_VIEW_KEY] = (parent, delta)


def database_summary(db: Database) -> DatabaseSummary:
    """The summary of *db*, derived incrementally where provenance allows.

    Walks the ``(parent, delta)`` provenance chain up to the nearest state
    with a materialised summary (or, failing that, a provenance-free state,
    which gets a full build) and folds the deltas forward, memoising every
    intermediate summary.  With view caching ablated this degenerates to a
    full build per call, preserving the recompute cost model.
    """
    summary = db._views.get(SUMMARY_VIEW_KEY)
    if summary is not None:
        return summary
    pending: list[tuple[Database, "StateDelta"]] = []
    current = db
    while True:
        provenance = current._views.get(PROVENANCE_VIEW_KEY)
        if provenance is None:
            summary = DatabaseSummary.from_database(current)
            if caching.view_caching_enabled():
                current._views[SUMMARY_VIEW_KEY] = summary
            break
        parent, delta = provenance
        pending.append((current, delta))
        summary = parent._views.get(SUMMARY_VIEW_KEY)
        if summary is not None:
            break
        current = parent
    caching_on = caching.view_caching_enabled()
    for node, delta in reversed(pending):
        summary = summary.apply_delta(delta)
        if caching_on:
            node._views[SUMMARY_VIEW_KEY] = summary
    return summary
