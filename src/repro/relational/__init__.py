"""Relational substrate: immutable relations, databases, TNF, I/O, SQL.

This package provides the data model everything else is built on:

* :class:`~repro.relational.relation.Relation` and
  :class:`~repro.relational.database.Database` — immutable, canonical,
  hashable values suitable for use as search states;
* :data:`~repro.relational.types.NULL` — the null sentinel introduced by
  the dynamic data-metadata operators;
* Tuple Normal Form (:mod:`repro.relational.tnf`) — the fixed-schema
  interoperability encoding TUPELO uses internally;
* CSV I/O (:mod:`repro.relational.csvio`) and SQL rendering
  (:mod:`repro.relational.sql`).
"""

from .database import Database
from .fingerprint import (
    instance_digest,
    pair_fingerprint,
    pair_shape_fingerprint,
    relation_digest,
    relation_shape_digest,
    shape_digest,
)
from .intern import (
    NULL_TOKEN,
    intern_row,
    intern_value,
    pool_size,
    probe_value,
    token_text,
    token_text_id,
    token_value,
)
from .relation import Relation, Row, TokenRow
from .summary import (
    DatabaseSummary,
    RelationSummary,
    database_summary,
    relation_summary,
)
from .tnf import (
    TNF_ATTRIBUTES,
    database_string,
    iter_tnf_cells,
    tnf_cells,
    tnf_decode,
    tnf_encode,
    tnf_projections,
    tnf_triples,
)
from .types import NULL, NullType, Value, check_value, is_null, value_to_text
from .csvio import (
    database_from_mapping,
    load_database,
    load_database_dir,
    load_relation,
    parse_value,
    relation_from_csv,
    relation_to_csv,
    save_database,
    save_relation,
)
from .dialect import (
    CANONICAL_DIALECT,
    DIALECTS,
    DuckDbDialect,
    MiniSqlDialect,
    SqlDialect,
    SqliteDialect,
    get_dialect,
)
from .sql import database_to_sql, relation_to_sql, tnf_construction_sql

__all__ = [
    "Database",
    "Relation",
    "instance_digest",
    "pair_fingerprint",
    "pair_shape_fingerprint",
    "relation_digest",
    "relation_shape_digest",
    "shape_digest",
    "Row",
    "TokenRow",
    "NULL_TOKEN",
    "intern_row",
    "intern_value",
    "pool_size",
    "probe_value",
    "token_text",
    "token_text_id",
    "token_value",
    "DatabaseSummary",
    "RelationSummary",
    "database_summary",
    "relation_summary",
    "NULL",
    "NullType",
    "Value",
    "check_value",
    "is_null",
    "value_to_text",
    "TNF_ATTRIBUTES",
    "database_string",
    "iter_tnf_cells",
    "tnf_cells",
    "tnf_decode",
    "tnf_encode",
    "tnf_projections",
    "tnf_triples",
    "database_from_mapping",
    "load_database",
    "load_database_dir",
    "load_relation",
    "parse_value",
    "relation_from_csv",
    "relation_to_csv",
    "save_database",
    "save_relation",
    "database_to_sql",
    "relation_to_sql",
    "tnf_construction_sql",
    "CANONICAL_DIALECT",
    "DIALECTS",
    "DuckDbDialect",
    "MiniSqlDialect",
    "SqlDialect",
    "SqliteDialect",
    "get_dialect",
]
