"""SQL rendering for relations, databases, and TNF construction.

The paper notes (§2.2) that "the TNF of a relation can be built in SQL using
the system tables" and that TNF lets both data and metadata be handled
directly in SQL.  This module renders our in-memory values as portable SQL
(DDL + INSERTs) and emits the TNF-construction statement for a relation, so
a downstream user can replay TUPELO inputs inside an actual RDBMS.

Rendering is dialect-parameterised (see :mod:`repro.relational.dialect`):
every function takes an optional :class:`~repro.relational.dialect
.SqlDialect` and defaults to the canonical dialect, so existing callers and
scripts are byte-identical with the historical single-flavor output.  The
module-level :func:`quote_identifier` / :func:`quote_literal` remain the
canonical spellings used throughout the compiler and tests.
"""

from __future__ import annotations

from .database import Database
from .dialect import CANONICAL_DIALECT, SqlDialect
from .relation import Relation
from .types import Value, is_null


def quote_identifier(name: str) -> str:
    """Quote an SQL identifier (double quotes, doubling embedded quotes).

    Raises :class:`~repro.errors.SqlRenderingError` for identifiers no
    engine can represent (empty, NUL bytes).
    """
    return CANONICAL_DIALECT.quote_identifier(name)


def quote_literal(value: Value) -> str:
    """Render a relational value as an SQL literal (canonical dialect)."""
    return CANONICAL_DIALECT.quote_literal(value)


def sql_type_of(values: list[Value]) -> str:
    """Pick a column type covering all non-NULL *values*."""
    kinds = {type(v) for v in values if not is_null(v)}
    if not kinds:
        return "TEXT"
    if kinds <= {bool}:
        return "BOOLEAN"
    if kinds <= {int, bool}:
        return "INTEGER"
    if kinds <= {int, float, bool}:
        return "DOUBLE PRECISION"
    return "TEXT"


def create_table_sql(
    relation: Relation,
    dialect: SqlDialect | None = None,
    typed: bool = True,
) -> str:
    """CREATE TABLE statement for *relation*.

    With ``typed=False`` columns carry no declared type — the loading mode
    the SQLite backend uses, since SQLite's type *affinity* would otherwise
    coerce cell values (an INTEGER in a DOUBLE PRECISION column becomes a
    REAL) and break bit-identical round-trips of mixed-type columns.
    """
    d = dialect or CANONICAL_DIALECT
    columns = []
    for attr in relation.attributes:
        ident = d.quote_identifier(attr)
        if typed:
            pos = relation.attribute_position(attr)
            col_type = sql_type_of([row[pos] for row in relation.rows])
            columns.append(f"  {ident} {col_type}")
        else:
            columns.append(f"  {ident}")
    body = ",\n".join(columns)
    return f"CREATE TABLE {d.quote_identifier(relation.name)} (\n{body}\n);"


def insert_sql(
    relation: Relation, dialect: SqlDialect | None = None
) -> list[str]:
    """INSERT statements for every tuple of *relation* (canonical order)."""
    d = dialect or CANONICAL_DIALECT
    cols = ", ".join(d.quote_identifier(a) for a in relation.attributes)
    statements = []
    for row in relation.sorted_rows():
        vals = ", ".join(d.quote_literal(v) for v in row)
        statements.append(
            f"INSERT INTO {d.quote_identifier(relation.name)} "
            f"({cols}) VALUES ({vals});"
        )
    return statements


def relation_to_sql(
    relation: Relation, dialect: SqlDialect | None = None
) -> str:
    """Full DDL + DML script recreating *relation*."""
    return "\n".join(
        [create_table_sql(relation, dialect), *insert_sql(relation, dialect)]
    )


def database_to_sql(db: Database, dialect: SqlDialect | None = None) -> str:
    """Full DDL + DML script recreating every relation of *db*."""
    return "\n\n".join(relation_to_sql(rel, dialect) for rel in db)


def tnf_construction_sql(
    relation: Relation,
    tnf_table: str = "TNF",
    dialect: SqlDialect | None = None,
) -> str:
    """SQL that populates a TNF table from *relation*.

    One ``INSERT ... SELECT`` per attribute, unioned — the standard
    system-table-free way to unpivot a known schema.  TIDs are synthesised
    from the row ordering for illustration; inside the library TIDs come
    from :func:`repro.relational.tnf.iter_tnf_cells`.  Note the mini-SQL
    engine numbers rows in the relation's deterministic sorted order while
    real engines leave ``ROW_NUMBER() OVER ()`` unordered — a documented
    divergence (docs/execution.md).
    """
    d = dialect or CANONICAL_DIALECT
    rel_ident = d.quote_identifier(relation.name)
    selects = []
    for attr in relation.attributes:
        attr_ident = d.quote_identifier(attr)
        selects.append(
            "SELECT "
            f"'t' || CAST({d.row_number_expr()} AS TEXT) AS TID, "
            f"{d.quote_literal(relation.name)} AS REL, "
            f"{d.quote_literal(attr)} AS ATT, "
            f"{d.cast_to_text(attr_ident)} AS VALUE "
            f"FROM {rel_ident}"
        )
    union = "\nUNION ALL\n".join(selects)
    return (
        f"CREATE TABLE {d.quote_identifier(tnf_table)} AS\n{union};"
    )
