"""SQL rendering for relations, databases, and TNF construction.

The paper notes (§2.2) that "the TNF of a relation can be built in SQL using
the system tables" and that TNF lets both data and metadata be handled
directly in SQL.  This module renders our in-memory values as portable SQL
(DDL + INSERTs) and emits the TNF-construction statement for a relation, so
a downstream user can replay TUPELO inputs inside an actual RDBMS.
"""

from __future__ import annotations

from .database import Database
from .relation import Relation
from .types import Value, is_null


def quote_identifier(name: str) -> str:
    """Quote an SQL identifier (double quotes, doubling embedded quotes)."""
    return '"' + name.replace('"', '""') + '"'


def quote_literal(value: Value) -> str:
    """Render a relational value as an SQL literal."""
    if is_null(value):
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    return "'" + str(value).replace("'", "''") + "'"


def sql_type_of(values: list[Value]) -> str:
    """Pick a column type covering all non-NULL *values*."""
    kinds = {type(v) for v in values if not is_null(v)}
    if not kinds:
        return "TEXT"
    if kinds <= {bool}:
        return "BOOLEAN"
    if kinds <= {int, bool}:
        return "INTEGER"
    if kinds <= {int, float, bool}:
        return "DOUBLE PRECISION"
    return "TEXT"


def create_table_sql(relation: Relation) -> str:
    """CREATE TABLE statement for *relation*."""
    columns = []
    for attr in relation.attributes:
        pos = relation.attribute_position(attr)
        col_type = sql_type_of([row[pos] for row in relation.rows])
        columns.append(f"  {quote_identifier(attr)} {col_type}")
    body = ",\n".join(columns)
    return f"CREATE TABLE {quote_identifier(relation.name)} (\n{body}\n);"


def insert_sql(relation: Relation) -> list[str]:
    """INSERT statements for every tuple of *relation* (canonical order)."""
    cols = ", ".join(quote_identifier(a) for a in relation.attributes)
    statements = []
    for row in relation.sorted_rows():
        vals = ", ".join(quote_literal(v) for v in row)
        statements.append(
            f"INSERT INTO {quote_identifier(relation.name)} ({cols}) VALUES ({vals});"
        )
    return statements


def relation_to_sql(relation: Relation) -> str:
    """Full DDL + DML script recreating *relation*."""
    return "\n".join([create_table_sql(relation), *insert_sql(relation)])


def database_to_sql(db: Database) -> str:
    """Full DDL + DML script recreating every relation of *db*."""
    return "\n\n".join(relation_to_sql(rel) for rel in db)


def tnf_construction_sql(relation: Relation, tnf_table: str = "TNF") -> str:
    """SQL that populates a TNF table from *relation*.

    One ``INSERT ... SELECT`` per attribute, unioned — the standard
    system-table-free way to unpivot a known schema.  TIDs are synthesised
    from the row ordering for illustration; inside the library TIDs come
    from :func:`repro.relational.tnf.iter_tnf_cells`.
    """
    rel_ident = quote_identifier(relation.name)
    selects = []
    for attr in relation.attributes:
        attr_ident = quote_identifier(attr)
        selects.append(
            "SELECT "
            f"'t' || CAST(ROW_NUMBER() OVER () AS TEXT) AS TID, "
            f"{quote_literal(relation.name)} AS REL, "
            f"{quote_literal(attr)} AS ATT, "
            f"CAST({attr_ident} AS TEXT) AS VALUE "
            f"FROM {rel_ident}"
        )
    union = "\nUNION ALL\n".join(selects)
    return (
        f"CREATE TABLE {quote_identifier(tnf_table)} AS\n{union};"
    )
