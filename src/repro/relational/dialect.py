"""SQL dialects: per-engine rendering rules for one shared statement shape.

The FIRA → SQL compiler (:mod:`repro.fira.sqlcompile`) emits one logical
statement sequence per pipeline; a :class:`SqlDialect` decides how that
sequence is *rendered* for a concrete engine — identifier and literal
quoting, ``CAST``-to-text, duplicate-row handling, and whether a column can
be dropped in place.  Three dialects ship with the library:

* :class:`MiniSqlDialect` — the canonical rendering understood by the
  zero-dependency :mod:`repro.minisql` reference engine.  Its engine has
  native *set semantics* (duplicate rows collapse, matching the paper's
  relational model) and a canonical ``CAST(x AS TEXT)`` that mirrors
  :func:`repro.relational.types.value_to_text`.
* :class:`SqliteDialect` — stdlib ``sqlite3``.  SQLite tables are bags, so
  the dialect renders re-creations with ``SELECT DISTINCT`` and compiles
  column drops as DISTINCT re-creations; its ``CAST`` is wrapped in a
  ``typeof`` guard so integral REALs render as canonical integers.  SQLite
  has no BOOLEAN storage class, so boolean literals are rejected (the
  sqlite backend declines bool-carrying instances up front).
* :class:`DuckDbDialect` — DuckDB, strictly typed; booleans are native and
  the ``typeof`` guard handles DOUBLE and BOOLEAN canonical text.

All dialects quote identifiers identically (double quotes, doubling
embedded quotes) and reject identifiers/literals no engine can represent:
empty identifiers, NUL bytes, and non-finite floats raise
:class:`~repro.errors.SqlRenderingError` instead of emitting SQL that would
fail (or worse, silently change meaning) downstream.
"""

from __future__ import annotations

import math

from ..errors import SqlRenderingError
from .types import Value, is_null


def render_identifier(name: str) -> str:
    """Quote *name* as a SQL identifier, validating it is representable.

    Double-quote delimiting with embedded quotes doubled — the ANSI form
    every supported engine accepts, including non-ASCII identifiers (data
    values promoted to column or relation names may be arbitrary text).

    Raises:
        SqlRenderingError: for an empty identifier or one containing NUL
            (no engine can parse either from SQL text).
    """
    if not isinstance(name, str) or not name:
        raise SqlRenderingError(
            f"cannot quote empty or non-string SQL identifier {name!r}"
        )
    if "\x00" in name:
        raise SqlRenderingError(
            f"SQL identifier {name!r} contains a NUL byte"
        )
    return '"' + name.replace('"', '""') + '"'


def render_string_literal(value: str) -> str:
    """Quote *value* as a SQL string literal (single quotes doubled)."""
    if "\x00" in value:
        raise SqlRenderingError(
            f"SQL string literal {value!r} contains a NUL byte"
        )
    return "'" + value.replace("'", "''") + "'"


def render_number_literal(value: int | float) -> str:
    """Render a numeric literal, rejecting non-finite floats.

    ``repr`` round-trips both ints and floats exactly; ``inf``/``nan``
    have no portable SQL spelling, so they fail loudly here rather than
    emitting an identifier-lookalike the engine would misparse.
    """
    if isinstance(value, float) and not math.isfinite(value):
        raise SqlRenderingError(
            f"cannot render non-finite float {value!r} as a SQL literal"
        )
    return repr(value)


class SqlDialect:
    """Rendering rules for one SQL engine.

    Attributes:
        name: registry key, also stamped on compiled scripts.
        set_semantics: True when the engine natively collapses duplicate
            rows (the paper's relational model).  Bag-semantics engines get
            ``SELECT DISTINCT`` re-creations and DISTINCT column drops so
            executed scripts stay bit-identical with the in-memory algebra.
        supports_boolean: False when the engine has no boolean storage
            class; boolean literals then raise :class:`SqlRenderingError`.
    """

    name = "ansi"
    set_semantics = False
    supports_boolean = True

    def quote_identifier(self, name: str) -> str:
        """Quote an SQL identifier (shared across all dialects)."""
        return render_identifier(name)

    def quote_literal(self, value: Value) -> str:
        """Render a relational value as an SQL literal."""
        if is_null(value):
            return "NULL"
        if isinstance(value, bool):
            return self.bool_literal(value)
        if isinstance(value, (int, float)):
            return render_number_literal(value)
        return render_string_literal(str(value))

    def bool_literal(self, value: bool) -> str:
        """Render a boolean literal (dialects without BOOLEAN reject it)."""
        if not self.supports_boolean:
            raise SqlRenderingError(
                f"dialect {self.name!r} has no boolean literal rendering "
                "(the engine lacks a BOOLEAN storage class)"
            )
        return "TRUE" if value else "FALSE"

    def cast_to_text(self, expr_sql: str) -> str:
        """SQL computing the canonical text of *expr_sql*.

        The canonical rendering is :func:`repro.relational.types
        .value_to_text`: integral floats render without the trailing
        ``.0``.  Engines whose plain ``CAST`` diverges wrap it in a type
        guard (see :class:`SqliteDialect`).
        """
        return f"CAST({expr_sql} AS TEXT)"

    def select_modifier(self) -> str:
        """Prefix for re-creation SELECT bodies (``DISTINCT `` on bags)."""
        return "" if self.set_semantics else "DISTINCT "

    def drop_column_in_place(self) -> bool:
        """Whether ``ALTER TABLE .. DROP COLUMN`` preserves set semantics.

        On a bag-semantics engine an in-place drop can leave duplicate
        rows that the algebra would collapse, so the compiler re-creates
        the table with ``SELECT DISTINCT`` instead.
        """
        return self.set_semantics

    def row_number_expr(self) -> str:
        """The row-numbering expression used by TNF construction."""
        return "ROW_NUMBER() OVER ()"

    def function_call(self, name: str, args: "list[str]") -> str:
        """Render a scalar UDF call (λ application)."""
        return f"{name}({', '.join(args)})"

    def values_table(
        self,
        rows: "list[tuple[Value, ...]]",
        alias: str,
        columns: "tuple[str, ...]",
    ) -> str:
        """An inline constant table usable in a FROM clause.

        The ANSI form is ``(VALUES (..), (..)) AS alias(c1, c2)``; engines
        that cannot name the columns of a FROM-clause alias (SQLite)
        override this with an equivalent ``UNION ALL`` of SELECTs.
        """
        values = ", ".join(
            "(" + ", ".join(self.quote_literal(v) for v in row) + ")"
            for row in rows
        )
        cols = ", ".join(self.quote_identifier(c) for c in columns)
        return f"(VALUES {values}) AS {alias}({cols})"

    def __repr__(self) -> str:
        return f"<SqlDialect {self.name}>"


class MiniSqlDialect(SqlDialect):
    """Canonical dialect for the in-process reference engine.

    The mini-SQL engine implements the paper's relational model directly:
    set semantics, two-valued NULL comparisons, and a ``CAST(x AS TEXT)``
    that already matches the library's canonical text rendering — so this
    dialect is the identity rendering the compiler historically emitted.
    """

    name = "minisql"
    set_semantics = True
    supports_boolean = True


class SqliteDialect(SqlDialect):
    """SQLite (stdlib ``sqlite3``): bag semantics, no BOOLEAN storage class.

    ``CAST(2.0 AS TEXT)`` is ``'2.0'`` in SQLite but the canonical text is
    ``'2'``; the ``typeof``-guarded CASE below converts integral REALs
    through INTEGER first so dereference over float columns stays
    bit-identical with the in-memory algebra.
    """

    name = "sqlite"
    set_semantics = False
    supports_boolean = False

    def values_table(
        self,
        rows: "list[tuple[Value, ...]]",
        alias: str,
        columns: "tuple[str, ...]",
    ) -> str:
        # SQLite cannot name the columns of a FROM-clause alias
        # ("(VALUES ..) AS m(a, b)" is a syntax error), so spell the same
        # constant table as a UNION ALL of SELECTs with aliased columns.
        selects = []
        for i, row in enumerate(rows):
            if i == 0:
                parts = ", ".join(
                    f"{self.quote_literal(v)} AS {self.quote_identifier(c)}"
                    for v, c in zip(row, columns)
                )
            else:
                parts = ", ".join(self.quote_literal(v) for v in row)
            selects.append(f"SELECT {parts}")
        return "(" + " UNION ALL ".join(selects) + f") AS {alias}"

    def function_call(self, name: str, args: "list[str]") -> str:
        # UDF names can collide with SQLite keywords (e.g. a semantic
        # function named "add"); quoting the name keeps the call parseable
        # and SQLite resolves quoted names to registered functions.
        return f"{self.quote_identifier(name)}({', '.join(args)})"

    def cast_to_text(self, expr_sql: str) -> str:
        return (
            f"CASE WHEN typeof({expr_sql}) = 'real' "
            f"AND {expr_sql} = CAST({expr_sql} AS INTEGER) "
            f"THEN CAST(CAST({expr_sql} AS INTEGER) AS TEXT) "
            f"ELSE CAST({expr_sql} AS TEXT) END"
        )


class DuckDbDialect(SqlDialect):
    """DuckDB: bag semantics, strictly typed columns, native booleans."""

    name = "duckdb"
    set_semantics = False
    supports_boolean = True

    def cast_to_text(self, expr_sql: str) -> str:
        return (
            f"CASE WHEN typeof({expr_sql}) IN ('DOUBLE', 'FLOAT') "
            f"AND {expr_sql} = floor({expr_sql}) "
            f"THEN CAST(CAST({expr_sql} AS BIGINT) AS VARCHAR) "
            f"WHEN typeof({expr_sql}) = 'BOOLEAN' THEN "
            f"CASE WHEN {expr_sql} THEN 'true' ELSE 'false' END "
            f"ELSE CAST({expr_sql} AS VARCHAR) END"
        )


#: the canonical dialect — what the compiler emits when none is given,
#: identical to the historical single-flavor output
CANONICAL_DIALECT = MiniSqlDialect()

#: dialect registry by name (backends attach these to their scripts)
DIALECTS: dict[str, SqlDialect] = {
    d.name: d
    for d in (MiniSqlDialect(), SqliteDialect(), DuckDbDialect())
}


def get_dialect(name: str) -> SqlDialect:
    """Look up a dialect by name (raises :class:`SqlRenderingError`)."""
    try:
        return DIALECTS[name]
    except KeyError:
        raise SqlRenderingError(
            f"unknown SQL dialect {name!r} (known: {', '.join(sorted(DIALECTS))})"
        ) from None
