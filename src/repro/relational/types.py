"""Core value types for the relational substrate.

TUPELO manipulates whole databases as search states, so values must be
immutable and hashable.  Allowed atomic values are ``str``, ``int``,
``float``, ``bool`` and the :data:`NULL` sentinel introduced by the dynamic
data-metadata operators (``promote`` creates ragged columns that are padded
with NULL, and ``merge`` coalesces NULL-compatible tuples).
"""

from __future__ import annotations

from typing import Union


class NullType:
    """Singleton NULL marker.

    A dedicated type (rather than ``None``) so that NULL prints as SQL-style
    ``NULL``, sorts deterministically, and cannot be confused with "absent"
    Python values in the implementation.
    """

    _instance: "NullType | None" = None

    def __new__(cls) -> "NullType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NULL"

    def __bool__(self) -> bool:
        return False

    def __hash__(self) -> int:
        return hash("\x00tupelo-null\x00")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, NullType)

    def __reduce__(self):  # keep the singleton through pickling
        return (NullType, ())


NULL = NullType()

Value = Union[str, int, float, bool, NullType]

_ALLOWED_TYPES = (str, int, float, bool, NullType)


def is_null(value: object) -> bool:
    """Return True iff *value* is the NULL sentinel."""
    return isinstance(value, NullType)


def check_value(value: object) -> Value:
    """Validate that *value* is an allowed atomic value and return it.

    ``None`` is coerced to :data:`NULL` as a convenience for loaders.

    Raises:
        TypeError: if the value is not an allowed atomic type.
    """
    if value is None:
        return NULL
    if isinstance(value, _ALLOWED_TYPES):
        return value
    raise TypeError(
        f"invalid relational value {value!r} of type {type(value).__name__}; "
        "allowed: str, int, float, bool, NULL"
    )


def value_sort_key(value: Value) -> tuple[int, str]:
    """Deterministic total order over heterogeneous values.

    NULL sorts first, then everything else by type name and string rendering.
    Used to canonicalize row order in display and TNF tuple identifiers.
    """
    if is_null(value):
        return (0, "")
    return (1, f"{type(value).__name__}:{value!r}")


def value_to_text(value: Value) -> str:
    """Render a value the way TNF and the string-view heuristic see it.

    Strings render as themselves (no quotes); NULL renders as the empty
    string so it contributes nothing to string distances.
    """
    if is_null(value):
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)
