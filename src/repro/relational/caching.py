"""Global kill-switches for the relational kernel's performance layers.

Three independent ablation switches live here, all process-global and all
semantically invisible (they select *how* results are computed, never *what*
is computed):

* **view caching** (PR 1) — per-value memoisation of derived views on
  :class:`~repro.relational.relation.Relation` /
  :class:`~repro.relational.database.Database`.  With it off,
  ``cached_view`` bypasses the per-value store entirely and recomputes on
  every call (the pre-memoisation behaviour).
* **columnar kernel** — the interned-token fast paths: operators, proposal
  rules, containment and hashing work on per-column tuples of token ids
  instead of Python value tuples.  With it off, every derived computation
  goes through the legacy value/text views, restoring the pre-columnar
  cost model end-to-end (storage itself stays columnar; only the code
  paths change, so results are bit-identical either way).
* **incremental heuristics** — delta-driven heuristic summaries: search
  successors carry a :class:`~repro.fira.delta.StateDelta` and heuristic
  aggregates update from the parent state's cached
  :class:`~repro.relational.summary.DatabaseSummary` instead of being
  recomputed from scratch.  Requires the columnar kernel (summaries are
  token-keyed), so :func:`incremental_heuristics_enabled` reports False
  whenever the columnar kernel is off.

Each switch can be initialised from the environment
(``REPRO_VIEW_CACHING`` / ``REPRO_COLUMNAR_KERNEL`` /
``REPRO_INCREMENTAL_HEURISTICS``, value ``0`` disables) so ablations
propagate into worker processes spawned by the parallel execution layer and
into CI jobs that exercise the legacy path.

Not intended for production use: the switches exist so the ablation benches
(``benchmarks/bench_cache_ablation.py``,
``benchmarks/bench_kernel_columnar.py``) can quantify what each layer buys.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator


def _env_flag(name: str) -> bool:
    """Read an on/off env var: unset or anything but ``0``/``false`` is on."""
    return os.environ.get(name, "1").strip().lower() not in ("0", "false", "no")


_view_caching_enabled = _env_flag("REPRO_VIEW_CACHING")
_columnar_kernel_enabled = _env_flag("REPRO_COLUMNAR_KERNEL")
_incremental_heuristics_enabled = _env_flag("REPRO_INCREMENTAL_HEURISTICS")


# -- view caching (PR 1) -------------------------------------------------------


def view_caching_enabled() -> bool:
    """Whether derived-view memoisation is active (default True)."""
    return _view_caching_enabled


def set_view_caching(enabled: bool) -> None:
    """Globally enable/disable derived-view memoisation."""
    global _view_caching_enabled
    _view_caching_enabled = bool(enabled)


@contextmanager
def view_caching_disabled() -> Iterator[None]:
    """Context manager: run a block with view memoisation off."""
    previous = _view_caching_enabled
    set_view_caching(False)
    try:
        yield
    finally:
        set_view_caching(previous)


# -- columnar kernel -----------------------------------------------------------


def columnar_kernel_enabled() -> bool:
    """Whether the interned-token fast paths are active (default True)."""
    return _columnar_kernel_enabled


def set_columnar_kernel(enabled: bool) -> None:
    """Globally enable/disable the columnar token fast paths."""
    global _columnar_kernel_enabled
    _columnar_kernel_enabled = bool(enabled)


@contextmanager
def columnar_kernel_disabled() -> Iterator[None]:
    """Context manager: run a block on the legacy (pre-columnar) path."""
    previous = _columnar_kernel_enabled
    set_columnar_kernel(False)
    try:
        yield
    finally:
        set_columnar_kernel(previous)


# -- incremental heuristics ----------------------------------------------------


def incremental_heuristics_enabled() -> bool:
    """Whether delta-incremental heuristic summaries are active.

    False whenever the columnar kernel is off: summaries are token-keyed,
    so the incremental layer cannot run on the legacy path.
    """
    return _incremental_heuristics_enabled and _columnar_kernel_enabled


def set_incremental_heuristics(enabled: bool) -> None:
    """Globally enable/disable delta-incremental heuristic summaries."""
    global _incremental_heuristics_enabled
    _incremental_heuristics_enabled = bool(enabled)


@contextmanager
def incremental_heuristics_disabled() -> Iterator[None]:
    """Context manager: run a block with full heuristic recomputation."""
    previous = _incremental_heuristics_enabled
    set_incremental_heuristics(False)
    try:
        yield
    finally:
        set_incremental_heuristics(previous)


# -- combined ------------------------------------------------------------------


def kernel_mode() -> str:
    """Short label of the active kernel configuration (for reports)."""
    if not _columnar_kernel_enabled:
        return "legacy"
    if incremental_heuristics_enabled():
        return "columnar+delta"
    return "columnar"


@contextmanager
def legacy_kernel() -> Iterator[None]:
    """Context manager: columnar kernel *and* incremental heuristics off.

    The bench arms use this to time the pre-columnar kernel in one block.
    """
    with columnar_kernel_disabled(), incremental_heuristics_disabled():
        yield
