"""Global kill-switch for derived-view memoisation.

:class:`~repro.relational.relation.Relation` and
:class:`~repro.relational.database.Database` memoise their derived views
(column text sets, TNF triples, the database string, ...) because values are
immutable.  The memoisation is semantically invisible, which makes it hard
to measure — so this module provides an ablation switch the cache benches
use to time the *unmemoised* kernel: with view caching disabled,
``cached_view`` bypasses the per-value store entirely and recomputes on
every call (the pre-memoisation behaviour).

Not intended for production use: the switch is process-global and exists so
``benchmarks/bench_cache_ablation.py`` can quantify what the caches buy.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

_view_caching_enabled = True


def view_caching_enabled() -> bool:
    """Whether derived-view memoisation is active (default True)."""
    return _view_caching_enabled


def set_view_caching(enabled: bool) -> None:
    """Globally enable/disable derived-view memoisation."""
    global _view_caching_enabled
    _view_caching_enabled = bool(enabled)


@contextmanager
def view_caching_disabled() -> Iterator[None]:
    """Context manager: run a block with view memoisation off."""
    previous = _view_caching_enabled
    set_view_caching(False)
    try:
        yield
    finally:
        set_view_caching(previous)
