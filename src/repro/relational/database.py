"""Immutable database values (named collections of relations).

A :class:`Database` is the unit of search in TUPELO: each search state is a
whole database reached by applying transformation operators to the source
critical instance.  Databases are canonical and hashable (relations sorted
by name), so the search engine can deduplicate and compare states directly.

Like :class:`~repro.relational.relation.Relation`, databases memoise their
derived views (attribute-name union, value set, value-text set, TNF triples,
the TNF database string, ...): states are immutable, and both search
algorithms and every heuristic re-consult the same views for the same state
many times per run.  Views are stored once per database value and always
returned as immutable containers.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from ..errors import NameCollisionError, SchemaError, UnknownRelationError
from . import caching
from .relation import Relation
from .types import Value, is_null, value_to_text


class Database:
    """An immutable set of relations keyed by relation name.

    Args:
        relations: the member relations; duplicate names are rejected.
    """

    __slots__ = ("_relations", "_by_name", "_hash", "_views")

    def __init__(self, relations: Iterable[Relation] = ()) -> None:
        by_name: dict[str, Relation] = {}
        for rel in relations:
            if not isinstance(rel, Relation):
                raise SchemaError(f"expected Relation, got {type(rel).__name__}")
            if rel.name in by_name:
                raise SchemaError(f"duplicate relation name {rel.name!r} in database")
            by_name[rel.name] = rel
        self._relations: tuple[Relation, ...] = tuple(
            by_name[name] for name in sorted(by_name)
        )
        self._by_name: dict[str, Relation] = {
            rel.name: rel for rel in self._relations
        }
        self._hash = hash(self._relations)
        self._views: dict[object, object] = {}

    def __getstate__(self) -> dict:
        """Pickle only the member relations — never the memoised views.

        The parallel execution layer ships database states into worker
        processes; a search-warm state's view store (TNF triples, value
        texts, the database string, ...) can be far larger than the data.
        Views rebuild lazily in the receiving process.
        """
        return {"relations": self._relations}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["relations"])

    def cached_view(self, key: object, compute: Callable[[], object]) -> object:
        """Memoise a derived view of this (immutable) database.

        The first call under *key* evaluates *compute* and stores the result
        for the database's lifetime; later calls return the stored object.
        Stored views must be immutable (tuple/frozenset/str/int).  The TNF
        views in :mod:`repro.relational.tnf` cache through this hook.
        Respects the :mod:`~repro.relational.caching` ablation switch.
        """
        try:
            return self._views[key]
        except KeyError:
            if not caching.view_caching_enabled():
                return compute()
            value = self._views[key] = compute()
            return value

    # -- construction helpers --------------------------------------------------

    @classmethod
    def from_dict(
        cls, data: Mapping[str, Sequence[Mapping[str, Value]]]
    ) -> "Database":
        """Build a database from ``{relation_name: [row_dict, ...]}``."""
        return cls(Relation.from_dicts(name, rows) for name, rows in data.items())

    @classmethod
    def single(cls, relation: Relation) -> "Database":
        """A database holding exactly one relation."""
        return cls([relation])

    # -- accessors ---------------------------------------------------------------

    @property
    def relations(self) -> tuple[Relation, ...]:
        """Member relations in canonical (name-sorted) order."""
        return self._relations

    @property
    def relation_names(self) -> tuple[str, ...]:
        """Relation names in sorted order."""
        return tuple(rel.name for rel in self._relations)

    def relation(self, name: str) -> Relation:
        """The relation called *name* (raises :class:`UnknownRelationError`)."""
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownRelationError(name, self.relation_names) from None

    def has_relation(self, name: str) -> bool:
        """Whether a relation called *name* exists."""
        return name in self._by_name

    def relation_name_view(self):
        """Live keys view of relation names (cheap membership/iteration).

        Unlike :attr:`relation_names` this allocates nothing; the proposal
        hot loop diffs target names against it once per expansion.
        """
        return self._by_name.keys()

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations)

    def __len__(self) -> int:
        return len(self._relations)

    def __bool__(self) -> bool:
        return bool(self._relations)

    @property
    def total_tuples(self) -> int:
        """Total number of tuples across all relations."""
        return sum(rel.cardinality for rel in self._relations)

    # -- whole-database views (used heavily by heuristics) ------------------------

    def attribute_names(self) -> frozenset[str]:
        """Union of attribute names across relations (memoised)."""

        def compute() -> frozenset[str]:
            names: set[str] = set()
            for rel in self._relations:
                names.update(rel.attributes)
            return frozenset(names)

        return self.cached_view("attribute_names", compute)

    def value_set(self, include_null: bool = False) -> frozenset[Value]:
        """Union of data values across relations (memoised)."""

        def compute() -> frozenset[Value]:
            values: set[Value] = set()
            for rel in self._relations:
                values.update(rel.value_set(include_null=include_null))
            return frozenset(values)

        return self.cached_view(("value_set", include_null), compute)

    def value_texts(self) -> frozenset[str]:
        """The text forms of all non-NULL data values (memoised).

        The search proposal rules compare this view against target token
        sets (e.g. demotions are proposed only when a metadata token is
        still missing from the state's data values).
        """

        def compute() -> frozenset[str]:
            if caching.columnar_kernel_enabled():
                from .intern import TEXTS

                return frozenset(TEXTS[i] for i in self.value_text_ids())
            return frozenset(value_to_text(v) for v in self.value_set())

        return self.cached_view("value_texts", compute)

    def value_text_ids(self) -> frozenset[int]:
        """Token ids of the text forms of all non-NULL data values (memoised).

        The integer-set counterpart of :meth:`value_texts`, consulted by the
        columnar proposal rules (once per expansion, hence the inlined
        cache probe).
        """
        views = self._views
        hit = views.get("value_text_ids")
        if hit is not None:
            return hit
        ids: set[int] = set()
        for rel in self._relations:
            ids.update(rel.value_text_ids())
        value = frozenset(ids)
        if caching.view_caching_enabled():
            views["value_text_ids"] = value
        return value

    @property
    def has_nulls(self) -> bool:
        """Whether any relation contains a NULL value (memoised)."""
        return self.cached_view(
            "has_nulls", lambda: any(rel.has_nulls for rel in self._relations)
        )

    # -- derivations ---------------------------------------------------------------

    @classmethod
    def _from_sorted(
        cls,
        relations: tuple[Relation, ...],
        by_name: dict[str, Relation] | None = None,
    ) -> "Database":
        """Construct from an already-validated, name-sorted relation tuple.

        Successor generation builds one database per child state; this
        skips the public constructor's re-validation, re-sort, and
        duplicate check, which the caller's invariants make redundant.
        Callers deriving from an existing database pass *by_name* (a dict
        copy patched in C speed) to skip the name-index rebuild too.
        """
        db = cls.__new__(cls)
        db._relations = relations
        db._by_name = (
            by_name
            if by_name is not None
            else {rel.name: rel for rel in relations}
        )
        db._hash = hash(relations)
        db._views = {}
        return db

    def with_relation(self, relation: Relation, replace: bool = True) -> "Database":
        """A copy with *relation* added (replacing any same-named member).

        With ``replace=False`` a same-named member raises
        :class:`NameCollisionError`.
        """
        if not isinstance(relation, Relation):
            raise SchemaError(
                f"expected Relation, got {type(relation).__name__}"
            )
        name = relation.name
        if name in self._by_name:
            if not replace:
                raise NameCollisionError(
                    f"relation {name!r} already exists in database"
                )
            old = self._relations
            if len(old) == 1:  # the dominant case in single-relation search
                relations: tuple[Relation, ...] = (relation,)
            else:
                relations = tuple(
                    relation if rel._name == name else rel for rel in old
                )
        else:
            names = [rel._name for rel in self._relations]
            idx = bisect_right(names, name)
            relations = (
                self._relations[:idx] + (relation,) + self._relations[idx:]
            )
        by_name = dict(self._by_name)
        by_name[name] = relation
        return Database._from_sorted(relations, by_name)

    def with_relations(self, relations: Iterable[Relation]) -> "Database":
        """A copy with each of *relations* added/replaced in order."""
        db = self
        for rel in relations:
            db = db.with_relation(rel)
        return db

    def without_relation(self, name: str) -> "Database":
        """A copy with the named relation removed (raises if absent)."""
        self.relation(name)  # precise error if absent
        return Database._from_sorted(
            tuple(rel for rel in self._relations if rel.name != name)
        )

    def rename_relation(self, old: str, new: str) -> "Database":
        """A copy with relation *old* renamed to *new*."""
        rel = self.relation(old)
        if old == new:
            return self
        if self.has_relation(new):
            raise NameCollisionError(
                f"cannot rename relation {old!r} to {new!r}: name already in use"
            )
        return self.without_relation(old).with_relation(rel.renamed(new))

    # -- comparisons -----------------------------------------------------------------

    def contains(self, other: "Database") -> bool:
        """Database-level instance containment (the search goal test).

        True iff for every relation ``T`` of *other* there is a relation with
        the same name here whose projection onto ``T``'s attributes contains
        all of ``T``'s tuples — i.e. this database is a "structurally
        identical superset" of *other* in the sense of the paper's §2.3.
        """
        for target_rel in other:
            ours = self._by_name.get(target_rel.name)
            if ours is None or not ours.contains(target_rel):
                return False
        return True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        return self._hash == other._hash and self._relations == other._relations

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{rel.name}({rel.arity}x{rel.cardinality})" for rel in self._relations
        )
        return f"Database({inner})"

    def to_text(self) -> str:
        """Human-readable rendering of every relation."""
        return "\n\n".join(rel.to_text() for rel in self._relations)
