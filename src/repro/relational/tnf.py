"""Tuple Normal Form (TNF) encoding of databases.

TNF (Litwin, Ketabchi & Krishnamurthy, 1991) encodes an entire database in a
single table of fixed schema ``(TID, REL, ATT, VALUE)``: one row per cell,
where TID identifies the originating tuple, REL its relation name, ATT the
attribute name, and VALUE the cell value.  TUPELO uses TNF as its internal
representation: the paper's heuristics (§3) are all defined over TNF
projections, the string view, and the term-vector view provided here.

NULL cells are not emitted: a promoted/ragged tuple contributes only its
non-NULL cells, matching the "piecemeal" population described in the paper's
Example 4.
"""

from __future__ import annotations

from typing import Iterator

from ..errors import TNFError
from . import caching
from .database import Database
from .intern import NULL_TOKEN, TEXTS, VALUES
from .relation import Relation
from .types import Value, is_null, value_to_text

TNF_ATTRIBUTES = ("TID", "REL", "ATT", "VALUE")

TNFCell = tuple[str, str, str, Value]
"""One TNF row: (tid, relation name, attribute name, value)."""


def iter_tnf_cells(db: Database) -> Iterator[TNFCell]:
    """Yield the TNF cells of *db* in deterministic order.

    Tuple identifiers are ``t1, t2, ...`` assigned over relations in name
    order and rows in canonical sorted order, so the encoding of equal
    databases is identical.
    """
    return iter(tnf_cells(db))


def tnf_cells(db: Database) -> tuple[TNFCell, ...]:
    """The TNF cells of *db* in deterministic order (memoised on *db*)."""

    def compute() -> tuple[TNFCell, ...]:
        cells: list[TNFCell] = []
        tid_counter = 0
        if caching.columnar_kernel_enabled():
            values = VALUES
            for rel in db:
                attributes = rel.attributes
                name = rel.name
                for trow in rel.sorted_token_rows():
                    tid_counter += 1
                    tid = f"t{tid_counter}"
                    for attr, token in zip(attributes, trow):
                        if token == NULL_TOKEN:
                            continue
                        cells.append((tid, name, attr, values[token]))
            return tuple(cells)
        for rel in db:
            attributes = rel.attributes
            for row in rel.sorted_rows_view():
                tid_counter += 1
                tid = f"t{tid_counter}"
                for attr, value in zip(attributes, row):
                    if is_null(value):
                        continue
                    cells.append((tid, rel.name, attr, value))
        return tuple(cells)

    return db.cached_view("tnf_cells", compute)


def tnf_encode(db: Database, table_name: str = "TNF") -> Relation:
    """Encode *db* as a single TNF relation.

    Example 4 of the paper shows this encoding for the FlightsC database.
    """
    return Relation(table_name, TNF_ATTRIBUTES, tnf_cells(db))


def tnf_decode(tnf: Relation) -> Database:
    """Decode a TNF relation produced by :func:`tnf_encode` back to a database.

    Raises:
        TNFError: if the relation does not have the TNF schema, a (tid, rel)
            group assigns two values to one attribute, or the same tid is
            used under two relation names.
    """
    if tnf.attribute_set != frozenset(TNF_ATTRIBUTES):
        raise TNFError(
            f"relation {tnf.name!r} does not have TNF schema {TNF_ATTRIBUTES}, "
            f"got {tuple(tnf.attributes)}"
        )
    tid_rel: dict[str, str] = {}
    grouped: dict[tuple[str, str], dict[str, Value]] = {}
    for row in tnf.sorted_rows():
        cell = dict(zip(tnf.attributes, row))
        tid = cell["TID"]
        rel_name = cell["REL"]
        att = cell["ATT"]
        value = cell["VALUE"]
        if not isinstance(tid, str) or not isinstance(rel_name, str) or not isinstance(att, str):
            raise TNFError(f"TNF row {row!r} has non-string TID/REL/ATT")
        if tid in tid_rel and tid_rel[tid] != rel_name:
            raise TNFError(
                f"tuple id {tid!r} appears under relations "
                f"{tid_rel[tid]!r} and {rel_name!r}"
            )
        tid_rel[tid] = rel_name
        group = grouped.setdefault((rel_name, tid), {})
        if att in group:
            raise TNFError(
                f"tuple id {tid!r} assigns two values to attribute {att!r} "
                f"of relation {rel_name!r}"
            )
        group[att] = value

    rows_by_relation: dict[str, list[dict[str, Value]]] = {}
    for (rel_name, _tid), row_dict in sorted(grouped.items()):
        rows_by_relation.setdefault(rel_name, []).append(row_dict)
    return Database(
        Relation.from_dicts(rel_name, rows)
        for rel_name, rows in rows_by_relation.items()
    )


def tnf_triples(db: Database) -> tuple[tuple[str, str, str], ...]:
    """The (REL, ATT, VALUE) triples of *db*'s TNF, values as text.

    This is the term-vector view of §3: each database is a bag of
    (relation, attribute, value) token triples.  Memoised on *db*.
    """

    def compute() -> tuple[tuple[str, str, str], ...]:
        if caching.columnar_kernel_enabled():
            texts = TEXTS
            triples: list[tuple[str, str, str]] = []
            for rel in db:
                attributes = rel.attributes
                name = rel.name
                for trow in rel.sorted_token_rows():
                    for attr, token in zip(attributes, trow):
                        if token == NULL_TOKEN:
                            continue
                        triples.append((name, attr, texts[token]))
            return tuple(triples)
        return tuple(
            (rel, att, value_to_text(value))
            for (_tid, rel, att, value) in tnf_cells(db)
        )

    return db.cached_view("tnf_triples", compute)


def database_string(db: Database) -> str:
    """The string view of §3 ("Databases as Strings").

    Each TNF row contributes the concatenation REL + ATT + VALUE; the row
    strings are sorted lexicographically (with repetitions) and concatenated.
    Memoised on *db*.
    """
    return db.cached_view(
        "database_string",
        lambda: "".join(
            sorted(rel + att + value for rel, att, value in tnf_triples(db))
        ),
    )


def tnf_projections(
    db: Database,
) -> tuple[frozenset[str], frozenset[str], frozenset[str]]:
    """The (π_REL, π_ATT, π_VALUE) projections of *db*'s TNF as text sets.

    These drive the set-based heuristics h1/h2/h3.  Memoised on *db*.
    """

    def compute() -> tuple[frozenset[str], frozenset[str], frozenset[str]]:
        rels: set[str] = set()
        atts: set[str] = set()
        values: set[str] = set()
        for rel, att, value in tnf_triples(db):
            rels.add(rel)
            atts.add(att)
            values.add(value)
        return frozenset(rels), frozenset(atts), frozenset(values)

    return db.cached_view("tnf_projections", compute)
