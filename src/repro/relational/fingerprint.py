"""Canonical content fingerprints for instances and instance pairs.

The warm-start store (:mod:`repro.store`) keys persisted discovery results
by the *content* of a (source, target) critical-instance pair, so repeated
requests for the same pair hit a memo instead of a search.  That key must
be stable where Python object identity is not:

* **Order-insensitive** — relations, attributes, and rows are hashed in
  their canonical sorted order (the order :class:`~repro.relational
  .relation.Relation` and :class:`~repro.relational.database.Database`
  already store), so construction order never changes the digest.
* **Intern-pool independent** — digests are computed over *values* (typed
  renderings), never over token ids.  Token ids are process-local (see
  :mod:`repro.relational.intern`); two processes interning the same pair in
  different orders produce the same fingerprint.
* **Type-faithful** — cells hash their :func:`~repro.relational.types
  .value_sort_key` rendering (``"int:1"`` vs ``"str:'1'"``), so instances
  that differ only in cell types do not collide the way their text
  renderings would.

Two digest granularities are exposed:

* :func:`instance_digest` / :func:`pair_fingerprint` — the exact content
  hash *including* relation and attribute names.  This is the memo's
  serving key: a stored mapping expression names schema elements, so it
  can only be replayed against an instance whose names match.
* :func:`shape_digest` / :func:`pair_shape_fingerprint` — the
  rename-insensitive companion: names are abstracted away and columns are
  hashed as sorted content multisets, so instances that differ only by
  relation/attribute renames share a shape.  The store records it per
  entry for diagnostics and near-miss grouping (the precursor to
  compositional reuse — see ROADMAP item 5); it is never used to *serve*
  a mapping, because a mapping discovered under other names cannot apply
  verbatim.

All digests are hex SHA-256 strings and are memoised per database value
through ``cached_view`` (immutable inputs make them pure).
"""

from __future__ import annotations

import hashlib

from .database import Database
from .relation import Relation
from .types import value_sort_key

#: domain-separation prefix stamped into every digest (bump on format change)
_DIGEST_DOMAIN = b"tupelo-fp-v1"

#: field separator inside one hashed record (never appears in renderings)
_SEP = b"\x1f"

#: record separator between hashed records
_END = b"\x1e"


def _cell_bytes(value: object) -> bytes:
    """The canonical typed rendering of one cell.

    ``value_sort_key`` already distinguishes NULL from every typed value
    and types from each other (``"int:1"`` vs ``"str:'1'"``), and it is
    what row ordering is defined over, so hashing it keeps the digest
    aligned with the canonical row order.
    """
    rank, text = value_sort_key(value)
    return str(rank).encode("utf-8") + _SEP + text.encode("utf-8")


def relation_digest(rel: Relation) -> str:
    """Exact content digest of one relation (name + schema + rows).

    Rows are hashed in canonical sorted order; the result is memoised on
    the relation value.
    """

    def compute() -> str:
        h = hashlib.sha256(_DIGEST_DOMAIN)
        h.update(b"relation" + _SEP + rel.name.encode("utf-8") + _END)
        for attr in rel.attributes:
            h.update(attr.encode("utf-8") + _SEP)
        h.update(_END)
        for row in rel.sorted_rows_view():
            for cell in row:
                h.update(_cell_bytes(cell) + _SEP)
            h.update(_END)
        return h.hexdigest()

    return rel.cached_view("content_digest", compute)


def relation_shape_digest(rel: Relation) -> str:
    """Rename-insensitive digest of one relation.

    Names are dropped; each column is hashed as its sorted multiset of
    typed cell renderings, and the column digests are combined in sorted
    order.  Two relations that differ only by relation/attribute renames
    (or by attribute order) share a shape digest.  Coarser than
    :func:`relation_digest` by construction: it also identifies relations
    whose columns hold the same multisets under different row alignments,
    which is exactly the "could a rename map these onto each other?"
    over-approximation the diagnostics want.
    """

    def compute() -> str:
        columns: list[str] = []
        rows = rel.sorted_rows_view()
        for position in range(rel.arity):
            col = hashlib.sha256(_DIGEST_DOMAIN + b"column")
            for cell in sorted(
                (_cell_bytes(row[position]) for row in rows)
            ):
                col.update(cell + _END)
            columns.append(col.hexdigest())
        h = hashlib.sha256(_DIGEST_DOMAIN + b"relation-shape")
        h.update(str(rel.cardinality).encode("utf-8") + _END)
        for digest in sorted(columns):
            h.update(digest.encode("utf-8") + _END)
        return h.hexdigest()

    return rel.cached_view("shape_digest", compute)


def instance_digest(db: Database) -> str:
    """Exact content digest of a whole instance (memoised on the value).

    Relations contribute in name order (the canonical storage order), so
    any construction order of an equal database yields the same digest.
    """

    def compute() -> str:
        h = hashlib.sha256(_DIGEST_DOMAIN + b"instance")
        for rel in db:
            h.update(relation_digest(rel).encode("utf-8") + _END)
        return h.hexdigest()

    return db.cached_view("instance_digest", compute)


def shape_digest(db: Database) -> str:
    """Rename-insensitive digest of a whole instance (memoised)."""

    def compute() -> str:
        h = hashlib.sha256(_DIGEST_DOMAIN + b"instance-shape")
        for digest in sorted(relation_shape_digest(rel) for rel in db):
            h.update(digest.encode("utf-8") + _END)
        return h.hexdigest()

    return db.cached_view("instance_shape_digest", compute)


def pair_fingerprint(source: Database, target: Database) -> str:
    """The exact fingerprint of a (source, target) pair — the memo key."""
    h = hashlib.sha256(_DIGEST_DOMAIN + b"pair")
    h.update(instance_digest(source).encode("utf-8") + _END)
    h.update(instance_digest(target).encode("utf-8") + _END)
    return h.hexdigest()


def pair_shape_fingerprint(source: Database, target: Database) -> str:
    """The rename-insensitive fingerprint of a pair (diagnostics only)."""
    h = hashlib.sha256(_DIGEST_DOMAIN + b"pair-shape")
    h.update(shape_digest(source).encode("utf-8") + _END)
    h.update(shape_digest(target).encode("utf-8") + _END)
    return h.hexdigest()
