"""Immutable relation values, stored columnar over interned tokens.

A :class:`Relation` is a named set of tuples over a fixed attribute list.
Relations are *canonical*: attributes are stored in sorted order and rows in
a frozenset, so two relations with the same name, attribute set, and tuple
set are equal (and hash equal) regardless of construction order.  This is
what lets the search engine deduplicate whole-database states cheaply.

Since the columnar-kernel rewrite, the primary storage is a frozenset of
**token-id tuples**: every cell value is interned once per process (see
:mod:`repro.relational.intern`) and rows hold small integers.  Hashing,
equality, row deduplication and containment are integer-tuple operations,
and the text/sort-key data consulted by the search hot loops is shared
per-token instead of recomputed per relation.  The value-level API
(:attr:`rows`, :meth:`column_values`, ...) is unchanged: value rows are a
derived view reconstructed from the tokens on demand.

The :mod:`~repro.relational.caching` columnar kill switch selects between
the token fast paths and the legacy value/text computations; both produce
identical results (the token mapping is equality-faithful), so the switch
is purely a cost-model ablation.

Immutability also makes every derived view (sorted rows, column value sets,
column text sets, ...) a pure function of the relation, so views are computed
lazily once and memoised for the lifetime of the value — IDA*/RBFS re-visit
the same states across iterations and the successor-proposal rules consult
the same column views many times per expansion.  All cached views are
immutable containers (tuples / frozensets), so callers can never corrupt a
cache through a returned reference.
"""

from __future__ import annotations

from functools import lru_cache
from operator import itemgetter
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from ..errors import SchemaError, UnknownAttributeError
from . import caching
from .intern import (
    NULL_TOKEN,
    SORT_KEYS,
    TEXT_IDS,
    TEXTS,
    VALUES,
    intern_value,
)
from .types import NULL, Value, check_value, is_null, value_sort_key, value_to_text

#: sentinel distinguishing "view absent" from legitimately-falsy view values
#: (``has_nulls`` caches booleans) during view transplantation
_TRANSPLANT_MISS = object()

Row = tuple[Value, ...]

TokenRow = tuple[int, ...]
"""One stored row: cell token ids in canonical attribute order."""


@lru_cache(maxsize=None)
def _rename_schema(
    attrs: tuple[str, ...], pos: int, new: str
) -> tuple[tuple[str, ...], tuple[int, ...] | None, dict[str, int]]:
    """Canonicalisation flyweight for single-attribute renames.

    For canonical *attrs* with position *pos* renamed to *new*, returns the
    child's canonical attribute tuple, the column permutation to apply to
    token rows (``None`` when positions are unchanged), and the child's
    attribute index.  Rename edges draw from one problem's small schema
    vocabulary, so each triple is computed once per process; the returned
    index dict is shared between relations and must never be mutated
    (:class:`Relation` treats ``_index`` as read-only).
    """
    renamed = list(attrs)
    renamed[pos] = new
    order = sorted(range(len(renamed)), key=renamed.__getitem__)
    canonical = tuple(renamed[i] for i in order)
    perm = None if order == list(range(len(renamed))) else tuple(order)
    return canonical, perm, {a: i for i, a in enumerate(canonical)}


@lru_cache(maxsize=None)
def _interned_name_set(names: tuple[str, ...] | frozenset[str]) -> frozenset[int]:
    """Token ids for a (small, schema-vocabulary) set of names, memoised.

    Attribute/relation-name id sets recur across every state whose schema
    shares the names; one process-wide entry per distinct name collection
    replaces a per-relation interning loop.
    """
    return frozenset(intern_value(n) for n in names)


class Relation:
    """An immutable named relation (set of tuples over sorted attributes).

    Args:
        name: relation name (non-empty string).
        attributes: attribute names; duplicates are rejected.
        rows: iterable of rows, each aligned with *attributes* as given
            (the constructor re-orders values into canonical sorted-attribute
            order).

    Rows may be any sequence of atomic values; ``None`` entries are coerced
    to :data:`~repro.relational.types.NULL`.
    """

    __slots__ = ("_name", "_attributes", "_token_rows", "_index", "_hash", "_views")

    def __init__(
        self,
        name: str,
        attributes: Sequence[str],
        rows: Iterable[Sequence[Value]] = (),
    ) -> None:
        if not isinstance(name, str) or not name:
            raise SchemaError(f"relation name must be a non-empty string, got {name!r}")
        attrs = tuple(attributes)
        if not attrs:
            raise SchemaError(f"relation {name!r} must have at least one attribute")
        for attr in attrs:
            if not isinstance(attr, str) or not attr:
                raise SchemaError(
                    f"attribute names must be non-empty strings, got {attr!r} in {name!r}"
                )
        if len(set(attrs)) != len(attrs):
            duplicates = sorted({a for a in attrs if attrs.count(a) > 1})
            raise SchemaError(f"duplicate attributes {duplicates} in relation {name!r}")

        order = sorted(range(len(attrs)), key=lambda i: attrs[i])
        canonical_attrs = tuple(attrs[i] for i in order)

        arity = len(attrs)
        token_rows: set[TokenRow] = set()
        for row in rows:
            tokens = tuple(intern_value(v) for v in row)
            if len(tokens) != arity:
                raise SchemaError(
                    f"row {row!r} has arity {len(tokens)}, "
                    f"expected {arity} for relation {name!r}"
                )
            token_rows.add(tuple(tokens[i] for i in order))

        self._name = name
        self._attributes = canonical_attrs
        self._token_rows: frozenset[TokenRow] = frozenset(token_rows)
        self._index = {attr: i for i, attr in enumerate(canonical_attrs)}
        self._hash = hash((self._name, self._attributes, self._token_rows))
        self._views: dict[object, object] = {}

    @classmethod
    def _from_token_rows(
        cls,
        name: str,
        attributes: tuple[str, ...],
        token_rows: frozenset[TokenRow],
        index: dict[str, int] | None = None,
    ) -> "Relation":
        """Internal fast constructor: no validation, no re-canonicalisation.

        Callers guarantee *attributes* is already in canonical (sorted)
        order, *token_rows* is a frozenset of token tuples aligned with it,
        and the schema invariants (non-empty unique attribute names,
        non-empty relation name) hold.  The operator fast paths build
        derived relations through here, skipping per-cell validation and
        interning entirely.
        """
        self = object.__new__(cls)
        self._name = name
        self._attributes = attributes
        self._token_rows = token_rows
        self._index = (
            index
            if index is not None
            else {attr: i for i, attr in enumerate(attributes)}
        )
        self._hash = hash((name, attributes, token_rows))
        self._views = {}
        return self

    def __getstate__(self) -> dict:
        """Pickle only the defining data — never the memoised views.

        Search-warm relations carry megabytes of derived views; shipping
        them across a process boundary (the parallel execution layer
        pickles states into workers) would dwarf the data itself.  Views
        rebuild lazily on first use in the receiving process.  Rows are
        shipped as *values*, never token ids: the intern pool is strictly
        process-local, and the receiving side re-interns.
        """
        return {
            "name": self._name,
            "attributes": self._attributes,
            "rows": tuple(self.rows),
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["name"], state["attributes"], state["rows"])

    def cached_view(self, key: object, compute: Callable[[], object]) -> object:
        """Memoise a derived view of this (immutable) relation.

        The first call under *key* evaluates *compute* and stores the result
        for the relation's lifetime; later calls return the stored object.
        Stored views must be immutable (tuple/frozenset/str/int) and never
        ``None`` — the hottest accessors bypass this method with a plain
        ``self._views.get(key)`` probe and treat ``None`` as a miss.
        Respects the :mod:`~repro.relational.caching` ablation switch.
        """
        try:
            return self._views[key]
        except KeyError:
            if not caching.view_caching_enabled():
                return compute()
            value = self._views[key] = compute()
            return value

    # -- construction helpers ------------------------------------------------

    @classmethod
    def from_dicts(
        cls,
        name: str,
        rows: Iterable[Mapping[str, Value]],
        attributes: Sequence[str] | None = None,
    ) -> "Relation":
        """Build a relation from dict rows.

        If *attributes* is omitted it is the union of keys across rows;
        missing keys in individual rows become NULL.
        """
        rows = list(rows)
        if attributes is None:
            seen: dict[str, None] = {}
            for row in rows:
                for key in row:
                    seen.setdefault(key, None)
            attributes = tuple(seen)
            if not attributes:
                raise SchemaError(
                    f"cannot infer attributes for relation {name!r} from empty rows"
                )
        aligned = [tuple(row.get(attr, NULL) for attr in attributes) for row in rows]
        return cls(name, attributes, aligned)

    # -- basic accessors -----------------------------------------------------

    @property
    def name(self) -> str:
        """Relation name."""
        return self._name

    @property
    def attributes(self) -> tuple[str, ...]:
        """Attribute names in canonical (sorted) order."""
        return self._attributes

    @property
    def attribute_set(self) -> frozenset[str]:
        """Attribute names as a set (memoised)."""
        views = self._views
        hit = views.get("attribute_set")
        if hit is not None:
            return hit
        value = frozenset(self._attributes)
        if caching.view_caching_enabled():
            views["attribute_set"] = value
        return value

    @property
    def rows(self) -> frozenset[Row]:
        """Rows as value tuples aligned with :attr:`attributes`.

        A derived view of the token storage, memoised unconditionally (it
        plays the role the primary storage played before the columnar
        rewrite, so even the cache-ablation arms keep it — the legacy cost
        model treats value rows as free).
        """
        try:
            return self._views["value_rows"]
        except KeyError:
            values = VALUES
            rows = self._views["value_rows"] = frozenset(
                tuple(values[t] for t in trow) for trow in self._token_rows
            )
            return rows

    @property
    def token_rows(self) -> frozenset[TokenRow]:
        """Rows as interned token-id tuples (the primary storage)."""
        return self._token_rows

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self._attributes)

    @property
    def cardinality(self) -> int:
        """Number of tuples."""
        return len(self._token_rows)

    def __len__(self) -> int:
        return len(self._token_rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __contains__(self, row: object) -> bool:
        return row in self.rows

    def has_attribute(self, attr: str) -> bool:
        """Whether *attr* is one of this relation's attributes."""
        return attr in self._index

    def attribute_position(self, attr: str) -> int:
        """Index of *attr* in :attr:`attributes` (raises if unknown)."""
        try:
            return self._index[attr]
        except KeyError:
            raise UnknownAttributeError(attr, self._name, self._attributes) from None

    def value(self, row: Row, attr: str) -> Value:
        """The value of *attr* in *row* (a row of this relation)."""
        return row[self.attribute_position(attr)]

    def column(self, attr: str) -> tuple[Value, ...]:
        """All values of *attr*, in deterministic sorted-row order."""
        pos = self.attribute_position(attr)
        return tuple(row[pos] for row in self.sorted_rows_view())

    def column_values(self, attr: str, include_null: bool = False) -> frozenset[Value]:
        """The set of values appearing in column *attr* (memoised)."""
        pos = self.attribute_position(attr)

        def compute() -> frozenset[Value]:
            if caching.columnar_kernel_enabled():
                values = VALUES
                tokens = self.column_tokens(attr, include_null=include_null)
                return frozenset(values[t] for t in tokens)
            values = (row[pos] for row in self.rows)
            if include_null:
                return frozenset(values)
            return frozenset(v for v in values if not is_null(v))

        return self.cached_view(("column_values", attr, include_null), compute)

    def column_tokens(self, attr: str, include_null: bool = False) -> frozenset[int]:
        """The set of token ids appearing in column *attr* (memoised)."""
        key = ("column_tokens", attr, include_null)
        views = self._views
        hit = views.get(key)
        if hit is not None:
            return hit
        pos = self.attribute_position(attr)
        tokens = frozenset(trow[pos] for trow in self._token_rows)
        if not include_null:
            tokens -= {NULL_TOKEN}
        if caching.view_caching_enabled():
            views[key] = tokens
        return tokens

    def column_texts(self, attr: str) -> frozenset[str]:
        """The text forms of the non-NULL values in column *attr* (memoised).

        This is the view the search proposal rules compare against target
        token sets (promotions, partitions, dereferences): values are
        rendered with :func:`~repro.relational.types.value_to_text`.
        """
        self.attribute_position(attr)  # raise early with a precise error

        def compute() -> frozenset[str]:
            if caching.columnar_kernel_enabled():
                texts = TEXTS
                return frozenset(texts[i] for i in self.column_text_ids(attr))
            return frozenset(
                value_to_text(v) for v in self.column_values(attr)
            )

        return self.cached_view(("column_texts", attr), compute)

    def column_text_id_sets(self) -> tuple[frozenset[int], ...]:
        """Per-column text-id sets, aligned with :attr:`attributes` (memoised).

        One tuple view instead of one cache entry per column: probes are an
        index away, and schema-preserving derivations (renames, projections)
        transplant the whole view with a single permutation — the member
        frozensets are shared, never copied.
        """
        views = self._views
        hit = views.get("column_text_id_sets")
        if hit is not None:
            return hit
        text_ids = TEXT_IDS
        value = tuple(
            frozenset(text_ids[t] for t in self.column_tokens(attr))
            for attr in self._attributes
        )
        if caching.view_caching_enabled():
            views["column_text_id_sets"] = value
        return value

    def column_text_ids(self, attr: str) -> frozenset[int]:
        """Token ids of the text forms of column *attr*'s non-NULL values.

        The integer-set counterpart of :meth:`column_texts`: the proposal
        rules intersect this with target-side text-id sets (memoised).
        """
        try:
            pos = self._index[attr]
        except KeyError:
            raise UnknownAttributeError(attr, self._name, self._attributes) from None
        return self.column_text_id_sets()[pos]

    def value_set(self, include_null: bool = False) -> frozenset[Value]:
        """The set of all data values appearing anywhere (memoised)."""

        def compute() -> frozenset[Value]:
            if caching.columnar_kernel_enabled():
                values = VALUES
                return frozenset(
                    values[t] for t in self.value_tokens(include_null=include_null)
                )
            out: set[Value] = set()
            for row in self.rows:
                for v in row:
                    if include_null or not is_null(v):
                        out.add(v)
            return frozenset(out)

        return self.cached_view(("value_set", include_null), compute)

    def value_tokens(self, include_null: bool = False) -> frozenset[int]:
        """The set of token ids appearing anywhere (memoised)."""

        def compute() -> frozenset[int]:
            tokens: set[int] = set()
            for trow in self._token_rows:
                tokens.update(trow)
            if not include_null:
                tokens.discard(NULL_TOKEN)
            return frozenset(tokens)

        return self.cached_view(("value_tokens", include_null), compute)

    def value_text_ids(self) -> frozenset[int]:
        """Token ids of the text forms of all non-NULL values (memoised)."""

        def compute() -> frozenset[int]:
            text_ids = TEXT_IDS
            return frozenset(text_ids[t] for t in self.value_tokens())

        return self.cached_view("value_text_ids", compute)

    def attribute_ids(self) -> frozenset[int]:
        """Token ids of this relation's attribute names (memoised)."""
        views = self._views
        hit = views.get("attribute_ids")
        if hit is not None:
            return hit
        value = _interned_name_set(self._attributes)
        if caching.view_caching_enabled():
            views["attribute_ids"] = value
        return value

    def schema_name_ids(self) -> frozenset[int]:
        """Token ids of the relation name plus attribute names (memoised).

        The demote-proposal rule intersects this with the still-missing
        target value texts.
        """
        views = self._views
        hit = views.get("schema_name_ids")
        if hit is not None:
            return hit
        value = self.attribute_ids() | {intern_value(self._name)}
        if caching.view_caching_enabled():
            views["schema_name_ids"] = value
        return value

    @property
    def has_nulls(self) -> bool:
        """Whether any tuple contains a NULL (memoised)."""

        def compute() -> bool:
            if caching.columnar_kernel_enabled():
                return any(NULL_TOKEN in trow for trow in self._token_rows)
            return any(any(is_null(v) for v in row) for row in self.rows)

        return self.cached_view("has_nulls", compute)

    def sorted_rows(self) -> list[Row]:
        """Rows in a deterministic total order (for display and TNF ids).

        Returns a fresh list each call; the underlying ordering is computed
        once and cached (see :meth:`sorted_rows_view`).
        """
        return list(self.sorted_rows_view())

    def sorted_rows_view(self) -> tuple[Row, ...]:
        """The memoised, immutable form of :meth:`sorted_rows`."""

        def compute() -> tuple[Row, ...]:
            if caching.columnar_kernel_enabled():
                values = VALUES
                return tuple(
                    tuple(values[t] for t in trow)
                    for trow in self.sorted_token_rows()
                )
            return tuple(
                sorted(
                    self.rows,
                    key=lambda row: tuple(value_sort_key(v) for v in row),
                )
            )

        return self.cached_view("sorted_rows", compute)

    def sorted_token_rows(self) -> tuple[TokenRow, ...]:
        """Token rows in deterministic sorted order (memoised).

        The order matches :meth:`sorted_rows_view`: per-cell
        ``value_sort_key`` of the canonical token values.
        """

        def compute() -> tuple[TokenRow, ...]:
            sort_keys = SORT_KEYS
            return tuple(
                sorted(
                    self._token_rows,
                    key=lambda trow: tuple(sort_keys[t] for t in trow),
                )
            )

        return self.cached_view("sorted_token_rows", compute)

    def iter_dicts(self) -> Iterator[dict[str, Value]]:
        """Iterate rows as attribute->value dicts in deterministic order."""
        for row in self.sorted_rows():
            yield dict(zip(self._attributes, row))

    # -- schema-preserving derivations ----------------------------------------

    def _seed_column_views(
        self,
        child: "Relation",
        positions: Sequence[int] | None = None,
        columns_only: bool = False,
    ) -> None:
        """Transplant memoised views onto a derivation with the same columns.

        *positions* maps each child column index to the parent column it
        carries (identity when absent).  Per-column text-id sets transfer
        whenever the child column holds the same value *set* as the parent
        column — true for renames (rows untouched) and for projections
        (duplicate-row collapse never removes the last copy of a value) —
        and the transfer is a single tuple permutation sharing the member
        frozensets.  Unless *columns_only*, whole-relation cell aggregates
        (value text ids, has-nulls) transfer too; those are
        permutation-invariant but not projection-safe.  Callers must hold
        the view-caching switch enabled.
        """
        src = self._views
        if not src:
            return
        dst = child._views
        # only the views the hot proposal/heuristic paths consume: anything
        # else rebuilds lazily, and probing for it here would cost more
        # than the occasional recompute saves
        cols = src.get("column_text_id_sets")
        if cols is not None:
            dst["column_text_id_sets"] = (
                cols if positions is None else tuple(cols[p] for p in positions)
            )
        if columns_only:
            return
        miss = _TRANSPLANT_MISS
        get = src.get
        for key in ("value_text_ids", "has_nulls"):
            hit = get(key, miss)
            if hit is not miss:
                dst[key] = hit

    def renamed(self, new_name: str) -> "Relation":
        """A copy of this relation under a new name."""
        if not caching.columnar_kernel_enabled():
            return Relation(new_name, self._attributes, self.rows)
        if not isinstance(new_name, str) or not new_name:
            raise SchemaError(
                f"relation name must be a non-empty string, got {new_name!r}"
            )
        # token rows and attribute index are shared: same schema, same rows
        child = Relation._from_token_rows(
            new_name, self._attributes, self._token_rows, self._index
        )
        if caching.view_caching_enabled():
            self._seed_column_views(child)
            src, dst = self._views, child._views
            miss = _TRANSPLANT_MISS
            # name-independent whole-relation views (rows and schema shared)
            for key in (
                "attribute_set",
                "attribute_ids",
                "sorted_token_rows",
                "sorted_rows",
                "value_rows",
            ):
                hit = src.get(key, miss)
                if hit is not miss:
                    dst[key] = hit
        return child

    def rename_attribute(self, old: str, new: str) -> "Relation":
        """A copy with attribute *old* renamed to *new*."""
        pos = self.attribute_position(old)
        if new in self._index and new != old:
            raise SchemaError(
                f"cannot rename {old!r} to {new!r}: attribute already exists "
                f"in relation {self._name!r}"
            )
        if not caching.columnar_kernel_enabled():
            attrs = list(self._attributes)
            attrs[pos] = new
            return Relation(self._name, attrs, self.rows)
        if not isinstance(new, str) or not new:
            raise SchemaError(
                f"attribute names must be non-empty strings, got {new!r} "
                f"in {self._name!r}"
            )
        canonical_attrs, perm, index = _rename_schema(self._attributes, pos, new)
        if perm is None:
            token_rows = self._token_rows  # column positions unchanged
        else:
            # The permutation depends only on where *new* sorts among the
            # remaining attributes, so renames of one column to several
            # (similarly sorting) names share one permuted row set.
            views = self._views
            token_rows = views.get(("permuted_rows", perm))
            if token_rows is None:
                token_rows = frozenset(map(itemgetter(*perm), self._token_rows))
                if caching.view_caching_enabled():
                    views[("permuted_rows", perm)] = token_rows
        child = Relation._from_token_rows(
            self._name, canonical_attrs, token_rows, index
        )
        if caching.view_caching_enabled():
            # transplant inlined from _seed_column_views: renames sit on the
            # hottest operator path.  Child column i carries parent column
            # perm[i] (the same permutation applied to the token rows;
            # identity when shared).
            src = self._views
            if src:
                dst = child._views
                cols = src.get("column_text_id_sets")
                if cols is not None:
                    dst["column_text_id_sets"] = (
                        cols if perm is None else tuple(map(cols.__getitem__, perm))
                    )
                hit = src.get("value_text_ids")
                if hit is not None:
                    dst["value_text_ids"] = hit
                hit = src.get("has_nulls", _TRANSPLANT_MISS)
                if hit is not _TRANSPLANT_MISS:
                    dst["has_nulls"] = hit
        return child

    def project(self, attrs: Sequence[str]) -> "Relation":
        """Projection onto *attrs* (set semantics: duplicate rows collapse)."""
        positions = [self.attribute_position(a) for a in attrs]
        if not caching.columnar_kernel_enabled():
            rows = {tuple(row[p] for p in positions) for row in self.rows}
            return Relation(self._name, attrs, rows)
        attrs = tuple(attrs)
        if not attrs:
            raise SchemaError(
                f"relation {self._name!r} must have at least one attribute"
            )
        if len(set(attrs)) != len(attrs):
            duplicates = sorted({a for a in attrs if attrs.count(a) > 1})
            raise SchemaError(
                f"duplicate attributes {duplicates} in relation {self._name!r}"
            )
        order = sorted(range(len(attrs)), key=lambda i: attrs[i])
        canonical_attrs = tuple(attrs[i] for i in order)
        canonical_positions = [positions[i] for i in order]
        if len(canonical_positions) == 1:
            pos = canonical_positions[0]
            token_rows = frozenset((trow[pos],) for trow in self._token_rows)
        else:
            token_rows = frozenset(
                map(itemgetter(*canonical_positions), self._token_rows)
            )
        child = Relation._from_token_rows(self._name, canonical_attrs, token_rows)
        if caching.view_caching_enabled():
            # duplicate-row collapse never removes the last copy of a value,
            # so surviving columns keep their exact value sets
            self._seed_column_views(child, canonical_positions, columns_only=True)
        return child

    def drop_attribute(self, attr: str) -> "Relation":
        """Projection dropping a single attribute (the FIRA π̄ operator)."""
        self.attribute_position(attr)  # raise early with a precise error
        remaining = [a for a in self._attributes if a != attr]
        if not remaining:
            raise SchemaError(
                f"cannot drop {attr!r}: it is the only attribute of {self._name!r}"
            )
        return self.project(remaining)

    def extend(self, attr: str, compute: Callable[[dict[str, Value]], Value]) -> "Relation":
        """Append a computed column named *attr*.

        *compute* receives each row as a dict and returns the new value.
        """
        if attr in self._index:
            raise SchemaError(
                f"cannot extend {self._name!r} with {attr!r}: attribute already exists"
            )
        if not caching.columnar_kernel_enabled():
            new_rows = []
            for row in self.rows:
                row_dict = dict(zip(self._attributes, row))
                new_rows.append(row + (check_value(compute(row_dict)),))
            return Relation(self._name, self._attributes + (attr,), new_rows)
        if not isinstance(attr, str) or not attr:
            raise SchemaError(
                f"attribute names must be non-empty strings, got {attr!r} "
                f"in {self._name!r}"
            )
        attrs = self._attributes + (attr,)
        order = sorted(range(len(attrs)), key=lambda i: attrs[i])
        canonical_attrs = tuple(attrs[i] for i in order)
        values = VALUES
        attributes = self._attributes
        extended: list[TokenRow] = []
        for trow in self._token_rows:
            row_dict = {a: values[t] for a, t in zip(attributes, trow)}
            tokens = trow + (intern_value(compute(row_dict)),)
            extended.append(tuple(tokens[i] for i in order))
        return Relation._from_token_rows(
            self._name, canonical_attrs, frozenset(extended)
        )

    def with_rows(self, rows: Iterable[Row]) -> "Relation":
        """A copy with the given canonical-order rows replacing the current ones."""
        return Relation(self._name, self._attributes, rows)

    def filter_rows(self, predicate: Callable[[dict[str, Value]], bool]) -> "Relation":
        """Relational selection: keep rows whose dict satisfies *predicate*."""
        if not caching.columnar_kernel_enabled():
            kept = [
                row
                for row in self.rows
                if predicate(dict(zip(self._attributes, row)))
            ]
            return Relation(self._name, self._attributes, kept)
        values = VALUES
        attributes = self._attributes
        kept_tokens = frozenset(
            trow
            for trow in self._token_rows
            if predicate({a: values[t] for a, t in zip(attributes, trow)})
        )
        return Relation._from_token_rows(
            self._name, self._attributes, kept_tokens, self._index
        )

    # -- comparisons -----------------------------------------------------------

    def contains(self, other: "Relation") -> bool:
        """Instance containment used by the search goal test.

        True iff *other*'s attributes are a subset of ours and every tuple of
        *other* appears in our projection onto those attributes.  Names are
        not compared here (the database-level check compares names).
        """
        if not other.attribute_set <= self.attribute_set:
            return False

        if caching.columnar_kernel_enabled():
            def compute_tokens() -> frozenset[TokenRow]:
                positions = [self._index[a] for a in other.attributes]
                return frozenset(
                    tuple(trow[p] for p in positions) for trow in self._token_rows
                )

            projected_tokens = self.cached_view(
                ("token_projection", other.attributes), compute_tokens
            )
            return other.token_rows <= projected_tokens

        def compute() -> frozenset[Row]:
            positions = [self.attribute_position(a) for a in other.attributes]
            return frozenset(
                tuple(row[p] for p in positions) for row in self.rows
            )

        projected = self.cached_view(("projection", other.attributes), compute)
        return other.rows <= projected

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return (
            self._hash == other._hash
            and self._name == other._name
            and self._attributes == other._attributes
            and self._token_rows == other._token_rows
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return (
            f"Relation({self._name!r}, attributes={list(self._attributes)}, "
            f"rows={self.cardinality})"
        )

    def to_text(self) -> str:
        """Human-readable fixed-width rendering (used by examples)."""
        headers = list(self._attributes)
        body = [[value_to_text(v) or "NULL" if is_null(v) else value_to_text(v) for v in row]
                for row in self.sorted_rows()]
        widths = [len(h) for h in headers]
        for row in body:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [f"{self._name}:"]
        lines.append("  " + "  ".join(h.ljust(w) for h, w in zip(headers, widths)))
        lines.append("  " + "  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  " + "  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)
