"""Immutable relation values.

A :class:`Relation` is a named set of tuples over a fixed attribute list.
Relations are *canonical*: attributes are stored in sorted order and rows in
a frozenset, so two relations with the same name, attribute set, and tuple
set are equal (and hash equal) regardless of construction order.  This is
what lets the search engine deduplicate whole-database states cheaply.

Immutability also makes every derived view (sorted rows, column value sets,
column text sets, ...) a pure function of the relation, so views are computed
lazily once and memoised for the lifetime of the value — IDA*/RBFS re-visit
the same states across iterations and the successor-proposal rules consult
the same column views many times per expansion.  All cached views are
immutable containers (tuples / frozensets), so callers can never corrupt a
cache through a returned reference.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping, Sequence

from ..errors import SchemaError, UnknownAttributeError
from . import caching
from .types import NULL, Value, check_value, is_null, value_sort_key, value_to_text

Row = tuple[Value, ...]


class Relation:
    """An immutable named relation (set of tuples over sorted attributes).

    Args:
        name: relation name (non-empty string).
        attributes: attribute names; duplicates are rejected.
        rows: iterable of rows, each aligned with *attributes* as given
            (the constructor re-orders values into canonical sorted-attribute
            order).

    Rows may be any sequence of atomic values; ``None`` entries are coerced
    to :data:`~repro.relational.types.NULL`.
    """

    __slots__ = ("_name", "_attributes", "_rows", "_index", "_hash", "_views")

    def __init__(
        self,
        name: str,
        attributes: Sequence[str],
        rows: Iterable[Sequence[Value]] = (),
    ) -> None:
        if not isinstance(name, str) or not name:
            raise SchemaError(f"relation name must be a non-empty string, got {name!r}")
        attrs = tuple(attributes)
        if not attrs:
            raise SchemaError(f"relation {name!r} must have at least one attribute")
        for attr in attrs:
            if not isinstance(attr, str) or not attr:
                raise SchemaError(
                    f"attribute names must be non-empty strings, got {attr!r} in {name!r}"
                )
        if len(set(attrs)) != len(attrs):
            duplicates = sorted({a for a in attrs if attrs.count(a) > 1})
            raise SchemaError(f"duplicate attributes {duplicates} in relation {name!r}")

        order = sorted(range(len(attrs)), key=lambda i: attrs[i])
        canonical_attrs = tuple(attrs[i] for i in order)

        canonical_rows: set[Row] = set()
        for row in rows:
            values = tuple(check_value(v) for v in row)
            if len(values) != len(attrs):
                raise SchemaError(
                    f"row {row!r} has arity {len(values)}, "
                    f"expected {len(attrs)} for relation {name!r}"
                )
            canonical_rows.add(tuple(values[i] for i in order))

        self._name = name
        self._attributes = canonical_attrs
        self._rows: frozenset[Row] = frozenset(canonical_rows)
        self._index = {attr: i for i, attr in enumerate(canonical_attrs)}
        self._hash = hash((self._name, self._attributes, self._rows))
        self._views: dict[object, object] = {}

    def __getstate__(self) -> dict:
        """Pickle only the defining data — never the memoised views.

        Search-warm relations carry megabytes of derived views; shipping
        them across a process boundary (the parallel execution layer
        pickles states into workers) would dwarf the data itself.  Views
        rebuild lazily on first use in the receiving process.
        """
        return {
            "name": self._name,
            "attributes": self._attributes,
            "rows": tuple(self._rows),
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["name"], state["attributes"], state["rows"])

    def cached_view(self, key: object, compute: Callable[[], object]) -> object:
        """Memoise a derived view of this (immutable) relation.

        The first call under *key* evaluates *compute* and stores the result
        for the relation's lifetime; later calls return the stored object.
        Stored views must be immutable (tuple/frozenset/str/int).  Respects
        the :mod:`~repro.relational.caching` ablation switch.
        """
        try:
            return self._views[key]
        except KeyError:
            if not caching.view_caching_enabled():
                return compute()
            value = self._views[key] = compute()
            return value

    # -- construction helpers ------------------------------------------------

    @classmethod
    def from_dicts(
        cls,
        name: str,
        rows: Iterable[Mapping[str, Value]],
        attributes: Sequence[str] | None = None,
    ) -> "Relation":
        """Build a relation from dict rows.

        If *attributes* is omitted it is the union of keys across rows;
        missing keys in individual rows become NULL.
        """
        rows = list(rows)
        if attributes is None:
            seen: dict[str, None] = {}
            for row in rows:
                for key in row:
                    seen.setdefault(key, None)
            attributes = tuple(seen)
            if not attributes:
                raise SchemaError(
                    f"cannot infer attributes for relation {name!r} from empty rows"
                )
        aligned = [tuple(row.get(attr, NULL) for attr in attributes) for row in rows]
        return cls(name, attributes, aligned)

    # -- basic accessors -----------------------------------------------------

    @property
    def name(self) -> str:
        """Relation name."""
        return self._name

    @property
    def attributes(self) -> tuple[str, ...]:
        """Attribute names in canonical (sorted) order."""
        return self._attributes

    @property
    def attribute_set(self) -> frozenset[str]:
        """Attribute names as a set (memoised)."""
        return self.cached_view(
            "attribute_set", lambda: frozenset(self._attributes)
        )

    @property
    def rows(self) -> frozenset[Row]:
        """Rows as tuples aligned with :attr:`attributes`."""
        return self._rows

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self._attributes)

    @property
    def cardinality(self) -> int:
        """Number of tuples."""
        return len(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row: object) -> bool:
        return row in self._rows

    def has_attribute(self, attr: str) -> bool:
        """Whether *attr* is one of this relation's attributes."""
        return attr in self._index

    def attribute_position(self, attr: str) -> int:
        """Index of *attr* in :attr:`attributes` (raises if unknown)."""
        try:
            return self._index[attr]
        except KeyError:
            raise UnknownAttributeError(attr, self._name, self._attributes) from None

    def value(self, row: Row, attr: str) -> Value:
        """The value of *attr* in *row* (a row of this relation)."""
        return row[self.attribute_position(attr)]

    def column(self, attr: str) -> tuple[Value, ...]:
        """All values of *attr*, in deterministic sorted-row order."""
        pos = self.attribute_position(attr)
        return tuple(row[pos] for row in self.sorted_rows())

    def column_values(self, attr: str, include_null: bool = False) -> frozenset[Value]:
        """The set of values appearing in column *attr* (memoised)."""
        pos = self.attribute_position(attr)

        def compute() -> frozenset[Value]:
            values = (row[pos] for row in self._rows)
            if include_null:
                return frozenset(values)
            return frozenset(v for v in values if not is_null(v))

        return self.cached_view(("column_values", attr, include_null), compute)

    def column_texts(self, attr: str) -> frozenset[str]:
        """The text forms of the non-NULL values in column *attr* (memoised).

        This is the view the search proposal rules compare against target
        token sets (promotions, partitions, dereferences): values are
        rendered with :func:`~repro.relational.types.value_to_text`.
        """
        self.attribute_position(attr)  # raise early with a precise error

        def compute() -> frozenset[str]:
            return frozenset(
                value_to_text(v) for v in self.column_values(attr)
            )

        return self.cached_view(("column_texts", attr), compute)

    def value_set(self, include_null: bool = False) -> frozenset[Value]:
        """The set of all data values appearing anywhere (memoised)."""

        def compute() -> frozenset[Value]:
            values: set[Value] = set()
            for row in self._rows:
                for v in row:
                    if include_null or not is_null(v):
                        values.add(v)
            return frozenset(values)

        return self.cached_view(("value_set", include_null), compute)

    @property
    def has_nulls(self) -> bool:
        """Whether any tuple contains a NULL (memoised)."""
        return self.cached_view(
            "has_nulls",
            lambda: any(any(is_null(v) for v in row) for row in self._rows),
        )

    def sorted_rows(self) -> list[Row]:
        """Rows in a deterministic total order (for display and TNF ids).

        Returns a fresh list each call; the underlying ordering is computed
        once and cached (see :meth:`sorted_rows_view`).
        """
        return list(self.sorted_rows_view())

    def sorted_rows_view(self) -> tuple[Row, ...]:
        """The memoised, immutable form of :meth:`sorted_rows`."""
        return self.cached_view(
            "sorted_rows",
            lambda: tuple(
                sorted(
                    self._rows,
                    key=lambda row: tuple(value_sort_key(v) for v in row),
                )
            ),
        )

    def iter_dicts(self) -> Iterator[dict[str, Value]]:
        """Iterate rows as attribute->value dicts in deterministic order."""
        for row in self.sorted_rows():
            yield dict(zip(self._attributes, row))

    # -- schema-preserving derivations ----------------------------------------

    def renamed(self, new_name: str) -> "Relation":
        """A copy of this relation under a new name."""
        return Relation(new_name, self._attributes, self._rows)

    def rename_attribute(self, old: str, new: str) -> "Relation":
        """A copy with attribute *old* renamed to *new*."""
        pos = self.attribute_position(old)
        if new in self._index and new != old:
            raise SchemaError(
                f"cannot rename {old!r} to {new!r}: attribute already exists "
                f"in relation {self._name!r}"
            )
        attrs = list(self._attributes)
        attrs[pos] = new
        return Relation(self._name, attrs, self._rows)

    def project(self, attrs: Sequence[str]) -> "Relation":
        """Projection onto *attrs* (set semantics: duplicate rows collapse)."""
        positions = [self.attribute_position(a) for a in attrs]
        rows = {tuple(row[p] for p in positions) for row in self._rows}
        return Relation(self._name, attrs, rows)

    def drop_attribute(self, attr: str) -> "Relation":
        """Projection dropping a single attribute (the FIRA π̄ operator)."""
        self.attribute_position(attr)  # raise early with a precise error
        remaining = [a for a in self._attributes if a != attr]
        if not remaining:
            raise SchemaError(
                f"cannot drop {attr!r}: it is the only attribute of {self._name!r}"
            )
        return self.project(remaining)

    def extend(self, attr: str, compute: Callable[[dict[str, Value]], Value]) -> "Relation":
        """Append a computed column named *attr*.

        *compute* receives each row as a dict and returns the new value.
        """
        if attr in self._index:
            raise SchemaError(
                f"cannot extend {self._name!r} with {attr!r}: attribute already exists"
            )
        new_rows = []
        for row in self._rows:
            row_dict = dict(zip(self._attributes, row))
            new_rows.append(row + (check_value(compute(row_dict)),))
        return Relation(self._name, self._attributes + (attr,), new_rows)

    def with_rows(self, rows: Iterable[Row]) -> "Relation":
        """A copy with the given canonical-order rows replacing the current ones."""
        return Relation(self._name, self._attributes, rows)

    def filter_rows(self, predicate: Callable[[dict[str, Value]], bool]) -> "Relation":
        """Relational selection: keep rows whose dict satisfies *predicate*."""
        kept = [
            row
            for row in self._rows
            if predicate(dict(zip(self._attributes, row)))
        ]
        return Relation(self._name, self._attributes, kept)

    # -- comparisons -----------------------------------------------------------

    def contains(self, other: "Relation") -> bool:
        """Instance containment used by the search goal test.

        True iff *other*'s attributes are a subset of ours and every tuple of
        *other* appears in our projection onto those attributes.  Names are
        not compared here (the database-level check compares names).
        """
        if not other.attribute_set <= self.attribute_set:
            return False

        def compute() -> frozenset[Row]:
            positions = [self.attribute_position(a) for a in other.attributes]
            return frozenset(
                tuple(row[p] for p in positions) for row in self._rows
            )

        projected = self.cached_view(("projection", other.attributes), compute)
        return other.rows <= projected

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return (
            self._hash == other._hash
            and self._name == other._name
            and self._attributes == other._attributes
            and self._rows == other._rows
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return (
            f"Relation({self._name!r}, attributes={list(self._attributes)}, "
            f"rows={self.cardinality})"
        )

    def to_text(self) -> str:
        """Human-readable fixed-width rendering (used by examples)."""
        headers = list(self._attributes)
        body = [[value_to_text(v) or "NULL" if is_null(v) else value_to_text(v) for v in row]
                for row in self.sorted_rows()]
        widths = [len(h) for h in headers]
        for row in body:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [f"{self._name}:"]
        lines.append("  " + "  ".join(h.ljust(w) for h, w in zip(headers, widths)))
        lines.append("  " + "  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  " + "  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)
