"""Process-global value intern pool for the columnar kernel.

Every atomic value that enters a :class:`~repro.relational.relation.Relation`
is interned to a small integer **token id**; relations store rows as tuples
of token ids, so row hashing, equality, deduplication and containment all
become integer-tuple operations, and the per-token derived data consulted by
the hot loops (text rendering, text token id, deterministic sort key, NULL
flag) is computed exactly once per distinct value per process.

The pool is keyed by the raw value under Python equality, which makes the
token mapping *equality-faithful*: two values are assigned the same token
iff they compare equal.  This mirrors the legacy string-backed kernel, whose
``frozenset`` row storage already conflated ``==``-equal values (``1``,
``True`` and ``1.0`` hash equal and collapse to whichever was inserted
first); here the surviving representative is the first-seen value
process-wide rather than per-frozenset.  Equality, hashing and containment
semantics are therefore identical to the legacy path by construction.

Token ids are **process-local** and must never cross a process boundary:
pickled relations ship their value rows (see ``Relation.__getstate__``) and
re-intern lazily on the receiving side.

The parallel lists (:data:`VALUES`, :data:`TEXTS`, :data:`TEXT_IDS`,
:data:`SORT_KEYS`) are append-only and never rebound, so hot loops may
import them directly and index at C speed.  ``TEXT_IDS[tok]`` is itself a
token id — the token of the *text rendering* of ``tok``'s value (texts are
strings, and strings are values) — which lets text-level set comparisons
(e.g. "does this column mention a missing target attribute name?") run as
integer set intersections.
"""

from __future__ import annotations

from typing import Iterable, Optional

from .types import NULL, Value, check_value, is_null, value_sort_key, value_to_text

#: value -> token id (keyed by raw value under Python ``==``)
_pool: dict = {}

#: token id -> canonical (first-seen) value
VALUES: list = []

#: token id -> text rendering (``value_to_text`` of the canonical value)
TEXTS: list = []

#: token id -> token id of the text rendering (always a str token)
TEXT_IDS: list = []

#: token id -> deterministic sort key (``value_sort_key``)
SORT_KEYS: list = []


def _add(value: Value) -> int:
    token = len(VALUES)
    VALUES.append(value)
    text = value_to_text(value)
    TEXTS.append(text)
    SORT_KEYS.append(value_sort_key(value))
    _pool[value] = token
    # after the pool entry, so interning a str (whose text is itself)
    # terminates immediately instead of recursing
    TEXT_IDS.append(intern_value(text))
    return token


def intern_value(value: object) -> int:
    """The token id for *value*, interning it on first sight.

    ``None`` is coerced to :data:`~repro.relational.types.NULL` and invalid
    value types raise ``TypeError``, exactly as
    :func:`~repro.relational.types.check_value` does.
    """
    try:
        token = _pool.get(value)
    except TypeError:
        check_value(value)  # raises the canonical invalid-value TypeError
        raise
    if token is not None:
        return token
    checked = check_value(value)
    if checked is not value:  # None -> NULL coercion may already be pooled
        token = _pool.get(checked)
        if token is not None:
            return token
    return _add(checked)


def probe_value(value: object) -> Optional[int]:
    """The token id for *value* if it was ever interned, else None.

    Lookup-only: membership tests use this so that probing a relation for a
    never-seen value does not grow the pool.
    """
    try:
        return _pool.get(value)
    except TypeError:
        return None


def intern_row(row: Iterable[object]) -> tuple:
    """Intern every value of *row*, returning the token-id tuple."""
    return tuple(intern_value(v) for v in row)


def token_value(token: int) -> Value:
    """The canonical value of *token*."""
    return VALUES[token]


def token_text(token: int) -> str:
    """The text rendering of *token*'s value."""
    return TEXTS[token]


def token_text_id(token: int) -> int:
    """The token id of *token*'s text rendering."""
    return TEXT_IDS[token]


def pool_size() -> int:
    """Number of distinct values interned so far (diagnostics)."""
    return len(VALUES)


#: the token id of the NULL sentinel — interned first, so always 0
NULL_TOKEN: int = intern_value(NULL)

assert NULL_TOKEN == 0 and is_null(VALUES[NULL_TOKEN])
