"""Command-line interface for TUPELO.

Critical instances live as directories of CSV files (one relation per
file, header row = attributes), mirroring the paper's GUI inputs (Fig. 3).

Commands::

    python -m repro discover (--source DIR --target DIR | --synthetic N)
        [--algorithm rbfs] [--heuristic h1] [--k K] [--budget N]
        [--correspondence "Total<-add(Cost,Fee)"]...
        [--portfolio] [--show-matching] [--show-sql]
        [--output FILE] [--trace FILE] [--progress] [--store DIR]

    python -m repro experiments --sizes 1 2 3 4
        [--algorithm ida]... [--heuristic h1] [--budget N]
        [--workers N] [--trace-dir DIR] [--output FILE]

    python -m repro apply --expression FILE --source DIR [--output DIR]

    python -m repro execute --expression FILE --source DIR
        [--backend auto|minisql|sqlite|duckdb] [--deadline SECONDS]
        [--show-sql] [--output DIR]

    python -m repro tnf --source DIR

    python -m repro trace (--source DIR --target DIR | --synthetic N)
        --output FILE [--algorithm ida] [--heuristic h0] [--budget N]

    python -m repro trace --inspect FILE

    python -m repro trace --merge PATH... [--output FILE]

    python -m repro trace --collapse FILE [--output FILE]

    python -m repro profile [--synthetic N] [--algorithm ida]
        [--heuristic h0] [--budget N] [--top N] [--sort cumulative]
        [--kernel legacy|columnar|columnar+delta] [--spans]

    python -m repro store info --path DIR

    python -m repro store gc --path DIR

    python -m repro info

Exit codes: 0 success, 1 no mapping found, 2 usage / input error,
3 wall-clock deadline exceeded (``--deadline``; partial statistics were
still reported).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .errors import TupeloError
from .fira import compile_expression, extract_matching, parse_expression
from .heuristics.registry import EXTENSION_HEURISTIC_NAMES, HEURISTIC_NAMES
from .obs import (
    EVENT_TYPES,
    SCHEMA_VERSION,
    SINK_NAMES,
    JsonlSink,
    Tracer,
    load_trace,
    run_profile,
    validate_events,
)
from .relational import load_database_dir, save_database, tnf_encode
from .search import ALGORITHM_NAMES, SearchConfig, discover_mapping
from .search.result import STATUS_DEADLINE_EXCEEDED
from .semantics import builtin_registry, decode_correspondence

#: process exit code for a deadline-cut search (distinct from "not found")
EXIT_DEADLINE_EXCEEDED = 3


def _parse_correspondence_arg(text: str):
    """Accept both the TNF encoding and the bare 'Out<-fn(A,B)' form."""
    if not text.startswith("λ:"):
        text = "λ:" + text
    return decode_correspondence(text)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TUPELO — data mapping as search (EDBT 2006 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    discover = sub.add_parser(
        "discover", help="discover a mapping between two critical instances"
    )
    discover.add_argument("--source", default=None, help="source CSV directory")
    discover.add_argument("--target", default=None, help="target CSV directory")
    discover.add_argument(
        "--synthetic",
        type=int,
        default=None,
        metavar="N",
        help="discover on the size-N synthetic matching workload instead of "
        "CSV instances",
    )
    discover.add_argument(
        "--algorithm", default="rbfs", choices=sorted(ALGORITHM_NAMES)
    )
    discover.add_argument(
        "--portfolio",
        action="store_true",
        help="race the algorithm portfolio across processes instead of "
        "running a single algorithm (--algorithm is ignored)",
    )
    discover.add_argument(
        "--heuristic",
        default="h1",
        choices=sorted(HEURISTIC_NAMES + EXTENSION_HEURISTIC_NAMES),
    )
    discover.add_argument("--k", type=float, default=None, help="scaling constant")
    discover.add_argument(
        "--budget", type=int, default=1_000_000, help="max states examined"
    )
    discover.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock deadline; a cut run reports partial stats and "
        f"exits {EXIT_DEADLINE_EXCEEDED}",
    )
    discover.add_argument(
        "--correspondence",
        action="append",
        default=[],
        metavar="OUT<-FN(IN,..)",
        help="declare a complex semantic correspondence (repeatable)",
    )
    discover.add_argument(
        "--show-matching",
        action="store_true",
        help="also print the induced schema matching",
    )
    discover.add_argument(
        "--show-sql", action="store_true", help="also print the SQL compilation"
    )
    discover.add_argument(
        "--execute",
        action="store_true",
        help="also execute the discovered mapping on an SQL backend and "
        "print the resulting instance",
    )
    discover.add_argument(
        "--backend",
        default="auto",
        metavar="NAME",
        help="execution backend for --execute (auto picks the fastest "
        "faithful engine available; see `repro info` for the list)",
    )
    discover.add_argument(
        "--output", default=None, help="write the expression to this file"
    )
    discover.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="record a JSONL event trace of the search to FILE",
    )
    discover.add_argument(
        "--progress",
        action="store_true",
        help="stream a live progress line (examined/depth/frontier/best-f) "
        "to stderr while the search runs",
    )
    discover.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="warm-start store directory: serve memoised mappings "
        "(re-verified against this pair), pre-seed search caches from "
        "prior runs, and record this run's results for the next one "
        "(disable globally with REPRO_WARM_STORE=0)",
    )

    experiments = sub.add_parser(
        "experiments",
        help="run the synthetic matching sweep (Fig. 5), optionally in parallel",
    )
    experiments.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        required=True,
        metavar="N",
        help="synthetic schema sizes to measure",
    )
    experiments.add_argument(
        "--algorithm",
        action="append",
        default=[],
        choices=sorted(ALGORITHM_NAMES),
        help="algorithm(s) to sweep (repeatable; default: ida)",
    )
    experiments.add_argument(
        "--heuristic",
        default="h1",
        choices=sorted(HEURISTIC_NAMES + EXTENSION_HEURISTIC_NAMES),
    )
    experiments.add_argument("--k", type=float, default=None, help="scaling constant")
    experiments.add_argument(
        "--budget", type=int, default=1_000_000, help="max states per point"
    )
    experiments.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-point wall-clock deadline; cut points land with status "
        "deadline_exceeded and partial counters",
    )
    experiments.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="shard points across N worker processes (0 = serial)",
    )
    experiments.add_argument(
        "--start-method",
        default=None,
        choices=["fork", "forkserver", "spawn"],
        help="multiprocessing start method (default: best available)",
    )
    experiments.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help="persist a JSONL trace per measured point under DIR",
    )
    experiments.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="shared warm-start store for every measured point "
        "(serial and parallel sweeps alike)",
    )
    experiments.add_argument(
        "--output", default=None, metavar="FILE", help="archive the series as JSON"
    )

    apply_cmd = sub.add_parser(
        "apply", help="execute a mapping expression on a source instance"
    )
    apply_cmd.add_argument("--expression", required=True, help="expression file")
    apply_cmd.add_argument("--source", required=True, help="source CSV directory")
    apply_cmd.add_argument(
        "--output", default=None, help="write result CSVs here (default: print)"
    )

    execute = sub.add_parser(
        "execute",
        help="execute a mapping expression on an SQL backend "
        "(compile + run + read back)",
    )
    execute.add_argument("--expression", required=True, help="expression file")
    execute.add_argument("--source", required=True, help="source CSV directory")
    execute.add_argument(
        "--backend",
        default="auto",
        metavar="NAME",
        help="backend name or 'auto' (fastest faithful engine available; "
        "see `repro info` for the list)",
    )
    execute.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock deadline for script execution; a cut run exits "
        f"{EXIT_DEADLINE_EXCEEDED}",
    )
    execute.add_argument(
        "--show-sql",
        action="store_true",
        help="also print the compiled script (in the backend's dialect)",
    )
    execute.add_argument(
        "--output", default=None, help="write result CSVs here (default: print)"
    )

    tnf = sub.add_parser("tnf", help="print the TNF encoding of an instance")
    tnf.add_argument("--source", required=True, help="source CSV directory")

    trace = sub.add_parser(
        "trace",
        help="record a JSONL search trace and pretty-print its run profile",
    )
    trace.add_argument("--source", default=None, help="source CSV directory")
    trace.add_argument("--target", default=None, help="target CSV directory")
    trace.add_argument(
        "--synthetic",
        type=int,
        default=None,
        metavar="N",
        help="trace the size-N synthetic matching workload (Fig. 5) instead "
        "of CSV instances",
    )
    trace.add_argument(
        "--algorithm", default="ida", choices=sorted(ALGORITHM_NAMES)
    )
    trace.add_argument(
        "--heuristic",
        default="h0",
        choices=sorted(HEURISTIC_NAMES + EXTENSION_HEURISTIC_NAMES),
    )
    trace.add_argument("--k", type=float, default=None, help="scaling constant")
    trace.add_argument(
        "--budget", type=int, default=1_000_000, help="max states examined"
    )
    trace.add_argument(
        "--output", default=None, metavar="FILE", help="JSONL trace destination"
    )
    trace.add_argument(
        "--inspect",
        default=None,
        metavar="FILE",
        help="skip searching: validate an existing trace and print its profile",
    )
    trace.add_argument(
        "--merge",
        nargs="+",
        default=None,
        metavar="PATH",
        help="merge per-worker / per-arm JSONL traces (files or directories "
        "of *.jsonl) into one causally-ordered timeline; with --output, "
        "write the merged trace there",
    )
    trace.add_argument(
        "--collapse",
        default=None,
        metavar="FILE",
        help="export an existing trace's span tree as collapsed stacks "
        "(pipe to flamegraph.pl or import into speedscope)",
    )

    profile = sub.add_parser(
        "profile",
        help="cProfile a synthetic discovery and print the top time sinks",
    )
    profile.add_argument(
        "--synthetic",
        type=int,
        default=5,
        metavar="N",
        help="synthetic schema size to profile (Fig. 5 x-axis; default 5)",
    )
    profile.add_argument(
        "--algorithm", default="ida", choices=sorted(ALGORITHM_NAMES)
    )
    profile.add_argument(
        "--heuristic",
        default="h0",
        choices=sorted(HEURISTIC_NAMES + EXTENSION_HEURISTIC_NAMES),
    )
    profile.add_argument(
        "--budget", type=int, default=1_000_000, help="max states examined"
    )
    profile.add_argument(
        "--top", type=int, default=20, help="profile rows to print (default 20)"
    )
    profile.add_argument(
        "--sort",
        default="cumulative",
        choices=["cumulative", "tottime"],
        help="profile ordering (default cumulative)",
    )
    profile.add_argument(
        "--kernel",
        default=None,
        choices=["legacy", "columnar", "columnar+delta"],
        help="pin the kernel mode for the run (default: current switches)",
    )
    profile.add_argument(
        "--cold",
        action="store_true",
        help="skip the unprofiled warm-up run (includes one-time costs)",
    )
    profile.add_argument(
        "--spans",
        action="store_true",
        help="profile by discovery-phase spans (self/total time tree) "
        "instead of cProfile function rows",
    )

    store = sub.add_parser(
        "store", help="inspect or compact a warm-start store directory"
    )
    store.add_argument(
        "action",
        choices=["info", "gc"],
        help="info: summarise the memo and spills; gc: compact the memo "
        "and drop the oldest spills over the bound",
    )
    store.add_argument(
        "--path", required=True, metavar="DIR", help="store directory"
    )
    store.add_argument(
        "--max-entries",
        type=int,
        default=None,
        metavar="N",
        help="gc: keep at most N memoised pairs (default: store default)",
    )

    sub.add_parser("info", help="list available algorithms and heuristics")
    return parser


def _open_trace_sink(path: str) -> JsonlSink | int:
    """Open a JSONL sink, or print a clean error and return exit code 2."""
    try:
        return JsonlSink(path)
    except OSError as err:
        print(f"error: cannot write trace to {path}: {err}", file=sys.stderr)
        return 2


def cmd_discover(args: argparse.Namespace) -> int:
    """Run mapping discovery between two CSV-directory instances."""
    if args.synthetic is not None:
        if args.synthetic < 1:
            print("error: --synthetic needs a size >= 1", file=sys.stderr)
            return 2
        from .workloads import matching_pair

        pair = matching_pair(args.synthetic)
        source, target = pair.source, pair.target
    elif args.source and args.target:
        source = load_database_dir(args.source)
        target = load_database_dir(args.target)
    else:
        print(
            "error: discover needs either --synthetic N or --source and --target",
            file=sys.stderr,
        )
        return 2
    correspondences = [
        _parse_correspondence_arg(text) for text in args.correspondence
    ]
    if args.execute or args.backend != "auto":
        # Validate the backend name up front so a typo fails before the
        # search spends its budget (UnknownBackendError -> exit 2).
        from .backends import get_backend

        if args.backend != "auto":
            get_backend(args.backend)
    if args.portfolio:
        if args.progress:
            print(
                "note: --progress applies to single-algorithm runs only "
                "(portfolio arms run in separate processes)",
                file=sys.stderr,
            )
        return _discover_portfolio(args, source, target, correspondences)
    tracer = None
    if args.trace:
        sink = _open_trace_sink(args.trace)
        if isinstance(sink, int):
            return sink
        tracer = Tracer(sink)
    progress = None
    if args.progress:
        from .obs import ConsoleProgress

        progress = ConsoleProgress()
    try:
        result = discover_mapping(
            source,
            target,
            algorithm=args.algorithm,
            heuristic=args.heuristic,
            k=args.k,
            correspondences=correspondences,
            config=SearchConfig(
                max_states=args.budget, deadline_seconds=args.deadline
            ),
            tracer=tracer,
            progress=progress,
            store=args.store,
        )
    finally:
        if tracer is not None:
            tracer.close()
    print(
        f"status: {result.status}  "
        f"(states examined: {result.stats.states_examined}, "
        f"{result.stats.elapsed * 1000:.1f} ms)"
    )
    if result.served_from_store:
        print(f"served from warm-start store {args.store} (verified)")
    if args.trace:
        print(f"trace written to {args.trace}")
    if result.deadline_exceeded:
        print(
            f"deadline of {args.deadline:g}s cut the search at frontier "
            f"depth {result.frontier_depth}",
            file=sys.stderr,
        )
        return EXIT_DEADLINE_EXCEEDED
    if not result.found:
        return 1
    print()
    print(result.expression if not result.expression.is_identity else "(identity)")
    if args.show_matching:
        print()
        print("# induced schema matching")
        print(extract_matching(result.expression))
    if args.show_sql:
        print()
        print(compile_expression(result.expression, source, builtin_registry()))
    if args.execute:
        from .backends import execute_mapping

        executed = execute_mapping(
            result.expression,
            source,
            backend=args.backend,
            registry=builtin_registry(),
        )
        print()
        print(
            f"executed on backend {executed.backend} "
            f"({executed.script.statement_count} statement(s), "
            f"{executed.execute_seconds * 1000:.1f} ms)"
        )
        print()
        print(executed.database.to_text())
    if args.output:
        Path(args.output).write_text(str(result.expression) + "\n")
        print(f"\nexpression written to {args.output}")
    return 0


def _discover_portfolio(args, source, target, correspondences) -> int:
    """Race the algorithm portfolio for one discovery task."""
    from .parallel import discover_mapping_portfolio, race_table

    race = discover_mapping_portfolio(
        source,
        target,
        heuristic=args.heuristic,
        k=args.k,
        correspondences=correspondences,
        config=SearchConfig(
            max_states=args.budget, deadline_seconds=args.deadline
        ),
        trace_dir=args.trace,
        store=args.store,
    )
    print(race_table(race))
    if args.trace:
        print(f"per-arm traces written under {args.trace}")
    if not race.found:
        if (
            race.result is not None
            and race.result.status == STATUS_DEADLINE_EXCEEDED
        ):
            return EXIT_DEADLINE_EXCEEDED
        return 1
    result = race.result
    print()
    print(result.expression if not result.expression.is_identity else "(identity)")
    if args.show_matching:
        print()
        print("# induced schema matching")
        print(extract_matching(result.expression))
    if args.show_sql:
        print()
        print(compile_expression(result.expression, source, builtin_registry()))
    if args.output:
        Path(args.output).write_text(str(result.expression) + "\n")
        print(f"\nexpression written to {args.output}")
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    """Run the synthetic matching sweep, optionally across worker processes."""
    from .experiments import (
        cache_summary_table,
        run_matching_series,
        save_series,
        series_table,
        trace_index_table,
    )

    algorithms = args.algorithm or ["ida"]
    series_list = [
        run_matching_series(
            algorithm,
            args.heuristic,
            args.sizes,
            budget=args.budget,
            k=args.k,
            trace_dir=args.trace_dir,
            workers=args.workers,
            start_method=args.start_method,
            deadline_seconds=args.deadline,
            store=args.store,
        )
        for algorithm in algorithms
    ]
    print(series_table(series_list, x_label="n"))
    print()
    print(cache_summary_table(series_list))
    if args.trace_dir:
        print()
        print(trace_index_table(series_list))
    if args.output:
        save_series(
            args.output,
            series_list,
            metadata={
                "experiment": "matching",
                "sizes": list(args.sizes),
                "budget": args.budget,
                "workers": args.workers,
                "deadline": args.deadline,
            },
        )
        print(f"\nseries archived to {args.output}")
    return 0


def cmd_apply(args: argparse.Namespace) -> int:
    """Execute a stored mapping expression on a source instance."""
    expression = parse_expression(Path(args.expression).read_text())
    source = load_database_dir(args.source)
    mapped = expression.apply(source, builtin_registry())
    if args.output:
        paths = save_database(mapped, args.output)
        print(f"wrote {len(paths)} relation(s) to {args.output}")
    else:
        print(mapped.to_text())
    return 0


def cmd_execute(args: argparse.Namespace) -> int:
    """Run a stored mapping expression through an SQL execution backend."""
    from .backends import execute_mapping
    from .errors import SearchDeadlineExceeded

    expression = parse_expression(Path(args.expression).read_text())
    source = load_database_dir(args.source)
    try:
        result = execute_mapping(
            expression,
            source,
            backend=args.backend,
            registry=builtin_registry(),
            deadline=args.deadline,
        )
    except SearchDeadlineExceeded as err:
        print(
            f"deadline of {args.deadline:g}s cut execution after "
            f"{err.states_examined} statement(s)",
            file=sys.stderr,
        )
        return EXIT_DEADLINE_EXCEEDED
    print(
        f"backend: {result.backend}  "
        f"({result.script.statement_count} statement(s), "
        f"compile {result.compile_seconds * 1000:.1f} ms, "
        f"execute {result.execute_seconds * 1000:.1f} ms)"
    )
    if args.show_sql:
        print()
        print(result.script.text)
    if args.output:
        paths = save_database(result.database, args.output)
        print(f"wrote {len(paths)} relation(s) to {args.output}")
    else:
        print()
        print(result.database.to_text())
    return 0


def cmd_tnf(args: argparse.Namespace) -> int:
    """Print the TNF encoding of an instance."""
    source = load_database_dir(args.source)
    print(tnf_encode(source).to_text())
    return 0


def _trace_merge(args: argparse.Namespace) -> int:
    """Merge per-process traces into one causally-ordered timeline."""
    from .obs import discover_trace_files, merge_report, merge_traces, write_merged

    paths: list[Path] = []
    for target in args.merge:
        paths.extend(discover_trace_files(target))
    if not paths:
        print(
            f"error: --merge found no .jsonl trace files in {args.merge}",
            file=sys.stderr,
        )
        return 2
    try:
        merged = merge_traces(paths)
    except OSError as err:
        print(f"error: cannot read trace: {err}", file=sys.stderr)
        return 2
    print(merge_report(merged))
    if args.output:
        try:
            write_merged(merged, args.output)
        except OSError as err:
            print(
                f"error: cannot write merged trace to {args.output}: {err}",
                file=sys.stderr,
            )
            return 2
        print(f"\nmerged trace written to {args.output}")
    return 0


def _trace_collapse(args: argparse.Namespace) -> int:
    """Export a trace's span tree in collapsed-stack format."""
    from .obs import build_span_tree, collapsed_stacks

    try:
        events = load_trace(args.collapse)
    except OSError as err:
        print(f"error: cannot read trace {args.collapse}: {err}", file=sys.stderr)
        return 2
    roots = build_span_tree(events)
    if not roots:
        print(
            f"error: {args.collapse}: no span events to collapse "
            "(trace predates the span subsystem?)",
            file=sys.stderr,
        )
        return 2
    lines = collapsed_stacks(roots)
    if args.output:
        Path(args.output).write_text("\n".join(lines) + "\n")
        print(f"{len(lines)} collapsed stack(s) written to {args.output}")
    else:
        for line in lines:
            print(line)
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Record a JSONL search trace (or inspect/merge/collapse existing ones)."""
    if args.merge:
        return _trace_merge(args)
    if args.collapse:
        return _trace_collapse(args)
    if args.inspect:
        try:
            events = load_trace(args.inspect)
        except OSError as err:
            print(
                f"error: cannot read trace {args.inspect}: {err}",
                file=sys.stderr,
            )
            return 2
        if not events:
            print(
                f"error: {args.inspect}: trace holds no run events "
                "(header-only file — did the traced run start?)",
                file=sys.stderr,
            )
            return 2
        print(f"{args.inspect}: {len(events)} event(s), schema v{SCHEMA_VERSION}")
        print()
        print(run_profile(events))
        return 0

    if args.synthetic is not None:
        if args.synthetic < 1:
            print("error: --synthetic needs a size >= 1", file=sys.stderr)
            return 2
        from .workloads import matching_pair

        pair = matching_pair(args.synthetic)
        source, target = pair.source, pair.target
        workload = f"synthetic matching n={args.synthetic}"
    elif args.source and args.target:
        source = load_database_dir(args.source)
        target = load_database_dir(args.target)
        workload = f"{args.source} -> {args.target}"
    else:
        print(
            "error: trace needs either --synthetic N or --source and --target",
            file=sys.stderr,
        )
        return 2
    if not args.output:
        print("error: trace needs --output FILE to record into", file=sys.stderr)
        return 2

    sink = _open_trace_sink(args.output)
    if isinstance(sink, int):
        return sink
    with Tracer(sink) as tracer:
        result = discover_mapping(
            source,
            target,
            algorithm=args.algorithm,
            heuristic=args.heuristic,
            k=args.k,
            config=SearchConfig(max_states=args.budget),
            simplify=False,
            tracer=tracer,
        )
    events = load_trace(args.output)
    validate_events(events)
    print(f"traced {workload}: {len(events)} event(s) -> {args.output}")
    print()
    print(run_profile(events))
    return 0 if result.found else 1


def cmd_profile(args: argparse.Namespace) -> int:
    """cProfile one synthetic discovery and print the distilled sinks."""
    if args.synthetic < 1:
        print("error: --synthetic needs a size >= 1", file=sys.stderr)
        return 2
    if args.kernel is not None:
        from .relational import caching

        caching.set_columnar_kernel(args.kernel != "legacy")
        caching.set_incremental_heuristics(args.kernel == "columnar+delta")
    if args.spans:
        from .experiments import span_profile_point

        span_profile = span_profile_point(
            n=args.synthetic,
            algorithm=args.algorithm,
            heuristic=args.heuristic,
            budget=args.budget,
            warm=not args.cold,
        )
        print(span_profile.table())
        return 0
    from .experiments import profile_point

    profile = profile_point(
        n=args.synthetic,
        algorithm=args.algorithm,
        heuristic=args.heuristic,
        budget=args.budget,
        top=args.top,
        sort=args.sort,
        warm=not args.cold,
    )
    print(profile.table())
    return 0


def cmd_store(args: argparse.Namespace) -> int:
    """Inspect (``info``) or compact (``gc``) a warm-start store directory."""
    from .store import open_store

    store = open_store(args.path)
    if args.action == "info":
        info = store.info()
        memo = info["memo"]
        print(f"store: {info['path']}  (enabled: {info['enabled']})")
        print(
            f"memo: {memo['entries']} entr(ies) across {memo['fingerprints']} "
            f"pair(s), {memo['bytes']} byte(s), version {memo['version']}"
            + (f", {memo['corrupt_lines']} corrupt line(s) skipped"
               if memo["corrupt_lines"] else "")
        )
        print(
            f"spills: {info['spills']} file(s), {info['spill_bytes']} byte(s) "
            f"(bounds: {info['max_spills']} spills, "
            f"{info['max_spill_states']} states each)"
        )
        return 0
    if args.max_entries is not None and args.max_entries < 1:
        print("error: --max-entries needs N >= 1", file=sys.stderr)
        return 2
    if args.max_entries is not None:
        store.memo.max_entries = args.max_entries
    summary = store.gc()
    memo = summary["memo"]
    print(
        f"memo: kept {memo['kept']} entr(ies), dropped {memo['dropped']} "
        f"({memo['bytes_before']} -> {memo['bytes_after']} bytes)"
    )
    print(
        f"spills: kept {summary['spills_kept']}, "
        f"dropped {summary['spills_dropped']}"
    )
    return 0


def cmd_info(_args: argparse.Namespace) -> int:
    """List available algorithms, heuristics, and telemetry capabilities."""
    print("algorithms: " + ", ".join(ALGORITHM_NAMES))
    print("heuristics: " + ", ".join(HEURISTIC_NAMES))
    print("extensions: " + ", ".join(EXTENSION_HEURISTIC_NAMES))
    print(f"telemetry: structured tracing (schema v{SCHEMA_VERSION}), "
          "metrics registry (counters/gauges/histograms)")
    from .relational import caching
    from .serialize import FAST_JSON_BACKEND

    print(f"kernel: {caching.kernel_mode()} (REPRO_COLUMNAR_KERNEL, "
          f"REPRO_INCREMENTAL_HEURISTICS), json backend: {FAST_JSON_BACKEND}")
    print("sinks: " + ", ".join(SINK_NAMES))
    print("events: " + ", ".join(EVENT_TYPES))
    from .backends import backend_names, get_backend

    backends = []
    for name in backend_names():
        backend = get_backend(name)
        reason = backend.availability()
        backends.append(name if reason is None else f"{name} (unavailable: {reason})")
    print("backends: " + ", ".join(backends))
    from .parallel import (
        available_start_methods,
        cpu_count,
        default_workers,
        preferred_start_method,
    )

    methods = ", ".join(
        f"{m}*" if m == preferred_start_method() else m
        for m in available_start_methods()
    )
    print(
        f"parallel: {cpu_count()} cpu(s), default workers {default_workers()}, "
        f"start methods: {methods} (* = preferred)"
    )
    from .search.config import SearchConfig
    from .store import (
        DEFAULT_MAX_ENTRIES,
        DEFAULT_MAX_SPILL_STATES,
        DEFAULT_MAX_SPILLS,
        warm_store_enabled,
    )

    print(
        "caches: transposition + goal + heuristic LRU "
        f"(capacity {SearchConfig().cache_capacity or 'unbounded'}; "
        "per-cache hit/miss/eviction counters in experiment reports)"
    )
    print(
        f"store: warm-start {'enabled' if warm_store_enabled() else 'DISABLED'} "
        f"(REPRO_WARM_STORE; defaults: {DEFAULT_MAX_ENTRIES} memo pairs, "
        f"{DEFAULT_MAX_SPILLS} spills x {DEFAULT_MAX_SPILL_STATES} states)"
    )
    return 0


_COMMANDS = {
    "discover": cmd_discover,
    "experiments": cmd_experiments,
    "apply": cmd_apply,
    "execute": cmd_execute,
    "tnf": cmd_tnf,
    "trace": cmd_trace,
    "profile": cmd_profile,
    "store": cmd_store,
    "info": cmd_info,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except TupeloError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
