"""Exception hierarchy for the TUPELO reproduction.

Every error raised by this package derives from :class:`TupeloError`, so
callers can catch a single base class.  Sub-hierarchies mirror the package
layout: relational-model errors, transformation-language errors, semantic
function errors, and search errors.
"""

from __future__ import annotations


class TupeloError(Exception):
    """Base class for all errors raised by this package."""


# ---------------------------------------------------------------------------
# Relational substrate
# ---------------------------------------------------------------------------


class RelationalError(TupeloError):
    """Base class for errors in the relational data model."""


class SchemaError(RelationalError):
    """A relation or database was constructed with an invalid schema.

    Examples: duplicate attribute names, empty relation name, tuples whose
    arity does not match the schema.
    """


class UnknownRelationError(RelationalError):
    """An operation referenced a relation name absent from the database."""

    def __init__(self, name: str, available: tuple[str, ...] = ()) -> None:
        self.name = name
        self.available = tuple(available)
        message = f"unknown relation {name!r}"
        if available:
            message += f" (available: {', '.join(sorted(self.available))})"
        super().__init__(message)


class UnknownAttributeError(RelationalError):
    """An operation referenced an attribute absent from a relation."""

    def __init__(self, attribute: str, relation: str, available: tuple[str, ...] = ()) -> None:
        self.attribute = attribute
        self.relation = relation
        self.available = tuple(available)
        message = f"unknown attribute {attribute!r} in relation {relation!r}"
        if available:
            message += f" (available: {', '.join(sorted(self.available))})"
        super().__init__(message)


class TNFError(RelationalError):
    """A Tuple Normal Form table was malformed or could not be decoded."""


class SqlRenderingError(RelationalError):
    """A value or name has no faithful SQL rendering in the target dialect.

    Raised by :mod:`repro.relational.dialect` for empty identifiers, NUL
    bytes, non-finite floats, and boolean literals on engines without a
    BOOLEAN storage class — cases where emitting SQL anyway would either
    fail to parse or silently change meaning.
    """


# ---------------------------------------------------------------------------
# Transformation language L
# ---------------------------------------------------------------------------


class TransformError(TupeloError):
    """Base class for errors applying operators of the language L."""


class OperatorApplicationError(TransformError):
    """An operator could not be applied to the given database."""


class NameCollisionError(TransformError):
    """An operator would create a relation or attribute that already exists."""


class ExpressionParseError(TransformError):
    """A textual mapping expression could not be parsed."""

    def __init__(self, message: str, text: str = "", position: int | None = None) -> None:
        self.text = text
        self.position = position
        if position is not None:
            message = f"{message} at position {position}"
        super().__init__(message)


# ---------------------------------------------------------------------------
# Complex semantic functions
# ---------------------------------------------------------------------------


class SemanticError(TupeloError):
    """Base class for errors involving complex semantic functions."""


class UnknownFunctionError(SemanticError):
    """A mapping expression referenced a function missing from the registry."""

    def __init__(self, name: str) -> None:
        self.name = name
        super().__init__(f"unknown semantic function {name!r}")


class SignatureError(SemanticError):
    """A semantic function was applied to arguments of the wrong arity/type."""


class CorrespondenceError(SemanticError):
    """A complex correspondence declaration was malformed."""


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------


class ObservabilityError(TupeloError):
    """Base class for errors in the telemetry layer (:mod:`repro.obs`)."""


class TraceFormatError(ObservabilityError):
    """A persisted trace was malformed or stamped an unsupported schema.

    Raised by :func:`repro.obs.load_trace` and the event validators; old
    traces written under a different :data:`repro.obs.SCHEMA_VERSION` fail
    loudly with this instead of silently mis-replaying.
    """


class TraceWriteError(ObservabilityError):
    """A sink failed to persist an event record (disk full, fd revoked).

    :class:`repro.obs.sinks.JsonlSink` wraps the underlying ``OSError`` in
    this type after closing its file handle, so a failed sink is never left
    half-open.  The tracer catches it, degrades to a
    :class:`~repro.obs.sinks.NullSink`, and lets the search finish — trace
    loss is a warning (``resilience.trace_write_errors``), not an abort.
    """

    def __init__(self, path: str, cause: str) -> None:
        self.path = str(path)
        self.cause = cause
        super().__init__(f"cannot write trace to {path}: {cause}")


# ---------------------------------------------------------------------------
# Execution backends
# ---------------------------------------------------------------------------


class BackendError(TupeloError):
    """Base class for errors in the SQL execution backends (:mod:`repro.backends`)."""


class UnknownBackendError(BackendError):
    """A backend name was not found in the registry."""

    def __init__(self, name: str, available: tuple[str, ...] = ()) -> None:
        self.name = name
        self.available = tuple(available)
        message = f"unknown backend {name!r}"
        if available:
            message += f" (known: {', '.join(sorted(self.available))})"
        super().__init__(message)


class BackendUnavailableError(BackendError):
    """A backend's engine is not importable in this environment.

    The DuckDB backend raises this when the ``duckdb`` module is missing;
    callers going through the ``auto`` front door never see it (unavailable
    backends are skipped), only explicit ``backend="duckdb"`` requests do.
    """

    def __init__(self, name: str, reason: str) -> None:
        self.backend = name
        self.reason = reason
        super().__init__(f"backend {name!r} is unavailable: {reason}")


class BackendUnsupportedError(BackendError):
    """A backend cannot faithfully execute this expression/instance pair.

    Example: SQLite has no BOOLEAN storage class, so bool-carrying
    instances cannot round-trip bit-identically through it.  The ``auto``
    front door skips unsupporting backends; explicit requests fail with
    the reason.
    """

    def __init__(self, name: str, reason: str) -> None:
        self.backend = name
        self.reason = reason
        super().__init__(f"backend {name!r} cannot execute this mapping: {reason}")


class BackendExecutionError(BackendError):
    """The engine rejected or failed a compiled statement mid-script."""

    def __init__(self, name: str, statement: str, cause: str) -> None:
        self.backend = name
        self.statement = statement
        self.cause = cause
        super().__init__(
            f"backend {name!r} failed executing {statement!r}: {cause}"
        )


# ---------------------------------------------------------------------------
# Search
# ---------------------------------------------------------------------------


class SearchError(TupeloError):
    """Base class for errors raised by the search engine."""


class UnknownHeuristicError(SearchError):
    """A heuristic name was not found in the registry."""

    def __init__(self, name: str, available: tuple[str, ...] = ()) -> None:
        self.name = name
        self.available = tuple(available)
        message = f"unknown heuristic {name!r}"
        if available:
            message += f" (available: {', '.join(sorted(self.available))})"
        super().__init__(message)


class UnknownAlgorithmError(SearchError):
    """A search algorithm name was not found in the registry."""

    def __init__(self, name: str, available: tuple[str, ...] = ()) -> None:
        self.name = name
        self.available = tuple(available)
        message = f"unknown search algorithm {name!r}"
        if available:
            message += f" (available: {', '.join(sorted(self.available))})"
        super().__init__(message)


class SearchBudgetExceeded(SearchError):
    """The search examined more states than its configured budget allows."""

    def __init__(self, budget: int, states_examined: int) -> None:
        self.budget = budget
        self.states_examined = states_examined
        super().__init__(
            f"search budget of {budget} states exceeded ({states_examined} examined)"
        )


class SearchDeadlineExceeded(SearchError):
    """The search ran past its wall-clock deadline (cooperatively detected).

    Unlike :class:`SearchBudgetExceeded` (the paper's state-count cut), the
    deadline bounds *time*: the kernel checks ``perf_counter`` periodically
    and aborts with partial :class:`~repro.search.stats.SearchStats` intact.
    """

    def __init__(
        self, deadline: float, elapsed: float, states_examined: int
    ) -> None:
        self.deadline = deadline
        self.elapsed = elapsed
        self.states_examined = states_examined
        super().__init__(
            f"search deadline of {deadline:g}s exceeded after {elapsed:.3f}s "
            f"({states_examined} states examined)"
        )


class SearchCancelled(SearchError):
    """The search observed its :class:`~repro.search.cancel.CancelToken` set.

    Cooperative: raised from the kernel's periodic limit checks, so the
    stack unwinds cleanly and partial statistics survive.
    """

    def __init__(self, states_examined: int = 0) -> None:
        self.states_examined = states_examined
        super().__init__(
            f"search cancelled after {states_examined} states examined"
        )


class MappingNotFound(SearchError):
    """The search space was exhausted without reaching the target instance."""
