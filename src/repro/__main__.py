"""``python -m repro`` — the TUPELO command-line interface."""

import sys

from .cli import main

sys.exit(main())
