"""Experiment 3 workload: complex semantic mapping domains (§5.3).

The paper evaluates complex (many-to-one) semantic mapping discovery on the
Inventory (10 complex mappings) and Real Estate II (12 complex mappings)
data sets of the Illinois Semantic Integration Archive, measuring states
examined as the number of declared complex functions grows from 1 to 8.
The archive is not redistributable; this module builds two synthetic
domains with the same shape: a realistic source schema, a list of declared
complex correspondences (sums, products, unit/currency/date conversions,
concatenations, lookups), and a target built by actually applying the first
``n`` functions — so the Rosetta Stone principle holds by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..relational.database import Database
from ..relational.relation import Relation
from ..relational.types import Value
from ..semantics.correspondence import Correspondence
from ..semantics.functions import FunctionRegistry, builtin_registry, make_lookup

#: complex-function counts measured by the paper (x-axis of Fig. 9)
PAPER_FUNCTION_COUNTS: tuple[int, ...] = tuple(range(1, 9))


@dataclass(frozen=True)
class SemanticDomain:
    """A complex-semantic-mapping domain.

    Attributes:
        name: domain name.
        source: source critical instance.
        target_relation: name of the target schema's relation.
        anchor_attributes: source attributes carried into the target
            unchanged (the identity part of the mapping).  The Archive-style
            target schemas carry a direct correspondence for every source
            attribute, so by default this is the whole source schema — which
            also means search needs no renames, isolating the λ-placement
            cost the paper plots in Fig. 9.
        correspondences: the declared complex mappings, in the order the
            experiment enables them.
        registry: function registry containing every referenced function
            (built-ins plus domain lookups).
    """

    name: str
    source: Database
    target_relation: str
    anchor_attributes: tuple[str, ...]
    correspondences: tuple[Correspondence, ...]
    registry: FunctionRegistry

    @property
    def max_functions(self) -> int:
        """Total number of declared complex mappings."""
        return len(self.correspondences)

    def task(self, n_functions: int) -> "SemanticTask":
        """The mapping task using the first *n_functions* correspondences.

        The target instance is built by applying those functions to the
        source rows (plus the anchor attributes), so the task is solvable
        by ``n_functions`` λ applications.

        Raises:
            ValueError: if *n_functions* is out of range.
        """
        if not 1 <= n_functions <= self.max_functions:
            raise ValueError(
                f"n_functions must be in [1, {self.max_functions}], "
                f"got {n_functions}"
            )
        active = self.correspondences[:n_functions]
        source_rel = self.source.relations[0]
        attributes = list(self.anchor_attributes) + [c.output for c in active]
        rows: list[list[Value]] = []
        for row in source_rel.iter_dicts():
            out = [row[a] for a in self.anchor_attributes]
            for corr in active:
                fn = self.registry.get(corr.function)
                out.append(fn.apply(*(row[a] for a in corr.inputs)))
            rows.append(out)
        target = Database.single(Relation(self.target_relation, attributes, rows))
        return SemanticTask(
            domain=self.name,
            n_functions=n_functions,
            source=self.source,
            target=target,
            correspondences=active,
            registry=self.registry,
        )

    def tasks(
        self, counts: tuple[int, ...] = PAPER_FUNCTION_COUNTS
    ) -> list["SemanticTask"]:
        """The Fig. 9 series of tasks (function counts clamped to range)."""
        return [self.task(n) for n in counts if n <= self.max_functions]


@dataclass(frozen=True)
class SemanticTask:
    """One complex-mapping discovery task (fixed function count)."""

    domain: str
    n_functions: int
    source: Database
    target: Database
    correspondences: tuple[Correspondence, ...]
    registry: FunctionRegistry


def inventory_domain() -> SemanticDomain:
    """The Inventory stand-in: 10 complex mappings over a product table."""
    source = Database.from_dict(
        {
            "Products": [
                {
                    "ProductID": "P-1001",
                    "ProductName": "AnvilSmall",
                    "Category": "Hardware",
                    "UnitsInStock": 12,
                    "UnitsOnOrder": 4,
                    "ReorderLevel": 20,
                    "UnitPrice": 4.5,
                    "WeightLb": 3,
                    "SupplierName": "AcmeCorp",
                    "SupplierCity": "Duluth",
                    "ListedDate": "3/15/2005",
                },
                {
                    "ProductID": "P-2002",
                    "ProductName": "RocketSkates",
                    "Category": "Sporting",
                    "UnitsInStock": 7,
                    "UnitsOnOrder": 11,
                    "ReorderLevel": 10,
                    "UnitPrice": 99.25,
                    "WeightLb": 8,
                    "SupplierName": "RoadRunner",
                    "SupplierCity": "Tucson",
                    "ListedDate": "11/2/2004",
                },
            ]
        }
    )
    registry = builtin_registry()
    registry.register(
        make_lookup(
            "inv_category_code",
            {"Hardware": "HW", "Sporting": "SP"},
            "category name to inventory category code",
        )
    )
    registry.register(
        make_lookup(
            "inv_sku",
            {"P-1001": "SKU-88-ANV", "P-2002": "SKU-91-SKT"},
            "product id to warehouse SKU",
        )
    )
    correspondences = (
        Correspondence("multiply", ("UnitsInStock", "UnitPrice"), "TotalValue"),
        Correspondence("add", ("UnitsInStock", "UnitsOnOrder"), "AvailableUnits"),
        Correspondence("lb_to_kg", ("WeightLb",), "WeightKg"),
        Correspondence("usd_to_eur", ("UnitPrice",), "PriceEur"),
        Correspondence("upper", ("ProductName",), "NameUpper"),
        Correspondence("concat", ("SupplierName", "SupplierCity"), "Supplier"),
        Correspondence("date_mdy_to_iso", ("ListedDate",), "ListedIso"),
        Correspondence("subtract", ("ReorderLevel", "UnitsInStock"), "RestockGap"),
        Correspondence("inv_category_code", ("Category",), "CategoryCode"),
        Correspondence("inv_sku", ("ProductID",), "Sku"),
    )
    return SemanticDomain(
        name="Inventory",
        source=source,
        target_relation="Products",
        anchor_attributes=tuple(source.relations[0].attributes),
        correspondences=correspondences,
        registry=registry,
    )


def real_estate_domain() -> SemanticDomain:
    """The Real Estate II stand-in: 12 complex mappings over listings."""
    source = Database.from_dict(
        {
            "Listings": [
                {
                    "MlsId": "MLS-7741",
                    "Street": "414 Fess Ave",
                    "City": "Bloomington",
                    "Zip": "47401",
                    "Price": 180000,
                    "Tax1": 1450,
                    "Tax2": 310,
                    "AreaSqft": 1600,
                    "LotSqft": 7200,
                    "AgentFirst": "June",
                    "AgentLast": "Carter",
                    "ListDate": "6/1/2005",
                    "CommissionRate": 0.03,
                    "FullBaths": 2,
                    "HalfBaths": 1,
                },
                {
                    "MlsId": "MLS-9102",
                    "Street": "77 Kirkwood St",
                    "City": "Nashville",
                    "Zip": "47448",
                    "Price": 255000,
                    "Tax1": 2125,
                    "Tax2": 480,
                    "AreaSqft": 2250,
                    "LotSqft": 10500,
                    "AgentFirst": "Omar",
                    "AgentLast": "Reyes",
                    "ListDate": "9/20/2005",
                    "CommissionRate": 0.025,
                    "FullBaths": 3,
                    "HalfBaths": 0,
                },
            ]
        }
    )
    registry = builtin_registry()
    registry.register(
        make_lookup(
            "re2_region",
            {"47401": "Monroe", "47448": "Brown"},
            "zip code to county/region",
        )
    )
    correspondences = (
        Correspondence("add", ("Tax1", "Tax2"), "TotalTax"),
        Correspondence("sqft_to_sqm", ("AreaSqft",), "AreaSqm"),
        Correspondence("usd_to_eur", ("Price",), "PriceEur"),
        Correspondence("full_name", ("AgentFirst", "AgentLast"), "Agent"),
        Correspondence("concat_comma", ("Street", "City"), "Address"),
        Correspondence("date_mdy_to_iso", ("ListDate",), "ListedIso"),
        Correspondence("add", ("FullBaths", "HalfBaths"), "Baths"),
        Correspondence("multiply", ("Price", "CommissionRate"), "Commission"),
        Correspondence("sqft_to_sqm", ("LotSqft",), "LotSqm"),
        Correspondence("upper", ("City",), "CityUpper"),
        Correspondence("re2_region", ("Zip",), "Region"),
        Correspondence("divide", ("Price", "AreaSqft"), "PricePerSqft"),
    )
    return SemanticDomain(
        name="RealEstateII",
        source=source,
        target_relation="Listings",
        anchor_attributes=tuple(source.relations[0].attributes),
        correspondences=correspondences,
        registry=registry,
    )


def semantic_domains() -> dict[str, SemanticDomain]:
    """Both Experiment-3 domains, keyed by name."""
    domains = (inventory_domain(), real_estate_domain())
    return {domain.name: domain for domain in domains}
