"""Experiment 1 workload: synthetic schema matching pairs (§5.1).

"Pairs of schemas with n = 2..32 attributes were synthetically generated
and populated with one tuple each illustrating correspondences between each
schema" — source attributes ``A1..An``, target attributes ``B1..Bn``, and
the shared Rosetta-Stone tuple ``(a1, ..., an)``.  The correct mapping is
the attribute matching ``Ai ↔ Bi`` (n attribute renames).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..fira.expression import MappingExpression
from ..fira.renames import RenameAttribute
from ..relational.database import Database
from ..relational.relation import Relation

#: schema sizes evaluated in the paper
PAPER_SIZES: tuple[int, ...] = tuple(range(2, 33))


@dataclass(frozen=True)
class MatchingPair:
    """One synthetic matching task.

    Attributes:
        size: number of attributes n.
        source: instance over ``A1..An``.
        target: the same tuple over ``B1..Bn``.
    """

    size: int
    source: Database
    target: Database

    def reference_expression(self) -> MappingExpression:
        """The intended solution: rename ``Ai -> Bi`` for every i.

        Renames are emitted in the search's canonical (sorted) order so the
        expression matches what symmetry-broken search discovers.
        """
        pairs = sorted(
            (source_attribute(i), target_attribute(i))
            for i in range(1, self.size + 1)
        )
        return MappingExpression(
            RenameAttribute("R", old, new) for old, new in pairs
        )


def source_attribute(i: int) -> str:
    """The i-th source attribute name (1-based)."""
    return f"A{i:02d}"


def target_attribute(i: int) -> str:
    """The i-th target attribute name (1-based)."""
    return f"B{i:02d}"


def shared_value(i: int) -> str:
    """The i-th shared critical-instance value (1-based)."""
    return f"a{i:02d}"


def matching_pair(size: int, relation_name: str = "R") -> MatchingPair:
    """Build the synthetic matching pair with *size* attributes.

    Attribute indices are zero-padded so lexicographic order equals numeric
    order — keeping the task's difficulty uniform across sizes (attribute
    exploration order is deterministic either way).

    Raises:
        ValueError: if ``size < 1``.
    """
    if size < 1:
        raise ValueError(f"schema size must be >= 1, got {size}")
    indices = range(1, size + 1)
    values = [shared_value(i) for i in indices]
    source = Database.single(
        Relation(relation_name, [source_attribute(i) for i in indices], [values])
    )
    target = Database.single(
        Relation(relation_name, [target_attribute(i) for i in indices], [values])
    )
    return MatchingPair(size=size, source=source, target=target)


def matching_pairs(sizes: tuple[int, ...] = PAPER_SIZES) -> list[MatchingPair]:
    """The full Experiment-1 series."""
    return [matching_pair(size) for size in sizes]
