"""Experiment 2 workload: deep-web query-interface schemas (§5.2).

The paper uses the Books / Automobiles / Music / Movies ("BAMM") schemas of
the UIUC Web Integration Repository: 55, 55, 49, and 52 deep-web query
interfaces with 1–8 attributes each.  That repository is not redistributable
(and this environment is offline), so this module generates a synthetic
stand-in with the same structure:

* each domain has a vocabulary of *concepts* (title, author, price, ...),
  each with a canonical attribute name, a set of real-world synonyms, and a
  shared critical-instance value (the Rosetta Stone principle: all schemas
  of a domain illustrate the same entity);
* each query interface draws 1–8 concepts and names each with one of its
  synonyms; every interface has its own relation name;
* the *fixed* schema per domain (the mapping source, as in the paper's
  setup) carries every concept under its canonical name.

Mapping the fixed schema onto an interface therefore requires one relation
rename plus one attribute rename per synonym-named concept — exactly the
schema-matching workload of the paper.  Generation is deterministic per
(domain, seed).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..relational.database import Database
from ..relational.relation import Relation

#: per-domain schema counts reported by the paper
DOMAIN_SIZES: dict[str, int] = {
    "Books": 55,
    "Automobiles": 55,
    "Music": 49,
    "Movies": 52,
}

DOMAIN_NAMES: tuple[str, ...] = tuple(DOMAIN_SIZES)

#: attributes per interface, as in the BAMM dataset
MIN_ATTRIBUTES = 1
MAX_ATTRIBUTES = 8

#: probability an interface uses a concept's canonical name.  Real query
#: interfaces overwhelmingly share the standard names ("Title", "Author",
#: ...), which is what keeps the paper's per-task mapping depth — and hence
#: its reported per-domain averages (tens to ~1000 states even for blind
#: search) — small.
CANONICAL_NAME_WEIGHT = 0.7


@dataclass(frozen=True)
class Concept:
    """One queryable concept of a domain.

    Attributes:
        canonical: attribute name used by the fixed source schema.
        synonyms: alternative names real interfaces use (canonical included).
        value: the concept's shared critical-instance value.
    """

    canonical: str
    synonyms: tuple[str, ...]
    value: str

    def __post_init__(self) -> None:
        if self.canonical not in self.synonyms:
            object.__setattr__(self, "synonyms", (self.canonical,) + self.synonyms)


_VOCABULARIES: dict[str, tuple[Concept, ...]] = {
    "Books": (
        Concept("Title", ("BookTitle", "TitleKeyword", "Name"), "Middlemarch"),
        Concept("Author", ("Writer", "AuthorName", "By"), "GeorgeEliot"),
        Concept("ISBN", ("ISBNNumber", "ISBN13"), "9780140620962"),
        Concept("Publisher", ("Press", "PublisherName"), "Penguin"),
        Concept("Price", ("Cost", "MaxPrice"), "12.99usd"),
        Concept("Format", ("Binding", "BookFormat"), "Paperback"),
        Concept("Subject", ("Category", "Genre", "Topic"), "Fiction"),
        Concept("Year", ("PubYear", "PublicationYear"), "y1871"),
    ),
    "Automobiles": (
        Concept("Make", ("Brand", "Manufacturer"), "Saab"),
        Concept("Model", ("ModelName", "CarModel"), "NineThree"),
        Concept("Year", ("ModelYear", "YearOfMake"), "y2003"),
        Concept("Price", ("MaxPrice", "AskingPrice", "Cost"), "8500usd"),
        Concept("Mileage", ("Miles", "Odometer"), "72000mi"),
        Concept("Color", ("ExteriorColor", "Colour"), "Graphite"),
        Concept("BodyStyle", ("Body", "VehicleType"), "Sedan"),
        Concept("ZipCode", ("Zip", "PostalCode"), "47401"),
    ),
    "Music": (
        Concept("Artist", ("Band", "ArtistName", "Performer"), "Lucinda"),
        Concept("Album", ("AlbumTitle", "RecordTitle"), "Essence"),
        Concept("Song", ("Track", "SongTitle", "TrackName"), "BlueSide"),
        Concept("Genre", ("Style", "MusicCategory"), "Americana"),
        Concept("Label", ("RecordLabel", "Imprint"), "LostHighway"),
        Concept("Year", ("ReleaseYear", "Released"), "y2001"),
        Concept("Format", ("MediaFormat", "Media"), "CD"),
        Concept("Price", ("Cost", "MaxPrice"), "9.99usd"),
    ),
    "Movies": (
        Concept("Title", ("MovieTitle", "FilmTitle", "Name"), "Metropolis"),
        Concept("Director", ("DirectedBy", "FilmMaker"), "FritzLang"),
        Concept("Actor", ("Star", "CastMember", "Starring"), "BrigitteHelm"),
        Concept("Genre", ("Category", "FilmGenre"), "SciFi"),
        Concept("Year", ("ReleaseYear", "Released"), "y1927"),
        Concept("Rating", ("MPAARating", "Rated"), "NotRated"),
        Concept("Format", ("MediaFormat", "DiscFormat"), "DVD"),
        Concept("Studio", ("Distributor", "StudioName"), "UFA"),
    ),
}


@dataclass(frozen=True)
class BammTask:
    """One mapping task: fixed domain source schema -> one interface.

    ``gold`` records the ground-truth correspondence as (canonical source
    attribute, interface attribute) pairs — the paper evaluates each
    algorithm/heuristic "on generating the correct matchings", which this
    field makes checkable (see ``experiments.quality``).
    """

    domain: str
    interface_id: int
    source: Database
    target: Database
    gold: tuple[tuple[str, str], ...] = ()

    @property
    def target_size(self) -> int:
        """Number of attributes in the target interface."""
        return self.target.relations[0].arity

    @property
    def gold_renames(self) -> tuple[tuple[str, str], ...]:
        """The gold pairs that require an attribute rename (name differs)."""
        return tuple(
            (canonical, used) for canonical, used in self.gold
            if canonical != used
        )


@dataclass(frozen=True)
class BammDomain:
    """One generated domain: the fixed source plus every interface target."""

    name: str
    source: Database
    tasks: tuple[BammTask, ...]

    def __len__(self) -> int:
        return len(self.tasks)


def domain_concepts(domain: str) -> tuple[Concept, ...]:
    """The concept vocabulary of *domain*.

    Raises:
        KeyError: for unknown domain names.
    """
    return _VOCABULARIES[domain]


def fixed_source(domain: str) -> Database:
    """The fixed source schema: every concept under its canonical name."""
    concepts = domain_concepts(domain)
    return Database.single(
        Relation(
            domain,
            [c.canonical for c in concepts],
            [[c.value for c in concepts]],
        )
    )


def _pick_name(concept: Concept, rng: random.Random) -> str:
    """Pick the attribute name an interface uses for *concept*."""
    if rng.random() < CANONICAL_NAME_WEIGHT or len(concept.synonyms) == 1:
        return concept.canonical
    alternatives = [s for s in concept.synonyms if s != concept.canonical]
    return rng.choice(alternatives)


def _interface(
    domain: str, interface_id: int, rng: random.Random
) -> tuple[Database, tuple[tuple[str, str], ...]]:
    """Generate one deep-web query interface for *domain* plus its gold
    (canonical, used-name) correspondence pairs."""
    concepts = domain_concepts(domain)
    size = rng.randint(MIN_ATTRIBUTES, min(MAX_ATTRIBUTES, len(concepts)))
    chosen = rng.sample(list(concepts), size)
    attributes = [_pick_name(concept, rng) for concept in chosen]
    values = [concept.value for concept in chosen]
    name = f"{domain}Q{interface_id:02d}"
    gold = tuple(
        sorted((concept.canonical, used) for concept, used in zip(chosen, attributes))
    )
    return Database.single(Relation(name, attributes, [values])), gold


def bamm_domain(domain: str, seed: int = 2006) -> BammDomain:
    """Generate one full BAMM domain (deterministic for a given seed)."""
    if domain not in DOMAIN_SIZES:
        raise KeyError(
            f"unknown BAMM domain {domain!r}; expected one of {DOMAIN_NAMES}"
        )
    rng = random.Random((seed, domain).__repr__())
    source = fixed_source(domain)
    tasks = []
    for i in range(1, DOMAIN_SIZES[domain] + 1):
        target, gold = _interface(domain, i, rng)
        tasks.append(
            BammTask(
                domain=domain,
                interface_id=i,
                source=source,
                target=target,
                gold=gold,
            )
        )
    tasks = tuple(tasks)
    return BammDomain(name=domain, source=source, tasks=tasks)


def bamm_corpus(seed: int = 2006) -> dict[str, BammDomain]:
    """All four BAMM domains."""
    return {name: bamm_domain(name, seed) for name in DOMAIN_NAMES}
