"""The Fig. 1 airline databases and their reference mappings.

Three natural representations of the same flight-price information:

* **FlightsA** — one ``Flights`` table; routes are *columns* (ATL29, ORD17)
  holding base costs, plus a per-carrier agent ``Fee``;
* **FlightsB** — one ``Prices`` table; routes are *data* in a ``Route``
  column with ``Cost`` and ``AgentFee``;
* **FlightsC** — one table *per carrier* (AirEast, JetWest) with ``Route``,
  ``BaseCost``, and ``TotalCost = BaseCost + AgentFee``.

Mapping between them exercises everything TUPELO handles: schema matching
(ρ), dynamic data-metadata restructuring (↑, ℘, µ, π̄), and a complex
semantic mapping (λ: TotalCost).
"""

from __future__ import annotations

from ..fira.combine import Merge
from ..fira.dynamic import Partition, Promote
from ..fira.expression import MappingExpression
from ..fira.renames import RenameAttribute, RenameRelation
from ..fira.semantic import ApplyFunction
from ..fira.structure import DropAttribute
from ..relational.database import Database
from ..semantics.correspondence import Correspondence
from ..semantics.functions import FunctionRegistry, builtin_registry


def flights_a() -> Database:
    """FlightsA: routes as columns, fee per carrier."""
    return Database.from_dict(
        {
            "Flights": [
                {"Carrier": "AirEast", "Fee": 15, "ATL29": 100, "ORD17": 110},
                {"Carrier": "JetWest", "Fee": 16, "ATL29": 200, "ORD17": 220},
            ]
        }
    )


def flights_b() -> Database:
    """FlightsB: fully flat — routes, costs, and fees as data."""
    return Database.from_dict(
        {
            "Prices": [
                {"Carrier": "AirEast", "Route": "ATL29", "Cost": 100, "AgentFee": 15},
                {"Carrier": "JetWest", "Route": "ATL29", "Cost": 200, "AgentFee": 16},
                {"Carrier": "AirEast", "Route": "ORD17", "Cost": 110, "AgentFee": 15},
                {"Carrier": "JetWest", "Route": "ORD17", "Cost": 220, "AgentFee": 16},
            ]
        }
    )


def flights_c() -> Database:
    """FlightsC: carriers as relation names, TotalCost = Cost + AgentFee."""
    return Database.from_dict(
        {
            "AirEast": [
                {"Route": "ATL29", "BaseCost": 100, "TotalCost": 115},
                {"Route": "ORD17", "BaseCost": 110, "TotalCost": 125},
            ],
            "JetWest": [
                {"Route": "ATL29", "BaseCost": 200, "TotalCost": 216},
                {"Route": "ORD17", "BaseCost": 220, "TotalCost": 236},
            ],
        }
    )


def b_to_a_expression() -> MappingExpression:
    """Example 2 of the paper: the mapping from FlightsB to FlightsA.

    ``R1 := ↑Cost/Route(FlightsB); R2 := π̄Route(π̄Cost(R1));
    R3 := µCarrier(R2); R4 := ρatt AgentFee→Fee(ρrel Prices→Flights(R3))``
    """
    return MappingExpression(
        [
            Promote("Prices", "Route", "Cost"),
            DropAttribute("Prices", "Route"),
            DropAttribute("Prices", "Cost"),
            Merge("Prices", "Carrier"),
            RenameAttribute("Prices", "AgentFee", "Fee"),
            RenameRelation("Prices", "Flights"),
        ]
    )


def b_to_c_expression() -> MappingExpression:
    """A reference mapping from FlightsB to FlightsC.

    Applies the complex function f3 (TotalCost = Cost + AgentFee, Example 5),
    renames Cost to BaseCost, partitions by Carrier, and drops the
    partitioned-away and source-only columns.
    """
    return MappingExpression(
        [
            ApplyFunction("Prices", "add", ("Cost", "AgentFee"), "TotalCost"),
            RenameAttribute("Prices", "Cost", "BaseCost"),
            Partition("Prices", "Carrier"),
            DropAttribute("AirEast", "Carrier"),
            DropAttribute("AirEast", "AgentFee"),
            DropAttribute("JetWest", "Carrier"),
            DropAttribute("JetWest", "AgentFee"),
        ]
    )


def total_cost_correspondence() -> Correspondence:
    """The complex correspondence f3: TotalCost <- add(Cost, AgentFee)."""
    return Correspondence(function="add", inputs=("Cost", "AgentFee"), output="TotalCost")


def flights_registry() -> FunctionRegistry:
    """The function registry used by the Flights scenarios (built-ins)."""
    return builtin_registry()
