"""Search results."""

from __future__ import annotations

from dataclasses import dataclass

from ..fira.expression import MappingExpression
from .stats import SearchStats

#: terminal statuses a search run can report
STATUS_FOUND = "found"
STATUS_NOT_FOUND = "not_found"
STATUS_BUDGET_EXCEEDED = "budget_exceeded"
STATUS_DEADLINE_EXCEEDED = "deadline_exceeded"
STATUS_CANCELLED = "cancelled"

#: every status a SearchResult may carry
STATUS_NAMES: tuple[str, ...] = (
    STATUS_FOUND,
    STATUS_NOT_FOUND,
    STATUS_BUDGET_EXCEEDED,
    STATUS_DEADLINE_EXCEEDED,
    STATUS_CANCELLED,
)


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one mapping-discovery run.

    Attributes:
        status: ``"found"``, ``"not_found"`` (space exhausted),
            ``"budget_exceeded"`` (state budget hit, like the paper's 10^6
            plot cut-offs), ``"deadline_exceeded"`` (wall-clock deadline
            hit; stats carry the partial run), or ``"cancelled"`` (the
            caller's :class:`~repro.search.cancel.CancelToken` was set).
        expression: the discovered mapping expression (empty pipeline if the
            source already contains the target; None unless found).
        stats: search counters; ``stats.states_examined`` is the paper's
            reported metric.
        algorithm: algorithm registry name (``"ida"``, ``"rbfs"``, ...).
        heuristic: heuristic registry name (``"h1"``, ``"cosine"``, ...).
        served_from_store: True when the expression came out of a
            :class:`~repro.store.WarmStartStore` mapping memo (verified
            against this very pair) instead of a live search; stats then
            report zero states examined.  Algorithm/heuristic still name
            the *request*, since that is what the memo matched on.
    """

    status: str
    expression: MappingExpression | None
    stats: SearchStats
    algorithm: str
    heuristic: str
    served_from_store: bool = False

    @property
    def found(self) -> bool:
        """Whether a mapping expression was discovered."""
        return self.status == STATUS_FOUND

    @property
    def deadline_exceeded(self) -> bool:
        """Whether the run was cut by its wall-clock deadline."""
        return self.status == STATUS_DEADLINE_EXCEEDED

    @property
    def cancelled(self) -> bool:
        """Whether the run was cancelled via a :class:`CancelToken`."""
        return self.status == STATUS_CANCELLED

    @property
    def frontier_depth(self) -> int:
        """Deepest ``g`` the run reached — the best frontier-depth summary
        a partial (deadline-cut / cancelled) run can report."""
        return self.stats.max_depth

    @property
    def states_examined(self) -> int:
        """Shorthand for the paper's performance metric."""
        return self.stats.states_examined

    @property
    def cache_hits(self) -> int:
        """Total memo-cache hits (transposition + goal + heuristic)."""
        return self.stats.cache_hits

    @property
    def cache_misses(self) -> int:
        """Total memo-cache misses (transposition + goal + heuristic)."""
        return self.stats.cache_misses

    @property
    def cache_evictions(self) -> int:
        """Total memo-cache LRU evictions."""
        return self.stats.cache_evictions

    def __repr__(self) -> str:
        size = len(self.expression) if self.expression is not None else "-"
        return (
            f"SearchResult({self.status}, ops={size}, "
            f"states={self.stats.states_examined}, "
            f"algorithm={self.algorithm!r}, heuristic={self.heuristic!r})"
        )
