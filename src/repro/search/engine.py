"""The TUPELO facade: discover data mappings between critical instances.

This is the public entry point mirroring Fig. 2 of the paper: inputs are
critical instances of the source and target schemas plus declarations of
any complex semantic correspondences; output is an executable mapping
expression in L together with search statistics.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..errors import (
    MappingNotFound,
    SearchBudgetExceeded,
    UnknownAlgorithmError,
)
from ..fira.base import Operator
from ..fira.expression import MappingExpression
from ..heuristics.base import Heuristic
from ..heuristics.registry import make_heuristic
from ..relational.database import Database
from ..semantics.correspondence import Correspondence
from ..semantics.functions import FunctionRegistry
from .beam import beam_search
from .best_first import a_star, greedy
from .config import SearchConfig
from .ida import ida_star
from .problem import MappingProblem
from .result import (
    STATUS_BUDGET_EXCEEDED,
    STATUS_FOUND,
    STATUS_NOT_FOUND,
    SearchResult,
)
from .rbfs import rbfs
from .simplify import simplify_expression
from .stats import SearchStats

SearchAlgorithm = Callable[[MappingProblem, Heuristic, SearchStats], "list[Operator]"]

#: algorithm registry; "ida" and "rbfs" are the paper's, the rest ablations
ALGORITHMS: dict[str, SearchAlgorithm] = {
    "ida": ida_star,
    "rbfs": rbfs,
    "astar": a_star,
    "greedy": greedy,
    "beam": beam_search,
}

ALGORITHM_NAMES: tuple[str, ...] = tuple(ALGORITHMS)


def discover_mapping(
    source: Database,
    target: Database,
    algorithm: str = "rbfs",
    heuristic: str = "h1",
    k: float | None = None,
    correspondences: Sequence[Correspondence] = (),
    registry: FunctionRegistry | None = None,
    config: SearchConfig | None = None,
    simplify: bool = True,
) -> SearchResult:
    """Discover a mapping expression from *source* to *target*.

    Args:
        source: source critical instance.
        target: target critical instance (same information, per the
            Rosetta Stone principle).
        algorithm: one of :data:`ALGORITHM_NAMES`.
        heuristic: one of :data:`~repro.heuristics.HEURISTIC_NAMES`.
        k: scaling-constant override for the scaled heuristics; defaults to
            the paper's tuned value for the chosen algorithm.
        correspondences: declared complex semantic correspondences (§4).
        registry: semantic function registry (defaults to the built-ins).
        config: search configuration (budget, pruning, operator families).
        simplify: post-process the discovered path, deleting operators not
            needed for the goal (does not affect the search statistics).

    Returns:
        A :class:`SearchResult`; check ``result.found`` / ``result.status``.
    """
    algorithm = algorithm.lower()
    if algorithm not in ALGORITHMS:
        raise UnknownAlgorithmError(algorithm, ALGORITHM_NAMES)
    problem = MappingProblem(
        source, target, correspondences=correspondences, registry=registry, config=config
    )
    h = make_heuristic(heuristic, target, k=k, algorithm=algorithm)
    stats = SearchStats(budget=problem.config.max_states)
    h.cache_capacity = problem.config.cache_capacity
    h.bind_stats(stats)
    try:
        operators = ALGORITHMS[algorithm](problem, h, stats)
        status = STATUS_FOUND
        expression: MappingExpression | None = MappingExpression(operators)
        if simplify:
            expression = simplify_expression(
                expression, source, target, problem.registry
            )
    except MappingNotFound:
        status, expression = STATUS_NOT_FOUND, None
    except SearchBudgetExceeded:
        status, expression = STATUS_BUDGET_EXCEEDED, None
    stats.stop_clock()
    return SearchResult(
        status=status,
        expression=expression,
        stats=stats,
        algorithm=algorithm,
        heuristic=heuristic,
    )


class Tupelo:
    """A configured mapping-discovery engine.

    Holds algorithm/heuristic/config choices so callers can discover many
    mappings with one object::

        engine = Tupelo(algorithm="rbfs", heuristic="cosine")
        result = engine.discover(source_db, target_db)
        mapped = result.expression.apply(full_source_db)
    """

    def __init__(
        self,
        algorithm: str = "rbfs",
        heuristic: str = "h1",
        k: float | None = None,
        registry: FunctionRegistry | None = None,
        config: SearchConfig | None = None,
        simplify: bool = True,
    ) -> None:
        algorithm = algorithm.lower()
        if algorithm not in ALGORITHMS:
            raise UnknownAlgorithmError(algorithm, ALGORITHM_NAMES)
        self.algorithm = algorithm
        self.heuristic = heuristic
        self.k = k
        self.registry = registry
        self.config = config if config is not None else SearchConfig()
        self.simplify = simplify

    def discover(
        self,
        source: Database,
        target: Database,
        correspondences: Sequence[Correspondence] = (),
    ) -> SearchResult:
        """Discover a mapping expression from *source* to *target*."""
        return discover_mapping(
            source,
            target,
            algorithm=self.algorithm,
            heuristic=self.heuristic,
            k=self.k,
            correspondences=correspondences,
            registry=self.registry,
            config=self.config,
            simplify=self.simplify,
        )

    def __repr__(self) -> str:
        return (
            f"Tupelo(algorithm={self.algorithm!r}, heuristic={self.heuristic!r}, "
            f"k={self.k!r})"
        )
