"""The TUPELO facade: discover data mappings between critical instances.

This is the public entry point mirroring Fig. 2 of the paper: inputs are
critical instances of the source and target schemas plus declarations of
any complex semantic correspondences; output is an executable mapping
expression in L together with search statistics.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..errors import (
    MappingNotFound,
    SearchBudgetExceeded,
    SearchCancelled,
    SearchDeadlineExceeded,
    UnknownAlgorithmError,
)
from ..fira.base import Operator
from ..fira.expression import MappingExpression
from ..heuristics.base import Heuristic
from ..heuristics.registry import make_heuristic
from ..obs.events import SEARCH_END, SEARCH_START, SOLUTION
from ..obs.metrics import MetricsRegistry
from ..obs.progress import CallbackProgress, ProgressSink
from ..obs.tracer import NULL_TRACER, Tracer
from ..relational import caching
from ..relational.database import Database
from ..semantics.correspondence import Correspondence
from ..semantics.functions import FunctionRegistry
from .beam import beam_search
from .best_first import a_star, greedy
from .cancel import CancelToken
from .config import SearchConfig
from .ida import ida_star
from .problem import MappingProblem
from .result import (
    STATUS_BUDGET_EXCEEDED,
    STATUS_CANCELLED,
    STATUS_DEADLINE_EXCEEDED,
    STATUS_FOUND,
    STATUS_NOT_FOUND,
    SearchResult,
)
from .rbfs import rbfs
from .simplify import simplify_expression
from .stats import SearchStats

SearchAlgorithm = Callable[[MappingProblem, Heuristic, SearchStats], "list[Operator]"]

#: algorithm registry; "ida" and "rbfs" are the paper's, the rest ablations
ALGORITHMS: dict[str, SearchAlgorithm] = {
    "ida": ida_star,
    "rbfs": rbfs,
    "astar": a_star,
    "greedy": greedy,
    "beam": beam_search,
}

ALGORITHM_NAMES: tuple[str, ...] = tuple(ALGORITHMS)


def discover_mapping(
    source: Database,
    target: Database,
    algorithm: str = "rbfs",
    heuristic: str = "h1",
    k: float | None = None,
    correspondences: Sequence[Correspondence] = (),
    registry: FunctionRegistry | None = None,
    config: SearchConfig | None = None,
    simplify: bool = True,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    cancel: CancelToken | None = None,
    progress: "ProgressSink | Callable | None" = None,
    store=None,
) -> SearchResult:
    """Discover a mapping expression from *source* to *target*.

    Args:
        source: source critical instance.
        target: target critical instance (same information, per the
            Rosetta Stone principle).
        algorithm: one of :data:`ALGORITHM_NAMES`.
        heuristic: one of :data:`~repro.heuristics.HEURISTIC_NAMES`.
        k: scaling-constant override for the scaled heuristics; defaults to
            the paper's tuned value for the chosen algorithm.
        correspondences: declared complex semantic correspondences (§4).
        registry: semantic function registry (defaults to the built-ins).
        config: search configuration (budget, pruning, operator families).
        simplify: post-process the discovered path, deleting operators not
            needed for the goal (does not affect the search statistics).
        tracer: optional :class:`~repro.obs.tracer.Tracer`; the run emits
            the full event stream (``search_start`` ... ``search_end``)
            into its sink.  The caller keeps ownership: close the sink
            after the call if it holds a file.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`;
            distribution histograms fill during the run and the final
            counters are published into it.
        cancel: optional :class:`~repro.search.cancel.CancelToken`; setting
            it (from any thread, or across a process boundary when
            event-backed) makes the search unwind cooperatively with a
            ``cancelled`` result carrying the partial stats.
        progress: optional live-progress hook — a
            :class:`~repro.obs.progress.ProgressSink` or a plain callable
            taking a :class:`~repro.obs.progress.ProgressUpdate`.  Called
            on the search thread every
            :data:`~repro.search.stats.LIMIT_CHECK_EVERY` examinations
            (piggybacked on the existing limit polls); its ``finish()``
            hook fires once when the run ends, whatever the status.
        store: optional warm-start store — a
            :class:`~repro.store.WarmStartStore` or a directory path.
            Before searching, the store's mapping memo is consulted (a hit
            is re-verified against *source*/*target* and returned with
            ``served_from_store=True``); on a miss the problem's memo
            tables are pre-seeded from the store's shared spill, and after
            the run the discovered mapping and the tables are persisted
            for the next process.  All store traffic is best-effort and
            disabled entirely by ``REPRO_WARM_STORE=0``.

    Returns:
        A :class:`SearchResult`; check ``result.found`` / ``result.status``.
        A run bounded by ``config.deadline_seconds`` that runs out of time
        returns status ``deadline_exceeded`` with intact
        :class:`~repro.search.stats.SearchStats` (states examined, max
        frontier depth, cache counters, phase timers).
    """
    algorithm = algorithm.lower()
    if algorithm not in ALGORITHMS:
        raise UnknownAlgorithmError(algorithm, ALGORITHM_NAMES)
    run_tracer = tracer if tracer is not None else NULL_TRACER
    progress_sink: ProgressSink | None
    if progress is None or isinstance(progress, ProgressSink):
        progress_sink = progress
    else:
        progress_sink = CallbackProgress(progress)
    store_obj = None
    if store is not None:
        # Lazy import: only runs with a store requested, keeping repro.store
        # (and its fingerprint/serialize machinery) off the cold hot path.
        from ..store import resolve_store

        store_obj = resolve_store(store)
    if store_obj is not None:
        served = _serve_from_store(
            store_obj,
            source,
            target,
            algorithm=algorithm,
            heuristic=heuristic,
            k=k,
            correspondences=correspondences,
            registry=registry,
            config=config,
            run_tracer=run_tracer,
            metrics=metrics,
            progress_sink=progress_sink,
        )
        if served is not None:
            return served
    with run_tracer.span("discover", algorithm=algorithm, heuristic=heuristic):
        with run_tracer.span("setup"):
            problem = MappingProblem(
                source,
                target,
                correspondences=correspondences,
                registry=registry,
                config=config,
                cancel=cancel,
            )
            h = make_heuristic(heuristic, target, k=k, algorithm=algorithm)
            # Thread parent/delta provenance through successor generation only
            # when the incremental-heuristic layer will consume it — blind (h0)
            # runs and ablated runs pay nothing for the machinery.
            problem.track_deltas = caching.incremental_heuristics_enabled() and getattr(
                h, "wants_summaries", False
            )
            stats = SearchStats(budget=problem.config.max_states)
            stats.deadline_seconds = problem.config.deadline_seconds
            stats.cancel_token = cancel
            stats.tracer = run_tracer
            if metrics is not None:
                stats.metrics = metrics
            if progress_sink is not None:
                stats.progress = progress_sink
            h.cache_capacity = problem.config.cache_capacity
            h.bind_stats(stats)
            if store_obj is not None:
                with run_tracer.span("store_preseed"):
                    store_obj.preseed(
                        problem, h, metrics=metrics, tracer=run_tracer
                    )
        if run_tracer.enabled:
            run_tracer.emit(
                SEARCH_START,
                algorithm=algorithm,
                heuristic=heuristic,
                budget=problem.config.max_states,
                source_relations=len(source.relation_names),
                target_relations=len(target.relation_names),
                correspondences=len(problem.correspondences),
            )
        expression: MappingExpression | None = None
        search_span = run_tracer.span("search")
        try:
            with search_span:
                try:
                    operators = ALGORITHMS[algorithm](problem, h, stats)
                    status = STATUS_FOUND
                finally:
                    stats.end_loop_span()
                    search_span.annotate(
                        examined=stats.states_examined,
                        generated=stats.states_generated,
                        iterations=stats.iterations,
                        max_depth=stats.max_depth,
                    )
            if run_tracer.enabled:
                run_tracer.emit(
                    SOLUTION,
                    size=len(operators),
                    ops=[str(op) for op in operators],
                )
            expression = MappingExpression(operators)
            if simplify:
                with run_tracer.span("simplify"):
                    expression = simplify_expression(
                        expression, source, target, problem.registry
                    )
        except MappingNotFound:
            status, expression = STATUS_NOT_FOUND, None
        except SearchBudgetExceeded:
            status, expression = STATUS_BUDGET_EXCEEDED, None
        except SearchDeadlineExceeded:
            status, expression = STATUS_DEADLINE_EXCEEDED, None
        except SearchCancelled:
            status, expression = STATUS_CANCELLED, None
        stats.stop_clock()
        if store_obj is not None:
            with run_tracer.span("store_save"):
                if status == STATUS_FOUND and expression is not None:
                    from ..store import config_signature

                    store_obj.record(
                        source,
                        target,
                        expression=expression,
                        algorithm=algorithm,
                        heuristic=heuristic,
                        k=k,
                        signature=config_signature(
                            problem.config, problem.correspondences
                        ),
                        states_examined=stats.states_examined,
                        metrics=metrics,
                        tracer=run_tracer,
                    )
                store_obj.export(
                    problem, h, metrics=metrics, tracer=run_tracer
                )
        if progress_sink is not None:
            progress_sink.finish()
    # Emitted after the discover span closes, keeping the trace contract
    # that search_end is the final record of every run.
    if run_tracer.enabled:
        run_tracer.emit(SEARCH_END, status=status, **stats.as_dict())
    return SearchResult(
        status=status,
        expression=expression,
        stats=stats,
        algorithm=algorithm,
        heuristic=heuristic,
    )


def _serve_from_store(
    store_obj,
    source: Database,
    target: Database,
    *,
    algorithm: str,
    heuristic: str,
    k: float | None,
    correspondences: Sequence[Correspondence],
    registry: FunctionRegistry | None,
    config: SearchConfig | None,
    run_tracer: Tracer,
    metrics: MetricsRegistry | None,
    progress_sink: "ProgressSink | None",
) -> SearchResult | None:
    """A memo-served result for this request, or ``None`` (search runs).

    A served run's trace carries a ``store_lookup`` span plus the normal
    ``search_start`` / ``solution`` / ``search_end`` records (flagged
    ``served_from_store``), so replay tooling sees a complete run; there
    is no ``discover`` span because no discovery happened.
    """
    with run_tracer.span(
        "store_lookup", algorithm=algorithm, heuristic=heuristic
    ):
        served = store_obj.serve(
            source,
            target,
            algorithm=algorithm,
            heuristic=heuristic,
            k=k,
            registry=registry,
            metrics=metrics,
            tracer=run_tracer,
        )
    if served is None:
        return None
    expression, _entry = served
    base = config if config is not None else SearchConfig()
    stats = SearchStats(budget=base.max_states)
    stats.deadline_seconds = base.deadline_seconds
    stats.tracer = run_tracer
    if metrics is not None:
        stats.metrics = metrics
    if run_tracer.enabled:
        run_tracer.emit(
            SEARCH_START,
            algorithm=algorithm,
            heuristic=heuristic,
            budget=base.max_states,
            source_relations=len(source.relation_names),
            target_relations=len(target.relation_names),
            correspondences=len(correspondences),
        )
        run_tracer.emit(
            SOLUTION,
            size=len(expression),
            ops=[str(op) for op in expression.operators],
        )
    stats.stop_clock()
    if progress_sink is not None:
        progress_sink.finish()
    if run_tracer.enabled:
        run_tracer.emit(
            SEARCH_END,
            status=STATUS_FOUND,
            served_from_store=True,
            **stats.as_dict(),
        )
    return SearchResult(
        status=STATUS_FOUND,
        expression=expression,
        stats=stats,
        algorithm=algorithm,
        heuristic=heuristic,
        served_from_store=True,
    )


class Tupelo:
    """A configured mapping-discovery engine.

    Holds algorithm/heuristic/config choices so callers can discover many
    mappings with one object::

        engine = Tupelo(algorithm="rbfs", heuristic="cosine")
        result = engine.discover(source_db, target_db)
        mapped = result.expression.apply(full_source_db)
    """

    def __init__(
        self,
        algorithm: str = "rbfs",
        heuristic: str = "h1",
        k: float | None = None,
        registry: FunctionRegistry | None = None,
        config: SearchConfig | None = None,
        simplify: bool = True,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        progress: "ProgressSink | Callable | None" = None,
        store=None,
    ) -> None:
        algorithm = algorithm.lower()
        if algorithm not in ALGORITHMS:
            raise UnknownAlgorithmError(algorithm, ALGORITHM_NAMES)
        self.algorithm = algorithm
        self.heuristic = heuristic
        self.k = k
        self.registry = registry
        self.config = config if config is not None else SearchConfig()
        self.simplify = simplify
        #: default telemetry hooks applied to every discover() call
        self.tracer = tracer
        self.metrics = metrics
        self.progress = progress
        #: warm-start store shared by every discover() call (path or store)
        self.store = store

    def discover(
        self,
        source: Database,
        target: Database,
        correspondences: Sequence[Correspondence] = (),
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        cancel: CancelToken | None = None,
        progress: "ProgressSink | Callable | None" = None,
    ) -> SearchResult:
        """Discover a mapping expression from *source* to *target*.

        *tracer* / *metrics* / *progress* override the engine-level
        defaults for this one call (pass them to trace a single discovery
        out of many); *cancel* makes this one call cooperatively
        cancellable.
        """
        return discover_mapping(
            source,
            target,
            algorithm=self.algorithm,
            heuristic=self.heuristic,
            k=self.k,
            correspondences=correspondences,
            registry=self.registry,
            config=self.config,
            simplify=self.simplify,
            tracer=tracer if tracer is not None else self.tracer,
            metrics=metrics if metrics is not None else self.metrics,
            cancel=cancel,
            progress=progress if progress is not None else self.progress,
            store=self.store,
        )

    def __repr__(self) -> str:
        return (
            f"Tupelo(algorithm={self.algorithm!r}, heuristic={self.heuristic!r}, "
            f"k={self.k!r})"
        )
