"""Post-processing: simplify discovered mapping expressions.

Search returns the *path* to the first goal state it reaches; because the
goal test tolerates supersets, the path may contain operators that were
explored en route but are not needed for the target (e.g. a stray cartesian
product whose result the goal never looks at).  :func:`simplify_expression`
greedily deletes operators whose removal keeps the pipeline (a) executable
on the source instance and (b) goal-satisfying, iterating to a fixpoint.

This is an extension beyond the paper (which reports raw paths); it is
purely cosmetic — the unsimplified expression is already correct.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import TupeloError
from ..fira.expression import MappingExpression
from ..relational.database import Database

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..semantics.functions import FunctionRegistry


def _satisfies(
    expression: MappingExpression,
    source: Database,
    target: Database,
    registry: "FunctionRegistry | None",
) -> bool:
    """Whether the pipeline runs on *source* and its output contains *target*."""
    try:
        result = expression.apply(source, registry)
    except TupeloError:
        return False
    return result.contains(target)


def simplify_expression(
    expression: MappingExpression,
    source: Database,
    target: Database,
    registry: "FunctionRegistry | None" = None,
) -> MappingExpression:
    """Remove operators not needed to map *source* onto *target*.

    The input expression must itself satisfy the goal; otherwise it is
    returned unchanged.  The result is minimal in the sense that deleting
    any single remaining operator breaks the mapping.
    """
    if not _satisfies(expression, source, target, registry):
        return expression
    operators = list(expression.operators)
    changed = True
    while changed:
        changed = False
        for i in range(len(operators) - 1, -1, -1):
            candidate = MappingExpression(operators[:i] + operators[i + 1 :])
            if _satisfies(candidate, source, target, registry):
                del operators[i]
                changed = True
    return MappingExpression(operators)
