"""Cooperative cancellation for mapping-discovery search.

The paper bounds search by a state budget; a production caller also needs
to *stop* a search that is no longer wanted — an interactive user moved on,
or a portfolio race already has a verified winner.  :class:`CancelToken` is
the cooperative half of that story: the caller (or a parent process) sets
the token, and the kernel's periodic limit checks (see
:meth:`repro.search.stats.SearchStats.check_limits` and
:meth:`repro.search.problem.MappingProblem.successors`) observe it and
unwind with :class:`~repro.errors.SearchCancelled`, leaving partial
:class:`~repro.search.stats.SearchStats` intact.

A token can wrap a ``multiprocessing.Event`` so a parent process cancels a
child's search across the process boundary without signals — the portfolio
racer (:mod:`repro.parallel.portfolio`) cancels losing arms this way first
and only escalates to ``terminate()`` / ``kill()`` when an arm does not
react in time.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable


@runtime_checkable
class _EventLike(Protocol):  # pragma: no cover - typing helper
    """The slice of threading/multiprocessing Event the token consults."""

    def is_set(self) -> bool: ...

    def set(self) -> None: ...


class CancelToken:
    """A cooperative cancellation flag, optionally event-backed.

    Args:
        event: optional ``threading.Event`` / ``multiprocessing.Event``;
            when given, :meth:`cancel` sets it and :attr:`cancelled` reads
            it, so the token works across threads and process boundaries.
            Without one the token is a plain in-process flag (the cheapest
            possible check on the search hot path).
    """

    __slots__ = ("_flag", "_event")

    def __init__(self, event: _EventLike | None = None) -> None:
        self._flag = False
        self._event = event

    def cancel(self) -> None:
        """Request cancellation (idempotent; safe from any thread)."""
        self._flag = True
        if self._event is not None:
            self._event.set()

    @property
    def cancelled(self) -> bool:
        """Whether cancellation has been requested.

        The first positive event read latches into the local flag, so
        repeated polls after cancellation never touch the event again.
        """
        if self._flag:
            return True
        if self._event is not None and self._event.is_set():
            self._flag = True
            return True
        return False

    def __bool__(self) -> bool:
        return self.cancelled

    def __repr__(self) -> str:
        backing = type(self._event).__name__ if self._event is not None else "flag"
        return f"<CancelToken {backing} cancelled={self.cancelled}>"
