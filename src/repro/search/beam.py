"""Beam search (extension — the paper's "further investigation of search
techniques developed in the AI literature is warranted").

Layered best-first search keeping only the ``width`` lowest-f states per
depth.  Memory is O(width), between IDA*/RBFS (path-linear) and A*
(frontier-exponential); the price is *incompleteness* — a too-narrow beam
can discard every path to the goal, so failure means "not found within the
beam", not "no mapping exists".  The algorithm ablation bench quantifies
the trade-off.
"""

from __future__ import annotations

from ..errors import MappingNotFound
from ..fira.base import Operator
from ..heuristics.base import Heuristic
from ..obs.events import PRUNE
from ..relational.database import Database
from .problem import MappingProblem
from .stats import SearchStats

#: default beam width (states kept per layer)
DEFAULT_BEAM_WIDTH = 16


def make_beam(width: int = DEFAULT_BEAM_WIDTH):
    """Build a beam-search algorithm with the given width."""

    def beam(
        problem: MappingProblem, heuristic: Heuristic, stats: SearchStats
    ) -> list[Operator]:
        root = problem.initial_state()
        layer: list[tuple[Database, Operator | None, list[Operator]]] = [
            (root, None, [])
        ]
        seen: set[Database] = {root}
        depth = 0
        max_depth = problem.config.max_depth
        tracer = stats.tracer
        while layer:
            stats.frontier_size = len(layer)  # progress-heartbeat payload only
            stats.iteration(depth=depth, width=len(layer))
            for state, _last, path in layer:
                stats.examine(len(path), state)
                if problem.is_goal(state, stats):
                    return path
            if max_depth is not None and depth >= max_depth:
                break
            candidates: list[tuple[int, str, Database, Operator, list[Operator]]] = []
            for state, last, path in layer:
                for op, child in problem.successors(state, last, stats):
                    if child in seen:
                        if tracer.enabled:
                            tracer.emit(PRUNE, reason="seen", depth=depth + 1)
                        continue
                    seen.add(child)
                    f = len(path) + 1 + heuristic(child)
                    candidates.append((f, str(op), child, op, path))
            candidates.sort(key=lambda c: (c[0], c[1]))
            if candidates:
                stats.current_f = float(candidates[0][0])
            if tracer.enabled and len(candidates) > width:
                tracer.emit(
                    PRUNE,
                    reason="beam_cut",
                    depth=depth + 1,
                    dropped=len(candidates) - width,
                )
            layer = [
                (child, op, path + [op])
                for _f, _key, child, op, path in candidates[:width]
            ]
            depth += 1
        raise MappingNotFound(
            f"beam search (width {width}) exhausted its beam without a goal"
        )

    beam.__name__ = f"beam{width}"
    return beam


#: ready-made default-width beam
beam_search = make_beam()
