"""Data mapping as search: problem definition, IDA*/RBFS, facade (§2.3)."""

from .beam import DEFAULT_BEAM_WIDTH, beam_search, make_beam
from .best_first import a_star, greedy
from .cancel import CancelToken
from .config import OPERATOR_FAMILIES, SearchConfig
from .engine import ALGORITHM_NAMES, ALGORITHMS, Tupelo, discover_mapping
from .ida import ida_star
from .problem import MappingProblem
from .rbfs import rbfs
from .simplify import simplify_expression
from .result import (
    STATUS_BUDGET_EXCEEDED,
    STATUS_CANCELLED,
    STATUS_DEADLINE_EXCEEDED,
    STATUS_FOUND,
    STATUS_NAMES,
    STATUS_NOT_FOUND,
    SearchResult,
)
from .stats import LIMIT_CHECK_EVERY, SearchStats

__all__ = [
    "a_star",
    "DEFAULT_BEAM_WIDTH",
    "beam_search",
    "make_beam",
    "greedy",
    "CancelToken",
    "OPERATOR_FAMILIES",
    "SearchConfig",
    "ALGORITHM_NAMES",
    "ALGORITHMS",
    "Tupelo",
    "discover_mapping",
    "ida_star",
    "LIMIT_CHECK_EVERY",
    "MappingProblem",
    "rbfs",
    "simplify_expression",
    "STATUS_BUDGET_EXCEEDED",
    "STATUS_CANCELLED",
    "STATUS_DEADLINE_EXCEEDED",
    "STATUS_FOUND",
    "STATUS_NAMES",
    "STATUS_NOT_FOUND",
    "SearchResult",
    "SearchStats",
]
