"""Search statistics.

The paper's performance measure throughout §5 is the **number of states
examined** during search; :class:`SearchStats` tracks that counter plus the
secondary quantities (states generated, iterations/backtracks, peak depth,
wall-clock time) used by the ablation benches.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..errors import SearchBudgetExceeded


@dataclass
class SearchStats:
    """Mutable counters threaded through one search run.

    Attributes:
        budget: maximum states that may be examined before aborting.
        states_examined: nodes visited (goal-tested) — the paper's metric.
            IDA* re-examines states across deepening iterations and RBFS
            across backtracks; such re-visits count again, as in the paper.
        states_generated: successor databases constructed.
        iterations: IDA* deepening iterations / RBFS recursive re-expansions.
        max_depth: deepest ``g`` reached.
    """

    budget: int = 1_000_000
    states_examined: int = 0
    states_generated: int = 0
    iterations: int = 0
    max_depth: int = 0
    started_at: float = field(default_factory=time.perf_counter)
    elapsed_seconds: float = 0.0

    def examine(self, depth: int = 0) -> None:
        """Record one state examination; raise if the budget is exhausted."""
        self.states_examined += 1
        if depth > self.max_depth:
            self.max_depth = depth
        if self.states_examined > self.budget:
            raise SearchBudgetExceeded(self.budget, self.states_examined)

    def generated(self, count: int = 1) -> None:
        """Record successor generation."""
        self.states_generated += count

    def iteration(self) -> None:
        """Record one IDA* deepening iteration / RBFS re-expansion."""
        self.iterations += 1

    def stop_clock(self) -> None:
        """Freeze :attr:`elapsed_seconds`."""
        self.elapsed_seconds = time.perf_counter() - self.started_at

    def as_dict(self) -> dict[str, float | int]:
        """Plain-dict rendering for reports and benches."""
        return {
            "states_examined": self.states_examined,
            "states_generated": self.states_generated,
            "iterations": self.iterations,
            "max_depth": self.max_depth,
            "elapsed_seconds": self.elapsed_seconds,
        }
