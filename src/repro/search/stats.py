"""Search statistics.

The paper's performance measure throughout §5 is the **number of states
examined** during search; :class:`SearchStats` tracks that counter plus the
secondary quantities (states generated, iterations/backtracks, peak depth,
wall-clock time) used by the ablation benches.

The memoisation layer (transposition table, goal-verdict table, heuristic
estimate cache — see :mod:`repro.search.problem` and
:mod:`repro.heuristics.base`) reports through here as well: hit / miss /
eviction counters per cache, and per-phase wall-clock (successor generation,
heuristic evaluation, goal tests) so benches can attribute time saved.

``SearchStats`` is also the kernel's hand-hold on the telemetry layer
(:mod:`repro.obs`): it carries the run's :class:`~repro.obs.tracer.Tracer`
(``expand`` / ``iteration_start`` / ``budget_exceeded`` events are emitted
from the counting methods themselves, so every algorithm is traced without
per-algorithm plumbing) and, when a
:class:`~repro.obs.metrics.MetricsRegistry` is attached, feeds the depth /
branching-factor histograms live and publishes the full counter snapshot
when the clock stops.  Both hooks are disabled-by-default and guarded so an
untraced run pays one branch per instrumentation site.

All wall-clock quantities here use ``time.perf_counter()`` — monotonic and
high-resolution; never ``time.time()``, whose wall-clock steps would skew
phase attribution.  :attr:`SearchStats.elapsed` is the single elapsed-time
reading benches and reports should use.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..errors import SearchBudgetExceeded, SearchCancelled, SearchDeadlineExceeded
from ..obs.events import (
    BUDGET_EXCEEDED,
    CANCELLED,
    DEADLINE_EXCEEDED,
    EXPAND,
    ITERATION_START,
    PROGRESS,
)
from ..obs.metrics import BRANCHING_BUCKETS, DEPTH_BUCKETS
from ..obs.progress import ProgressSink, ProgressUpdate
from ..obs.tracer import NULL_TRACER, SpanHandle, Tracer
from .cancel import CancelToken

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.metrics import MetricsRegistry
    from ..relational.database import Database

#: examinations between wall-clock deadline / cancel-token polls — large
#: enough that an unbounded run pays only a modulo per examination, small
#: enough that a bounded run overshoots its deadline by at most a handful
#: of state expansions
LIMIT_CHECK_EVERY = 16


@dataclass
class SearchStats:
    """Mutable counters threaded through one search run.

    Attributes:
        budget: maximum states that may be examined before aborting.
        states_examined: nodes visited (goal-tested) — the paper's metric.
            IDA* re-examines states across deepening iterations and RBFS
            across backtracks; such re-visits count again, as in the paper.
        states_generated: successor databases delivered to the algorithm
            (cache hits count again, so the counter is identical with the
            transposition table on or off).
        iterations: IDA* deepening iterations / RBFS recursive re-expansions.
        max_depth: deepest ``g`` reached.
        successor_cache_hits: transposition-table hits (successor lists
            served without re-applying operators).
        successor_cache_misses: transposition-table misses (lists computed).
        successor_cache_evictions: transposition-table LRU evictions.
        goal_cache_hits: goal-verdict cache hits.
        goal_cache_misses: goal-verdict cache misses.
        goal_cache_evictions: goal-verdict cache LRU evictions.
        heuristic_cache_hits: heuristic estimate-cache hits.
        heuristic_cache_misses: heuristic estimate-cache misses (estimates
            actually computed).
        heuristic_cache_evictions: heuristic estimate-cache LRU evictions.
        time_in_successors: wall-clock seconds spent in successor generation
            (cache lookups included).
        time_in_heuristic: wall-clock seconds spent computing heuristic
            estimates (cache hits are effectively free and not timed).
        time_in_goal_tests: wall-clock seconds spent in goal containment
            tests (cache lookups included).
        trace: when True, :meth:`examine` records each examined state in
            :attr:`examined_states` — the equivalence suite uses this to
            assert cached and uncached searches examine identical state
            sequences.
        tracer: the run's event tracer (shared no-op :data:`NULL_TRACER`
            by default).  Instrumentation sites read it from here, so
            attaching a real tracer to the stats object traces the whole
            run.
        metrics: optional metrics registry; when set, depth and branching
            histograms are observed live and :meth:`stop_clock` publishes
            the final counter snapshot into it.
        deadline_seconds: optional wall-clock deadline (seconds from
            :attr:`started_at`); enforced cooperatively by
            :meth:`check_limits`, raising
            :class:`~repro.errors.SearchDeadlineExceeded`.
        cancel_token: optional :class:`~repro.search.cancel.CancelToken`;
            when set (possibly from another process), :meth:`check_limits`
            raises :class:`~repro.errors.SearchCancelled`.
        check_every: examinations between limit polls in :meth:`examine`
            (successor generation additionally polls once per expansion via
            :meth:`check_limits`, so coarse-grained algorithms like beam
            stay responsive).
        progress: optional :class:`~repro.obs.progress.ProgressSink`; when
            set (or when the tracer is enabled), :meth:`check_limits` also
            emits a heartbeat every :attr:`check_every` examinations —
            piggybacked on the existing limit polls, so progress streaming
            adds zero new polling.
        current_f: best f-value currently under expansion (cheap unguarded
            write from each algorithm's main loop; heartbeat payload only —
            never read by the search itself).
        frontier_size: current frontier / recursion-path size (same
            contract as :attr:`current_f`).
    """

    budget: int = 1_000_000
    states_examined: int = 0
    states_generated: int = 0
    iterations: int = 0
    max_depth: int = 0
    successor_cache_hits: int = 0
    successor_cache_misses: int = 0
    successor_cache_evictions: int = 0
    goal_cache_hits: int = 0
    goal_cache_misses: int = 0
    goal_cache_evictions: int = 0
    heuristic_cache_hits: int = 0
    heuristic_cache_misses: int = 0
    heuristic_cache_evictions: int = 0
    time_in_successors: float = 0.0
    time_in_heuristic: float = 0.0
    time_in_goal_tests: float = 0.0
    trace: bool = False
    examined_states: "list[Database]" = field(default_factory=list)
    started_at: float = field(default_factory=time.perf_counter)
    elapsed_seconds: float = 0.0
    clock_stopped: bool = False
    tracer: Tracer = NULL_TRACER
    metrics: "MetricsRegistry | None" = None
    deadline_seconds: float | None = None
    cancel_token: CancelToken | None = None
    check_every: int = LIMIT_CHECK_EVERY
    progress: ProgressSink | None = None
    current_f: float | None = None
    frontier_size: int = 0
    _progress_marker: int = field(default=0, init=False, repr=False)
    _loop_span: "SpanHandle | None" = field(default=None, init=False, repr=False)

    def examine(self, depth: int = 0, state: "Database | None" = None) -> None:
        """Record one state examination; raise if the budget is exhausted."""
        self.states_examined += 1
        if depth > self.max_depth:
            self.max_depth = depth
        if self.trace and state is not None:
            self.examined_states.append(state)
        tracer = self.tracer
        if tracer.enabled:
            if self._loop_span is None:
                # Lazily open one span around the whole expansion loop —
                # all four algorithms get it with no per-algorithm plumbing.
                self._loop_span = tracer.span("expand_loop")
                self._loop_span.__enter__()
            tracer.emit(EXPAND, depth=depth, n=self.states_examined)
        if self.metrics is not None:
            self.metrics.histogram("search.depth", DEPTH_BUCKETS).observe(depth)
        if self.states_examined > self.budget:
            if tracer.enabled:
                tracer.emit(
                    BUDGET_EXCEEDED,
                    budget=self.budget,
                    examined=self.states_examined,
                )
            raise SearchBudgetExceeded(self.budget, self.states_examined)
        if self.states_examined % self.check_every == 0 or self.states_examined == 1:
            self.check_limits()

    def check_limits(self) -> None:
        """Poll the wall-clock deadline and the cancel token (cooperative).

        Free when neither limit is configured (two attribute loads and two
        branches); with a limit set, one ``perf_counter`` read / one token
        poll per call.  Called every :attr:`check_every` examinations from
        :meth:`examine` and once per expansion from
        :meth:`~repro.search.problem.MappingProblem.successors`.

        Raises:
            SearchDeadlineExceeded: the deadline has passed.
            SearchCancelled: the cancel token is set.
        """
        token = self.cancel_token
        if token is not None and token.cancelled:
            if self.tracer.enabled:
                self.tracer.emit(CANCELLED, examined=self.states_examined)
            raise SearchCancelled(self.states_examined)
        deadline = self.deadline_seconds
        if deadline is not None:
            elapsed = time.perf_counter() - self.started_at
            if elapsed > deadline:
                if self.tracer.enabled:
                    self.tracer.emit(
                        DEADLINE_EXCEEDED,
                        deadline=deadline,
                        elapsed=elapsed,
                        examined=self.states_examined,
                    )
                raise SearchDeadlineExceeded(
                    deadline, elapsed, self.states_examined
                )
        if self.progress is not None or self.tracer.enabled:
            self._maybe_progress()

    def _maybe_progress(self) -> None:
        """Emit a heartbeat if :attr:`check_every` examinations have passed.

        Throttled on the examination counter (not call count), so the
        cadence is one heartbeat per ``check_every`` examinations no matter
        how often :meth:`check_limits` is polled.
        """
        if self.states_examined - self._progress_marker < self.check_every:
            return
        self._progress_marker = self.states_examined
        elapsed = time.perf_counter() - self.started_at
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(
                PROGRESS,
                examined=self.states_examined,
                generated=self.states_generated,
                depth=self.max_depth,
                frontier=self.frontier_size,
                f=self.current_f,
                elapsed=elapsed,
            )
        if self.progress is not None:
            self.progress.update(
                ProgressUpdate(
                    examined=self.states_examined,
                    generated=self.states_generated,
                    depth=self.max_depth,
                    frontier=self.frontier_size,
                    best_f=self.current_f,
                    elapsed=elapsed,
                )
            )

    def end_loop_span(self) -> None:
        """Close the lazily-opened expansion-loop span (no-op if none).

        Annotates it with the run counters and the per-phase timers, which
        :func:`repro.obs.spans.build_span_tree` turns into phase-attribution
        child leaves.  Called from the engine when the algorithm returns and
        as a backstop from :meth:`stop_clock`.
        """
        span = self._loop_span
        if span is None:
            return
        self._loop_span = None
        span.annotate(
            examined=self.states_examined,
            generated=self.states_generated,
            iterations=self.iterations,
            time_in_successors=self.time_in_successors,
            time_in_heuristic=self.time_in_heuristic,
            time_in_goal_tests=self.time_in_goal_tests,
        )
        span.__exit__(None, None, None)

    def generated(self, count: int = 1) -> None:
        """Record successor generation."""
        self.states_generated += count
        if self.metrics is not None:
            self.metrics.histogram(
                "search.branching_factor", BRANCHING_BUCKETS
            ).observe(count)

    def iteration(self, **info: object) -> None:
        """Record one IDA* deepening iteration / RBFS re-expansion.

        Keyword arguments become the ``iteration_start`` event payload
        (e.g. ``bound=`` for IDA* thresholds, ``limit=`` for RBFS f-limits,
        ``depth=`` for beam layers).
        """
        self.iterations += 1
        bound = info.get("bound", info.get("f", info.get("limit")))
        if isinstance(bound, (int, float)):
            self.current_f = float(bound)
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(ITERATION_START, n=self.iterations, **info)

    def stop_clock(self) -> None:
        """Freeze :attr:`elapsed_seconds` and publish attached metrics.

        Idempotent: a second call is a no-op.  Re-freezing would silently
        lengthen ``elapsed_seconds``, and re-publishing would double-count
        every monotone counter in the attached
        :class:`~repro.obs.metrics.MetricsRegistry`.
        """
        if self.clock_stopped:
            return
        self.end_loop_span()
        self.elapsed_seconds = time.perf_counter() - self.started_at
        self.clock_stopped = True
        if self.metrics is not None:
            self.metrics.publish_stats(self.as_dict())

    @property
    def elapsed(self) -> float:
        """Wall-clock seconds of the run (live until :meth:`stop_clock`).

        The one elapsed-time reading benches and reports should consult:
        after :meth:`stop_clock` it is the frozen run duration; before, a
        live monotonic reading from the same ``perf_counter`` clock.
        """
        if self.clock_stopped:
            return self.elapsed_seconds
        return time.perf_counter() - self.started_at

    # -- cache aggregates ------------------------------------------------------

    @property
    def cache_hits(self) -> int:
        """Total hits across all three memo caches."""
        return (
            self.successor_cache_hits
            + self.goal_cache_hits
            + self.heuristic_cache_hits
        )

    @property
    def cache_misses(self) -> int:
        """Total misses across all three memo caches."""
        return (
            self.successor_cache_misses
            + self.goal_cache_misses
            + self.heuristic_cache_misses
        )

    @property
    def cache_evictions(self) -> int:
        """Total LRU evictions across all three memo caches."""
        return (
            self.successor_cache_evictions
            + self.goal_cache_evictions
            + self.heuristic_cache_evictions
        )

    @property
    def cache_hit_rate(self) -> float:
        """Hits / (hits + misses) across all caches (0.0 when unused)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def as_dict(self) -> dict[str, float | int]:
        """Plain-dict rendering for reports and benches.

        ``deadline_seconds`` appears only when a deadline was configured,
        so unbounded runs keep the exact historical dict shape.
        """
        out: dict[str, float | int] = {
            "states_examined": self.states_examined,
            "states_generated": self.states_generated,
            "iterations": self.iterations,
            "max_depth": self.max_depth,
            "elapsed_seconds": self.elapsed_seconds,
            "successor_cache_hits": self.successor_cache_hits,
            "successor_cache_misses": self.successor_cache_misses,
            "successor_cache_evictions": self.successor_cache_evictions,
            "goal_cache_hits": self.goal_cache_hits,
            "goal_cache_misses": self.goal_cache_misses,
            "goal_cache_evictions": self.goal_cache_evictions,
            "heuristic_cache_hits": self.heuristic_cache_hits,
            "heuristic_cache_misses": self.heuristic_cache_misses,
            "heuristic_cache_evictions": self.heuristic_cache_evictions,
            "time_in_successors": self.time_in_successors,
            "time_in_heuristic": self.time_in_heuristic,
            "time_in_goal_tests": self.time_in_goal_tests,
        }
        if self.deadline_seconds is not None:
            out["deadline_seconds"] = float(self.deadline_seconds)
        return out
