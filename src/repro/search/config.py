"""Search configuration.

Bundles the knobs of the mapping-discovery search: the state budget, which
operator families the successor generator may propose, whether the
symmetry-breaking canonicalisation of commuting operator runs is active
(the paper's "simple enhancements to search", §2.3), and the memoisation
knobs of the transposition table (see :mod:`repro.search.problem`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

#: operator family tags accepted by :attr:`SearchConfig.enabled_operators`
OPERATOR_FAMILIES: tuple[str, ...] = (
    "rename_att",
    "rename_rel",
    "drop",
    "promote",
    "demote",
    "deref",
    "partition",
    "product",
    "merge",
    "apply",
)


@dataclass(frozen=True)
class SearchConfig:
    """Knobs for mapping-discovery search.

    Attributes:
        max_states: hard budget on states examined; exceeding it aborts the
            search with a ``budget_exceeded`` result (the paper's plots are
            likewise cut at 10^6 states).
        enabled_operators: operator families the successor generator may
            propose; defaults to every searchable family.  (σ is never
            searched — §2.1 treats selection as post-processing.)
        break_symmetry: canonicalise runs of consecutive commuting operators
            (renames / drops / λ sorted within a run).  This is the main
            "obviously inapplicable transformations are disregarded"
            enhancement; turning it off reproduces the naive search for the
            pruning ablation.
        prune_targets: restrict operator proposals to ones that can supply a
            missing target token (the remaining §2.3 enhancement rules).
        max_depth: optional hard depth cap (None = unbounded).
        cache_successors: memoise ``successors(state, last_op)`` results and
            ``is_goal(state)`` verdicts in the problem's transposition table
            so IDA*'s iteration re-probes and RBFS's re-expansions do not
            re-apply operators.  Semantically transparent: the cached search
            visits exactly the same states in the same order.
        cache_capacity: bound (entries, LRU eviction) on each memo table —
            the transposition table, the goal-verdict table, and the
            heuristic estimate cache.  ``None`` means unbounded, trading the
            algorithms' linear-memory guarantee for maximum reuse.
        deadline_seconds: optional wall-clock deadline for the run.  The
            kernel checks ``perf_counter`` cooperatively (every few
            examinations plus once per successor expansion — see
            ``docs/robustness.md``) and aborts with a ``deadline_exceeded``
            result carrying the partial
            :class:`~repro.search.stats.SearchStats`.  ``None`` (default)
            reproduces the paper's run-to-budget behaviour exactly.
    """

    max_states: int = 1_000_000
    enabled_operators: frozenset[str] = field(
        default_factory=lambda: frozenset(OPERATOR_FAMILIES)
    )
    break_symmetry: bool = True
    prune_targets: bool = True
    max_depth: int | None = None
    cache_successors: bool = True
    cache_capacity: int | None = None
    deadline_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.max_states < 1:
            raise ValueError(f"max_states must be positive, got {self.max_states}")
        unknown = set(self.enabled_operators) - set(OPERATOR_FAMILIES)
        if unknown:
            raise ValueError(
                f"unknown operator families {sorted(unknown)}; "
                f"allowed: {OPERATOR_FAMILIES}"
            )
        if self.max_depth is not None and self.max_depth < 0:
            raise ValueError(f"max_depth must be non-negative, got {self.max_depth}")
        if self.cache_capacity is not None and self.cache_capacity < 1:
            raise ValueError(
                f"cache_capacity must be positive or None, got {self.cache_capacity}"
            )
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError(
                f"deadline_seconds must be positive or None, "
                f"got {self.deadline_seconds}"
            )

    def allows(self, family: str) -> bool:
        """Whether the given operator family may be proposed."""
        return family in self.enabled_operators

    def without_operators(self, *families: str) -> "SearchConfig":
        """A copy with the given operator families disabled."""
        return replace(
            self, enabled_operators=self.enabled_operators - set(families)
        )
