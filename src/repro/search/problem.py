"""The mapping-discovery search problem (§2.3).

Given source and target critical instances, :class:`MappingProblem` defines
the state space TUPELO explores: states are whole databases, the initial
state is the source instance, moves are instances of the L operators, and
the goal test is "the state contains the target instance" (structurally
identical superset).

Successor generation implements the paper's "simple enhancements to search":
*obviously inapplicable transformations are disregarded* —

* an operator is proposed only if it can supply a missing target token
  (e.g. attribute renames are skipped once every target attribute name is
  present, promotes are proposed only for columns whose values include a
  missing target attribute name, ...);
* runs of consecutive commuting operators (attribute renames, drops, λ
  applications, relation renames) are canonicalised to sorted order, so the
  search does not explore the factorially many equivalent orderings.

Both behaviours are controlled by :class:`~repro.search.config.SearchConfig`
so the ablation benches can measure their impact.

**Transposition table.**  IDA* and RBFS accept "redundant explorations" as
the price of linear memory (§2.3): the same state is re-expanded on every
deepening iteration / backtrack.  Because states are immutable and hashable,
re-deriving its successor list (and goal verdict) each time is pure waste —
:class:`MappingProblem` therefore memoises ``successors(state, last_op)``
results and ``is_goal(state)`` verdicts.  The successor key includes the
*canonical symmetry key* of ``last_op`` (the part of the producing operator
the symmetry-breaking rules actually consult), so cached results are exact.
``SearchConfig.cache_successors`` toggles the table and
``SearchConfig.cache_capacity`` bounds it (LRU eviction); hit / miss /
eviction counts and per-phase timings land in
:class:`~repro.search.stats.SearchStats`.
"""

from __future__ import annotations

from collections import OrderedDict
from time import perf_counter
from typing import Iterable, Sequence

from ..fira.base import Operator
from ..fira.combine import CartesianProduct, Merge
from ..fira.dynamic import (
    DEMOTE_ATT_ATTR,
    DEMOTE_REL_ATTR,
    Demote,
    Dereference,
    Partition,
    Promote,
)
from ..fira.renames import RenameAttribute, RenameRelation
from ..fira.semantic import ApplyFunction
from ..fira.structure import DropAttribute
from ..errors import (
    NameCollisionError,
    OperatorApplicationError,
    SchemaError,
    SearchCancelled,
)
from ..obs.events import CACHE_HIT, CACHE_MISS, GENERATE, GOAL_TEST
from ..relational.database import Database
from ..relational.relation import Relation
from ..semantics.correspondence import Correspondence
from ..semantics.functions import FunctionRegistry, builtin_registry
from .cancel import CancelToken
from .config import SearchConfig
from .stats import SearchStats

#: deterministic exploration order of operator families (cheap fixes first)
_FAMILY_ORDER: dict[str, int] = {
    "rename_att": 0,
    "rename_rel": 1,
    "apply": 2,
    "promote": 3,
    "partition": 4,
    "merge": 5,
    "drop": 6,
    "deref": 7,
    "demote": 8,
    "product": 9,
}

_RESERVED_ATTRS = (DEMOTE_REL_ATTR, DEMOTE_ATT_ATTR)


class MappingProblem:
    """The search problem for one source/target critical-instance pair.

    Args:
        source: source critical instance (initial state).
        target: target critical instance (goal pattern).
        correspondences: declared complex semantic correspondences (§4);
            each may be applied as a λ operator during search.
        registry: function registry resolving λ symbols; defaults to the
            built-ins.
        config: search knobs (budget, pruning, operator families).
        cancel: optional :class:`~repro.search.cancel.CancelToken`;
            :meth:`successors` polls it once per expansion and raises
            :class:`~repro.errors.SearchCancelled` when set, so even
            algorithms that examine states in coarse bursts (beam layers)
            react to cancellation within one expansion.
    """

    def __init__(
        self,
        source: Database,
        target: Database,
        correspondences: Sequence[Correspondence] = (),
        registry: FunctionRegistry | None = None,
        config: SearchConfig | None = None,
        cancel: CancelToken | None = None,
    ) -> None:
        self.source = source
        self.target = target
        self.correspondences = tuple(correspondences)
        self.registry = registry if registry is not None else builtin_registry()
        self.config = config if config is not None else SearchConfig()
        self.cancel_token = cancel
        for corr in self.correspondences:
            corr.check_signature(self.registry)

        # Target views consulted by the pruning rules.
        self._target_rels = frozenset(target.relation_names)
        self._target_atts = frozenset(target.attribute_names())
        self._target_attrs_by_rel = {
            rel.name: rel.attribute_set for rel in target
        }
        self._target_value_texts = target.value_texts()

        # Transposition table (successor lists), goal-verdict table, and the
        # state intern table (canonical object per state value, so re-derived
        # equal states share one set of memoised views).
        self._successor_cache: OrderedDict[
            tuple[Database, object], list[tuple[Operator, Database]]
        ] = OrderedDict()
        self._goal_cache: OrderedDict[Database, bool] = OrderedDict()
        self._interned: OrderedDict[Database, Database] = OrderedDict()

    def __getstate__(self) -> dict:
        """Pickle the problem without its memo tables.

        The transposition, goal-verdict, and intern tables can hold every
        state the search touched — megabytes of memoised views that would
        all ship on a process boundary.  They are pure caches and rebuild
        lazily, so a pickled problem carries only its definition.  (The
        registry must itself be picklable; the parallel layer sidesteps
        that by shipping registry *provider names* instead — see
        :mod:`repro.parallel.providers`.)
        """
        state = dict(self.__dict__)
        state["_successor_cache"] = OrderedDict()
        state["_goal_cache"] = OrderedDict()
        state["_interned"] = OrderedDict()
        # Cancel tokens may wrap process-local synchronisation primitives;
        # cancellation never crosses a pickle boundary implicitly.
        state["cancel_token"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    # -- problem interface -----------------------------------------------------

    def initial_state(self) -> Database:
        """The initial search state (the source critical instance)."""
        return self.source

    def clear_caches(self) -> None:
        """Drop the transposition, goal-verdict, and intern tables."""
        self._successor_cache.clear()
        self._goal_cache.clear()
        self._interned.clear()

    def _intern(self, state: Database) -> Database:
        """The canonical object for *state* (first-seen equal value wins).

        Search re-derives equal databases along many paths; returning one
        canonical object per value means every memoised view (column texts,
        TNF triples, ...) is computed once per *value* instead of once per
        derivation.  Semantically free: databases are immutable and compare
        by value.
        """
        interned = self._interned.get(state)
        if interned is not None:
            self._interned.move_to_end(state)
            return interned
        self._interned[state] = state
        capacity = self.config.cache_capacity
        if capacity is not None and len(self._interned) > capacity:
            self._interned.popitem(last=False)
        return state

    def is_goal(
        self, state: Database, stats: SearchStats | None = None
    ) -> bool:
        """Goal test: *state* contains the target critical instance.

        Verdicts are memoised when ``config.cache_successors`` is on; time
        spent and hit/miss counts are recorded on *stats* when given.
        """
        start = perf_counter()
        tracer = stats.tracer if stats is not None else None
        try:
            if not self.config.cache_successors:
                verdict = state.contains(self.target)
                if tracer is not None and tracer.enabled:
                    tracer.emit(GOAL_TEST, verdict=verdict)
                return verdict
            cache = self._goal_cache
            verdict = cache.get(state)
            if verdict is not None or state in cache:
                cache.move_to_end(state)
                if stats is not None:
                    stats.goal_cache_hits += 1
                if tracer is not None and tracer.enabled:
                    tracer.emit(CACHE_HIT, cache="goal")
                    tracer.emit(GOAL_TEST, verdict=bool(verdict), cached=True)
                return bool(verdict)
            verdict = state.contains(self.target)
            cache[state] = verdict
            if stats is not None:
                stats.goal_cache_misses += 1
            if tracer is not None and tracer.enabled:
                tracer.emit(CACHE_MISS, cache="goal")
                tracer.emit(GOAL_TEST, verdict=verdict, cached=False)
            capacity = self.config.cache_capacity
            if capacity is not None and len(cache) > capacity:
                cache.popitem(last=False)
                if stats is not None:
                    stats.goal_cache_evictions += 1
            return verdict
        finally:
            if stats is not None:
                stats.time_in_goal_tests += perf_counter() - start

    def successors(
        self,
        state: Database,
        last_op: Operator | None = None,
        stats: SearchStats | None = None,
    ) -> list[tuple[Operator, Database]]:
        """Applicable, pruned, deduplicated moves from *state*.

        *last_op* is the operator that produced *state* (None at the root);
        it drives the symmetry-breaking canonicalisation of commuting runs.
        Results are deterministic: sorted by family order then textual form.

        When ``config.cache_successors`` is on, results are served from the
        transposition table keyed by ``(state, symmetry key of last_op)``;
        a hit skips proposal and operator application entirely.
        ``stats.states_generated`` counts successors *delivered*, so it is
        identical with the table on or off.

        Limit checks: each call polls the problem's cancel token and, via
        *stats*, the wall-clock deadline — one check per expansion keeps
        every algorithm (including beam's layer-wide bursts) responsive.
        """
        if self.cancel_token is not None and self.cancel_token.cancelled:
            raise SearchCancelled(
                stats.states_examined if stats is not None else 0
            )
        if stats is not None:
            stats.check_limits()
        start = perf_counter()
        tracer = stats.tracer if stats is not None else None
        try:
            if not self.config.cache_successors:
                out = self._compute_successors(state, last_op)
                if stats is not None:
                    stats.generated(len(out))
                if tracer is not None and tracer.enabled:
                    self._emit_generate(tracer, out, cached=False)
                return out
            key = (state, self._symmetry_key(last_op))
            cache = self._successor_cache
            hit = cache.get(key)
            if hit is not None:
                cache.move_to_end(key)
                if stats is not None:
                    stats.successor_cache_hits += 1
                    stats.generated(len(hit))
                if tracer is not None and tracer.enabled:
                    tracer.emit(CACHE_HIT, cache="successor")
                    self._emit_generate(tracer, hit, cached=True)
                return list(hit)
            out = self._compute_successors(state, last_op)
            cache[key] = out
            if stats is not None:
                stats.successor_cache_misses += 1
                stats.generated(len(out))
            if tracer is not None and tracer.enabled:
                tracer.emit(CACHE_MISS, cache="successor")
                self._emit_generate(tracer, out, cached=False)
            capacity = self.config.cache_capacity
            if capacity is not None and len(cache) > capacity:
                cache.popitem(last=False)
                if stats is not None:
                    stats.successor_cache_evictions += 1
            return list(out)
        finally:
            if stats is not None:
                stats.time_in_successors += perf_counter() - start

    @staticmethod
    def _emit_generate(
        tracer, successors: Sequence[tuple[Operator, Database]], cached: bool
    ) -> None:
        """Emit one ``generate`` event with per-operator-family counts."""
        ops: dict[str, int] = {}
        for op, _child in successors:
            ops[op.keyword] = ops.get(op.keyword, 0) + 1
        tracer.emit(GENERATE, count=len(successors), cached=cached, ops=ops)

    def _symmetry_key(self, last_op: Operator | None) -> object:
        """The part of *last_op* the proposal rules actually consult.

        Successor sets depend on the producing operator only through the
        symmetry-breaking comparisons in ``_propose_attribute_renames``,
        ``_propose_relation_renames``, and ``_propose_drops`` — all other
        operator classes (and ``break_symmetry=False``) make the successor
        set independent of ``last_op``, so they share one canonical key.
        """
        if not self.config.break_symmetry or last_op is None:
            return None
        if isinstance(last_op, RenameAttribute):
            return ("rename_att", last_op.relation, last_op.old)
        if isinstance(last_op, RenameRelation):
            return ("rename_rel", last_op.old)
        if isinstance(last_op, DropAttribute):
            return ("drop", last_op.relation, last_op.attribute)
        return None

    def _compute_successors(
        self, state: Database, last_op: Operator | None
    ) -> list[tuple[Operator, Database]]:
        """Uncached successor generation (propose, apply, deduplicate)."""
        moves = self._propose(state, last_op)
        moves.sort(key=lambda op: (_FAMILY_ORDER.get(op.keyword, 99), str(op)))
        intern = self.config.cache_successors
        out: list[tuple[Operator, Database]] = []
        seen: set[Database] = {state}
        for op in moves:
            try:
                child = op.apply(state, self.registry)
            except (OperatorApplicationError, SchemaError, NameCollisionError):
                continue
            if child in seen:
                continue  # no-op or duplicate of an earlier move
            seen.add(child)
            out.append((op, self._intern(child) if intern else child))
        return out

    # -- proposal rules -----------------------------------------------------------

    def _propose(self, state: Database, last_op: Operator | None) -> list[Operator]:
        config = self.config
        moves: list[Operator] = []
        state_atts = state.attribute_names()
        state_rels = frozenset(state.relation_names)
        missing_atts = self._target_atts - state_atts
        missing_rels = self._target_rels - state_rels

        if config.allows("rename_att"):
            moves.extend(self._propose_attribute_renames(state, last_op))
        if config.allows("rename_rel") and (missing_rels or not config.prune_targets):
            moves.extend(self._propose_relation_renames(state, missing_rels, last_op))
        if config.allows("apply"):
            moves.extend(self._propose_lambdas(state, last_op))
        if config.allows("promote"):
            moves.extend(self._propose_promotes(state))
        if config.allows("partition") and (missing_rels or not config.prune_targets):
            moves.extend(self._propose_partitions(state, missing_rels))
        if config.allows("merge"):
            moves.extend(self._propose_merges(state))
        if config.allows("drop"):
            moves.extend(self._propose_drops(state, last_op))
        if config.allows("deref"):
            moves.extend(self._propose_dereferences(state))
        if config.allows("demote"):
            moves.extend(self._propose_demotes(state))
        if config.allows("product"):
            moves.extend(self._propose_products(state))
        return moves

    def _missing_atts_for(self, rel: Relation) -> frozenset[str]:
        """Target attributes the relation still lacks.

        If the target has a relation of the same name, aim for its
        attributes; otherwise aim for the union of target attributes.
        """
        wanted = self._target_attrs_by_rel.get(rel.name, self._target_atts)
        return frozenset(wanted) - rel.attribute_set

    def _propose_attribute_renames(
        self, state: Database, last_op: Operator | None
    ) -> Iterable[Operator]:
        for rel in state:
            if self.config.prune_targets:
                wanted = self._missing_atts_for(rel)
            else:
                wanted = self._target_atts - rel.attribute_set
            if not wanted:
                continue
            for old in rel.attributes:
                if self.config.prune_targets and old in self._target_atts:
                    continue  # never rename away a name the target uses
                if (
                    self.config.break_symmetry
                    and isinstance(last_op, RenameAttribute)
                    and last_op.relation == rel.name
                    and old <= last_op.old
                ):
                    continue  # canonical order within a run of renames
                for new in sorted(wanted):
                    yield RenameAttribute(rel.name, old, new)

    def _propose_relation_renames(
        self,
        state: Database,
        missing_rels: frozenset[str],
        last_op: Operator | None,
    ) -> Iterable[Operator]:
        for rel in state:
            if self.config.prune_targets and rel.name in self._target_rels:
                continue
            if (
                self.config.break_symmetry
                and isinstance(last_op, RenameRelation)
                and rel.name <= last_op.old
            ):
                continue
            for new in sorted(missing_rels):
                yield RenameRelation(rel.name, new)

    def _propose_lambdas(
        self, state: Database, last_op: Operator | None
    ) -> Iterable[Operator]:
        for corr in self.correspondences:
            for rel in state:
                if corr.relation is not None and corr.relation != rel.name:
                    continue
                if rel.has_attribute(corr.output):
                    continue
                if not all(rel.has_attribute(a) for a in corr.inputs):
                    continue
                # λ applications are deliberately NOT symmetry-broken: the
                # paper treats them "just like any of the other operators"
                # (§4) and its Fig. 9 blind-search curves show the orderings
                # being explored.
                yield ApplyFunction.from_correspondence(rel.name, corr)

    def _propose_promotes(self, state: Database) -> Iterable[Operator]:
        for rel in state:
            wanted = self._missing_atts_for(rel)
            if self.config.prune_targets and not wanted:
                continue
            for name_attr in rel.attributes:
                if self.config.prune_targets:
                    if not rel.column_texts(name_attr) & wanted:
                        continue
                for value_attr in rel.attributes:
                    if self.config.prune_targets:
                        value_texts = rel.column_texts(value_attr)
                        if not value_texts & self._target_value_texts:
                            continue
                    yield Promote(rel.name, name_attr, value_attr)

    def _propose_partitions(
        self, state: Database, missing_rels: frozenset[str]
    ) -> Iterable[Operator]:
        for rel in state:
            for attr in rel.attributes:
                if self.config.prune_targets:
                    if not rel.column_texts(attr) & missing_rels:
                        continue
                yield Partition(rel.name, attr)

    def _propose_merges(self, state: Database) -> Iterable[Operator]:
        for rel in state:
            if self.config.prune_targets and not rel.has_nulls:
                continue
            for attr in rel.attributes:
                if self.config.prune_targets and attr not in self._target_atts:
                    continue
                yield Merge(rel.name, attr)

    def _propose_drops(
        self, state: Database, last_op: Operator | None
    ) -> Iterable[Operator]:
        for rel in state:
            if rel.arity <= 1:
                continue
            droppable = rel.has_nulls or any(
                rel.has_attribute(reserved) for reserved in _RESERVED_ATTRS
            )
            if self.config.prune_targets and not droppable:
                continue
            for attr in rel.attributes:
                if attr in self._target_atts:
                    continue  # never drop a name the target needs
                if (
                    self.config.break_symmetry
                    and isinstance(last_op, DropAttribute)
                    and last_op.relation == rel.name
                    and attr <= last_op.attribute
                ):
                    continue
                yield DropAttribute(rel.name, attr)

    def _propose_dereferences(self, state: Database) -> Iterable[Operator]:
        for rel in state:
            wanted = self._missing_atts_for(rel) if self.config.prune_targets else (
                self._target_atts - rel.attribute_set
            )
            if not wanted:
                continue
            for pointer in rel.attributes:
                if self.config.prune_targets:
                    if not rel.column_texts(pointer) & rel.attribute_set:
                        continue  # pointer values never name an attribute
                for new in sorted(wanted):
                    yield Dereference(rel.name, pointer, new)

    def _propose_demotes(self, state: Database) -> Iterable[Operator]:
        if self.config.prune_targets:
            missing_values = self._target_value_texts - state.value_texts()
        for rel in state:
            if self.config.prune_targets:
                names = set(rel.attributes) | {rel.name}
                if not names & missing_values:
                    continue
            yield Demote(rel.name)

    def _propose_products(self, state: Database) -> Iterable[Operator]:
        relations = list(state)
        for i, left in enumerate(relations):
            for right in relations[i + 1 :]:
                if self.config.prune_targets and not self._product_helps(left, right):
                    continue
                yield CartesianProduct(left.name, right.name)

    def _product_helps(self, left: Relation, right: Relation) -> bool:
        """A product is proposed only if some target relation genuinely
        spans both operands: each side must contribute a target attribute
        the other side lacks."""
        for attrs in self._target_attrs_by_rel.values():
            left_only = (attrs & left.attribute_set) - right.attribute_set
            right_only = (attrs & right.attribute_set) - left.attribute_set
            if left_only and right_only:
                return True
        return False
