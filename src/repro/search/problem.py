"""The mapping-discovery search problem (§2.3).

Given source and target critical instances, :class:`MappingProblem` defines
the state space TUPELO explores: states are whole databases, the initial
state is the source instance, moves are instances of the L operators, and
the goal test is "the state contains the target instance" (structurally
identical superset).

Successor generation implements the paper's "simple enhancements to search":
*obviously inapplicable transformations are disregarded* —

* an operator is proposed only if it can supply a missing target token
  (e.g. attribute renames are skipped once every target attribute name is
  present, promotes are proposed only for columns whose values include a
  missing target attribute name, ...);
* runs of consecutive commuting operators (attribute renames, drops, λ
  applications, relation renames) are canonicalised to sorted order, so the
  search does not explore the factorially many equivalent orderings.

Both behaviours are controlled by :class:`~repro.search.config.SearchConfig`
so the ablation benches can measure their impact.

**Transposition table.**  IDA* and RBFS accept "redundant explorations" as
the price of linear memory (§2.3): the same state is re-expanded on every
deepening iteration / backtrack.  Because states are immutable and hashable,
re-deriving its successor list (and goal verdict) each time is pure waste —
:class:`MappingProblem` therefore memoises ``successors(state, last_op)``
results and ``is_goal(state)`` verdicts.  The successor key includes the
*canonical symmetry key* of ``last_op`` (the part of the producing operator
the symmetry-breaking rules actually consult), so cached results are exact.
``SearchConfig.cache_successors`` toggles the table and
``SearchConfig.cache_capacity`` bounds it (LRU eviction); hit / miss /
eviction counts and per-phase timings land in
:class:`~repro.search.stats.SearchStats`.
"""

from __future__ import annotations

from collections import OrderedDict
from functools import lru_cache
from time import perf_counter
from typing import Iterable, Sequence

from ..fira.base import Operator
from ..fira.combine import CartesianProduct, Merge
from ..fira.dynamic import (
    DEMOTE_ATT_ATTR,
    DEMOTE_REL_ATTR,
    Demote,
    Dereference,
    Partition,
    Promote,
)
from ..fira.renames import RenameAttribute, RenameRelation
from ..fira.semantic import ApplyFunction
from ..fira.structure import DropAttribute
from ..errors import (
    NameCollisionError,
    OperatorApplicationError,
    SchemaError,
    SearchCancelled,
)
from ..fira.delta import StateDelta
from ..obs.events import CACHE_HIT, CACHE_MISS, GENERATE, GOAL_TEST
from ..relational import caching
from ..relational.database import Database
from ..relational.intern import intern_value
from ..relational.relation import Relation, _interned_name_set
from ..relational.summary import attach_provenance
from ..relational.types import NULL, is_null
from ..semantics.correspondence import Correspondence
from ..semantics.functions import FunctionRegistry, builtin_registry
from .cancel import CancelToken
from .config import SearchConfig
from .stats import SearchStats

#: deterministic exploration order of operator families (cheap fixes first)
_FAMILY_ORDER: dict[str, int] = {
    "rename_att": 0,
    "rename_rel": 1,
    "apply": 2,
    "promote": 3,
    "partition": 4,
    "merge": 5,
    "drop": 6,
    "deref": 7,
    "demote": 8,
    "product": 9,
}

_RESERVED_ATTRS = (DEMOTE_REL_ATTR, DEMOTE_ATT_ATTR)

# Distinguishes "no cached verdict" from a cached False in the goal table
# (goal verdicts are overwhelmingly False, so a None-probe would pay a
# second lookup on virtually every hit).
_GOAL_MISS = object()


# Flyweight constructors for the operators proposed in per-attribute loops.
# Operators are frozen values over a small schema vocabulary (relation and
# attribute names of one problem), so proposal can reuse one instance per
# argument triple instead of re-running a dataclass __init__ once per
# expansion.  Unbounded caches are safe: the key space is the cross product
# of schema names, which is tiny and process-stable.
@lru_cache(maxsize=None)
def _rename_attribute_op(relation: str, old: str, new: str) -> RenameAttribute:
    return RenameAttribute(relation, old, new)


@lru_cache(maxsize=None)
def _sorted_names(names: frozenset[str]) -> tuple[str, ...]:
    """Deterministic ordering of a schema-vocabulary name set, memoised.

    The proposal rules enumerate "wanted" attribute/relation sets in sorted
    order; the same small sets recur across thousands of expansions.
    """
    return tuple(sorted(names))


@lru_cache(maxsize=None)
def _dereference_op(relation: str, pointer: str, new: str) -> Dereference:
    return Dereference(relation, pointer, new)


@lru_cache(maxsize=None)
def _promote_op(relation: str, name_attr: str, value_attr: str) -> Promote:
    return Promote(relation, name_attr, value_attr)


class MappingProblem:
    """The search problem for one source/target critical-instance pair.

    Args:
        source: source critical instance (initial state).
        target: target critical instance (goal pattern).
        correspondences: declared complex semantic correspondences (§4);
            each may be applied as a λ operator during search.
        registry: function registry resolving λ symbols; defaults to the
            built-ins.
        config: search knobs (budget, pruning, operator families).
        cancel: optional :class:`~repro.search.cancel.CancelToken`;
            :meth:`successors` polls it once per expansion and raises
            :class:`~repro.errors.SearchCancelled` when set, so even
            algorithms that examine states in coarse bursts (beam layers)
            react to cancellation within one expansion.
    """

    def __init__(
        self,
        source: Database,
        target: Database,
        correspondences: Sequence[Correspondence] = (),
        registry: FunctionRegistry | None = None,
        config: SearchConfig | None = None,
        cancel: CancelToken | None = None,
    ) -> None:
        self.source = source
        self.target = target
        self.correspondences = tuple(correspondences)
        self.registry = registry if registry is not None else builtin_registry()
        self.config = config if config is not None else SearchConfig()
        self.cancel_token = cancel
        #: when True, successor generation attaches ``(parent, delta)``
        #: provenance to each child state for the incremental-heuristic
        #: layer (see :mod:`repro.relational.summary`).  The search engine
        #: switches this on only when the heuristic wants summaries and the
        #: incremental kill switch is enabled.
        self.track_deltas = False
        for corr in self.correspondences:
            corr.check_signature(self.registry)

        # Target views consulted by the pruning rules.
        self._target_rels = frozenset(target.relation_names)
        self._target_atts = frozenset(target.attribute_names())
        self._target_attrs_by_rel = {
            rel.name: rel.attribute_set for rel in target
        }
        self._target_value_texts = target.value_texts()
        self._target_value_text_ids = target.value_text_ids()
        self._target_rel_ids = frozenset(
            intern_value(name) for name in self._target_rels
        )

        # Transposition table (successor lists), goal-verdict table, and the
        # state intern table (canonical object per state value, so re-derived
        # equal states share one set of memoised views).
        self._successor_cache: OrderedDict[
            tuple[Database, object], list[tuple[Operator, Database]]
        ] = OrderedDict()
        self._goal_cache: OrderedDict[Database, bool] = OrderedDict()
        self._interned: OrderedDict[Database, Database] = OrderedDict()
        # Per-relation proposal table: promote/dereference/merge moves and
        # partition/demote candidate token sets depend only on the relation
        # *value* (plus this problem's fixed target views), never on the
        # rest of the state — and operators pass untouched relations through
        # by reference, so consecutive states share almost all relations.
        # Memoising per relation value turns the per-expansion proposal cost
        # from O(state cells) into O(changed cells).  Columnar-kernel only
        # (see _move_caching_enabled); also gated by the same
        # ``cache_successors`` knob as the transposition table.
        self._relation_move_cache: OrderedDict[tuple, object] = OrderedDict()
        # Snapshot of _move_caching_enabled(), refreshed once per proposal
        # pass (the hot loops read an attribute instead of re-consulting
        # the kill switch per probe; flips between searches still apply).
        self._moves_cached = False
        # Fixed per problem: which non-symmetry families the config allows
        # (the static bundle shape — see _static_moves).
        self._partition_allowed = self.config.allows("partition")
        self._demote_allowed = self.config.allows("demote")
        self._static_families = tuple(
            family
            for family in ("promote", "partition", "merge", "deref", "demote")
            if self.config.allows(family)
        )

    def __getstate__(self) -> dict:
        """Pickle the problem without its memo tables.

        The transposition, goal-verdict, and intern tables can hold every
        state the search touched — megabytes of memoised views that would
        all ship on a process boundary.  They are pure caches and rebuild
        lazily, so a pickled problem carries only its definition.  (The
        registry must itself be picklable; the parallel layer sidesteps
        that by shipping registry *provider names* instead — see
        :mod:`repro.parallel.providers`.)
        """
        state = dict(self.__dict__)
        state["_successor_cache"] = OrderedDict()
        state["_goal_cache"] = OrderedDict()
        state["_interned"] = OrderedDict()
        state["_relation_move_cache"] = OrderedDict()
        # Cancel tokens may wrap process-local synchronisation primitives;
        # cancellation never crosses a pickle boundary implicitly.
        state["cancel_token"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    # -- problem interface -----------------------------------------------------

    def initial_state(self) -> Database:
        """The initial search state (the source critical instance)."""
        return self.source

    def clear_caches(self) -> None:
        """Drop the transposition, goal-verdict, intern, and proposal tables."""
        self._successor_cache.clear()
        self._goal_cache.clear()
        self._interned.clear()
        self._relation_move_cache.clear()

    # -- warm-start spills (repro.store) ---------------------------------------

    def export_warm_tables(
        self, heuristic=None, max_states: int | None = None
    ) -> dict:
        """The memo tables as a JSON-ready warm-start spill.

        Returns ``{"relations", "states", "goals", "successors",
        "heuristics"}`` where states are lists of indices into a
        deduplicated relation table (successive search states share almost
        all relations, so relations are the compact unit) and relations are
        ``[name, attributes, rows]`` *value* lists — intern-pool token ids
        are process-local and never leave the process.  Operators ship as
        their textual form (round-tripped through the FIRA parser on
        pre-seed).  *max_states* bounds the number of exported states,
        preferring the most recently used cache entries; entries touching
        states over the cap are dropped whole.  *heuristic*'s estimate memo
        rides along when given (see :meth:`~repro.heuristics.base.Heuristic
        .export_memo`).  :mod:`repro.store.warm` wraps the result with the
        problem signature and file format.
        """
        relations: list[list] = []
        rel_index: dict[Relation, int] = {}
        states: list[list[int]] = []
        state_index: dict[Database, int] = {}

        def index_of(state: Database) -> int | None:
            idx = state_index.get(state)
            if idx is not None:
                return idx
            if max_states is not None and len(states) >= max_states:
                return None
            refs: list[int] = []
            for rel in state:
                ridx = rel_index.get(rel)
                if ridx is None:
                    ridx = rel_index[rel] = len(relations)
                    relations.append(_encode_relation(rel))
                refs.append(ridx)
            idx = state_index[state] = len(states)
            states.append(refs)
            return idx

        # Newest-first so a cap keeps the hottest entries, then restore the
        # original LRU order so pre-seeding reproduces it.
        successors: list[list] = []
        for (state, symkey), succ in reversed(self._successor_cache.items()):
            sidx = index_of(state)
            if sidx is None:
                continue
            moves: list[list] = []
            for op, child in succ:
                cidx = index_of(child)
                if cidx is None:
                    moves = None  # type: ignore[assignment]
                    break
                moves.append([str(op), cidx])
            if moves is not None:
                successors.append(
                    [sidx, list(symkey) if symkey is not None else None, moves]
                )
        successors.reverse()

        goals: list[list] = []
        for state, verdict in reversed(self._goal_cache.items()):
            sidx = index_of(state)
            if sidx is not None:
                goals.append([sidx, verdict])
        goals.reverse()

        heuristics: list[dict] = []
        if heuristic is not None:
            entries: list[list] = []
            for state, value in reversed(heuristic.export_memo()):
                sidx = index_of(state)
                if sidx is not None:
                    entries.append([sidx, value])
            entries.reverse()
            if entries:
                k = getattr(heuristic, "k", None)
                heuristics.append(
                    {"name": heuristic.name, "k": k, "entries": entries}
                )

        return {
            "relations": relations,
            "states": states,
            "goals": goals,
            "successors": successors,
            "heuristics": heuristics,
        }

    def warm_table_sizes(self, heuristic=None) -> tuple[int, int, int]:
        """Current ``(successor, goal, heuristic-estimate)`` table sizes.

        A cheap change detector for the spill exporter: when the sizes
        still match the post-preseed snapshot and no capacity bound is
        evicting, the search ran entirely inside the pre-seeded tables, so
        re-spilling would merge megabytes of identical data (see
        :meth:`~repro.store.store.WarmStartStore.export`).
        """
        return (
            len(self._successor_cache),
            len(self._goal_cache),
            0 if heuristic is None else heuristic.memo_size(),
        )

    def preseed_warm_tables(self, tables: dict, heuristic=None) -> int:
        """Pre-seed the memo tables from an exported spill; entries loaded.

        The inverse of :meth:`export_warm_tables`: states are rebuilt from
        value lists (re-interning every cell into this process's pool),
        canonicalised through the state intern table, and inserted into the
        goal/transposition tables in the exported order, so a capacity
        bound evicts the same cold entries it would have.  Estimates are
        loaded into *heuristic* only when the spill entry matches its
        ``(name, k)`` signature — a spill from an h1 run must not seed an h2
        search.  Malformed input raises (``ValueError`` or a parse error);
        callers treating spills as disposable caches should catch, call
        :meth:`clear_caches`, and fall back to a cold start (see
        :mod:`repro.store.warm`).
        """
        relations = [_decode_relation(data) for data in tables["relations"]]
        states = [
            self._intern(_decode_state(refs, relations))
            for refs in tables["states"]
        ]
        loaded = 0
        capacity = self.config.cache_capacity

        goal_cache = self._goal_cache
        for sidx, verdict in tables["goals"]:
            goal_cache[states[sidx]] = bool(verdict)
            loaded += 1
        if capacity is not None:
            while len(goal_cache) > capacity:
                goal_cache.popitem(last=False)

        succ_cache = self._successor_cache
        for sidx, symkey, moves in tables["successors"]:
            key = (
                states[sidx],
                tuple(symkey) if symkey is not None else None,
            )
            succ_cache[key] = [
                (_operator_from_text(text), states[cidx])
                for text, cidx in moves
            ]
            loaded += 1
        if capacity is not None:
            while len(succ_cache) > capacity:
                succ_cache.popitem(last=False)

        if heuristic is not None:
            want_k = getattr(heuristic, "k", None)
            for entry in tables.get("heuristics", ()):
                if entry.get("name") != heuristic.name:
                    continue
                k = entry.get("k")
                if (k is None) != (want_k is None):
                    continue
                if k is not None and float(k) != float(want_k):
                    continue
                loaded += heuristic.preseed_memo(
                    (states[sidx], value) for sidx, value in entry["entries"]
                )
        return loaded

    def _move_caching_enabled(self) -> bool:
        """Whether per-relation proposal views are memoised.

        Move caching is a columnar-kernel feature: with the kill switch
        off, proposals are rebuilt per expansion exactly as the
        pre-columnar implementation did, so the legacy ablation arms
        measure the original cost shape.  :meth:`_propose` snapshots this
        into ``_moves_cached`` once per pass for the hot loops.
        """
        return self.config.cache_successors and caching.columnar_kernel_enabled()

    def _relation_view(self, key: tuple, rel: Relation, build) -> object:
        """Memoise a per-relation proposal view (LRU, capacity-bound).

        *key* is chosen by the caller: data-dependent views key on the
        relation *value*, schema-only views (rename groups, drops, merges,
        demote candidates) key on ``(name, attributes, ...)`` so they are
        shared across states whose relations differ only in data.  Only
        ever populated in columnar mode (see :meth:`_move_caching_enabled`),
        so entries are always token-set shaped; a mid-process kill-switch
        flip simply bypasses the cache.
        """
        if not self._moves_cached:
            return build(rel)
        cache = self._relation_move_cache
        value = cache.get(key)
        capacity = self.config.cache_capacity
        if value is not None:
            if capacity is not None:  # LRU order only matters when bounded
                cache.move_to_end(key)
            return value
        value = cache[key] = build(rel)
        if capacity is not None and len(cache) > capacity:
            cache.popitem(last=False)
        return value

    def _intern(self, state: Database) -> Database:
        """The canonical object for *state* (first-seen equal value wins).

        Search re-derives equal databases along many paths; returning one
        canonical object per value means every memoised view (column texts,
        TNF triples, ...) is computed once per *value* instead of once per
        derivation.  Semantically free: databases are immutable and compare
        by value.
        """
        interned = self._interned.get(state)
        capacity = self.config.cache_capacity
        if interned is not None:
            if capacity is not None:  # LRU order only matters when bounded
                self._interned.move_to_end(state)
            return interned
        self._interned[state] = state
        if capacity is not None and len(self._interned) > capacity:
            self._interned.popitem(last=False)
        return state

    def is_goal(
        self, state: Database, stats: SearchStats | None = None
    ) -> bool:
        """Goal test: *state* contains the target critical instance.

        Verdicts are memoised when ``config.cache_successors`` is on; time
        spent and hit/miss counts are recorded on *stats* when given.
        """
        start = perf_counter()
        tracer = stats.tracer if stats is not None else None
        try:
            if not self.config.cache_successors:
                verdict = state.contains(self.target)
                if tracer is not None and tracer.enabled:
                    tracer.emit(GOAL_TEST, verdict=verdict)
                return verdict
            cache = self._goal_cache
            verdict = cache.get(state, _GOAL_MISS)
            if verdict is not _GOAL_MISS:
                if self.config.cache_capacity is not None:
                    cache.move_to_end(state)
                if stats is not None:
                    stats.goal_cache_hits += 1
                if tracer is not None and tracer.enabled:
                    tracer.emit(CACHE_HIT, cache="goal")
                    tracer.emit(GOAL_TEST, verdict=verdict, cached=True)
                return verdict
            verdict = state.contains(self.target)
            cache[state] = verdict
            if stats is not None:
                stats.goal_cache_misses += 1
            if tracer is not None and tracer.enabled:
                tracer.emit(CACHE_MISS, cache="goal")
                tracer.emit(GOAL_TEST, verdict=verdict, cached=False)
            capacity = self.config.cache_capacity
            if capacity is not None and len(cache) > capacity:
                cache.popitem(last=False)
                if stats is not None:
                    stats.goal_cache_evictions += 1
            return verdict
        finally:
            if stats is not None:
                stats.time_in_goal_tests += perf_counter() - start

    def successors(
        self,
        state: Database,
        last_op: Operator | None = None,
        stats: SearchStats | None = None,
    ) -> list[tuple[Operator, Database]]:
        """Applicable, pruned, deduplicated moves from *state*.

        *last_op* is the operator that produced *state* (None at the root);
        it drives the symmetry-breaking canonicalisation of commuting runs.
        Results are deterministic: sorted by family order then textual form.

        When ``config.cache_successors`` is on, results are served from the
        transposition table keyed by ``(state, symmetry key of last_op)``;
        a hit skips proposal and operator application entirely.
        ``stats.states_generated`` counts successors *delivered*, so it is
        identical with the table on or off.

        Limit checks: each call polls the problem's cancel token and, via
        *stats*, the wall-clock deadline — one check per expansion keeps
        every algorithm (including beam's layer-wide bursts) responsive.
        """
        if self.cancel_token is not None and self.cancel_token.cancelled:
            raise SearchCancelled(
                stats.states_examined if stats is not None else 0
            )
        if stats is not None:
            stats.check_limits()
        start = perf_counter()
        tracer = stats.tracer if stats is not None else None
        try:
            if not self.config.cache_successors:
                out = self._compute_successors(state, last_op)
                if stats is not None:
                    stats.generated(len(out))
                if tracer is not None and tracer.enabled:
                    self._emit_generate(tracer, out, cached=False)
                return out
            key = (state, self._symmetry_key(last_op))
            cache = self._successor_cache
            hit = cache.get(key)
            if hit is not None:
                if self.config.cache_capacity is not None:
                    cache.move_to_end(key)
                if stats is not None:
                    stats.successor_cache_hits += 1
                    stats.generated(len(hit))
                if tracer is not None and tracer.enabled:
                    tracer.emit(CACHE_HIT, cache="successor")
                    self._emit_generate(tracer, hit, cached=True)
                return list(hit)
            out = self._compute_successors(state, last_op)
            cache[key] = out
            if stats is not None:
                stats.successor_cache_misses += 1
                stats.generated(len(out))
            if tracer is not None and tracer.enabled:
                tracer.emit(CACHE_MISS, cache="successor")
                self._emit_generate(tracer, out, cached=False)
            capacity = self.config.cache_capacity
            if capacity is not None and len(cache) > capacity:
                cache.popitem(last=False)
                if stats is not None:
                    stats.successor_cache_evictions += 1
            return list(out)
        finally:
            if stats is not None:
                stats.time_in_successors += perf_counter() - start

    @staticmethod
    def _emit_generate(
        tracer, successors: Sequence[tuple[Operator, Database]], cached: bool
    ) -> None:
        """Emit one ``generate`` event with per-operator-family counts."""
        ops: dict[str, int] = {}
        for op, _child in successors:
            ops[op.keyword] = ops.get(op.keyword, 0) + 1
        tracer.emit(GENERATE, count=len(successors), cached=cached, ops=ops)

    def _symmetry_key(self, last_op: Operator | None) -> object:
        """The part of *last_op* the proposal rules actually consult.

        Successor sets depend on the producing operator only through the
        symmetry-breaking comparisons in ``_propose_attribute_renames``,
        ``_propose_relation_renames``, and ``_propose_drops`` — all other
        operator classes (and ``break_symmetry=False``) make the successor
        set independent of ``last_op``, so they share one canonical key.
        """
        if not self.config.break_symmetry or last_op is None:
            return None
        if isinstance(last_op, RenameAttribute):
            return ("rename_att", last_op.relation, last_op.old)
        if isinstance(last_op, RenameRelation):
            return ("rename_rel", last_op.old)
        if isinstance(last_op, DropAttribute):
            return ("drop", last_op.relation, last_op.attribute)
        return None

    def _compute_successors(
        self, state: Database, last_op: Operator | None
    ) -> list[tuple[Operator, Database]]:
        """Uncached successor generation (propose, apply, deduplicate)."""
        moves = self._propose(state, last_op)
        moves.sort(key=lambda op: (_FAMILY_ORDER.get(op.keyword, 99), str(op)))
        intern = self.config.cache_successors
        track = self.track_deltas
        out: list[tuple[Operator, Database]] = []
        seen: set[Database] = {state}
        for op in moves:
            try:
                child = op.apply(state, self.registry)
            except (OperatorApplicationError, SchemaError, NameCollisionError):
                continue
            if child in seen:
                continue  # no-op or duplicate of an earlier move
            seen.add(child)
            canonical = self._intern(child) if intern else child
            if track:
                # The identity sweep needs the freshly applied child (its
                # untouched relations are the parent's objects); the summary
                # it implies is a value property, so it transfers to the
                # canonical object unchanged.
                attach_provenance(canonical, state, StateDelta.between(state, child))
            out.append((op, canonical))
        return out

    # -- proposal rules -----------------------------------------------------------

    def _propose(self, state: Database, last_op: Operator | None) -> list[Operator]:
        """All applicable moves from *state* (order-free; callers sort).

        Symmetry-broken families (attribute renames, drops) and relation
        renames consult *last_op*; everything else is served from one
        per-relation "static bundle" probe — see :meth:`_static_moves`.
        """
        config = self.config
        prune = config.prune_targets
        self._moves_cached = self._move_caching_enabled()
        moves: list[Operator] = []
        missing_rels = self._target_rels.difference(state.relation_name_view())

        if config.allows("rename_att"):
            moves.extend(self._propose_attribute_renames(state, last_op))
        if config.allows("rename_rel") and (missing_rels or not prune):
            moves.extend(self._propose_relation_renames(state, missing_rels, last_op))
        if config.allows("apply"):
            moves.extend(self._propose_lambdas(state, last_op))
        if config.allows("drop"):
            moves.extend(self._propose_drops(state, last_op))

        if self._static_families:
            demote_missing: frozenset = frozenset()
            if self._demote_allowed and prune:
                if caching.columnar_kernel_enabled():
                    demote_missing = (
                        self._target_value_text_ids - state.value_text_ids()
                    )
                else:
                    demote_missing = (
                        self._target_value_texts - state.value_texts()
                    )
            view = self._relation_view
            data_build = self._data_moves
            schema_build = self._schema_moves
            for rel in state:
                promote, deref = view(("moves", rel), rel, data_build)
                merge, demote = view(
                    ("schema", rel.name, rel.attributes, rel.has_nulls),
                    rel,
                    schema_build,
                )
                moves.extend(promote)
                moves.extend(merge)
                moves.extend(deref)
                if demote is None or not demote_missing.isdisjoint(demote):
                    moves.append(Demote(rel.name))

        if self._partition_allowed and (missing_rels or not prune):
            moves.extend(self._propose_partitions(state, missing_rels))
        if config.allows("product"):
            moves.extend(self._propose_products(state))
        return moves

    def _data_moves(self, rel: Relation) -> tuple[tuple, tuple]:
        """Promote and dereference moves: the data-dependent bundle.

        Both families test column *contents* against target token sets, so
        their probe keys on the relation value.  (Partitions stay separate:
        they are gated on missing target relations, and folding them in
        would charge their candidate computation to states the original
        rule never touched.)  Families the config disallows contribute
        empty entries, so the bundle shape is fixed per problem.
        """
        config = self.config
        promote = self._promote_moves(rel) if config.allows("promote") else ()
        deref = self._deref_moves(rel) if config.allows("deref") else ()
        return (promote, deref)

    def _schema_moves(self, rel: Relation) -> tuple[tuple, frozenset | None]:
        """Merge moves and demote candidates: the schema-only bundle.

        Neither family inspects column contents — merges depend on the
        attribute names plus the has-nulls bit, demote candidates on the
        schema names — so the probe keys on ``(name, attributes,
        has_nulls)`` and is shared across states whose relations differ
        only in data.  Demote candidates: ``None`` = always fires
        (non-prune), empty = never (disallowed).
        """
        config = self.config
        merge = self._merge_moves(rel) if config.allows("merge") else ()
        demote: frozenset | None
        if self._demote_allowed:
            demote = self._demote_candidates(rel) if config.prune_targets else None
        else:
            demote = frozenset()
        return (merge, demote)

    def _propose_partitions(
        self, state: Database, missing_rels: frozenset[str]
    ) -> list[Operator]:
        moves: list[Operator] = []
        if not self.config.prune_targets:
            for rel in state:
                for attr in rel.attributes:
                    moves.append(Partition(rel.name, attr))
            return moves
        # Candidate tokens per column are relation-local; only the
        # "is the candidate still missing" test depends on the state.
        missing: frozenset | set
        if caching.columnar_kernel_enabled():
            missing = _interned_name_set(missing_rels)
        else:
            missing = missing_rels
        view = self._relation_view
        build = self._partition_candidates
        for rel in state:
            for attr, cand in view(("partition", rel), rel, build):
                if not missing.isdisjoint(cand):
                    moves.append(Partition(rel.name, attr))
        return moves

    def _missing_atts_for(self, rel: Relation) -> frozenset[str]:
        """Target attributes the relation still lacks.

        If the target has a relation of the same name, aim for its
        attributes; otherwise aim for the union of target attributes.
        """
        wanted = self._target_attrs_by_rel.get(rel.name, self._target_atts)
        return frozenset(wanted) - rel.attribute_set

    def _propose_attribute_renames(
        self, state: Database, last_op: Operator | None
    ) -> list[Operator]:
        # The symmetry break ("canonical order within a run of renames")
        # depends on the last operator only through a floor attribute, so
        # the cache holds moves grouped by renamed-from attribute and the
        # floor filter runs over the (short) group list per state.
        follows_rename = self.config.break_symmetry and isinstance(
            last_op, RenameAttribute
        )
        cached = self._moves_cached
        view = self._relation_view
        build = self._attribute_rename_groups
        moves: list[Operator] = []
        for rel in state:
            floor = (
                last_op.old
                if follows_rename and last_op.relation == rel.name
                else None
            )
            if not cached:
                # uncached (ablation) arms build exactly the floored list —
                # grouping would construct moves the floor then discards
                moves.extend(self._attribute_rename_moves(rel, floor))
                continue
            # schema key: rename groups never look at column contents
            groups = view(("rename_att", rel.name, rel.attributes), rel, build)
            if not groups:
                continue
            if floor is None:
                for _old, group in groups:
                    moves.extend(group)
            else:
                for old, group in groups:
                    if old > floor:  # canonical order within a run of renames
                        moves.extend(group)
        return moves

    def _attribute_rename_moves(
        self, rel: Relation, floor: str | None
    ) -> list[Operator]:
        prune = self.config.prune_targets
        if prune:
            wanted = self._missing_atts_for(rel)
        else:
            wanted = self._target_atts - rel.attribute_set
        if not wanted:
            return []
        ordered = sorted(wanted)
        target_atts = self._target_atts
        moves: list[Operator] = []
        for old in rel.attributes:
            if prune and old in target_atts:
                continue  # never rename away a name the target uses
            if floor is not None and old <= floor:
                continue  # canonical order within a run of renames
            for new in ordered:
                moves.append(RenameAttribute(rel.name, old, new))
        return moves

    def _attribute_rename_groups(
        self, rel: Relation
    ) -> tuple[tuple[str, tuple[Operator, ...]], ...]:
        prune = self.config.prune_targets
        if prune:
            wanted = self._missing_atts_for(rel)
        else:
            wanted = self._target_atts - rel.attribute_set
        if not wanted:
            return ()
        ordered = _sorted_names(wanted)
        target_atts = self._target_atts
        name = rel.name
        make = _rename_attribute_op  # flyweight: groups only built when cached
        groups: list[tuple[str, tuple[Operator, ...]]] = []
        for old in rel.attributes:
            if prune and old in target_atts:
                continue  # never rename away a name the target uses
            groups.append((old, tuple([make(name, old, new) for new in ordered])))
        return tuple(groups)

    def _propose_relation_renames(
        self,
        state: Database,
        missing_rels: frozenset[str],
        last_op: Operator | None,
    ) -> list[Operator]:
        ordered = _sorted_names(missing_rels)
        prune = self.config.prune_targets
        follows_rename = self.config.break_symmetry and isinstance(
            last_op, RenameRelation
        )
        moves: list[Operator] = []
        for rel in state:
            if prune and rel.name in self._target_rels:
                continue
            if follows_rename and rel.name <= last_op.old:
                continue
            for new in ordered:
                moves.append(RenameRelation(rel.name, new))
        return moves

    def _propose_lambdas(
        self, state: Database, last_op: Operator | None
    ) -> Iterable[Operator]:
        for corr in self.correspondences:
            for rel in state:
                if corr.relation is not None and corr.relation != rel.name:
                    continue
                if rel.has_attribute(corr.output):
                    continue
                if not all(rel.has_attribute(a) for a in corr.inputs):
                    continue
                # λ applications are deliberately NOT symmetry-broken: the
                # paper treats them "just like any of the other operators"
                # (§4) and its Fig. 9 blind-search curves show the orderings
                # being explored.
                yield ApplyFunction.from_correspondence(rel.name, corr)

    def _promote_moves(self, rel: Relation) -> tuple[Operator, ...]:
        # The per-column "can this supply a missing token" tests are the
        # hottest comparisons in proposal; on the columnar kernel they run
        # over interned text ids (integer set intersections) instead of
        # rendered text sets.  Equal strings share one token, so the two
        # arms accept exactly the same columns.
        prune = self.config.prune_targets
        wanted = self._missing_atts_for(rel)
        if prune and not wanted:
            return ()
        moves: list[Operator] = []
        if prune and caching.columnar_kernel_enabled():
            wanted_ids = _interned_name_set(wanted)
            target_value_ids = self._target_value_text_ids
            make = _promote_op
            name = rel.name
            attrs = rel.attributes
            cols = rel.column_text_id_sets()
            # the value-side test is independent of the name attribute, so
            # hoist it out of the nested loop (same pairs, same order)
            value_attrs = [
                attr
                for attr, col in zip(attrs, cols)
                if not target_value_ids.isdisjoint(col)
            ]
            for name_attr, col in zip(attrs, cols):
                if wanted_ids.isdisjoint(col):
                    continue
                for value_attr in value_attrs:
                    moves.append(make(name, name_attr, value_attr))
            return tuple(moves)
        for name_attr in rel.attributes:
            if prune:
                if not rel.column_texts(name_attr) & wanted:
                    continue
            for value_attr in rel.attributes:
                if prune:
                    value_texts = rel.column_texts(value_attr)
                    if not value_texts & self._target_value_texts:
                        continue
                moves.append(Promote(rel.name, name_attr, value_attr))
        return tuple(moves)

    def _partition_candidates(
        self, rel: Relation
    ) -> tuple[tuple[str, frozenset], ...]:
        """``(attr, candidate tokens)`` pairs: column values that name some
        target relation.  A Partition fires for a state exactly when one of
        the candidates is still missing from that state — the original
        ``column & missing`` test factors as ``(column & target) & missing``
        because missing relations are always a subset of target relations.
        """
        if caching.columnar_kernel_enabled():
            target: frozenset = self._target_rel_ids
            pairs = [
                (attr, cand)
                for attr, col in zip(rel.attributes, rel.column_text_id_sets())
                if (cand := col & target)
            ]
        else:
            pairs = [
                (attr, frozenset(cand))
                for attr in rel.attributes
                if (cand := rel.column_texts(attr) & self._target_rels)
            ]
        return tuple(pairs)

    def _merge_moves(self, rel: Relation) -> tuple[Operator, ...]:
        prune = self.config.prune_targets
        if prune and not rel.has_nulls:
            return ()
        target_atts = self._target_atts
        return tuple(
            Merge(rel.name, attr)
            for attr in rel.attributes
            if not prune or attr in target_atts
        )

    def _propose_drops(
        self, state: Database, last_op: Operator | None
    ) -> list[Operator]:
        follows_drop = self.config.break_symmetry and isinstance(
            last_op, DropAttribute
        )
        cached = self._moves_cached
        view = self._relation_view
        build = self._drop_entries
        moves: list[Operator] = []
        for rel in state:
            floor = (
                last_op.attribute
                if follows_drop and last_op.relation == rel.name
                else None
            )
            if not cached:
                moves.extend(
                    op
                    for attr, op in self._drop_entries(rel)
                    if floor is None or attr > floor
                )
                continue
            # schema key: droppability depends on names plus the nulls bit
            entries = view(("drop", rel.name, rel.attributes, rel.has_nulls), rel, build)
            if not entries:
                continue
            if floor is None:
                moves.extend(op for _attr, op in entries)
            else:
                moves.extend(op for attr, op in entries if attr > floor)
        return moves

    def _drop_entries(
        self, rel: Relation
    ) -> tuple[tuple[str, Operator], ...]:
        if rel.arity <= 1:
            return ()
        droppable = rel.has_nulls or any(
            rel.has_attribute(reserved) for reserved in _RESERVED_ATTRS
        )
        if self.config.prune_targets and not droppable:
            return ()
        target_atts = self._target_atts
        name = rel.name
        return tuple(
            (attr, DropAttribute(name, attr))
            for attr in rel.attributes
            if attr not in target_atts  # never drop a name the target needs
        )

    def _deref_moves(self, rel: Relation) -> tuple[Operator, ...]:
        prune = self.config.prune_targets
        wanted = self._missing_atts_for(rel) if prune else (
            self._target_atts - rel.attribute_set
        )
        if not wanted:
            return ()
        columnar = caching.columnar_kernel_enabled()
        moves: list[Operator] = []
        if columnar:
            ordered = _sorted_names(wanted)
            attr_ids = rel.attribute_ids()
            make = _dereference_op
            name = rel.name
            for pointer, col in zip(rel.attributes, rel.column_text_id_sets()):
                if prune and attr_ids.isdisjoint(col):
                    continue  # pointer values never name an attribute
                for new in ordered:
                    moves.append(make(name, pointer, new))
            return tuple(moves)
        ordered = sorted(wanted)
        attr_names = rel.attribute_set
        for pointer in rel.attributes:
            if prune and not rel.column_texts(pointer) & attr_names:
                continue  # pointer values never name an attribute
            for new in ordered:
                moves.append(Dereference(rel.name, pointer, new))
        return tuple(moves)

    def _demote_candidates(self, rel: Relation) -> frozenset:
        # Schema names that appear among the target's values are
        # relation-local; whether one is still *missing* is the only
        # state-dependent part of the demote test (missing values are a
        # subset of target values, so intersecting these candidates with
        # the missing set matches the original schema-names & missing
        # test).
        if caching.columnar_kernel_enabled():
            return rel.schema_name_ids() & self._target_value_text_ids
        return frozenset(
            (set(rel.attributes) | {rel.name}) & self._target_value_texts
        )

    def _propose_products(self, state: Database) -> Iterable[Operator]:
        relations = list(state)
        for i, left in enumerate(relations):
            for right in relations[i + 1 :]:
                if self.config.prune_targets and not self._product_helps(left, right):
                    continue
                yield CartesianProduct(left.name, right.name)

    def _product_helps(self, left: Relation, right: Relation) -> bool:
        """A product is proposed only if some target relation genuinely
        spans both operands: each side must contribute a target attribute
        the other side lacks."""
        for attrs in self._target_attrs_by_rel.values():
            left_only = (attrs & left.attribute_set) - right.attribute_set
            right_only = (attrs & right.attribute_set) - left.attribute_set
            if left_only and right_only:
                return True
        return False


# -- warm-spill state codec --------------------------------------------------
#
# Spills cross process boundaries, so states are encoded as plain values
# (JSON lists; NULL <-> None) and re-interned on decode.  Decoding trusts
# nothing: a spill is a disposable cache file, so every structural invariant
# the fast constructors assume is re-checked and violations raise ValueError
# for the loader to treat as corruption.


def _encode_relation(rel: Relation) -> list:
    """``[name, attributes, rows]`` with cells as values (NULL -> None)."""
    return [
        rel.name,
        list(rel.attributes),
        [
            [None if is_null(cell) else cell for cell in row]
            for row in rel.sorted_rows_view()
        ],
    ]


def _decode_relation(data: Sequence) -> Relation:
    name, attrs, rows = data
    if not isinstance(name, str) or not all(
        isinstance(a, str) for a in attrs
    ):
        raise ValueError("warm spill: relation names must be strings")
    attributes = tuple(attrs)
    if list(attributes) != sorted(set(attributes)):
        raise ValueError("warm spill: attributes not canonical")
    arity = len(attributes)
    token_rows = set()
    for row in rows:
        if len(row) != arity:
            raise ValueError("warm spill: row arity mismatch")
        token_rows.add(
            tuple(
                intern_value(NULL if cell is None else cell) for cell in row
            )
        )
    return Relation._from_token_rows(name, attributes, frozenset(token_rows))


def _decode_state(refs: Sequence[int], relations: Sequence[Relation]) -> Database:
    rels = tuple(relations[i] for i in refs)
    names = [rel.name for rel in rels]
    if names != sorted(set(names)):
        raise ValueError("warm spill: state relations not canonical")
    return Database._from_sorted(rels)


@lru_cache(maxsize=None)
def _operator_from_text(text: str) -> Operator:
    """One operator parsed from its textual form, memoised.

    The operator vocabulary of a spill is the cross product of one
    problem's schema names — tiny and process-stable, so an unbounded
    cache is safe (same reasoning as the flyweight constructors above).
    """
    from ..fira.parser import parse_expression

    operators = parse_expression(text).operators
    if len(operators) != 1:
        raise ValueError(f"warm spill: expected one operator, got {text!r}")
    return operators[0]
