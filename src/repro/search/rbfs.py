"""Recursive Best-First Search (RBFS), the paper's second algorithm (§2.3).

RBFS explores best-first within linear memory: at each node it recurses
into the lowest-f child with an f-limit equal to the best *alternative*
f-value anywhere on the current path, and on return stores the child's
backed-up f so abandoned subtrees can be re-entered at the right cost
later.  The paper found RBFS generally superior to IDA* (§5.4).
"""

from __future__ import annotations

import math

from ..errors import MappingNotFound
from ..fira.base import Operator
from ..heuristics.base import Heuristic
from ..obs.events import PRUNE
from ..relational.database import Database
from .problem import MappingProblem
from .stats import SearchStats


class _Found(Exception):
    """Internal control flow: a goal was reached (path is on the stack)."""


def rbfs(
    problem: MappingProblem, heuristic: Heuristic, stats: SearchStats
) -> list[Operator]:
    """Run RBFS and return the operator path to a goal state.

    Raises:
        MappingNotFound: if the (pruned) space contains no goal.
        SearchBudgetExceeded: if ``stats.budget`` is exhausted.
    """
    root = problem.initial_state()
    path_ops: list[Operator] = []
    on_path: set[Database] = {root}
    max_depth = problem.config.max_depth
    tracer = stats.tracer

    def visit(
        state: Database,
        last_op: Operator | None,
        g: int,
        f_stored: float,
        f_limit: float,
    ) -> float:
        """Explore *state* within *f_limit*; return its backed-up f-value.

        Raises _Found when a goal is reached (path_ops then holds the path).
        """
        stats.frontier_size = len(on_path)  # progress-heartbeat payload only
        stats.examine(g, state)
        if problem.is_goal(state, stats):
            raise _Found
        if max_depth is not None and g >= max_depth:
            return math.inf
        entries: list[list] = []  # [f, op, child] — mutable f for back-up
        for op, child in problem.successors(state, last_op, stats):
            if child in on_path:
                if tracer.enabled:
                    tracer.emit(PRUNE, reason="on_path", depth=g + 1)
                continue
            f_child = max(g + 1 + heuristic(child), f_stored)
            entries.append([f_child, str(op), op, child])
        if not entries:
            return math.inf
        while True:
            entries.sort(key=lambda e: (e[0], e[1]))
            best = entries[0]
            if best[0] > f_limit or math.isinf(best[0]):
                # second disjunct: every child is exhausted — without it the
                # loop would re-expand dead subtrees forever when f_limit=inf
                return best[0]
            alternative = entries[1][0] if len(entries) > 1 else math.inf
            child_limit = min(f_limit, alternative)
            stats.iteration(
                f=best[0],
                limit=child_limit if math.isfinite(child_limit) else None,
                depth=g + 1,
            )
            op, child = best[2], best[3]
            path_ops.append(op)
            on_path.add(child)
            # On _Found the exception propagates and the path is preserved;
            # on a normal return the child is unwound from the path.
            best[0] = visit(child, op, g + 1, best[0], child_limit)
            path_ops.pop()
            on_path.remove(child)

    try:
        root_f = float(heuristic(root))
        visit(root, None, 0, root_f, math.inf)
    except _Found:
        return list(path_ops)
    raise MappingNotFound("RBFS exhausted the search space")
