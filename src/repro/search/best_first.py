"""A* and greedy best-first baselines (ablation extensions).

The paper reports that "early implementations of TUPELO" used plain A*
best-first search and were ineffective because of its exponential memory
use; IDA* and RBFS replaced it.  We provide A* (f = g + h, closed set) and
greedy best-first (f = h) so the ablation benches can quantify that
trade-off: A* examines the fewest states but holds the frontier + closed
set in memory; IDA*/RBFS re-examine states but stay path-linear.
"""

from __future__ import annotations

import heapq
import itertools

from ..errors import MappingNotFound
from ..fira.base import Operator
from ..heuristics.base import Heuristic
from ..obs.events import PRUNE
from ..relational.database import Database
from .problem import MappingProblem
from .stats import SearchStats


def _best_first(
    problem: MappingProblem,
    heuristic: Heuristic,
    stats: SearchStats,
    weight_g: int,
) -> list[Operator]:
    """Generic priority-queue best-first search.

    ``weight_g=1`` is A*; ``weight_g=0`` is greedy best-first.
    """
    root = problem.initial_state()
    counter = itertools.count()  # FIFO tie-break for determinism
    frontier: list[tuple[float, int, Database]] = []
    heapq.heappush(frontier, (float(heuristic(root)), next(counter), root))
    best_g: dict[Database, int] = {root: 0}
    parent: dict[Database, tuple[Database, Operator] | None] = {root: None}
    closed: set[Database] = set()
    max_depth = problem.config.max_depth
    tracer = stats.tracer

    while frontier:
        _f, _tick, state = heapq.heappop(frontier)
        if state in closed:
            if tracer.enabled:
                tracer.emit(PRUNE, reason="closed")
            continue
        closed.add(state)
        g = best_g[state]
        stats.current_f = _f  # progress-heartbeat payload only
        stats.frontier_size = len(frontier)
        stats.examine(g, state)
        if problem.is_goal(state, stats):
            return _reconstruct(parent, state)
        if max_depth is not None and g >= max_depth:
            continue
        came_from = parent[state]
        last_op = came_from[1] if came_from is not None else None
        for op, child in problem.successors(state, last_op, stats):
            child_g = g + 1
            known = best_g.get(child)
            if known is not None and known <= child_g:
                if tracer.enabled:
                    tracer.emit(PRUNE, reason="dominated", depth=child_g)
                continue
            best_g[child] = child_g
            parent[child] = (state, op)
            if child in closed:
                closed.remove(child)  # re-open: a cheaper path appeared
            f = weight_g * child_g + heuristic(child)
            heapq.heappush(frontier, (float(f), next(counter), child))
    raise MappingNotFound("best-first search exhausted the search space")


def _reconstruct(
    parent: dict[Database, tuple[Database, Operator] | None], state: Database
) -> list[Operator]:
    ops: list[Operator] = []
    while True:
        came_from = parent[state]
        if came_from is None:
            break
        state, op = came_from
        ops.append(op)
    ops.reverse()
    return ops


def a_star(
    problem: MappingProblem, heuristic: Heuristic, stats: SearchStats
) -> list[Operator]:
    """A* search (f = g + h) with a closed set."""
    return _best_first(problem, heuristic, stats, weight_g=1)


def greedy(
    problem: MappingProblem, heuristic: Heuristic, stats: SearchStats
) -> list[Operator]:
    """Greedy best-first search (f = h)."""
    return _best_first(problem, heuristic, stats, weight_g=0)
