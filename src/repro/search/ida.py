"""Iterative Deepening A* (IDA*), one of the paper's two algorithms (§2.3).

IDA* performs repeated depth-first probes bounded by the f-value
``f(x) = g(x) + h(x)``, raising the bound to the smallest exceeded f after
each probe.  Memory is linear in the search depth; the price is re-expansion
of shallow states on every iteration — which the paper accepts ("although
they both perform redundant explorations, they do not suffer from the
exponential memory use of basic A*").
"""

from __future__ import annotations

import math

from ..errors import MappingNotFound
from ..fira.base import Operator
from ..heuristics.base import Heuristic
from ..obs.events import PRUNE
from ..relational.database import Database
from .problem import MappingProblem
from .stats import SearchStats

_FOUND = object()


def ida_star(
    problem: MappingProblem, heuristic: Heuristic, stats: SearchStats
) -> list[Operator]:
    """Run IDA* and return the operator path to a goal state.

    Raises:
        MappingNotFound: if the (pruned) space contains no goal.
        SearchBudgetExceeded: if ``stats.budget`` is exhausted.
    """
    root = problem.initial_state()
    path_ops: list[Operator] = []
    on_path: set[Database] = {root}
    max_depth = problem.config.max_depth
    tracer = stats.tracer

    def probe(state: Database, last_op: Operator | None, g: int, bound: float):
        """DFS bounded by f <= bound; returns _FOUND or the next bound."""
        stats.frontier_size = len(on_path)  # progress-heartbeat payload only
        stats.examine(g, state)
        f = g + heuristic(state)
        if f > bound:
            return f
        if problem.is_goal(state, stats):
            return _FOUND
        if max_depth is not None and g >= max_depth:
            return math.inf
        minimum: float = math.inf
        for op, child in problem.successors(state, last_op, stats):
            if child in on_path:
                if tracer.enabled:
                    tracer.emit(PRUNE, reason="on_path", depth=g + 1)
                continue
            path_ops.append(op)
            on_path.add(child)
            outcome = probe(child, op, g + 1, bound)
            if outcome is _FOUND:
                return _FOUND
            path_ops.pop()
            on_path.remove(child)
            if outcome < minimum:
                minimum = outcome
        return minimum

    bound: float = heuristic(root)
    while True:
        stats.iteration(bound=bound)
        outcome = probe(root, None, 0, bound)
        if outcome is _FOUND:
            return list(path_ops)
        if math.isinf(outcome):
            raise MappingNotFound(
                f"IDA* exhausted the search space (final bound {bound})"
            )
        bound = outcome
