"""ASCII rendering of experiment results.

The benches print the same rows/series the paper's figures plot; these
helpers keep that output aligned and consistent.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from .runner import ExperimentSeries


def format_states(states: int, found: bool = True) -> str:
    """Render a states-examined count; budget cut-offs are marked ``>``."""
    return f"{states}" if found else f">{states}"


def ascii_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """A fixed-width table with a separator under the header."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def series_table(series_list: Sequence[ExperimentSeries], x_label: str) -> str:
    """Tabulate several series against their union of x-values.

    Missing points (series cut at the budget) render as ``-``.
    """
    xs = sorted({p.x for s in series_list for p in s.points})
    headers = [x_label] + [s.label for s in series_list]
    by_series = [{p.x: p for p in s.points} for s in series_list]
    rows = []
    for x in xs:
        row: list[object] = [int(x) if float(x).is_integer() else x]
        for lookup in by_series:
            point = lookup.get(x)
            if point is None:
                row.append("-")
            else:
                row.append(format_states(point.states, point.found))
        rows.append(row)
    return ascii_table(headers, rows)


def averages_table(
    averages: Mapping[str, Mapping[str, float]], row_label: str = "heuristic"
) -> str:
    """Tabulate ``{row: {column: value}}`` averages (Fig. 7/8 style)."""
    row_keys = list(averages)
    col_keys: list[str] = []
    for columns in averages.values():
        for key in columns:
            if key not in col_keys:
                col_keys.append(key)
    headers = [row_label] + col_keys
    rows = []
    for row_key in row_keys:
        row: list[object] = [row_key]
        for col in col_keys:
            value = averages[row_key].get(col)
            row.append("-" if value is None else f"{value:.1f}")
        rows.append(row)
    return ascii_table(headers, rows)


def cache_summary_table(series_list: Sequence[ExperimentSeries]) -> str:
    """Tabulate memo-cache counters per series (hits/misses/evictions).

    Sums the cache counters recorded on every point of each series and
    derives the hit rate and aggregate states/sec, so ablation benches can
    print cache effectiveness next to the paper's states-examined tables.

    The eviction total is also split per cache (transposition / goal /
    heuristic — the last derived as total minus the first two), so a
    capacity-bounded sweep shows *which* table churned, not just that one
    did.
    """
    headers = [
        "series",
        "states",
        "cache hits",
        "cache misses",
        "evictions",
        "evict succ",
        "evict goal",
        "evict heur",
        "hit rate",
        "states/sec",
    ]
    rows: list[list[object]] = []
    for series in series_list:
        states = sum(p.states for p in series.points)
        hits = sum(p.cache_hits for p in series.points)
        misses = sum(p.cache_misses for p in series.points)
        evictions = sum(p.cache_evictions for p in series.points)
        evict_succ = sum(p.successor_cache_evictions for p in series.points)
        evict_goal = sum(p.goal_cache_evictions for p in series.points)
        seconds = sum(p.elapsed_seconds for p in series.points)
        lookups = hits + misses
        rate = f"{hits / lookups:.1%}" if lookups else "-"
        throughput = f"{states / seconds:.0f}" if seconds > 0 else "-"
        rows.append(
            [
                series.label,
                states,
                hits,
                misses,
                evictions,
                evict_succ,
                evict_goal,
                evictions - evict_succ - evict_goal,
                rate,
                throughput,
            ]
        )
    return ascii_table(headers, rows)


def stats_table(stats_by_label: Mapping[str, Mapping[str, float | int]]) -> str:
    """Tabulate full ``SearchStats.as_dict()`` renderings side by side.

    *stats_by_label* maps a column label (e.g. ``"cache on"``) to a stats
    dict; rows are the union of stat keys in first-seen order.
    """
    keys: list[str] = []
    for stats in stats_by_label.values():
        for key in stats:
            if key not in keys:
                keys.append(key)
    headers = ["stat"] + list(stats_by_label)
    rows = []
    for key in keys:
        row: list[object] = [key]
        for stats in stats_by_label.values():
            value = stats.get(key)
            if value is None:
                row.append("-")
            elif isinstance(value, float):
                row.append(f"{value:.4f}")
            else:
                row.append(value)
        rows.append(row)
    return ascii_table(headers, rows)


def trace_index_table(series_list: Sequence[ExperimentSeries]) -> str:
    """Tabulate the JSONL traces persisted for a series collection.

    One row per traced point (series run with ``trace_dir=``); inspect any
    row with ``repro trace --inspect PATH``.  Untraced points are skipped.
    """
    headers = ["series", "x", "states", "elapsed (s)", "trace"]
    rows: list[list[object]] = []
    for series in series_list:
        for point in series.points:
            if not point.trace_path:
                continue
            rows.append(
                [
                    series.label,
                    int(point.x) if float(point.x).is_integer() else point.x,
                    format_states(point.states, point.found),
                    f"{point.elapsed_seconds:.3f}",
                    point.trace_path,
                ]
            )
    if not rows:
        return "(no traces recorded — run the series with trace_dir=...)"
    return ascii_table(headers, rows)


def log_bucket(states: float) -> str:
    """The order-of-magnitude bucket of a measurement (for shape checks)."""
    if states <= 0:
        return "10^0"
    return f"10^{int(math.floor(math.log10(states)))}"
