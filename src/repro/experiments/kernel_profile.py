"""Profile the search hot kernel on one Fig. 5 synthetic point.

The Fig. 5 synthetic matching workload is the repo's canonical microcosm of
the hot kernel: IDA*/h0 at modest ``n`` spends essentially all of its time
in successor proposal, operator application, goal tests, and (with a real
heuristic) heuristic evaluation.  :func:`profile_point` runs one such
discovery under :mod:`cProfile` and distils the top cumulative-time sinks,
so a regression or an optimisation shows up as a moved line, not a vibe.

:func:`span_profile_point` is the trace-native alternative: it runs the
same discovery with a :class:`~repro.obs.sinks.MemorySink` tracer and
reassembles the emitted spans into a phase tree
(:mod:`repro.obs.spans`) with self/total time and an optional
collapsed-stack export — attribution by discovery phase rather than by
Python function, at trace overhead instead of cProfile overhead.

Exposed as ``repro profile`` (``--spans`` for the span variant) on the CLI
and as the standalone ``tools/profile_kernel.py`` script.
"""

from __future__ import annotations

import cProfile
import pstats
from dataclasses import dataclass, field

from ..relational import caching
from ..search import SearchConfig, discover_mapping

#: sort orders accepted by :func:`profile_point`
PROFILE_SORTS = ("cumulative", "tottime")


@dataclass(frozen=True)
class ProfileRow:
    """One line of the distilled profile table."""

    ncalls: str
    tottime: float
    cumtime: float
    location: str


@dataclass(frozen=True)
class KernelProfile:
    """Result of one profiled discovery run."""

    n: int
    algorithm: str
    heuristic: str
    kernel_mode: str
    status: str
    states_examined: int
    elapsed_seconds: float
    sort: str
    rows: tuple[ProfileRow, ...] = field(default_factory=tuple)

    def table(self) -> str:
        """ASCII rendering: headline line plus the top-N sink rows."""
        lines = [
            f"profile: synthetic n={self.n} {self.algorithm}/{self.heuristic} "
            f"kernel={self.kernel_mode}",
            f"status={self.status} states_examined={self.states_examined} "
            f"elapsed={self.elapsed_seconds:.3f}s",
            "",
            f"{'ncalls':>12} {'tottime':>9} {'cumtime':>9}  function "
            f"(sorted by {self.sort})",
        ]
        for row in self.rows:
            lines.append(
                f"{row.ncalls:>12} {row.tottime:>9.3f} {row.cumtime:>9.3f}  "
                f"{row.location}"
            )
        return "\n".join(lines)


def _format_location(func: tuple[str, int, str]) -> str:
    filename, lineno, name = func
    if filename == "~":
        return name  # builtins render as e.g. "<method 'append' of 'list'>"
    short = filename
    for marker in ("/repro/", "\\repro\\"):
        if marker in filename:
            short = "repro/" + filename.split(marker, 1)[1]
            break
    return f"{short}:{lineno}({name})"


def _distil(
    profiler: cProfile.Profile, sort: str, top: int
) -> tuple[ProfileRow, ...]:
    stats = pstats.Stats(profiler)
    if sort == "cumulative":
        order = sorted(
            stats.stats.items(), key=lambda item: item[1][3], reverse=True
        )
    else:
        order = sorted(
            stats.stats.items(), key=lambda item: item[1][2], reverse=True
        )
    rows = []
    for func, (cc, nc, tottime, cumtime, _callers) in order[:top]:
        ncalls = str(nc) if cc == nc else f"{nc}/{cc}"
        rows.append(
            ProfileRow(
                ncalls=ncalls,
                tottime=tottime,
                cumtime=cumtime,
                location=_format_location(func),
            )
        )
    return tuple(rows)


def profile_point(
    n: int = 5,
    algorithm: str = "ida",
    heuristic: str = "h0",
    budget: int = 1_000_000,
    top: int = 20,
    sort: str = "cumulative",
    warm: bool = True,
) -> KernelProfile:
    """cProfile one synthetic matching discovery and distil the sinks.

    Args:
        n: synthetic schema size (Fig. 5 x-axis).
        algorithm / heuristic / budget: forwarded to the search engine.
        top: number of profile rows to keep.
        sort: ``"cumulative"`` (default) or ``"tottime"``.
        warm: run the discovery once unprofiled first, so one-time costs
            (intern pool population, import side effects) don't drown the
            steady-state kernel in the profile.
    """
    if sort not in PROFILE_SORTS:
        raise ValueError(f"sort must be one of {PROFILE_SORTS}, got {sort!r}")
    from ..workloads import matching_pair

    pair = matching_pair(n)
    config = SearchConfig(max_states=budget)
    if warm:
        discover_mapping(
            pair.source, pair.target, algorithm=algorithm,
            heuristic=heuristic, config=config,
        )
    profiler = cProfile.Profile()
    profiler.enable()
    result = discover_mapping(
        pair.source, pair.target, algorithm=algorithm,
        heuristic=heuristic, config=config,
    )
    profiler.disable()
    return KernelProfile(
        n=n,
        algorithm=algorithm,
        heuristic=heuristic,
        kernel_mode=caching.kernel_mode(),
        status=result.status,
        states_examined=result.stats.states_examined,
        elapsed_seconds=result.stats.elapsed,
        sort=sort,
        rows=_distil(profiler, sort, top),
    )


@dataclass(frozen=True)
class SpanProfile:
    """Result of one span-traced discovery run."""

    n: int
    algorithm: str
    heuristic: str
    kernel_mode: str
    status: str
    states_examined: int
    elapsed_seconds: float
    roots: tuple = ()

    def table(self) -> str:
        """ASCII rendering: headline line plus the span tree."""
        from ..obs.spans import render_span_tree

        lines = [
            f"span profile: synthetic n={self.n} "
            f"{self.algorithm}/{self.heuristic} kernel={self.kernel_mode}",
            f"status={self.status} states_examined={self.states_examined} "
            f"elapsed={self.elapsed_seconds:.3f}s",
            "",
            render_span_tree(self.roots),
        ]
        return "\n".join(lines)

    def collapsed(self) -> list[str]:
        """Collapsed-stack lines for flamegraph.pl / speedscope."""
        from ..obs.spans import collapsed_stacks

        return collapsed_stacks(self.roots)


def span_profile_point(
    n: int = 5,
    algorithm: str = "ida",
    heuristic: str = "h0",
    budget: int = 1_000_000,
    warm: bool = True,
) -> SpanProfile:
    """Trace one synthetic discovery and reassemble its span tree.

    Same workload and warm-up contract as :func:`profile_point`, but the
    measurement is the run's own span events instead of cProfile — phase
    attribution (setup / search / expansion loop / successor generation /
    heuristic evaluation / goal tests / simplify) with self/total time.
    """
    from ..obs.sinks import MemorySink
    from ..obs.spans import build_span_tree
    from ..obs.tracer import Tracer
    from ..workloads import matching_pair

    pair = matching_pair(n)
    config = SearchConfig(max_states=budget)
    if warm:
        discover_mapping(
            pair.source, pair.target, algorithm=algorithm,
            heuristic=heuristic, config=config,
        )
    sink = MemorySink()
    result = discover_mapping(
        pair.source, pair.target, algorithm=algorithm,
        heuristic=heuristic, config=config, tracer=Tracer(sink),
    )
    return SpanProfile(
        n=n,
        algorithm=algorithm,
        heuristic=heuristic,
        kernel_mode=caching.kernel_mode(),
        status=result.status,
        states_examined=result.stats.states_examined,
        elapsed_seconds=result.stats.elapsed,
        roots=tuple(build_span_tree(sink.events)),
    )
