"""Experiment runner: regenerate the paper's evaluation series (§5).

Each ``run_*`` function reproduces the measurement behind one family of
figures, returning structured points (x-value, states examined, status) that
the benches print and EXPERIMENTS.md records.  States are counted exactly as
in the paper; tasks that exhaust the state budget are reported at the budget
value with status ``budget_exceeded`` — the equivalent of the paper's plots
being cut at 10^6.

Telemetry hooks: every ``run_*`` function accepts ``trace_dir=`` (persist a
JSONL trace per measured point next to the archived series — each
:class:`ExperimentPoint` then carries its ``trace_path``) and ``metrics=``
(one shared :class:`~repro.obs.metrics.MetricsRegistry` accumulating
counters and distribution histograms across the whole series).

Parallelism: every ``run_*`` function also accepts ``workers=N`` — the
series' measured points shard across a process pool
(:mod:`repro.parallel.fanout`) and come back re-sorted by grid index, so
the persisted points are identical to a serial sweep except for the
volatile fields (wall-clock, and trace paths gaining a per-worker ``.w{n}``
marker).  ``workers=0`` (the default) keeps the serial code path untouched;
pools that fail to start degrade back to serial execution automatically.
With ``stop_after_cutoff`` a parallel sweep still *measures* every
requested point (workers cannot see each other's cut-offs) and truncates on
collection, trading wasted work for wall-clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from ..obs.metrics import MetricsRegistry
from ..obs.sinks import JsonlSink
from ..obs.tracer import Tracer
from ..search.config import SearchConfig
from ..search.engine import discover_mapping
from ..search.result import STATUS_FOUND, SearchResult
from ..workloads.bamm import BammDomain, bamm_corpus
from ..workloads.semantic_domains import (
    PAPER_FUNCTION_COUNTS,
    SemanticDomain,
)
from ..workloads.synthetic import matching_pair


@dataclass(frozen=True)
class ExperimentPoint:
    """One measured point of an experiment series.

    Attributes:
        x: the independent variable (schema size, function count, ...).
        states: states examined (capped at the budget when exceeded).
        status: the search status at this point.
        expression_size: operators in the discovered expression (0 if none).
        cache_hits: memo-cache hits (transposition + goal + heuristic).
        cache_misses: memo-cache misses.
        cache_evictions: memo-cache LRU evictions (all three caches).
        successor_cache_evictions: transposition-table LRU evictions alone
            (the first cache to churn when ``cache_capacity`` binds).
        goal_cache_evictions: goal-verdict cache LRU evictions alone.
        elapsed_seconds: wall-clock time of the search run.
        trace_path: path of the JSONL trace persisted for this point
            (empty when the series ran without ``trace_dir``).
        deadline_seconds: per-point wall-clock deadline the search ran
            under (0.0 = unbounded); points with status
            ``deadline_exceeded`` carry their partial counters.
    """

    x: float
    states: int
    status: str
    expression_size: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    successor_cache_evictions: int = 0
    goal_cache_evictions: int = 0
    elapsed_seconds: float = 0.0
    trace_path: str = ""
    deadline_seconds: float = 0.0

    @property
    def found(self) -> bool:
        return self.status == STATUS_FOUND


@dataclass(frozen=True)
class ExperimentSeries:
    """A labelled series of measured points (one plotted line)."""

    label: str
    points: tuple[ExperimentPoint, ...]

    def states(self) -> list[int]:
        """The y-values of the series."""
        return [p.states for p in self.points]


def _point(x: float, result: SearchResult, trace_path: str = "") -> ExperimentPoint:
    size = len(result.expression) if result.expression is not None else 0
    return ExperimentPoint(
        x=x,
        states=result.states_examined,
        status=result.status,
        expression_size=size,
        cache_hits=result.stats.cache_hits,
        cache_misses=result.stats.cache_misses,
        cache_evictions=result.stats.cache_evictions,
        successor_cache_evictions=result.stats.successor_cache_evictions,
        goal_cache_evictions=result.stats.goal_cache_evictions,
        elapsed_seconds=result.stats.elapsed,
        trace_path=trace_path,
        deadline_seconds=result.stats.deadline_seconds or 0.0,
    )


def _trace_path(trace_dir: str | Path | None, label: str, x: float) -> str:
    """The JSONL trace path for one measured point ("" when tracing is off).

    Trace files land in *trace_dir* as ``<label>_x<value>.jsonl`` with
    ``/`` flattened to ``-`` so each series label stays one directory.
    Parallel sweeps splice a ``.w{worker}`` marker in before the extension.
    """
    if trace_dir is None:
        return ""
    safe = label.replace("/", "-").replace(" ", "_")
    x_text = f"{x:g}".replace(".", "_")
    path = Path(trace_dir) / f"{safe}_x{x_text}.jsonl"
    path.parent.mkdir(parents=True, exist_ok=True)
    return str(path)


def _trace_sink(
    trace_dir: str | Path | None, label: str, x: float
) -> tuple[Tracer | None, str]:
    """A JSONL tracer for one measured point (None when tracing is off)."""
    path = _trace_path(trace_dir, label, x)
    if not path:
        return None, ""
    return Tracer(JsonlSink(path)), path


def _truncate_after_cutoff(points: list[ExperimentPoint]) -> list[ExperimentPoint]:
    """Apply the serial ``stop_after_cutoff`` contract to collected points.

    A serial sweep appends the first failing point and stops; a parallel
    sweep measures the whole grid and truncates here, so both persist the
    same series.
    """
    out: list[ExperimentPoint] = []
    for point in points:
        out.append(point)
        if not point.found:
            break
    return out


def run_matching_series(
    algorithm: str,
    heuristic: str,
    sizes: Sequence[int],
    budget: int = 1_000_000,
    k: float | None = None,
    stop_after_cutoff: bool = True,
    trace_dir: str | Path | None = None,
    metrics: MetricsRegistry | None = None,
    workers: int = 0,
    start_method: str | None = None,
    deadline_seconds: float | None = None,
    store: str | Path | None = None,
) -> ExperimentSeries:
    """Experiment 1 (Figs. 5 & 6): synthetic schema matching.

    Measures states examined for matching the ``A1..An -> B1..Bn`` pair at
    each size.  With *stop_after_cutoff* (default), the series stops once a
    size exhausts the budget — larger sizes only get more expensive, which
    is how the paper's curves end at the 10^6 cut.  *trace_dir* persists a
    JSONL trace per point; *metrics* aggregates counters across the series.
    With ``workers >= 1`` the sizes shard across a process pool (see the
    module docstring for the determinism contract).  *deadline_seconds*
    bounds every point's wall-clock individually; a point that runs out of
    time lands with status ``deadline_exceeded`` and its partial counters
    (and, under *stop_after_cutoff*, ends the series like a budget cut).
    *store* points every measured point — serial or sharded — at one
    shared :class:`~repro.store.WarmStartStore` path, so repeated sweeps
    serve memoised mappings and workers warm each other's searches.
    """
    label = f"{algorithm}/{heuristic}"
    if workers >= 1:
        from ..parallel.fanout import PointSpec, run_experiment_points

        specs = [
            PointSpec(
                index=i,
                kind="matching",
                x=size,
                algorithm=algorithm,
                heuristic=heuristic,
                k=k,
                budget=budget,
                size=size,
                trace_path=_trace_path(trace_dir, label, size),
                store_path=str(store) if store is not None else "",
                collect_metrics=metrics is not None,
                deadline_seconds=deadline_seconds or 0.0,
            )
            for i, size in enumerate(sizes)
        ]
        points = run_experiment_points(
            specs, workers, start_method=start_method, metrics=metrics
        )
        if stop_after_cutoff:
            points = _truncate_after_cutoff(points)
        return ExperimentSeries(label=label, points=tuple(points))
    config = SearchConfig(max_states=budget, deadline_seconds=deadline_seconds)
    points = []
    for size in sizes:
        pair = matching_pair(size)
        tracer, trace_path = _trace_sink(trace_dir, label, size)
        try:
            result = discover_mapping(
                pair.source,
                pair.target,
                algorithm=algorithm,
                heuristic=heuristic,
                k=k,
                config=config,
                simplify=False,
                tracer=tracer,
                metrics=metrics,
                store=store,
            )
        finally:
            if tracer is not None:
                tracer.close()
        points.append(_point(size, result, trace_path))
        if stop_after_cutoff and not result.found:
            break
    return ExperimentSeries(label=label, points=tuple(points))


def run_bamm_domain(
    algorithm: str,
    heuristic: str,
    domain: BammDomain,
    budget: int = 100_000,
    k: float | None = None,
    limit: int | None = None,
    trace_dir: str | Path | None = None,
    metrics: MetricsRegistry | None = None,
    workers: int = 0,
    start_method: str | None = None,
    deadline_seconds: float | None = None,
) -> ExperimentSeries:
    """Experiment 2 (Figs. 7 & 8): one BAMM domain, fixed source -> targets.

    Returns one point per interface (x = interface id); callers average the
    states (the paper reports per-domain averages).  *limit* restricts the
    number of interfaces for quick runs.  ``workers >= 1`` shards the
    interfaces across a process pool (databases ship with the spec — BAMM
    tasks are generated, not rebuildable from a name).  *deadline_seconds*
    bounds each interface's wall-clock individually.
    """
    tasks = domain.tasks[:limit] if limit is not None else domain.tasks
    label = f"{algorithm}/{heuristic}/{domain.name}"
    if workers >= 1:
        from ..parallel.fanout import PointSpec, run_experiment_points

        specs = [
            PointSpec(
                index=i,
                kind="databases",
                x=task.interface_id,
                algorithm=algorithm,
                heuristic=heuristic,
                k=k,
                budget=budget,
                source=task.source,
                target=task.target,
                trace_path=_trace_path(trace_dir, label, task.interface_id),
                collect_metrics=metrics is not None,
                deadline_seconds=deadline_seconds or 0.0,
            )
            for i, task in enumerate(tasks)
        ]
        points = run_experiment_points(
            specs, workers, start_method=start_method, metrics=metrics
        )
        return ExperimentSeries(label=label, points=tuple(points))
    config = SearchConfig(max_states=budget, deadline_seconds=deadline_seconds)
    points = []
    for task in tasks:
        tracer, trace_path = _trace_sink(trace_dir, label, task.interface_id)
        try:
            result = discover_mapping(
                task.source,
                task.target,
                algorithm=algorithm,
                heuristic=heuristic,
                k=k,
                config=config,
                simplify=False,
                tracer=tracer,
                metrics=metrics,
            )
        finally:
            if tracer is not None:
                tracer.close()
        points.append(_point(task.interface_id, result, trace_path))
    return ExperimentSeries(label=label, points=tuple(points))


def average_states(series: ExperimentSeries) -> float:
    """Mean states examined across a series (budget-capped points included)."""
    states = series.states()
    return sum(states) / len(states) if states else 0.0


def run_bamm_averages(
    algorithm: str,
    heuristic: str,
    budget: int = 100_000,
    k: float | None = None,
    limit: int | None = None,
    seed: int = 2006,
) -> dict[str, float]:
    """Per-domain average states for one algorithm/heuristic (Fig. 7 bars)."""
    corpus = bamm_corpus(seed)
    return {
        name: average_states(
            run_bamm_domain(algorithm, heuristic, domain, budget, k, limit)
        )
        for name, domain in corpus.items()
    }


def run_semantic_series(
    algorithm: str,
    heuristic: str,
    domain: SemanticDomain,
    counts: Sequence[int] = PAPER_FUNCTION_COUNTS,
    budget: int = 100_000,
    k: float | None = None,
    stop_after_cutoff: bool = True,
    trace_dir: str | Path | None = None,
    metrics: MetricsRegistry | None = None,
    workers: int = 0,
    start_method: str | None = None,
    deadline_seconds: float | None = None,
) -> ExperimentSeries:
    """Experiment 3 (Fig. 9): states vs number of complex functions.

    ``workers >= 1`` shards the function counts across a process pool when
    the domain's function registry has a named provider (the registry
    itself holds callables and cannot cross a process line); unknown
    domains fall back to the serial sweep.  *deadline_seconds* bounds each
    point's wall-clock individually.
    """
    label = f"{algorithm}/{heuristic}/{domain.name}"
    if workers >= 1:
        from ..parallel.providers import has_provider

        if has_provider(domain.name):
            from ..parallel.fanout import PointSpec, run_experiment_points

            grid: list[int] = []
            for n in counts:
                if n > domain.max_functions:
                    break
                grid.append(n)
            specs = []
            for i, n in enumerate(grid):
                task = domain.task(n)
                specs.append(
                    PointSpec(
                        index=i,
                        kind="semantic",
                        x=n,
                        algorithm=algorithm,
                        heuristic=heuristic,
                        k=k,
                        budget=budget,
                        source=task.source,
                        target=task.target,
                        correspondences=tuple(task.correspondences),
                        registry_provider=domain.name,
                        trace_path=_trace_path(trace_dir, label, n),
                        collect_metrics=metrics is not None,
                        deadline_seconds=deadline_seconds or 0.0,
                    )
                )
            points = run_experiment_points(
                specs, workers, start_method=start_method, metrics=metrics
            )
            if stop_after_cutoff:
                points = _truncate_after_cutoff(points)
            return ExperimentSeries(label=label, points=tuple(points))
    config = SearchConfig(max_states=budget, deadline_seconds=deadline_seconds)
    points = []
    for n in counts:
        if n > domain.max_functions:
            break
        task = domain.task(n)
        tracer, trace_path = _trace_sink(trace_dir, label, n)
        try:
            result = discover_mapping(
                task.source,
                task.target,
                algorithm=algorithm,
                heuristic=heuristic,
                k=k,
                correspondences=task.correspondences,
                registry=task.registry,
                config=config,
                simplify=False,
                tracer=tracer,
                metrics=metrics,
            )
        finally:
            if tracer is not None:
                tracer.close()
        points.append(_point(n, result, trace_path))
        if stop_after_cutoff and not result.found:
            break
    return ExperimentSeries(label=label, points=tuple(points))
