"""Persist experiment results to JSON.

Bench runs are cheap but not free; this module archives
:class:`~repro.experiments.runner.ExperimentSeries` collections so results
can be versioned, diffed across runs, and re-rendered into tables/charts
without re-searching.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Sequence

from ..serialize import json_dumps_indent2, json_loads
from .runner import ExperimentPoint, ExperimentSeries

#: current archive format version
FORMAT_VERSION = 1


def _point_to_dict(point: ExperimentPoint) -> dict:
    out = {
        "x": point.x,
        "states": point.states,
        "status": point.status,
        "expression_size": point.expression_size,
        "cache_hits": point.cache_hits,
        "cache_misses": point.cache_misses,
        "cache_evictions": point.cache_evictions,
        "elapsed_seconds": point.elapsed_seconds,
        "trace_path": point.trace_path,
    }
    # only deadline-bounded points carry the field, so archives written by
    # unbounded sweeps stay byte-identical to the historical format
    if point.deadline_seconds:
        out["deadline_seconds"] = point.deadline_seconds
    # same shape-preservation rule for the per-cache eviction split: only
    # capacity-bounded sweeps (where a cache actually churned) carry it
    if point.successor_cache_evictions:
        out["successor_cache_evictions"] = point.successor_cache_evictions
    if point.goal_cache_evictions:
        out["goal_cache_evictions"] = point.goal_cache_evictions
    return out


def series_to_dict(series: ExperimentSeries) -> dict:
    """Plain-dict form of one series."""
    return {
        "label": series.label,
        "points": [_point_to_dict(point) for point in series.points],
    }


def series_from_dict(data: Mapping) -> ExperimentSeries:
    """Inverse of :func:`series_to_dict`."""
    return ExperimentSeries(
        label=str(data["label"]),
        points=tuple(
            ExperimentPoint(
                x=point["x"],
                states=int(point["states"]),
                status=str(point["status"]),
                expression_size=int(point.get("expression_size", 0)),
                cache_hits=int(point.get("cache_hits", 0)),
                cache_misses=int(point.get("cache_misses", 0)),
                cache_evictions=int(point.get("cache_evictions", 0)),
                successor_cache_evictions=int(
                    point.get("successor_cache_evictions", 0)
                ),
                goal_cache_evictions=int(point.get("goal_cache_evictions", 0)),
                elapsed_seconds=float(point.get("elapsed_seconds", 0.0)),
                trace_path=str(point.get("trace_path", "")),
                deadline_seconds=float(point.get("deadline_seconds", 0.0)),
            )
            for point in data["points"]
        ),
    )


def save_series(
    path: str | Path,
    series_list: Sequence[ExperimentSeries],
    metadata: Mapping[str, object] | None = None,
) -> Path:
    """Write series (plus free-form metadata) to a JSON file."""
    path = Path(path)
    payload = {
        "format_version": FORMAT_VERSION,
        "metadata": dict(metadata or {}),
        "series": [series_to_dict(series) for series in series_list],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json_dumps_indent2(payload) + "\n")
    return path


def load_series(path: str | Path) -> tuple[list[ExperimentSeries], dict]:
    """Read series and metadata back from a JSON archive.

    Raises:
        ValueError: on unknown format versions.
    """
    payload = json_loads(Path(path).read_text())
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported experiment archive version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    series_list = [series_from_dict(item) for item in payload["series"]]
    return series_list, dict(payload.get("metadata", {}))
