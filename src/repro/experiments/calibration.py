"""Scaling-constant calibration (the §5 constants table).

The paper tunes the scaling constant ``k`` of the normalized Euclidean,
cosine, and Levenshtein heuristics per search algorithm by "extensive
empirical evaluation ... on the data sets".  This module re-derives the
constants: sweep candidate k values over a calibration workload (synthetic
matching sizes + a BAMM sample) and pick the k minimising total states
examined, breaking ties toward smaller k.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..search.config import SearchConfig
from ..search.engine import discover_mapping
from ..workloads.bamm import bamm_domain
from ..workloads.synthetic import matching_pair

#: heuristics that carry a scaling constant
SCALED_HEURISTICS: tuple[str, ...] = ("euclid_norm", "cosine", "levenshtein")

#: candidate constants swept by default (covers the paper's 5..24 range)
DEFAULT_K_GRID: tuple[float, ...] = tuple(range(1, 31))


@dataclass(frozen=True)
class CalibrationTask:
    """One (source, target) pair used for calibration."""

    name: str
    source: object
    target: object


def calibration_tasks(
    matching_sizes: Sequence[int] = (2, 3, 4, 5),
    bamm_samples: int = 4,
    seed: int = 2006,
) -> list[CalibrationTask]:
    """A small mixed workload: synthetic matching + BAMM interfaces."""
    tasks: list[CalibrationTask] = []
    for size in matching_sizes:
        pair = matching_pair(size)
        tasks.append(CalibrationTask(f"match-{size}", pair.source, pair.target))
    domain = bamm_domain("Books", seed)
    for task in domain.tasks[:bamm_samples]:
        tasks.append(
            CalibrationTask(
                f"bamm-{task.interface_id}", task.source, task.target
            )
        )
    return tasks


def total_states(
    algorithm: str,
    heuristic: str,
    k: float,
    tasks: Sequence[CalibrationTask],
    budget: int = 20_000,
) -> int:
    """Total states examined by (algorithm, heuristic, k) over *tasks*.

    Budget-exceeded tasks contribute the full budget, penalising constants
    that stall the search.
    """
    config = SearchConfig(max_states=budget)
    total = 0
    for task in tasks:
        result = discover_mapping(
            task.source,
            task.target,
            algorithm=algorithm,
            heuristic=heuristic,
            k=k,
            config=config,
            simplify=False,
        )
        total += result.states_examined
    return total


def calibrate(
    algorithm: str,
    heuristic: str,
    grid: Sequence[float] = DEFAULT_K_GRID,
    tasks: Sequence[CalibrationTask] | None = None,
    budget: int = 20_000,
) -> tuple[float, dict[float, int]]:
    """Sweep *grid* and return (best k, {k: total states}).

    Ties break toward the smallest k.
    """
    if tasks is None:
        tasks = calibration_tasks()
    costs = {
        k: total_states(algorithm, heuristic, k, tasks, budget) for k in grid
    }
    best = min(sorted(costs), key=lambda k: costs[k])
    return best, costs


def calibrate_all(
    algorithms: Sequence[str] = ("ida", "rbfs"),
    heuristics: Sequence[str] = SCALED_HEURISTICS,
    grid: Sequence[float] = DEFAULT_K_GRID,
    budget: int = 20_000,
) -> dict[str, dict[str, float]]:
    """Best k per (algorithm, heuristic) — our version of the §5 table."""
    tasks = calibration_tasks()
    return {
        algorithm: {
            heuristic: calibrate(algorithm, heuristic, grid, tasks, budget)[0]
            for heuristic in heuristics
        }
        for algorithm in algorithms
    }
