"""ASCII log-scale charts for the regenerated figures.

The paper's figures plot *states examined* on a log axis against schema
size / function count.  :func:`ascii_chart` renders the same series as a
fixed-width chart so the bench output visually mirrors the figures (one
mark per series per x, log-scaled rows).
"""

from __future__ import annotations

import math
from typing import Sequence

from .runner import ExperimentSeries

#: marks assigned to series, in order
SERIES_MARKS = "ox*+#%@&"


def _log(value: float) -> float:
    return math.log10(max(value, 1.0))


def ascii_chart(
    series_list: Sequence[ExperimentSeries],
    x_label: str = "x",
    height: int = 12,
    width_per_x: int = 4,
) -> str:
    """Render series as a log-scale ASCII chart with a legend.

    Each column is one x value; each series draws its mark at the row
    matching ``log10(states)``; collisions print ``!``.
    """
    if not series_list or all(not s.points for s in series_list):
        return "(no data)"
    xs = sorted({p.x for s in series_list for p in s.points})
    top = max(_log(p.states) for s in series_list for p in s.points)
    top = max(top, 1.0)

    def row_of(states: int) -> int:
        return min(height - 1, int(round(_log(states) / top * (height - 1))))

    grid = [[" "] * (len(xs) * width_per_x) for _ in range(height)]
    for mark, series in zip(SERIES_MARKS, series_list):
        lookup = {p.x: p for p in series.points}
        for column, x in enumerate(xs):
            point = lookup.get(x)
            if point is None:
                continue
            row = row_of(point.states)
            cell = column * width_per_x + width_per_x // 2
            grid[row][cell] = "!" if grid[row][cell] not in (" ", mark) else mark

    lines = []
    for row in range(height - 1, -1, -1):
        magnitude = row / (height - 1) * top
        label = f"10^{magnitude:>4.1f} |"
        lines.append(label + "".join(grid[row]))
    axis = " " * 8 + "+" + "-" * (len(xs) * width_per_x)
    lines.append(axis)
    ticks = " " * 9
    for x in xs:
        ticks += str(int(x) if float(x).is_integer() else x).center(width_per_x)
    lines.append(ticks)
    lines.append(" " * 9 + f"({x_label}; y = states examined, log scale)")
    legend = "  ".join(
        f"{mark}={series.label}"
        for mark, series in zip(SERIES_MARKS, series_list)
    )
    lines.append(" " * 9 + legend)
    return "\n".join(lines)
