"""Matching-quality evaluation against gold correspondences.

The paper's Experiment 1 text says each algorithm/heuristic combination
"was evaluated on generating the correct matchings"; states-examined plots
presume the discovered mappings are right.  This module makes that explicit
for the BAMM workload, whose generator knows the ground truth: compare the
schema matching induced by a discovered expression
(:func:`repro.fira.matching.extract_matching`) against the task's gold
(canonical, interface-name) pairs, and report precision/recall.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..fira.expression import MappingExpression
from ..fira.matching import extract_matching
from ..workloads.bamm import BammTask


@dataclass(frozen=True)
class MatchQuality:
    """Precision/recall of a discovered matching vs the gold renames."""

    expected: frozenset[tuple[str, str]]
    found: frozenset[tuple[str, str]]

    @property
    def true_positives(self) -> int:
        return len(self.expected & self.found)

    @property
    def precision(self) -> float:
        """Fraction of discovered renames that are gold."""
        if not self.found:
            return 1.0 if not self.expected else 0.0
        return self.true_positives / len(self.found)

    @property
    def recall(self) -> float:
        """Fraction of gold renames that were discovered."""
        if not self.expected:
            return 1.0
        return self.true_positives / len(self.expected)

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        if p + r == 0:
            return 0.0
        return 2 * p * r / (p + r)

    @property
    def perfect(self) -> bool:
        """Whether the discovered matching equals the gold exactly."""
        return self.expected == self.found


def evaluate_matching(task: BammTask, expression: MappingExpression) -> MatchQuality:
    """Score *expression*'s induced matching against *task*'s gold renames.

    Only 1-1 attribute renames are compared (the BAMM workload has no
    complex correspondences); extra structural operators in the expression
    (if any) do not affect the score.
    """
    matching = extract_matching(expression)
    found = frozenset(
        (m.source_attributes[0], m.target_attribute)
        for m in matching.attribute_matches
        if m.via == "rename" and len(m.source_attributes) == 1
    )
    return MatchQuality(
        expected=frozenset(task.gold_renames),
        found=found,
    )
