"""Experiment harness: runners, calibration, and ASCII reporting (§5)."""

from .calibration import (
    DEFAULT_K_GRID,
    SCALED_HEURISTICS,
    CalibrationTask,
    calibrate,
    calibrate_all,
    calibration_tasks,
    total_states,
)
from .kernel_profile import (
    PROFILE_SORTS,
    KernelProfile,
    ProfileRow,
    SpanProfile,
    profile_point,
    span_profile_point,
)
from .persist import load_series, save_series, series_from_dict, series_to_dict
from .plots import SERIES_MARKS, ascii_chart
from .quality import MatchQuality, evaluate_matching
from .report import (
    ascii_table,
    averages_table,
    cache_summary_table,
    format_states,
    log_bucket,
    series_table,
    stats_table,
    trace_index_table,
)
from .runner import (
    ExperimentPoint,
    ExperimentSeries,
    average_states,
    run_bamm_averages,
    run_bamm_domain,
    run_matching_series,
    run_semantic_series,
)

__all__ = [
    "DEFAULT_K_GRID",
    "SCALED_HEURISTICS",
    "CalibrationTask",
    "calibrate",
    "calibrate_all",
    "calibration_tasks",
    "total_states",
    "PROFILE_SORTS",
    "KernelProfile",
    "ProfileRow",
    "profile_point",
    "SpanProfile",
    "span_profile_point",
    "load_series",
    "save_series",
    "series_from_dict",
    "series_to_dict",
    "SERIES_MARKS",
    "ascii_chart",
    "MatchQuality",
    "evaluate_matching",
    "ascii_table",
    "averages_table",
    "cache_summary_table",
    "format_states",
    "log_bucket",
    "series_table",
    "stats_table",
    "trace_index_table",
    "ExperimentPoint",
    "ExperimentSeries",
    "average_states",
    "run_bamm_averages",
    "run_bamm_domain",
    "run_matching_series",
    "run_semantic_series",
]
