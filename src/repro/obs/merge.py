"""Cross-process trace aggregation: many JSONL traces, one timeline.

A parallel run leaves one trace file per process — the experiment fan-out
writes per-worker ``<label>.w{n}.jsonl`` files and the portfolio racer
per-arm ``arm_<name>.jsonl`` files.  Each file's timestamps are
``perf_counter`` offsets from *that process's* tracer arming, so they are
not comparable across files on their own; the ``wall``/``pid`` anchors the
:class:`~repro.obs.sinks.JsonlSink` stamps into every ``trace_header``
supply the common clock.

:func:`merge_traces` rebases every event onto the earliest source's
timeline, tags it with its source label (``src``), interleaves all sources
in causal (wall-clock) order, and re-sequences the result — producing one
stream that :func:`~repro.obs.report.replay_counters`,
:func:`~repro.obs.report.run_profile`, and
:func:`~repro.obs.spans.build_span_tree` consume unchanged.
:func:`merged_metrics` folds the per-source replayed counters into one
:class:`~repro.obs.metrics.MetricsRegistry` via ``merge_from``, so a
``workers=2`` sweep aggregates to exactly the counters the serial sweep
publishes.  ``repro trace --merge`` is the CLI face of this module.

Worker files may be torn mid-line when a process was killed (portfolio
losers, crashed workers): :func:`load_trace_lenient` tolerates a truncated
*final* line, recording it in :attr:`TraceSource.torn` instead of raising.
Corruption anywhere else still fails loudly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterable, Sequence

from ..errors import TraceFormatError
from ..serialize import json_dumps_compact, json_loads
from .events import SCHEMA_VERSION, TRACE_HEADER, validate_event
from .metrics import MetricsRegistry
from .report import replay_counters


@dataclass
class TraceSource:
    """One loaded trace file: its header anchors, events, and label."""

    path: str
    label: str
    header: dict
    events: list[dict]
    torn: bool = False

    @property
    def wall(self) -> float:
        """Wall-clock anchor of this source's t=0 (0.0 for old traces)."""
        return float(self.header.get("wall", 0.0))


@dataclass
class MergedTrace:
    """The merged timeline plus per-source bookkeeping."""

    events: list[dict]
    sources: list[TraceSource]
    wall_base: float = 0.0

    @property
    def torn_sources(self) -> list[str]:
        return [source.label for source in self.sources if source.torn]


def load_trace_lenient(path: str | Path) -> TraceSource:
    """Load one JSONL trace, tolerating a torn final line only.

    A killed worker can leave its last line half-written; that line is
    dropped and the source is marked ``torn``.  A bad line anywhere else,
    a missing header, or a schema-version mismatch raises
    :class:`~repro.errors.TraceFormatError` exactly like
    :func:`~repro.obs.tracer.load_trace`.
    """
    path = Path(path)
    records: list[dict] = []
    torn = False
    with path.open("r", encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json_loads(line))
        except ValueError as err:
            if lineno == len(lines):  # torn final line: killed mid-write
                torn = True
                break
            raise TraceFormatError(
                f"{path}:{lineno}: not valid JSON: {err}"
            ) from err
    if not records or records[0].get("event") != TRACE_HEADER:
        raise TraceFormatError(
            f"{path}: missing trace_header record (not a repro trace?)"
        )
    header = records[0]
    version = header.get("schema_version")
    if version != SCHEMA_VERSION:
        raise TraceFormatError(
            f"{path}: trace schema version {version!r} unsupported "
            f"(this build reads version {SCHEMA_VERSION})"
        )
    return TraceSource(
        path=str(path),
        label=path.stem,
        header=header,
        events=records[1:],
        torn=torn,
    )


def merge_traces(paths: Iterable[str | Path]) -> MergedTrace:
    """Merge many per-process traces into one causally-ordered timeline.

    Every event gains a ``src`` label (the source file's stem) and its
    timestamp is rebased to seconds since the *earliest* source's tracer
    armed, using the wall-clock header anchors.  Events are interleaved in
    rebased-time order (ties broken by source order then original seq) and
    re-sequenced 1..N, so the merged stream satisfies
    :func:`~repro.obs.events.validate_events` again.

    Raises:
        TraceFormatError: no paths given, an unreadable/foreign file, or
            mid-file corruption in any source.
    """
    sources = [load_trace_lenient(path) for path in paths]
    if not sources:
        raise TraceFormatError("no trace files to merge")
    wall_base = min(source.wall for source in sources)
    keyed: list[tuple[float, int, int, dict]] = []
    for index, source in enumerate(sources):
        offset = source.wall - wall_base
        for event in source.events:
            record = dict(event)
            record["t"] = offset + float(record.get("t", 0.0))
            record["src"] = source.label
            keyed.append((record["t"], index, int(record.get("seq", 0)), record))
    keyed.sort(key=lambda item: item[:3])
    events: list[dict] = []
    for seq, (_t, _index, _seq, record) in enumerate(keyed, start=1):
        record["seq"] = seq
        events.append(record)
    return MergedTrace(events=events, sources=sources, wall_base=wall_base)


def merged_metrics(merged: MergedTrace) -> MetricsRegistry:
    """Fold each source's replayed counters into one registry.

    One registry per source is filled from
    :func:`~repro.obs.report.replay_counters` (namespaced ``trace.*``) and
    accumulated via :meth:`~repro.obs.metrics.MetricsRegistry.merge_from` —
    the same mechanism the live fan-out uses — so the merged totals for a
    ``workers=N`` run equal the serial run's totals.
    """
    totals = MetricsRegistry()
    for source in merged.sources:
        per_source = MetricsRegistry()
        for name, value in replay_counters(source.events).items():
            per_source.counter(f"trace.{name}").inc(int(value))
        totals.merge_from(per_source)
    return totals


def merge_report(merged: MergedTrace) -> str:
    """ASCII summary: per-source rows plus the merged counter totals."""
    from ..experiments.report import ascii_table  # local: avoids import cycle

    rows = []
    for source in merged.sources:
        counters = replay_counters(source.events)
        start = (
            f"{(source.wall - merged.wall_base):.3f}s" if source.wall else "-"
        )
        rows.append(
            [
                source.label + (" (torn)" if source.torn else ""),
                len(source.events),
                counters["states_examined"],
                counters["states_generated"],
                counters["iterations"],
                start,
            ]
        )
    lines = [
        f"merged trace: {len(merged.sources)} source(s), "
        f"{len(merged.events)} events"
    ]
    lines.append(
        ascii_table(
            ["source", "events", "examined", "generated", "iterations", "start+"],
            rows,
            title="per-source (start+ = tracer armed after earliest source)",
        )
    )
    totals = merged_metrics(merged).counters()
    total_rows = [
        [name.removeprefix("trace."), value]
        for name, value in totals.items()
        if value
    ]
    if total_rows:
        lines.append("")
        lines.append(
            ascii_table(
                ["counter", "total"],
                total_rows,
                title="merged counters (MetricsRegistry.merge_from)",
            )
        )
    if merged.torn_sources:
        lines.append("")
        lines.append(
            "torn source(s), final line dropped: "
            + ", ".join(merged.torn_sources)
        )
    return "\n".join(lines)


def write_merged(merged: MergedTrace, path: str | Path) -> None:
    """Persist the merged timeline as a fresh JSONL trace.

    The header stamps the current schema version, the earliest source's
    wall anchor, and the contributing source labels; the body is the
    merged event stream, so the file round-trips through
    :func:`~repro.obs.tracer.load_trace` and every downstream report.
    """
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        _write_record(
            fh,
            {
                "event": TRACE_HEADER,
                "seq": 0,
                "t": 0.0,
                "schema_version": SCHEMA_VERSION,
                "wall": merged.wall_base,
                "merged_from": [source.label for source in merged.sources],
            },
        )
        for record in merged.events:
            validate_event(record, record.get("seq", 0))
            _write_record(fh, record)


def _write_record(fh: IO[str], record: dict) -> None:
    fh.write(json_dumps_compact(record) + "\n")


def discover_trace_files(target: str | Path) -> list[Path]:
    """Expand a CLI merge operand: a directory becomes its ``*.jsonl`` files.

    Files are returned sorted by name so merges are deterministic; a file
    path passes through as-is.
    """
    target = Path(target)
    if target.is_dir():
        return sorted(target.glob("*.jsonl"))
    return [target]
