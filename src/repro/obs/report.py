"""Run-inspection tooling: replay a trace into counters and render a profile.

Two consumers of the event stream:

* :func:`replay_counters` — fold the events back into the quantities
  :class:`~repro.search.stats.SearchStats` counted live.  The contract
  (locked by ``tests/test_obs_report.py``) is exact equality: states
  examined/generated, iterations, and per-cache hit/miss counts replayed
  from a trace match the stats of the very same run.  This is what makes
  a persisted JSONL trace a faithful record of a run, not a summary.

* :func:`run_profile` — a human-readable profile of one run: the header
  line, per-phase wall-clock, the iteration table (IDA* thresholds / RBFS
  backtracks with expansions attributed to each), per-operator-family
  generation counts, and cache efficiency.

Both accept the event list produced by a
:class:`~repro.obs.sinks.MemorySink` or read back by
:func:`~repro.obs.tracer.load_trace`.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .events import (
    BUDGET_EXCEEDED,
    CACHE_HIT,
    CACHE_MISS,
    CACHE_NAMES,
    EXPAND,
    GENERATE,
    GOAL_TEST,
    ITERATION_START,
    PRUNE,
    SEARCH_END,
    SEARCH_START,
    SOLUTION,
)
from .spans import build_span_tree, render_span_tree

#: cap on iteration-table rows rendered by run_profile (RBFS backtracks
#: can number in the thousands; the tail is summarised instead)
MAX_ITERATION_ROWS = 20


def replay_counters(events: Sequence[Mapping]) -> dict[str, int]:
    """Fold a trace back into the live run's counters.

    Returns a dict with ``states_examined``, ``states_generated``,
    ``iterations``, ``max_depth``, ``goal_tests``, ``prunes``,
    ``cache_hits`` / ``cache_misses`` totals, and per-cache
    ``<name>_cache_hits`` / ``<name>_cache_misses`` splits.
    """
    out: dict[str, int] = {
        "states_examined": 0,
        "states_generated": 0,
        "iterations": 0,
        "max_depth": 0,
        "goal_tests": 0,
        "prunes": 0,
        "cache_hits": 0,
        "cache_misses": 0,
    }
    for name in CACHE_NAMES:
        out[f"{name}_cache_hits"] = 0
        out[f"{name}_cache_misses"] = 0
    for record in events:
        event = record.get("event")
        if event == EXPAND:
            out["states_examined"] += 1
            depth = int(record.get("depth", 0))
            if depth > out["max_depth"]:
                out["max_depth"] = depth
        elif event == GENERATE:
            out["states_generated"] += int(record.get("count", 0))
        elif event == ITERATION_START:
            out["iterations"] += 1
        elif event == GOAL_TEST:
            out["goal_tests"] += 1
        elif event == PRUNE:
            out["prunes"] += 1
        elif event == CACHE_HIT:
            out["cache_hits"] += 1
            key = f"{record.get('cache')}_cache_hits"
            if key in out:
                out[key] += 1
        elif event == CACHE_MISS:
            out["cache_misses"] += 1
            key = f"{record.get('cache')}_cache_misses"
            if key in out:
                out[key] += 1
    return out


def _first(events: Sequence[Mapping], event_type: str) -> Mapping | None:
    for record in events:
        if record.get("event") == event_type:
            return record
    return None


def _operator_counts(events: Sequence[Mapping]) -> dict[str, int]:
    """Successors generated per operator family, summed over the run."""
    totals: dict[str, int] = {}
    for record in events:
        if record.get("event") != GENERATE:
            continue
        for family, count in (record.get("ops") or {}).items():
            totals[family] = totals.get(family, 0) + int(count)
    return totals


def _iteration_rows(events: Sequence[Mapping]) -> list[list[object]]:
    """One row per iteration: (#, bound/limit info, expands, elapsed)."""
    rows: list[list[object]] = []
    current: list[object] | None = None
    expands = 0
    started = 0.0
    last_t = 0.0

    def close_row(end_t: float) -> None:
        if current is not None:
            current[2] = expands
            current[3] = f"{(end_t - started) * 1000:.1f}"
            rows.append(current)

    for record in events:
        event = record.get("event")
        last_t = float(record.get("t", last_t))
        if event == ITERATION_START:
            close_row(last_t)
            bound = record.get("bound", record.get("limit", record.get("depth")))
            label = "-" if bound is None else f"{float(bound):g}"
            current = [int(record.get("n", len(rows) + 1)), label, 0, ""]
            expands = 0
            started = last_t
        elif event == EXPAND:
            expands += 1
    close_row(last_t)
    return rows


def _format_seconds(seconds: float) -> str:
    return f"{seconds * 1000:.1f} ms"


def run_profile(events: Sequence[Mapping]) -> str:
    """Render a multi-section ASCII profile of one traced run."""
    from ..experiments.report import ascii_table  # local: avoids import cycle

    counters = replay_counters(events)
    start = _first(events, SEARCH_START) or {}
    end = _first(events, SEARCH_END) or {}
    solution = _first(events, SOLUTION)
    budget = _first(events, BUDGET_EXCEEDED)

    lines: list[str] = []
    algorithm = start.get("algorithm", "?")
    heuristic = start.get("heuristic", "?")
    status = end.get("status", "budget_exceeded" if budget else "?")
    lines.append(f"run profile: {algorithm}/{heuristic}  status={status}")
    elapsed = end.get("elapsed_seconds")
    summary = (
        f"  states examined {counters['states_examined']}"
        f"  generated {counters['states_generated']}"
        f"  iterations {counters['iterations']}"
        f"  max depth {counters['max_depth']}"
    )
    if elapsed is not None:
        summary += f"  wall {_format_seconds(float(elapsed))}"
    lines.append(summary)
    if solution is not None:
        ops = solution.get("ops") or []
        lines.append(
            f"  solution: {solution.get('size', len(ops))} operator(s)"
            + (f" — {'; '.join(str(op) for op in ops)}" if ops else "")
        )
    if budget is not None:
        lines.append(
            f"  budget exceeded: {budget.get('examined')} examined "
            f"(budget {budget.get('budget')})"
        )

    # -- per-phase wall-clock (from the final stats snapshot) ---------------
    phase_keys = (
        ("successor generation", "time_in_successors"),
        ("heuristic evaluation", "time_in_heuristic"),
        ("goal tests", "time_in_goal_tests"),
    )
    if any(key in end for _label, key in phase_keys):
        rows = [
            [label, _format_seconds(float(end.get(key, 0.0)))]
            for label, key in phase_keys
        ]
        lines.append("")
        lines.append(ascii_table(["phase", "time"], rows, title="per-phase time"))

    # -- iteration table ----------------------------------------------------
    iteration_rows = _iteration_rows(events)
    if iteration_rows:
        shown = iteration_rows[:MAX_ITERATION_ROWS]
        lines.append("")
        lines.append(
            ascii_table(
                ["iteration", "bound", "expands", "ms"],
                shown,
                title="iterations (IDA* thresholds / RBFS re-expansions)",
            )
        )
        hidden = len(iteration_rows) - len(shown)
        if hidden > 0:
            tail_expands = sum(int(row[2]) for row in iteration_rows[len(shown):])
            lines.append(f"... {hidden} more iteration(s), {tail_expands} expands")

    # -- per-operator generation counts -------------------------------------
    operator_counts = _operator_counts(events)
    if operator_counts:
        total = sum(operator_counts.values())
        rows = [
            [family, count, f"{count / total:.1%}"]
            for family, count in sorted(
                operator_counts.items(), key=lambda item: (-item[1], item[0])
            )
        ]
        lines.append("")
        lines.append(
            ascii_table(
                ["operator family", "generated", "share"],
                rows,
                title="successors generated per operator family",
            )
        )

    # -- cache efficiency ----------------------------------------------------
    cache_rows = []
    for name in CACHE_NAMES:
        hits = counters[f"{name}_cache_hits"]
        misses = counters[f"{name}_cache_misses"]
        lookups = hits + misses
        if lookups == 0:
            continue
        cache_rows.append([name, hits, misses, f"{hits / lookups:.1%}"])
    if cache_rows:
        lines.append("")
        lines.append(
            ascii_table(
                ["cache", "hits", "misses", "hit rate"],
                cache_rows,
                title="cache efficiency",
            )
        )

    if counters["prunes"]:
        lines.append("")
        lines.append(f"pruned candidates: {counters['prunes']}")

    # -- span tree (traces recorded with the span subsystem) ------------------
    span_roots = build_span_tree(events)
    if span_roots:
        lines.append("")
        lines.append(render_span_tree(span_roots))
    return "\n".join(lines)
