"""Trace event taxonomy and schema.

A trace is an ordered stream of flat dict records.  Every record carries
three envelope fields —

* ``event``: the type tag (one of :data:`EVENT_TYPES`),
* ``seq``: a 1-based monotonically increasing sequence number,
* ``t``: seconds since the tracer was armed (``time.perf_counter`` based,
  so monotonic and immune to wall-clock adjustment),

plus the type-specific payload fields listed in :data:`EVENT_FIELDS`.
Payloads are JSON-scalar only (numbers, strings, bools, None) except for
``generate.ops`` (a ``{family: count}`` dict) and ``solution.ops`` (a list
of operator strings), keeping every record one JSONL line.

Persisted traces start with a ``trace_header`` record stamping
:data:`SCHEMA_VERSION`; :func:`repro.obs.tracer.load_trace` refuses files
whose header is missing or stamps a different version, so old traces fail
loudly instead of silently mis-replaying.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..errors import TraceFormatError

#: bump whenever an event type or payload field changes meaning
SCHEMA_VERSION = 1

# -- event type tags ----------------------------------------------------------

#: first record of every persisted trace (written by JsonlSink)
TRACE_HEADER = "trace_header"
#: one search run begins (algorithm, heuristic, budget)
SEARCH_START = "search_start"
#: an IDA* deepening iteration / RBFS re-expansion / beam layer begins
ITERATION_START = "iteration_start"
#: a state is examined (goal-tested) — the paper's §5 metric, one per count
EXPAND = "expand"
#: a successor list was delivered for an examined state
GENERATE = "generate"
#: a goal-containment test returned a verdict
GOAL_TEST = "goal_test"
#: a memo cache (successor / goal / heuristic) served a lookup
CACHE_HIT = "cache_hit"
#: a memo cache had to compute the looked-up value
CACHE_MISS = "cache_miss"
#: a candidate successor was discarded before examination
PRUNE = "prune"
#: a goal state was reached; payload carries the operator path
SOLUTION = "solution"
#: the state budget was exhausted; the run aborts
BUDGET_EXCEEDED = "budget_exceeded"
#: the wall-clock deadline was exceeded; the run aborts with partial stats
DEADLINE_EXCEEDED = "deadline_exceeded"
#: the run's CancelToken was observed set; the run unwinds cooperatively
CANCELLED = "cancelled"
#: the run is over; payload carries the final SearchStats snapshot
SEARCH_END = "search_end"
#: a nested, timed span opens (discovery phase / expansion loop)
SPAN_START = "span_start"
#: a span closes; payload carries its duration and attached counters
SPAN_END = "span_end"
#: periodic live-progress heartbeat (examined / elapsed / frontier / best-f),
#: emitted at the LIMIT_CHECK_EVERY cadence from the existing limit polls
PROGRESS = "progress"
#: a mapping was compiled for an execution backend
BACKEND_COMPILE = "backend_compile"
#: a compiled script finished executing on a backend
BACKEND_EXECUTE = "backend_execute"
#: the warm-start store served a verified artifact (kind: memo / spill)
STORE_HIT = "store_hit"
#: the warm-start store had nothing servable for a lookup (kind: memo / spill)
STORE_MISS = "store_miss"
#: the warm-start store persisted an artifact (kind: memo / spill)
STORE_WRITE = "store_write"

#: every event type a trace may contain, in rough lifecycle order.
#: (Additions here are backwards-compatible — new event types extend the
#: taxonomy without changing the meaning of existing records, so they do
#: not bump SCHEMA_VERSION.)
EVENT_TYPES: tuple[str, ...] = (
    TRACE_HEADER,
    SEARCH_START,
    ITERATION_START,
    EXPAND,
    GENERATE,
    GOAL_TEST,
    CACHE_HIT,
    CACHE_MISS,
    PRUNE,
    SOLUTION,
    BUDGET_EXCEEDED,
    DEADLINE_EXCEEDED,
    CANCELLED,
    SEARCH_END,
    SPAN_START,
    SPAN_END,
    PROGRESS,
    BACKEND_COMPILE,
    BACKEND_EXECUTE,
    STORE_HIT,
    STORE_MISS,
    STORE_WRITE,
)

#: envelope fields present on every record
ENVELOPE_FIELDS: tuple[str, ...] = ("event", "seq", "t")

#: required payload fields per event type (extra fields are always allowed)
EVENT_FIELDS: dict[str, tuple[str, ...]] = {
    TRACE_HEADER: ("schema_version",),
    SEARCH_START: ("algorithm", "heuristic", "budget"),
    ITERATION_START: ("n",),
    EXPAND: ("depth", "n"),
    GENERATE: ("count",),
    GOAL_TEST: ("verdict",),
    CACHE_HIT: ("cache",),
    CACHE_MISS: ("cache",),
    PRUNE: ("reason",),
    SOLUTION: ("size",),
    BUDGET_EXCEEDED: ("budget", "examined"),
    DEADLINE_EXCEEDED: ("deadline", "elapsed", "examined"),
    CANCELLED: ("examined",),
    SEARCH_END: ("status",),
    SPAN_START: ("span", "name"),
    SPAN_END: ("span", "name", "dur"),
    PROGRESS: ("examined", "elapsed"),
    BACKEND_COMPILE: ("backend", "statements"),
    BACKEND_EXECUTE: ("backend", "statements", "dur"),
    STORE_HIT: ("kind",),
    STORE_MISS: ("kind",),
    STORE_WRITE: ("kind",),
}

#: cache labels used by cache_hit / cache_miss events
CACHE_NAMES: tuple[str, ...] = ("successor", "goal", "heuristic")


def validate_event(record: Mapping, position: int = 0) -> None:
    """Check one record against the schema; raise TraceFormatError if bad."""
    if not isinstance(record, Mapping):
        raise TraceFormatError(f"record {position}: not a mapping: {record!r}")
    for key in ENVELOPE_FIELDS:
        if key not in record:
            raise TraceFormatError(
                f"record {position}: missing envelope field {key!r}"
            )
    event = record["event"]
    if event not in EVENT_FIELDS:
        raise TraceFormatError(
            f"record {position}: unknown event type {event!r}"
        )
    missing = [key for key in EVENT_FIELDS[event] if key not in record]
    if missing:
        raise TraceFormatError(
            f"record {position}: {event} record missing field(s) {missing}"
        )


def validate_events(events: Iterable[Mapping]) -> int:
    """Validate a whole event stream (schema + monotone seq / t).

    Returns the number of records checked.

    Raises:
        TraceFormatError: on the first malformed record or ordering
            violation.
    """
    count = 0
    last_seq: int | None = None
    last_t: float | None = None
    for position, record in enumerate(events):
        validate_event(record, position)
        seq, t = record["seq"], record["t"]
        if last_seq is not None and seq <= last_seq:
            raise TraceFormatError(
                f"record {position}: seq {seq} not increasing (after {last_seq})"
            )
        if last_t is not None and t < last_t:
            raise TraceFormatError(
                f"record {position}: timestamp {t} went backwards (after {last_t})"
            )
        last_seq, last_t = seq, t
        count += 1
    return count
