"""The tracer: typed event emission with pluggable sinks.

One :class:`Tracer` instruments one search run.  Instrumentation sites
throughout the kernel (:mod:`repro.search`, :mod:`repro.heuristics`) hold
the tracer via :attr:`repro.search.stats.SearchStats.tracer` and guard
every emission with the :attr:`Tracer.enabled` flag::

    tracer = stats.tracer
    if tracer.enabled:
        tracer.emit(EXPAND, depth=g, n=stats.states_examined)

With the default :class:`~repro.obs.sinks.NullSink` the guard is the whole
cost — one attribute load and one branch — so an untraced search is
bit-identical (results, counters, examined-state order) to a traced-with-
NullSink one; ``tests/test_trace_equivalence.py`` asserts exactly that.

Timestamps are ``time.perf_counter()`` offsets from the moment the tracer
was constructed: monotonic, sub-microsecond, and immune to wall-clock
steps (the same clock :class:`~repro.search.stats.SearchStats` uses for
its phase timers).
"""

from __future__ import annotations

from pathlib import Path
from time import perf_counter

from ..errors import TraceFormatError, TraceWriteError
from ..serialize import json_loads
from ..resilience.runtime import resilience_warning
from .events import SCHEMA_VERSION, SPAN_END, SPAN_START, TRACE_HEADER, validate_events
from .sinks import JsonlSink, MemorySink, NullSink, Sink


class SpanHandle:
    """One open span: a timed, nested region of a traced run.

    Obtained from :meth:`Tracer.span` and used as a context manager::

        with tracer.span("search", algorithm="ida") as sp:
            ...
            sp.annotate(examined=stats.states_examined)

    Entering emits a ``span_start`` event (with the span's id, its parent's
    id when nested, and any keyword attributes); exiting emits ``span_end``
    with the measured duration plus everything passed to :meth:`annotate`.
    Span ids are small integers unique within one tracer, so a trace's
    spans reassemble into a tree offline (:mod:`repro.obs.spans`).
    """

    __slots__ = ("tracer", "span_id", "parent_id", "name", "_attrs", "_t_start")

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent_id: int | None,
        name: str,
        attrs: dict,
    ) -> None:
        self.tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self._attrs = attrs
        self._t_start = 0.0

    def annotate(self, **counters: object) -> None:
        """Attach counters to this span; emitted in its ``span_end`` event."""
        self._attrs.update(counters)

    def __enter__(self) -> "SpanHandle":
        tracer = self.tracer
        self._t_start = perf_counter()
        payload: dict = {"span": self.span_id}
        if self.parent_id is not None:
            payload["parent"] = self.parent_id
        if self._attrs:
            payload.update(self._attrs)
            self._attrs = {}
        tracer._span_stack.append(self.span_id)
        tracer.emit(SPAN_START, name=self.name, **payload)
        return self

    def __exit__(self, *exc_info: object) -> None:
        tracer = self.tracer
        dur = perf_counter() - self._t_start
        stack = tracer._span_stack
        if stack and stack[-1] == self.span_id:
            stack.pop()
        elif self.span_id in stack:  # out-of-order close; drop through it
            del stack[stack.index(self.span_id):]
        payload: dict = {"span": self.span_id, "dur": dur}
        if self.parent_id is not None:
            payload["parent"] = self.parent_id
        if self._attrs:
            payload.update(self._attrs)
        tracer.emit(SPAN_END, name=self.name, **payload)


class _NullSpan:
    """Shared no-op span returned by a disabled tracer — zero allocation."""

    __slots__ = ()

    def annotate(self, **counters: object) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Emit typed trace events into a sink.

    Args:
        sink: event destination; defaults to a :class:`NullSink`, which
            makes :attr:`enabled` False and every :meth:`emit` a no-op.

    A sink that fails mid-run (:class:`~repro.errors.TraceWriteError` or a
    raw ``OSError`` from a custom sink) does not abort the search: the
    tracer *degrades* — closes the broken sink, swaps in a
    :class:`NullSink`, disables itself, and records one
    ``resilience.trace_write_errors`` warning.  The run finishes untraced;
    :attr:`degraded_reason` says why.
    """

    __slots__ = (
        "sink",
        "enabled",
        "seq",
        "_t0",
        "degraded_reason",
        "_span_seq",
        "_span_stack",
    )

    def __init__(self, sink: Sink | None = None) -> None:
        self.sink = sink if sink is not None else NullSink()
        self.enabled = self.sink.enabled
        self.seq = 0
        self._t0 = perf_counter()
        #: set to the failure description if the tracer degraded mid-run
        self.degraded_reason: str | None = None
        self._span_seq = 0
        self._span_stack: list[int] = []

    def emit(self, event: str, **payload: object) -> None:
        """Record one event (no-op when the sink is disabled)."""
        if not self.enabled:
            return
        self.seq += 1
        record: dict = {
            "event": event,
            "seq": self.seq,
            "t": perf_counter() - self._t0,
        }
        if payload:
            record.update(payload)
        try:
            self.sink.write(record)
        except (TraceWriteError, OSError) as exc:
            self._degrade(exc)

    def span(self, name: str, **attrs: object) -> "SpanHandle | _NullSpan":
        """Open a nested, timed span (shared no-op handle when disabled).

        Returns a context manager; the span nests under whichever span is
        currently open on this tracer.  Attributes given here ride on the
        ``span_start`` event; counters attached later via
        :meth:`SpanHandle.annotate` ride on ``span_end``.
        """
        if not self.enabled:
            return _NULL_SPAN
        self._span_seq += 1
        parent = self._span_stack[-1] if self._span_stack else None
        return SpanHandle(self, self._span_seq, parent, name, attrs)

    def _degrade(self, exc: BaseException) -> None:
        """Swap the broken sink for a NullSink and keep the run alive."""
        self.degraded_reason = f"{type(exc).__name__}: {exc}"
        resilience_warning("trace_write_errors", self.degraded_reason)
        try:
            self.sink.close()
        except (TraceWriteError, OSError):  # already broken; nothing to save
            pass
        self.sink = NullSink()
        self.enabled = False

    def close(self) -> None:
        """Close the underlying sink (exception-safe on broken sinks)."""
        try:
            self.sink.close()
        except (TraceWriteError, OSError):
            pass

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"<Tracer sink={type(self.sink).__name__} "
            f"enabled={self.enabled} events={self.seq}>"
        )


#: shared do-nothing tracer — the default on every SearchStats, so the
#: kernel never needs a None check, only the ``enabled`` branch
NULL_TRACER = Tracer(NullSink())


def memory_tracer() -> tuple[Tracer, MemorySink]:
    """Convenience: a tracer recording into a fresh in-memory sink."""
    sink = MemorySink()
    return Tracer(sink), sink


def load_trace(path: str | Path, validate: bool = True) -> list[dict]:
    """Read a JSONL trace back as a list of event records.

    The leading ``trace_header`` record is checked against
    :data:`~repro.obs.events.SCHEMA_VERSION` and stripped, so callers see
    only search events.  With *validate* (default) the remaining stream is
    schema-checked via :func:`~repro.obs.events.validate_events`.

    Raises:
        TraceFormatError: missing/foreign header, version mismatch,
            malformed JSON line, or (when validating) a bad record.
    """
    path = Path(path)
    records: list[dict] = []
    with path.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json_loads(line))
            except ValueError as err:
                raise TraceFormatError(
                    f"{path}:{lineno}: not valid JSON: {err}"
                ) from err
    if not records or records[0].get("event") != TRACE_HEADER:
        raise TraceFormatError(
            f"{path}: missing trace_header record (not a repro trace?)"
        )
    version = records[0].get("schema_version")
    if version != SCHEMA_VERSION:
        raise TraceFormatError(
            f"{path}: trace schema version {version!r} unsupported "
            f"(this build reads version {SCHEMA_VERSION})"
        )
    events = records[1:]
    if validate:
        validate_events(events)
    return events


def record_jsonl(path: str | Path) -> Tracer:
    """A tracer streaming to *path* (``OSError`` raised here if unwritable)."""
    return Tracer(JsonlSink(path))
