"""Trace sinks — where :class:`~repro.obs.tracer.Tracer` events go.

Each sink consumes flat event records (see :mod:`repro.obs.events`).  The
class attribute :attr:`Sink.enabled` is the zero-overhead switch: the
tracer checks it once per *potential* event, so a disabled sink
(:class:`NullSink`, the default) costs exactly one attribute load and one
branch per instrumentation site — the invariant
``tests/test_trace_equivalence.py`` locks down.
"""

from __future__ import annotations

import logging
import os
import time
from pathlib import Path
from typing import IO, Mapping

from ..errors import TraceWriteError
from ..resilience.faults import inject
from ..serialize import json_dumps_compact

#: stdlib logger the LoggingSink bridges to
TRACE_LOGGER_NAME = "repro.obs.trace"

#: fault-injection site guarding every JsonlSink record write
SITE_SINK_WRITE = "sink.write"


class Sink:
    """Base sink: receives event records; subclasses decide what to keep."""

    #: consulted (not called) by the tracer before building any record
    enabled: bool = True

    def write(self, record: Mapping) -> None:
        """Consume one event record."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release any resources (idempotent)."""

    def __enter__(self) -> "Sink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class NullSink(Sink):
    """Discard everything — the zero-overhead default.

    ``enabled`` is False, so the tracer never even constructs records;
    tracing with a NullSink is bit-identical to not tracing at all.
    """

    enabled = False

    def write(self, record: Mapping) -> None:  # pragma: no cover - never called
        pass


class MemorySink(Sink):
    """Keep events in an in-process list (tests, interactive inspection)."""

    def __init__(self) -> None:
        self.events: list[dict] = []

    def write(self, record: Mapping) -> None:
        self.events.append(dict(record))

    def __len__(self) -> int:
        return len(self.events)


class JsonlSink(Sink):
    """Stream events to a file, one JSON object per line.

    The file is opened (and the ``trace_header`` record stamped with
    :data:`~repro.obs.events.SCHEMA_VERSION`) at construction time, so an
    unwritable path fails fast with ``OSError`` before any search runs.
    Lines rely on normal file buffering; :meth:`close` flushes.  Long runs
    can therefore stream millions of events without holding them in memory.

    A write that fails *mid-run* (disk full, fd revoked) raises
    :class:`~repro.errors.TraceWriteError` after closing the handle, so a
    broken sink is never left half-open and a retry can never interleave a
    torn line.  :meth:`close` is idempotent and exception-safe: the handle
    is detached before ``close()`` is attempted, and a flush-time
    ``OSError`` is swallowed — the trace is already lost, and close runs
    on unwind paths that must not mask the original failure.
    """

    def __init__(self, path: str | Path) -> None:
        from .events import SCHEMA_VERSION, TRACE_HEADER

        self.path = Path(path)
        self._fh: IO[str] | None = self.path.open("w", encoding="utf-8")
        # wall/pid anchor the header so cross-process traces can be merged
        # onto one timeline (event timestamps are per-process perf_counter
        # offsets and not comparable across workers on their own)
        self.write(
            {
                "event": TRACE_HEADER,
                "seq": 0,
                "t": 0.0,
                "schema_version": SCHEMA_VERSION,
                "wall": time.time(),
                "pid": os.getpid(),
            }
        )

    def write(self, record: Mapping) -> None:
        if self._fh is None:
            raise TraceWriteError(str(self.path), "sink is closed")
        try:
            inject(SITE_SINK_WRITE, key=str(self.path))
            self._fh.write(json_dumps_compact(record) + "\n")
        except OSError as exc:
            self.close()
            raise TraceWriteError(
                str(self.path), f"{type(exc).__name__}: {exc}"
            ) from exc

    def close(self) -> None:
        fh, self._fh = self._fh, None
        if fh is not None:
            try:
                fh.close()
            except OSError:  # flush failure on a dying fd; trace already lost
                pass


class LoggingSink(Sink):
    """Bridge events to stdlib :mod:`logging` (one DEBUG/INFO line each).

    Useful when a deployment already ships structured logs: events render
    as ``event_type key=value ...`` lines under the ``repro.obs.trace``
    logger, so ordinary log routing/filtering applies.
    """

    def __init__(
        self, logger: logging.Logger | None = None, level: int = logging.INFO
    ) -> None:
        self.logger = logger if logger is not None else logging.getLogger(
            TRACE_LOGGER_NAME
        )
        self.level = level

    def write(self, record: Mapping) -> None:
        payload = " ".join(
            f"{key}={record[key]}" for key in sorted(record) if key != "event"
        )
        self.logger.log(self.level, "%s %s", record.get("event"), payload)


#: names accepted by the CLI / reported by ``repro info``
SINK_NAMES: tuple[str, ...] = ("null", "memory", "jsonl", "logging")
