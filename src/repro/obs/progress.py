"""Live progress streaming: heartbeat updates during a running search.

:class:`~repro.search.stats.SearchStats` emits a ``progress`` trace event
and/or calls a :class:`ProgressSink` every :data:`LIMIT_CHECK_EVERY
<repro.search.stats.LIMIT_CHECK_EVERY>` examinations, piggybacking on the
existing cooperative limit polls — a progress-enabled run performs zero
additional polling.  Each update is a frozen :class:`ProgressUpdate`
snapshot: states examined/generated, frontier depth and size, the best
f-value currently under expansion, and elapsed wall-clock.

This is the exact per-request streaming contract the planned
``repro serve`` mode exposes: a server attaches a :class:`CallbackProgress`
per request and forwards updates to the client.  Interactively,
``repro discover --progress`` renders updates with
:class:`ConsoleProgress`.

Callbacks run on the search thread: keep them cheap, and never let them
raise (exceptions would abort the search mid-run; :class:`ProgressSink`
subclasses should catch their own errors).  Progress hooks do not pickle —
the parallel fan-out and portfolio racer accept them only on their serial
paths.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, TextIO


@dataclass(frozen=True)
class ProgressUpdate:
    """One heartbeat snapshot of a running search."""

    examined: int
    generated: int
    depth: int
    frontier: int
    best_f: float | None
    elapsed: float

    def as_dict(self) -> dict[str, float | int | None]:
        return {
            "examined": self.examined,
            "generated": self.generated,
            "depth": self.depth,
            "frontier": self.frontier,
            "best_f": self.best_f,
            "elapsed": self.elapsed,
        }


class ProgressSink:
    """Receiver of heartbeat updates; subclass and override :meth:`update`."""

    def update(self, progress: ProgressUpdate) -> None:
        raise NotImplementedError

    def finish(self) -> None:
        """Called once when the run ends (success or abort)."""


class CallbackProgress(ProgressSink):
    """Adapt a plain callable into a :class:`ProgressSink`."""

    def __init__(self, fn: Callable[[ProgressUpdate], None]) -> None:
        self.fn = fn

    def update(self, progress: ProgressUpdate) -> None:
        self.fn(progress)


class ConsoleProgress(ProgressSink):
    """Render heartbeats as a single self-overwriting status line.

    Writes ``\\r``-terminated lines to *stream* (default stderr, keeping
    stdout clean for piped results), throttled to one render per
    *min_interval* seconds so a fast search does not flood the terminal.
    :meth:`finish` ends the line so subsequent output starts clean.
    """

    def __init__(
        self, stream: TextIO | None = None, min_interval: float = 0.1
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self._last_render = 0.0
        self._rendered = False

    def update(self, progress: ProgressUpdate) -> None:
        now = perf_counter()
        if self._rendered and now - self._last_render < self.min_interval:
            return
        self._last_render = now
        self._rendered = True
        best = "-" if progress.best_f is None else f"{progress.best_f:g}"
        try:
            self.stream.write(
                f"\r  examined {progress.examined:>8}"
                f"  generated {progress.generated:>8}"
                f"  depth {progress.depth:>3}"
                f"  frontier {progress.frontier:>5}"
                f"  f {best:>8}"
                f"  {progress.elapsed:6.1f}s "
            )
            self.stream.flush()
        except (OSError, ValueError):  # closed/broken stream: go quiet
            self._last_render = float("inf")

    def finish(self) -> None:
        if not self._rendered:
            return
        try:
            self.stream.write("\n")
            self.stream.flush()
        except (OSError, ValueError):
            pass
