"""repro.obs — the TUPELO telemetry layer.

Structured tracing (typed events, pluggable sinks), a metrics registry
(counters / gauges / fixed-bucket histograms), and run-inspection tooling
(trace replay + ASCII run profiles).  See ``docs/observability.md`` for
the event taxonomy and usage patterns.

Quick use::

    from repro import discover_mapping
    from repro.obs import MemorySink, Tracer, run_profile

    sink = MemorySink()
    result = discover_mapping(src, tgt, algorithm="ida", heuristic="h0",
                              tracer=Tracer(sink))
    print(run_profile(sink.events))
"""

from .events import (
    BUDGET_EXCEEDED,
    CACHE_HIT,
    CACHE_MISS,
    CACHE_NAMES,
    CANCELLED,
    DEADLINE_EXCEEDED,
    ENVELOPE_FIELDS,
    EVENT_FIELDS,
    EVENT_TYPES,
    EXPAND,
    GENERATE,
    GOAL_TEST,
    ITERATION_START,
    PRUNE,
    SCHEMA_VERSION,
    SEARCH_END,
    SEARCH_START,
    SOLUTION,
    TRACE_HEADER,
    validate_event,
    validate_events,
)
from .events import PROGRESS, SPAN_END, SPAN_START
from .merge import (
    MergedTrace,
    TraceSource,
    discover_trace_files,
    load_trace_lenient,
    merge_report,
    merge_traces,
    merged_metrics,
    write_merged,
)
from .metrics import (
    BRANCHING_BUCKETS,
    DEPTH_BUCKETS,
    HEURISTIC_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .progress import (
    CallbackProgress,
    ConsoleProgress,
    ProgressSink,
    ProgressUpdate,
)
from .report import replay_counters, run_profile
from .spans import (
    SpanNode,
    build_span_tree,
    collapsed_stacks,
    render_span_tree,
)
from .sinks import (
    SINK_NAMES,
    JsonlSink,
    LoggingSink,
    MemorySink,
    NullSink,
    Sink,
)
from .tracer import (
    NULL_TRACER,
    SpanHandle,
    Tracer,
    load_trace,
    memory_tracer,
    record_jsonl,
)

__all__ = [
    "PROGRESS",
    "SPAN_END",
    "SPAN_START",
    "MergedTrace",
    "TraceSource",
    "discover_trace_files",
    "load_trace_lenient",
    "merge_report",
    "merge_traces",
    "merged_metrics",
    "write_merged",
    "CallbackProgress",
    "ConsoleProgress",
    "ProgressSink",
    "ProgressUpdate",
    "SpanHandle",
    "SpanNode",
    "build_span_tree",
    "collapsed_stacks",
    "render_span_tree",
    "BUDGET_EXCEEDED",
    "CACHE_HIT",
    "CACHE_MISS",
    "CACHE_NAMES",
    "CANCELLED",
    "DEADLINE_EXCEEDED",
    "ENVELOPE_FIELDS",
    "EVENT_FIELDS",
    "EVENT_TYPES",
    "EXPAND",
    "GENERATE",
    "GOAL_TEST",
    "ITERATION_START",
    "PRUNE",
    "SCHEMA_VERSION",
    "SEARCH_END",
    "SEARCH_START",
    "SOLUTION",
    "TRACE_HEADER",
    "validate_event",
    "validate_events",
    "BRANCHING_BUCKETS",
    "DEPTH_BUCKETS",
    "HEURISTIC_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "replay_counters",
    "run_profile",
    "SINK_NAMES",
    "JsonlSink",
    "LoggingSink",
    "MemorySink",
    "NullSink",
    "Sink",
    "NULL_TRACER",
    "Tracer",
    "load_trace",
    "memory_tracer",
    "record_jsonl",
]
