"""repro.obs — the TUPELO telemetry layer.

Structured tracing (typed events, pluggable sinks), a metrics registry
(counters / gauges / fixed-bucket histograms), and run-inspection tooling
(trace replay + ASCII run profiles).  See ``docs/observability.md`` for
the event taxonomy and usage patterns.

Quick use::

    from repro import discover_mapping
    from repro.obs import MemorySink, Tracer, run_profile

    sink = MemorySink()
    result = discover_mapping(src, tgt, algorithm="ida", heuristic="h0",
                              tracer=Tracer(sink))
    print(run_profile(sink.events))
"""

from .events import (
    BUDGET_EXCEEDED,
    CACHE_HIT,
    CACHE_MISS,
    CACHE_NAMES,
    CANCELLED,
    DEADLINE_EXCEEDED,
    ENVELOPE_FIELDS,
    EVENT_FIELDS,
    EVENT_TYPES,
    EXPAND,
    GENERATE,
    GOAL_TEST,
    ITERATION_START,
    PRUNE,
    SCHEMA_VERSION,
    SEARCH_END,
    SEARCH_START,
    SOLUTION,
    TRACE_HEADER,
    validate_event,
    validate_events,
)
from .metrics import (
    BRANCHING_BUCKETS,
    DEPTH_BUCKETS,
    HEURISTIC_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .report import replay_counters, run_profile
from .sinks import (
    SINK_NAMES,
    JsonlSink,
    LoggingSink,
    MemorySink,
    NullSink,
    Sink,
)
from .tracer import NULL_TRACER, Tracer, load_trace, memory_tracer, record_jsonl

__all__ = [
    "BUDGET_EXCEEDED",
    "CACHE_HIT",
    "CACHE_MISS",
    "CACHE_NAMES",
    "CANCELLED",
    "DEADLINE_EXCEEDED",
    "ENVELOPE_FIELDS",
    "EVENT_FIELDS",
    "EVENT_TYPES",
    "EXPAND",
    "GENERATE",
    "GOAL_TEST",
    "ITERATION_START",
    "PRUNE",
    "SCHEMA_VERSION",
    "SEARCH_END",
    "SEARCH_START",
    "SOLUTION",
    "TRACE_HEADER",
    "validate_event",
    "validate_events",
    "BRANCHING_BUCKETS",
    "DEPTH_BUCKETS",
    "HEURISTIC_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "replay_counters",
    "run_profile",
    "SINK_NAMES",
    "JsonlSink",
    "LoggingSink",
    "MemorySink",
    "NullSink",
    "Sink",
    "NULL_TRACER",
    "Tracer",
    "load_trace",
    "memory_tracer",
    "record_jsonl",
]
