"""Offline span-tree assembly and rendering.

A traced run interleaves ``span_start`` / ``span_end`` records (emitted by
:meth:`repro.obs.tracer.Tracer.span`) with the flat search events.  This
module folds them back into a tree of :class:`SpanNode` objects with
self/total wall-clock per node, renders that tree as ASCII
(:func:`render_span_tree`), and exports it in the collapsed-stack format
(:func:`collapsed_stacks`) consumed by ``flamegraph.pl`` and speedscope.

Two kinds of synthetic leaves are added during assembly, both derived from
data already in the trace (no extra events were emitted during the run):

* **phase leaves** — a span whose ``span_end`` carries the stats phase
  timers (``time_in_successors`` / ``time_in_heuristic`` /
  ``time_in_goal_tests``) gets one child per non-zero phase, so the
  flamegraph attributes expansion-loop time to successor generation,
  heuristic evaluation, and goal tests;
* **unclosed spans** — a run that aborted mid-span (deadline, crash, torn
  trace) still yields a node, closed at the last timestamp seen.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from .events import ENVELOPE_FIELDS, SPAN_END, SPAN_START

#: span_end payload keys synthesised into phase-attribution child leaves
PHASE_LEAVES: tuple[tuple[str, str], ...] = (
    ("time_in_successors", "successor generation"),
    ("time_in_heuristic", "heuristic evaluation"),
    ("time_in_goal_tests", "goal tests"),
)

#: payload keys that are span bookkeeping, not user attributes
_SPAN_KEYS = frozenset(ENVELOPE_FIELDS) | {"name", "span", "parent", "dur", "src"}


@dataclass
class SpanNode:
    """One reassembled span: a timed tree node with attached counters."""

    span_id: int | None
    name: str
    start: float
    end: float
    attrs: dict = field(default_factory=dict)
    children: "list[SpanNode]" = field(default_factory=list)
    synthetic: bool = False

    @property
    def total(self) -> float:
        """Wall-clock seconds from span start to span end."""
        return max(0.0, self.end - self.start)

    @property
    def self_time(self) -> float:
        """Total minus time attributed to children (floored at zero)."""
        return max(0.0, self.total - sum(c.total for c in self.children))


def _attrs_of(record: Mapping) -> dict:
    return {k: v for k, v in record.items() if k not in _SPAN_KEYS}


def build_span_tree(events: Sequence[Mapping]) -> list[SpanNode]:
    """Reassemble ``span_start``/``span_end`` records into root SpanNodes.

    Tolerates unclosed spans (closed at the last timestamp in the stream)
    and orphan ``span_end`` records (ignored).  Returns an empty list for
    traces recorded without spans, so callers can gate span sections on
    truthiness.
    """
    by_id: dict[int, SpanNode] = {}
    roots: list[SpanNode] = []
    open_ids: list[int] = []
    last_t = 0.0
    for record in events:
        t = float(record.get("t", last_t))
        if t > last_t:
            last_t = t
        event = record.get("event")
        if event == SPAN_START:
            span_id = record.get("span")
            if not isinstance(span_id, int):
                continue
            node = SpanNode(span_id, str(record.get("name", "?")), t, t,
                            attrs=_attrs_of(record))
            by_id[span_id] = node
            parent = record.get("parent")
            if isinstance(parent, int) and parent in by_id:
                by_id[parent].children.append(node)
            else:
                roots.append(node)
            open_ids.append(span_id)
        elif event == SPAN_END:
            span_id = record.get("span")
            node = by_id.get(span_id) if isinstance(span_id, int) else None
            if node is None:
                continue
            dur = record.get("dur")
            node.end = t if not isinstance(dur, (int, float)) else node.start + dur
            node.attrs.update(_attrs_of(record))
            if span_id in open_ids:
                open_ids.remove(span_id)
    for span_id in open_ids:  # aborted mid-span: close at the last event seen
        by_id[span_id].end = max(by_id[span_id].start, last_t)
    for node in by_id.values():
        _synthesize_phase_leaves(node)
    return roots


def _synthesize_phase_leaves(node: SpanNode) -> None:
    """Attach phase-attribution leaves from stats timers in span attrs."""
    cursor = node.start
    for key, label in PHASE_LEAVES:
        dur = node.attrs.get(key)
        if not isinstance(dur, (int, float)) or dur <= 0.0:
            continue
        node.children.append(
            SpanNode(None, label, cursor, cursor + float(dur), synthetic=True)
        )
        cursor += float(dur)


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1000:.1f}"


def _attr_suffix(node: SpanNode) -> str:
    shown = [
        f"{key}={value}"
        for key, value in node.attrs.items()
        if isinstance(value, int) and not isinstance(value, bool)
    ][:4]
    return f"  [{' '.join(shown)}]" if shown else ""


def render_span_tree(roots: Sequence[SpanNode]) -> str:
    """Render the span tree as indented ASCII with self/total columns."""
    lines = ["span tree (total / self ms)"]

    def walk(node: SpanNode, depth: int) -> None:
        name = node.name + (" *" if node.synthetic else "")
        lines.append(
            f"  {'  ' * depth}{name:<{max(4, 32 - 2 * depth)}}"
            f" {_fmt_ms(node.total):>9} {_fmt_ms(node.self_time):>9}"
            f"{_attr_suffix(node)}"
        )
        for child in node.children:
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    if any(_has_synthetic(root) for root in roots):
        lines.append("  (* = attributed from stats timers, not a recorded span)")
    return "\n".join(lines)


def _has_synthetic(node: SpanNode) -> bool:
    return node.synthetic or any(_has_synthetic(c) for c in node.children)


def collapsed_stacks(roots: Sequence[SpanNode]) -> list[str]:
    """Export the tree as collapsed stacks (``a;b;c <self-microseconds>``).

    One line per node with >=1µs self time, weight = self time in integer
    microseconds — pipe to ``flamegraph.pl`` or import into speedscope.
    """
    out: list[str] = []

    def walk(node: SpanNode, prefix: str) -> None:
        frame = node.name.replace(";", ",").replace(" ", "_")
        path = f"{prefix};{frame}" if prefix else frame
        weight = round(node.self_time * 1e6)
        if weight >= 1:
            out.append(f"{path} {weight}")
        for child in node.children:
            walk(child, path)

    for root in roots:
        walk(root, "")
    return out
