"""Metrics registry: counters, gauges, and fixed-bucket histograms.

Where the tracer answers "what happened, in order", the registry answers
"how much, in aggregate".  :class:`~repro.search.stats.SearchStats` is a
façade over it: the stats object keeps its flat public counter fields for
the hot path (plain int adds, bit-identical with telemetry off), and when
a registry is attached it additionally feeds distribution histograms
during the run and publishes every counter/timer into the registry when
the clock stops — so one registry can aggregate across many runs.

Histogram buckets are fixed at construction (Prometheus-style cumulative
``le`` boundaries plus a +Inf overflow), which keeps observation O(#buckets)
and makes registries mergeable across processes.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Mapping

#: depth distribution buckets (g-values; searches rarely exceed ~32 ops)
DEPTH_BUCKETS: tuple[float, ...] = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32)
#: branching-factor buckets (successors delivered per expansion)
BRANCHING_BUCKETS: tuple[float, ...] = (0, 1, 2, 4, 8, 16, 32, 64, 128)
#: heuristic estimate buckets (h-values; scaled heuristics map onto [0, k])
HEURISTIC_BUCKETS: tuple[float, ...] = (0, 1, 2, 4, 8, 16, 32, 64)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease ({amount})")
        self.value += amount

    def set_to(self, value: int) -> None:
        """Jump forward to an absolute value (publishing a final snapshot)."""
        if value < self.value:
            raise ValueError(
                f"counter {self.name!r} cannot decrease ({self.value} -> {value})"
            )
        self.value = value

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A value that can go up and down (timers, sizes, rates)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, amount: float) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """Fixed-boundary cumulative histogram (counts per ``le`` bucket).

    Args:
        name: registry key.
        buckets: strictly increasing upper bounds; a +Inf bucket is
            implicit, so ``counts`` has ``len(buckets) + 1`` cells.
    """

    __slots__ = ("name", "buckets", "counts", "total", "sum")

    def __init__(self, name: str, buckets: Iterable[float]) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram {name!r} buckets must strictly increase: {bounds}"
            )
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.total += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def as_dict(self) -> dict:
        cells: dict[str, int] = {}
        for bound, count in zip(self.buckets, self.counts):
            cells[f"le_{bound:g}"] = count
        cells["le_inf"] = self.counts[-1]
        return {"total": self.total, "sum": self.sum, "buckets": cells}

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.total} mean={self.mean:.2f}>"


class MetricsRegistry:
    """Named instruments, get-or-create by kind.

    Asking for an existing name returns the same instrument; asking for a
    name registered under a different kind (or a histogram with different
    buckets) raises ``ValueError`` — silent shadowing would corrupt
    aggregation.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type, factory):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
            return instrument
        if not isinstance(instrument, kind):
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str, buckets: Iterable[float]) -> Histogram:
        histogram = self._get(name, Histogram, lambda: Histogram(name, buckets))
        bounds = tuple(float(b) for b in buckets)
        if histogram.buckets != bounds:
            raise ValueError(
                f"histogram {name!r} already registered with buckets "
                f"{histogram.buckets}, asked for {bounds}"
            )
        return histogram

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def counters(self, prefix: str = "") -> dict[str, int]:
        """Counter values (only), optionally filtered by name prefix."""
        return {
            name: instrument.value
            for name, instrument in sorted(self._instruments.items())
            if isinstance(instrument, Counter) and name.startswith(prefix)
        }

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def as_dict(self) -> dict:
        """Plain-dict snapshot (counters/gauges flat, histograms nested)."""
        out: dict[str, object] = {}
        for name in self.names():
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                out[name] = instrument.as_dict()
            else:
                out[name] = instrument.value
        return out

    def publish_stats(
        self, stats_dict: Mapping[str, float | int], prefix: str = "search."
    ) -> None:
        """Publish a final ``SearchStats.as_dict()`` snapshot.

        Integer quantities accumulate into ``<prefix><name>`` counters and
        float quantities (phase timers, elapsed) accumulate into gauges,
        so a registry shared across several runs holds the totals.  The
        portfolio racer publishes per-arm snapshots under
        ``portfolio.<arm>.`` prefixes into one shared registry.
        """
        for key, value in stats_dict.items():
            name = f"{prefix}{key}"
            if isinstance(value, float):
                self.gauge(name).add(value)
            else:
                counter = self.counter(name)
                counter.inc(int(value))

    def merge_from(self, other: "MetricsRegistry") -> None:
        """Accumulate *other*'s instruments into this registry.

        Counters and gauges add; histograms add cell-wise (bucket layouts
        must match — fixed boundaries are what make registries mergeable
        across processes).  The experiment fan-out merges each worker's
        chunk-local registry through here, so parallel sweeps publish the
        same counter and histogram totals a serial sweep would.

        Both failure modes are validated *before* any instrument is
        touched, so a raising merge never leaves this registry partially
        merged.

        Raises:
            ValueError: a name is registered under different kinds in the
                two registries, or a histogram's bucket bounds differ.
        """
        for name in other.names():
            theirs = other._instruments[name]
            mine = self._instruments.get(name)
            if mine is None:
                continue
            if type(mine) is not type(theirs):
                raise ValueError(
                    f"cannot merge metric {name!r}: "
                    f"{type(mine).__name__} here, "
                    f"{type(theirs).__name__} in the incoming registry"
                )
            if isinstance(theirs, Histogram) and mine.buckets != theirs.buckets:
                raise ValueError(
                    f"cannot merge histogram {name!r}: buckets differ "
                    f"({mine.buckets} here, {theirs.buckets} in the "
                    f"incoming registry) — fixed matching boundaries are "
                    f"what make registries mergeable"
                )
        for name in other.names():
            theirs = other._instruments[name]
            if isinstance(theirs, Counter):
                self.counter(name).inc(theirs.value)
            elif isinstance(theirs, Gauge):
                self.gauge(name).add(theirs.value)
            else:
                mine = self.histogram(name, theirs.buckets)
                for i, count in enumerate(theirs.counts):
                    mine.counts[i] += count
                mine.total += theirs.total
                mine.sum += theirs.sum

    def __repr__(self) -> str:
        return f"<MetricsRegistry {len(self)} instruments>"
