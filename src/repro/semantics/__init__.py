"""Complex semantic functions and correspondence declarations (paper §4)."""

from .correspondence import (
    CORRESPONDENCE_ATT,
    CORRESPONDENCE_REL,
    Correspondence,
    correspondences_from_tnf,
    correspondences_to_tnf_rows,
    decode_correspondence,
    encode_correspondence,
    is_correspondence_value,
    validate_correspondences,
)
from .functions import (
    FunctionRegistry,
    SemanticFunction,
    builtin_registry,
    make_concat,
    make_linear,
    make_lookup,
)

__all__ = [
    "CORRESPONDENCE_ATT",
    "CORRESPONDENCE_REL",
    "Correspondence",
    "correspondences_from_tnf",
    "correspondences_to_tnf_rows",
    "decode_correspondence",
    "encode_correspondence",
    "is_correspondence_value",
    "validate_correspondences",
    "FunctionRegistry",
    "SemanticFunction",
    "builtin_registry",
    "make_concat",
    "make_linear",
    "make_lookup",
]
