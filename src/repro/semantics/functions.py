"""Complex semantic functions (§4 of the paper).

A semantic function is an opaque "black box" transforming one or more input
attribute values into a single output value — the many-to-one complex
mappings that pure structural transformation cannot express (summing a cost
and a fee, concatenating names, converting dates or currencies, looking up
an identifier).  TUPELO does not interpret these functions during search; it
only checks that applications are well-typed, and resolves the actual
callable from a :class:`FunctionRegistry` when a mapping expression is
executed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from ..errors import SignatureError, UnknownFunctionError
from ..relational.types import NULL, Value, check_value, is_null


@dataclass(frozen=True)
class SemanticFunction:
    """A named complex semantic function with a fixed arity.

    Attributes:
        name: registry key, unique within a registry.
        arity: number of input values.
        func: the underlying callable (receives ``arity`` values).
        description: human-readable summary for documentation.
        null_propagating: if True (default), any NULL input yields NULL
            without calling ``func`` — the usual SQL-style semantics.
    """

    name: str
    arity: int
    func: Callable[..., Value] = field(compare=False)
    description: str = ""
    null_propagating: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise SignatureError("semantic function name must be non-empty")
        if self.arity < 1:
            raise SignatureError(
                f"semantic function {self.name!r} must take at least one input"
            )

    def apply(self, *args: Value) -> Value:
        """Apply the function to *args*, enforcing arity and NULL semantics."""
        if len(args) != self.arity:
            raise SignatureError(
                f"function {self.name!r} expects {self.arity} arguments, "
                f"got {len(args)}"
            )
        if self.null_propagating and any(is_null(a) for a in args):
            return NULL
        return check_value(self.func(*args))

    def __call__(self, *args: Value) -> Value:
        return self.apply(*args)


class FunctionRegistry:
    """A mutable name -> :class:`SemanticFunction` mapping.

    Registries are the only mutable objects in the core library; a search is
    handed a registry (or uses :func:`builtin_registry`) and treats it as
    read-only.
    """

    def __init__(self, functions: Iterable[SemanticFunction] = ()) -> None:
        self._functions: dict[str, SemanticFunction] = {}
        for fn in functions:
            self.register(fn)

    def register(self, fn: SemanticFunction, replace: bool = False) -> SemanticFunction:
        """Add *fn*; re-registering a name requires ``replace=True``."""
        if fn.name in self._functions and not replace:
            raise SignatureError(
                f"function {fn.name!r} already registered; pass replace=True"
            )
        self._functions[fn.name] = fn
        return fn

    def define(
        self,
        name: str,
        arity: int,
        func: Callable[..., Value],
        description: str = "",
        null_propagating: bool = True,
        replace: bool = False,
    ) -> SemanticFunction:
        """Convenience: build and register a :class:`SemanticFunction`."""
        return self.register(
            SemanticFunction(name, arity, func, description, null_propagating),
            replace=replace,
        )

    def get(self, name: str) -> SemanticFunction:
        """Look up a function (raises :class:`UnknownFunctionError`)."""
        try:
            return self._functions[name]
        except KeyError:
            raise UnknownFunctionError(name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def __iter__(self) -> Iterator[SemanticFunction]:
        return iter(self._functions.values())

    def __len__(self) -> int:
        return len(self._functions)

    @property
    def names(self) -> tuple[str, ...]:
        """Registered function names, sorted."""
        return tuple(sorted(self._functions))

    def merged(self, other: "FunctionRegistry") -> "FunctionRegistry":
        """A new registry with *other*'s functions overriding ours on clash."""
        merged = FunctionRegistry(self)
        for fn in other:
            merged.register(fn, replace=True)
        return merged


# ---------------------------------------------------------------------------
# Built-in functions — the kinds of complex mappings the paper motivates
# (Example 5: name->ID lookup, first/last concatenation, Cost+Fee sum; §4:
# date / weight / financial conversions).
# ---------------------------------------------------------------------------


def _as_number(value: Value, context: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        try:
            return float(str(value))
        except (TypeError, ValueError):
            raise SignatureError(f"{context}: expected a number, got {value!r}") from None
    return float(value)


def _numeric(value: float) -> Value:
    """Collapse floats that are integral back to int for clean rendering."""
    if value.is_integer():
        return int(value)
    return value


def make_lookup(
    name: str, table: Mapping[Value, Value], description: str = ""
) -> SemanticFunction:
    """A unary lookup function backed by a finite table (Example 5's f1).

    Unmapped inputs yield NULL — a lookup "cannot be generalized from
    examples" (§4), so out-of-table inputs have no defined image.
    """
    frozen = dict(table)

    def lookup(value: Value) -> Value:
        return frozen.get(value, NULL)

    return SemanticFunction(
        name, 1, lookup, description or f"finite lookup table ({len(frozen)} entries)"
    )


def make_concat(name: str, separator: str = " ", arity: int = 2) -> SemanticFunction:
    """An n-ary string concatenation with a fixed separator (Example 5's f2)."""

    def concat(*args: Value) -> Value:
        return separator.join(str(a) for a in args)

    return SemanticFunction(
        name, arity, concat, f"concatenate {arity} values with {separator!r}"
    )


def make_linear(
    name: str, factor: float, offset: float = 0.0, description: str = ""
) -> SemanticFunction:
    """A unary linear conversion ``x -> factor*x + offset``.

    Covers weight, temperature, and fixed-rate financial conversions (§4).
    """

    def convert(value: Value) -> Value:
        return _numeric(_as_number(value, name) * factor + offset)

    return SemanticFunction(name, 1, convert, description or f"x -> {factor}*x + {offset}")


def _add(*args: Value) -> Value:
    return _numeric(sum(_as_number(a, "add") for a in args))


def _subtract(a: Value, b: Value) -> Value:
    return _numeric(_as_number(a, "subtract") - _as_number(b, "subtract"))


def _multiply(a: Value, b: Value) -> Value:
    return _numeric(_as_number(a, "multiply") * _as_number(b, "multiply"))


def _divide(a: Value, b: Value) -> Value:
    denominator = _as_number(b, "divide")
    if denominator == 0:
        return NULL
    return _numeric(_as_number(a, "divide") / denominator)


def _date_mdy_to_iso(text: Value) -> Value:
    """Convert ``M/D/YYYY`` (US style) to ISO ``YYYY-MM-DD``."""
    parts = str(text).split("/")
    if len(parts) != 3:
        raise SignatureError(f"date_mdy_to_iso: cannot parse {text!r}")
    month, day, year = parts
    return f"{int(year):04d}-{int(month):02d}-{int(day):02d}"


def _full_name(first: Value, last: Value) -> Value:
    return f"{first} {last}"


def builtin_registry() -> FunctionRegistry:
    """A fresh registry populated with the built-in complex functions."""
    registry = FunctionRegistry()
    registry.define("add", 2, _add, "sum of two numbers (Example 5's f3)")
    registry.define("add3", 3, _add, "sum of three numbers")
    registry.define("subtract", 2, _subtract, "difference of two numbers")
    registry.define("multiply", 2, _multiply, "product of two numbers")
    registry.define("divide", 2, _divide, "ratio of two numbers (NULL for /0)")
    registry.define("concat", 2, lambda a, b: f"{a} {b}", "space concatenation")
    registry.define(
        "concat_comma", 2, lambda a, b: f"{a}, {b}", "comma concatenation"
    )
    registry.define("full_name", 2, _full_name, "first + last name (Example 5's f2)")
    registry.define("upper", 1, lambda v: str(v).upper(), "uppercase a string")
    registry.define("lower", 1, lambda v: str(v).lower(), "lowercase a string")
    registry.define(
        "date_mdy_to_iso", 1, _date_mdy_to_iso, "US M/D/YYYY date to ISO YYYY-MM-DD"
    )
    registry.register(
        make_linear("lb_to_kg", 0.45359237, description="pounds to kilograms")
    )
    registry.register(
        make_linear("usd_to_eur", 0.92, description="US dollars to euros (fixed rate)")
    )
    registry.register(
        make_linear("sqft_to_sqm", 0.09290304, description="square feet to square meters")
    )
    return registry
