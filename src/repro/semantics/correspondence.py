"""Complex correspondence declarations and their TNF encoding (§4).

TUPELO separates *discovering* complex semantic functions (out of scope for
the paper — see iMAP and related work) from *placing* them inside a larger
mapping expression.  The user declares each complex correspondence on the
critical-instance inputs: "attribute ``B`` of the target is ``f`` applied to
attributes ``Ā`` of the source".  Search then treats these declarations as
additional operator instances (λ applications) whose well-typedness is the
only thing checked.

The paper notes that internally "complex semantic maps are just encoded as
strings in the VALUE column of the TNF relation"; :func:`encode_correspondence`
and :func:`decode_correspondence` implement that string format, and
:func:`correspondences_to_tnf_rows` / :func:`correspondences_from_tnf` embed
declarations into a TNF table alongside ordinary cells.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..errors import CorrespondenceError
from ..relational.relation import Relation
from ..relational.tnf import TNF_ATTRIBUTES
from .functions import FunctionRegistry, SemanticFunction


@dataclass(frozen=True, order=True)
class Correspondence:
    """A declared complex semantic correspondence.

    Attributes:
        function: name of the semantic function (resolved via a registry
            at execution time; opaque during search).
        inputs: source attribute names fed to the function, in order.
        output: target attribute name receiving the function value.
        relation: optional relation name restricting where the λ operator
            may apply; ``None`` means any relation carrying the inputs.
    """

    function: str
    inputs: tuple[str, ...]
    output: str
    relation: str | None = None

    def __post_init__(self) -> None:
        if not self.function:
            raise CorrespondenceError("correspondence function name must be non-empty")
        if not self.inputs:
            raise CorrespondenceError(
                f"correspondence for {self.function!r} must have at least one input"
            )
        if any(not attr for attr in self.inputs):
            raise CorrespondenceError(
                f"correspondence for {self.function!r} has an empty input attribute"
            )
        if not self.output:
            raise CorrespondenceError(
                f"correspondence for {self.function!r} must name an output attribute"
            )
        object.__setattr__(self, "inputs", tuple(self.inputs))

    @property
    def arity(self) -> int:
        """Number of input attributes."""
        return len(self.inputs)

    def check_signature(self, registry: FunctionRegistry) -> SemanticFunction:
        """Resolve the function and verify the declared arity matches.

        Raises:
            CorrespondenceError: if arities disagree.
            UnknownFunctionError: if the function is unregistered.
        """
        fn = registry.get(self.function)
        if fn.arity != self.arity:
            raise CorrespondenceError(
                f"correspondence {self!r} declares {self.arity} inputs but "
                f"function {fn.name!r} has arity {fn.arity}"
            )
        return fn

    def __str__(self) -> str:
        scope = f"{self.relation}." if self.relation else ""
        return f"{scope}{self.output} <- {self.function}({', '.join(self.inputs)})"


_CORRESPONDENCE_RE = re.compile(
    r"^λ:(?P<output>[^<]+)<-(?P<function>[^(]+)\((?P<inputs>[^)]*)\)(?:@(?P<relation>.+))?$"
)


def encode_correspondence(corr: Correspondence) -> str:
    """Encode a correspondence as a TNF VALUE string.

    Format: ``λ:<output><-<function>(<in1>,<in2>,...)[@<relation>]``.
    """
    encoded = f"λ:{corr.output}<-{corr.function}({','.join(corr.inputs)})"
    if corr.relation is not None:
        encoded += f"@{corr.relation}"
    return encoded


def decode_correspondence(text: str) -> Correspondence:
    """Decode a string produced by :func:`encode_correspondence`.

    Raises:
        CorrespondenceError: if the string is not in the encoding format.
    """
    match = _CORRESPONDENCE_RE.match(text)
    if match is None:
        raise CorrespondenceError(f"not a correspondence encoding: {text!r}")
    inputs = tuple(part for part in match.group("inputs").split(",") if part)
    return Correspondence(
        function=match.group("function"),
        inputs=inputs,
        output=match.group("output"),
        relation=match.group("relation"),
    )


def is_correspondence_value(text: object) -> bool:
    """Whether a TNF VALUE cell holds an encoded correspondence."""
    return isinstance(text, str) and text.startswith("λ:")


CORRESPONDENCE_REL = "$correspondences"
CORRESPONDENCE_ATT = "$lambda"


def correspondences_to_tnf_rows(
    correspondences: Iterable[Correspondence],
) -> list[tuple[str, str, str, str]]:
    """TNF rows carrying correspondence declarations.

    Declarations live under a reserved relation/attribute name so they can
    coexist with ordinary cells in one TNF table (as the paper describes).
    """
    rows = []
    for i, corr in enumerate(sorted(set(correspondences)), start=1):
        rows.append(
            (f"c{i}", CORRESPONDENCE_REL, CORRESPONDENCE_ATT, encode_correspondence(corr))
        )
    return rows


def correspondences_from_tnf(tnf: Relation) -> tuple[Correspondence, ...]:
    """Extract correspondence declarations embedded in a TNF relation."""
    if tnf.attribute_set != frozenset(TNF_ATTRIBUTES):
        raise CorrespondenceError(
            f"relation {tnf.name!r} does not have the TNF schema"
        )
    found = []
    for row in tnf.sorted_rows():
        cell = dict(zip(tnf.attributes, row))
        if cell["REL"] == CORRESPONDENCE_REL and is_correspondence_value(cell["VALUE"]):
            found.append(decode_correspondence(str(cell["VALUE"])))
    return tuple(found)


def validate_correspondences(
    correspondences: Sequence[Correspondence], registry: FunctionRegistry
) -> None:
    """Check every declaration against the registry (arity + existence)."""
    for corr in correspondences:
        corr.check_signature(registry)
