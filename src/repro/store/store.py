"""The warm-start store facade: one directory, two kinds of warmth.

A :class:`WarmStartStore` is a directory::

    <store>/
        memo.jsonl          # mapping memo (repro.store.memo)
        warm/<sig>.json     # per-problem search-state spills (repro.store.warm)

The search engine drives it through four verbs — :meth:`serve` (is a
verified mapping already known for this exact pair?), :meth:`preseed`
(warm a fresh problem's memo tables from a shared spill), :meth:`record`
(persist a discovered mapping), :meth:`export` (spill this run's tables
for the next process).  All four are best-effort: storage failures bump
``resilience.store_*`` counters and the search proceeds cold, so pointing
``--store`` at a read-only or corrupted path costs warmth, never
correctness.  ``store.*`` metrics and ``store_hit`` / ``store_miss`` /
``store_write`` trace events make every decision observable.
"""

from __future__ import annotations

from pathlib import Path

from ..obs.events import STORE_HIT, STORE_MISS, STORE_WRITE
from ..resilience.runtime import resilience_warning
from .memo import DEFAULT_MAX_ENTRIES, MappingMemo
from .runtime import warm_store_enabled
from .warm import (
    DEFAULT_MAX_SPILL_STATES,
    problem_signature,
    read_spill,
    write_spill,
)

#: default bound on spill files kept per store (oldest dropped by gc)
DEFAULT_MAX_SPILLS = 256

#: file names inside a store directory
MEMO_FILE = "memo.jsonl"
WARM_DIR = "warm"


class WarmStartStore:
    """A directory-backed memo + spill store shared across processes."""

    def __init__(
        self,
        path: str | Path,
        *,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        max_spills: int = DEFAULT_MAX_SPILLS,
        max_spill_states: int = DEFAULT_MAX_SPILL_STATES,
    ) -> None:
        self.path = Path(path)
        self.max_spills = max_spills
        self.max_spill_states = max_spill_states
        self.memo = MappingMemo(self.path / MEMO_FILE, max_entries=max_entries)
        # Post-preseed table-size snapshots by problem signature; consumed
        # by export() to skip re-spilling when a search learned nothing.
        self._preseed_sizes: dict[str, tuple[int, int, int]] = {}

    def spill_path(self, signature: str) -> Path:
        return self.path / WARM_DIR / f"{signature}.json"

    # -- mapping memo ----------------------------------------------------------

    def serve(
        self,
        source,
        target,
        *,
        algorithm=None,
        heuristic=None,
        k=None,
        registry=None,
        metrics=None,
        tracer=None,
    ):
        """A verified ``(expression, entry)`` for this pair, or ``None``."""
        served = self.memo.serve(
            source,
            target,
            registry=registry,
            algorithm=algorithm,
            heuristic=heuristic,
            k=k,
        )
        if served is not None:
            _, entry = served
            if metrics is not None:
                metrics.counter("store.memo_hits").inc()
            if tracer is not None and tracer.enabled:
                tracer.emit(
                    STORE_HIT,
                    kind="memo",
                    fingerprint=entry["fingerprint"],
                    ops=entry.get("ops"),
                )
        else:
            if metrics is not None:
                metrics.counter("store.memo_misses").inc()
            if tracer is not None and tracer.enabled:
                tracer.emit(STORE_MISS, kind="memo")
        return served

    def record(
        self,
        source,
        target,
        *,
        expression,
        algorithm,
        heuristic,
        k=None,
        signature="",
        states_examined=None,
        metrics=None,
        tracer=None,
    ) -> dict | None:
        """Persist one discovered mapping (best-effort)."""
        try:
            entry = self.memo.record(
                source,
                target,
                expression=expression,
                algorithm=algorithm,
                heuristic=heuristic,
                k=k,
                signature=signature,
                states_examined=states_examined,
            )
        except OSError as exc:
            resilience_warning("store_io_error", f"{self.path}: {exc!r}")
            return None
        if metrics is not None:
            metrics.counter("store.memo_writes").inc()
        if tracer is not None and tracer.enabled:
            tracer.emit(
                STORE_WRITE, kind="memo", fingerprint=entry["fingerprint"]
            )
        return entry

    # -- warm spills -----------------------------------------------------------

    def preseed(self, problem, heuristic=None, metrics=None, tracer=None) -> int:
        """Warm *problem* (and *heuristic*) from the shared spill; entries.

        A missing spill is a quiet miss; a corrupt one clears any partial
        warmth and degrades to cold with ``resilience.store_torn_spill``.
        """
        signature = problem_signature(problem)
        tables = read_spill(self.spill_path(signature), signature)
        loaded = 0
        if tables is not None:
            try:
                loaded = problem.preseed_warm_tables(tables, heuristic)
            except Exception as exc:  # any malformed table degrades cold
                problem.clear_caches()
                if heuristic is not None:
                    heuristic.clear_cache()
                loaded = 0
                resilience_warning(
                    "store_torn_spill",
                    f"{self.spill_path(signature)}: preseed {exc!r}",
                )
        if loaded:
            # Snapshot the warmed table sizes so export() can detect a
            # search that never left them.  Only with unbounded caches:
            # under a capacity bound, eviction keeps sizes pinned while
            # contents churn, so the detector would skip real updates.
            if problem.config.cache_capacity is None:
                self._preseed_sizes[signature] = problem.warm_table_sizes(
                    heuristic
                )
            if metrics is not None:
                metrics.counter("store.spill_hits").inc()
                metrics.counter("store.spill_entries_loaded").inc(loaded)
            if tracer is not None and tracer.enabled:
                tracer.emit(STORE_HIT, kind="spill", entries=loaded)
        else:
            if metrics is not None:
                metrics.counter("store.spill_misses").inc()
            if tracer is not None and tracer.enabled:
                tracer.emit(STORE_MISS, kind="spill")
        return loaded

    def export(self, problem, heuristic=None, metrics=None, tracer=None) -> bool:
        """Spill *problem*'s memo tables for other processes (best-effort).

        Runs after every search — found, budget-cut, or deadline-cut: a
        partial table is exactly as valid as a complete one, and cut runs
        are the ones whose warmth the retry needs most.  The steady-state
        exception: when the memo tables are exactly the size the preseed
        left them (unbounded caches only), the search ran entirely inside
        the spill it loaded, so re-encoding and merging an identical spill
        is skipped (``store.spill_skips``).
        """
        signature = problem_signature(problem)
        mark = self._preseed_sizes.pop(signature, None)
        if mark is not None and mark == problem.warm_table_sizes(heuristic):
            if metrics is not None:
                metrics.counter("store.spill_skips").inc()
            return False
        tables = problem.export_warm_tables(
            heuristic, max_states=self.max_spill_states
        )
        if not tables["states"]:
            return False
        ok = write_spill(
            self.spill_path(signature),
            signature,
            tables,
            max_states=self.max_spill_states,
        )
        if ok:
            if metrics is not None:
                metrics.counter("store.spill_writes").inc()
            if tracer is not None and tracer.enabled:
                tracer.emit(
                    STORE_WRITE, kind="spill", states=len(tables["states"])
                )
        return ok

    # -- maintenance -----------------------------------------------------------

    def _spill_files(self) -> list[Path]:
        warm = self.path / WARM_DIR
        if not warm.is_dir():
            return []
        return sorted(warm.glob("*.json"))

    def info(self) -> dict:
        """A JSON-ready snapshot for ``repro store info``."""
        spills = self._spill_files()
        spill_bytes = 0
        for spill in spills:
            try:
                spill_bytes += spill.stat().st_size
            except OSError:
                continue
        payload = {
            "path": str(self.path),
            "memo": self.memo.info(),
            "spills": len(spills),
            "spill_bytes": spill_bytes,
            "max_spills": self.max_spills,
            "max_spill_states": self.max_spill_states,
            "enabled": warm_store_enabled(),
        }
        return payload

    def gc(self) -> dict:
        """Compact the memo and drop the oldest spills over ``max_spills``."""
        summary = {"memo": self.memo.gc()}
        spills = self._spill_files()
        dropped = 0
        if len(spills) > self.max_spills:
            by_age = sorted(
                spills, key=lambda p: (p.stat().st_mtime_ns, p.name)
            )
            for spill in by_age[: len(spills) - self.max_spills]:
                try:
                    spill.unlink()
                    dropped += 1
                except OSError as exc:
                    resilience_warning(
                        "store_io_error", f"{spill}: gc {exc!r}"
                    )
        summary["spills_dropped"] = dropped
        summary["spills_kept"] = len(spills) - dropped
        return summary


def resolve_store(store) -> WarmStartStore | None:
    """The store to use for one discovery, honouring the kill switch.

    Accepts ``None`` (no store), an existing :class:`WarmStartStore`, or a
    path.  Returns ``None`` whenever ``REPRO_WARM_STORE=0`` so every
    caller that threads ``store=`` through gets the cold path for free.
    """
    if store is None or not warm_store_enabled():
        return None
    if isinstance(store, WarmStartStore):
        return store
    return WarmStartStore(store)


def open_store(path: str | Path, **kwargs) -> WarmStartStore:
    """Open (or lazily create) the store directory at *path*."""
    return WarmStartStore(path, **kwargs)
