"""Global kill-switch for the warm-start store.

``REPRO_WARM_STORE=0`` (or ``false`` / ``no``) disables every store code
path: :func:`repro.store.resolve_store` returns ``None`` regardless of the
``store=`` argument, so ``discover_mapping`` runs exactly the cold path —
no fingerprinting, no memo lookup, no spill export.  The switch follows
the ablation idiom of :mod:`repro.relational.caching`: read once from the
environment at import (so it propagates into spawned workers), flippable
at runtime for tests via :func:`set_warm_store` /
:func:`warm_store_disabled`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator


def _env_flag(name: str) -> bool:
    """Read an on/off env var: unset or anything but ``0``/``false`` is on."""
    return os.environ.get(name, "1").strip().lower() not in ("0", "false", "no")


_warm_store_enabled = _env_flag("REPRO_WARM_STORE")


def warm_store_enabled() -> bool:
    """Whether warm-start store paths are active (default True)."""
    return _warm_store_enabled


def set_warm_store(enabled: bool) -> None:
    """Globally enable/disable the warm-start store."""
    global _warm_store_enabled
    _warm_store_enabled = bool(enabled)


@contextmanager
def warm_store_disabled() -> Iterator[None]:
    """Context manager: run a block with the warm-start store off."""
    previous = _warm_store_enabled
    set_warm_store(False)
    try:
        yield
    finally:
        set_warm_store(previous)
