"""Warm-start store: cross-request mapping memo + shared search caches.

The persistence and sharing layer for discovery results (ROADMAP item 1's
cross-request cache, landed ahead of the server mode that will sit on it):

* :mod:`repro.store.memo` — an append-only, corruption-tolerant JSONL memo
  mapping canonical pair fingerprints
  (:mod:`repro.relational.fingerprint`) to previously discovered
  :class:`~repro.fira.expression.MappingExpression`\\ s, re-verified
  against the live instances before being served;
* :mod:`repro.store.warm` — per-problem spills of the transposition /
  goal / heuristic memo tables, merged atomically so portfolio arms and
  fanout workers warm each other through one shared file;
* :class:`~repro.store.store.WarmStartStore` — the directory facade the
  search engine, CLI (``discover --store`` / ``repro store``), and
  parallel layers drive;
* :mod:`repro.store.runtime` — the ``REPRO_WARM_STORE`` kill switch that
  restores the cold path end to end.

See ``docs/caching.md`` for formats, semantics, and knobs.
"""

from .memo import DEFAULT_MAX_ENTRIES, STORE_VERSION, MappingMemo
from .runtime import set_warm_store, warm_store_disabled, warm_store_enabled
from .store import (
    DEFAULT_MAX_SPILLS,
    WarmStartStore,
    open_store,
    resolve_store,
)
from .warm import (
    DEFAULT_MAX_SPILL_STATES,
    SPILL_VERSION,
    config_signature,
    merge_tables,
    problem_signature,
    read_spill,
    write_spill,
)

__all__ = [
    "DEFAULT_MAX_ENTRIES",
    "DEFAULT_MAX_SPILLS",
    "DEFAULT_MAX_SPILL_STATES",
    "MappingMemo",
    "SPILL_VERSION",
    "STORE_VERSION",
    "WarmStartStore",
    "config_signature",
    "merge_tables",
    "open_store",
    "problem_signature",
    "read_spill",
    "resolve_store",
    "set_warm_store",
    "warm_store_disabled",
    "warm_store_enabled",
    "write_spill",
]
